//! Quickstart: protect a memory region with Toleo freshness and watch a
//! replay attack die.
//!
//! ```sh
//! cargo run -p toleo-bench --example quickstart
//! ```

use toleo_core::config::ToleoConfig;
use toleo_core::engine::ProtectionEngine;

fn main() {
    // A protection engine = AES-XTS + 56-bit MACs in conventional memory,
    // stealth versions in the (modelled) trusted Toleo device.
    let mut key = [0u8; 48];
    key[..31].copy_from_slice(b"quickstart key material entropy");
    let mut engine = ProtectionEngine::try_new(ToleoConfig::small(), key).expect("valid config");

    // Ordinary protected writes and reads.
    let mut secret = [b'.'; 64];
    secret[..41].copy_from_slice(b"patient genome shard #001 [CONFIDENTIAL] ");
    engine.write(0x1000, &secret).expect("protected write");
    let back = engine.read(0x1000).expect("protected read");
    assert_eq!(back, secret);
    println!("[ok] wrote and read back a protected cache block");

    // The adversary sees only ciphertext.
    let ct = *engine.adversary().ciphertext(0x1000).expect("resident");
    assert_ne!(ct, secret);
    println!("[ok] data at rest is ciphertext: {:02x?}...", &ct[..8]);

    // Same plaintext written again -> different ciphertext (fresh version
    // in the XTS tweak), so even write traffic analysis learns nothing.
    engine.write(0x1000, &secret).expect("rewrite");
    let ct2 = *engine.adversary().ciphertext(0x1000).expect("resident");
    assert_ne!(ct, ct2);
    println!("[ok] same value re-encrypts differently under a fresh version");

    // Replay attack: capture the current (ciphertext, MAC, UV), let the
    // victim write something new, then restore the stale capture.
    let stale = engine.adversary().capture(0x1000);
    let mut update = [b'.'; 64];
    update[..17].copy_from_slice(b"updated record v2");
    engine.write(0x1000, &update).expect("victim write");
    engine.adversary().replay(&stale);
    match engine.read(0x1000) {
        Err(e) => println!("[ok] replay detected, kill switch engaged: {e}"),
        Ok(_) => unreachable!("a replay must never verify"),
    }
    assert!(engine.is_killed());
    println!("[ok] engine refuses all further service after the violation");
    println!("\nstats: {:?}", engine.stats());
}
