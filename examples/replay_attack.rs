//! An adversary's tour of the trust boundary: every attack surface from
//! the paper's threat model (§2.1), against both Toleo and the client-SGX
//! Merkle-tree baseline.
//!
//! ```sh
//! cargo run -p toleo-bench --example replay_attack
//! ```

use toleo_baselines::sgx::SgxEngine;
use toleo_core::config::ToleoConfig;
use toleo_core::engine::ProtectionEngine;
use toleo_crypto::ide::establish_session;
use toleo_crypto::mac::Tag56;

fn fresh_engine() -> ProtectionEngine {
    ProtectionEngine::try_new(ToleoConfig::small(), [0xd1u8; 48]).unwrap()
}

fn main() {
    println!("== Attack 1: ciphertext tampering (integrity) ==");
    let mut e = fresh_engine();
    e.write(0x40, &[7u8; 64]).unwrap();
    e.adversary().corrupt_data(0x40, 21, 0x80);
    println!(
        "   flip one ciphertext bit -> {:?}",
        e.read(0x40).unwrap_err()
    );

    println!("\n== Attack 2: MAC forgery ==");
    let mut e = fresh_engine();
    e.write(0x40, &[7u8; 64]).unwrap();
    e.adversary().forge_mac(0x40, Tag56::from_raw(0x1337));
    println!(
        "   forge the stored tag    -> {:?}",
        e.read(0x40).unwrap_err()
    );

    println!("\n== Attack 3: replay of stale (ciphertext, MAC, UV) ==");
    let mut e = fresh_engine();
    e.write(0x40, &[1u8; 64]).unwrap();
    let stale = e.adversary().capture(0x40);
    e.write(0x40, &[2u8; 64]).unwrap();
    e.adversary().replay(&stale);
    println!(
        "   replay the old capsule  -> {:?}",
        e.read(0x40).unwrap_err()
    );
    println!("   (the stealth version in Toleo moved on; a blind guess wins 1 in 2^27)");

    println!("\n== Attack 4: malicious OS reads a freed page ==");
    let mut e = fresh_engine();
    e.write(0x2000, &[9u8; 64]).unwrap();
    e.free_page(0x2000 / 4096).unwrap();
    println!(
        "   read after free+remap   -> {:?}",
        e.read(0x2000).unwrap_err()
    );

    println!("\n== Attack 5: tampering with the CXL IDE link ==");
    let (mut tx, mut rx) = establish_session([0x99u8; 32]);
    let f1 = tx.send(b"stealth=42");
    let f2 = tx.send(b"stealth=43");
    // In-flight modification.
    let mut bent = f1.clone();
    bent.ciphertext[0] ^= 1;
    println!(
        "   modified flit           -> {:?}",
        rx.receive(&bent).unwrap_err()
    );
    // Replay / reorder on the link.
    rx.receive(&f1).unwrap();
    rx.receive(&f2).unwrap();
    println!(
        "   replayed flit           -> {:?}",
        rx.receive(&f1).unwrap_err()
    );

    println!("\n== Baseline: the Merkle-tree engine catches the same replay ==");
    let mut sgx = SgxEngine::new(1 << 20);
    sgx.write(0x80, &[1u8; 64]).unwrap();
    let stale = sgx.capture(0x80);
    sgx.write(0x80, &[2u8; 64]).unwrap();
    sgx.replay(0x80, stale);
    println!(
        "   sgx replay              -> {:?}",
        sgx.read(0x80).unwrap_err()
    );
    println!(
        "   ...but paid {} tree-node accesses to get there",
        sgx.tree_accesses
    );
    println!("\nBoth designs detect everything; Toleo does it with one version access.");
}
