//! Figure 1's deployment: multiple compute nodes sharing one memory pool
//! and ONE Toleo device over CXL. Each node runs a different workload;
//! the shared device serves all of their version traffic.
//!
//! ```sh
//! cargo run --release -p toleo-bench --example rack_sharing
//! ```

use toleo_sim::config::{Protection, SimConfig};
use toleo_sim::system::Rack;
use toleo_workloads::{generate, Benchmark, GenConfig};

fn main() {
    // A genomics node, a graph-analytics node, an LLM node and a database
    // node share the rack (the paper's motivating mix).
    let mix = [
        Benchmark::Bsw,
        Benchmark::Bfs,
        Benchmark::Llama2Gen,
        Benchmark::Hyrise,
    ];
    let gen = GenConfig {
        mem_ops: 60_000,
        ..GenConfig::default()
    };
    let traces: Vec<_> = mix.iter().map(|b| generate(*b, &gen)).collect();

    let mut rack = Rack::new(SimConfig::scaled(Protection::Toleo), mix.len());
    let stats = rack.run(&traces);

    println!("4-node rack sharing one Toleo device\n");
    println!(
        "{:<12}{:>14}{:>13}{:>13}{:>11}",
        "node", "cycles", "stealth hit", "read lat", "MPKI"
    );
    for s in &stats {
        println!(
            "{:<12}{:>14.0}{:>12.1}%{:>11.0}ns{:>11.1}",
            s.name,
            s.cycles,
            s.stealth_hit_rate * 100.0,
            s.avg_read_latency_ns(),
            s.llc_mpki
        );
    }

    println!("\nshared Toleo device totals:");
    let total_flat: u64 = stats.iter().map(|s| s.trip_pages.0).sum();
    let total_uneven: u64 = stats.iter().map(|s| s.trip_pages.1).sum();
    let total_full: u64 = stats.iter().map(|s| s.trip_pages.2).sum();
    println!("  pages: {total_flat} flat / {total_uneven} uneven / {total_full} full");
    let peak: u64 = stats.iter().map(|s| s.peak_toleo.total_bytes()).sum();
    let rss: u64 = stats.iter().map(|s| s.rss_bytes).sum();
    println!(
        "  version storage: {:.2} MB for {:.1} MB protected ({:.1} GB per TB)",
        peak as f64 / 1e6,
        rss as f64 / 1e6,
        peak as f64 / rss as f64 * 1000.0
    );
    println!("\nOne small trusted device scales freshness across the whole rack.");
}
