//! The paper's motivating workload: LLM token generation over a large
//! CXL-expanded memory pool. Runs the llama2-gen trace under all five
//! protection configurations and reports what freshness actually costs.
//!
//! ```sh
//! cargo run --release -p toleo-bench --example llm_inference
//! ```

use toleo_sim::config::{Protection, SimConfig};
use toleo_sim::system::System;
use toleo_workloads::{generate, Benchmark, GenConfig};

fn main() {
    let trace = generate(Benchmark::Llama2Gen, &GenConfig::default());
    println!(
        "llama2-gen: {} instructions, {} memory ops, {:.1} MB working set\n",
        trace.instructions(),
        trace.mem_ops(),
        trace.rss_bytes as f64 / 1e6
    );

    let mut base_cycles = 0.0;
    println!(
        "{:<11}{:>14}{:>11}{:>13}{:>13}{:>12}",
        "config", "cycles", "overhead", "read lat", "stealth hit", "B/instr"
    );
    for p in Protection::all() {
        let stats = System::new(SimConfig::scaled(p)).run(&trace);
        if p == Protection::NoProtect {
            base_cycles = stats.cycles;
        }
        println!(
            "{:<11}{:>14.0}{:>10.1}%{:>11.0}ns{:>12.1}%{:>12.2}",
            p.to_string(),
            stats.cycles,
            (stats.cycles / base_cycles - 1.0) * 100.0,
            stats.avg_read_latency_ns(),
            stats.stealth_hit_rate * 100.0,
            stats.bytes_per_instruction()
        );
    }

    println!("\nThe model's weights stream through the LLC with no reuse, so the");
    println!("activation buffer's uniform writes keep every page flat: freshness");
    println!("for tera-scale model state costs ~12 bytes of smart memory per 4 KB.");
}
