//! Concurrency tests for the sharded protection engine: the per-shard
//! quarantine contract under concurrent victim traffic (tamper freezes
//! only the offending shard; healthy shards keep serving), and
//! observation-equivalence of the sharded batch path against a single
//! sequential engine.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use toleo_core::config::{ToleoConfig, PAGE_BYTES};
use toleo_core::engine::ProtectionEngine;
use toleo_core::error::ToleoError;
use toleo_core::sharded::ShardedEngine;
use toleo_workloads::concurrent::partition_by_page;
use toleo_workloads::pattern::{engine_pattern, EnginePattern};
use toleo_workloads::Op;

/// Tamper with one shard while worker threads serve traffic on the other
/// shards: the victim shard's detection must quarantine *only* that
/// shard. Healthy threads are never denied a single operation, while the
/// quarantined shard refuses everything with the frozen snapshot.
#[test]
fn tamper_on_one_shard_quarantines_it_while_healthy_threads_keep_serving() {
    const SHARDS: usize = 4;
    let engine = ShardedEngine::new(ToleoConfig::small(), SHARDS, [0x21u8; 48]).unwrap();

    // Warm every shard: page p routes to shard p % 4; shard 0 owns the
    // victim page 0.
    for page in 0..16u64 {
        engine
            .write(page * PAGE_BYTES as u64, &[page as u8; 64])
            .unwrap();
    }

    let served = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // Three traffic threads hammer shards 1..3 (pages 1, 2, 3 mod 4);
        // containment means none of them may ever see an error, before,
        // during or after the tamper on shard 0.
        for t in 1..SHARDS as u64 {
            let engine = &engine;
            let served = &served;
            let stop = &stop;
            s.spawn(move || {
                let addr = t * PAGE_BYTES as u64;
                while !stop.load(Ordering::Relaxed) {
                    let block = engine
                        .read(addr)
                        .expect("healthy shard must keep serving through a peer quarantine");
                    assert_eq!(block, [t as u8; 64]);
                    served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // The adversary corrupts shard 0's untrusted memory mid-traffic;
        // the victim's next read of it detects and quarantines shard 0.
        let engine = &engine;
        let stop = &stop;
        s.spawn(move || {
            engine.with_adversary(0, |dram| dram.corrupt_data(0, 7, 0x80));
            assert!(matches!(
                engine.read(0),
                Err(ToleoError::IntegrityViolation { .. })
            ));
            // The quarantine is fully visible while peers still run.
            assert!(engine.is_shard_quarantined(0));
            assert!(!engine.is_killed());
            assert!(matches!(
                engine.read(0),
                Err(ToleoError::ShardQuarantined { shard: 0, .. })
            ));
            // Let the traffic threads take a few more laps against the
            // quarantined world before winding down.
            std::thread::sleep(std::time::Duration::from_millis(5));
            stop.store(true, Ordering::Relaxed);
        });
    });

    assert!(
        !engine.is_killed(),
        "tamper must quarantine, not world-kill"
    );
    assert_eq!(engine.quarantined_shard_count(), 1);
    assert!(served.load(Ordering::Relaxed) >= 3, "healthy shards served");
    // Healthy shards keep serving after the scope too, singles and batches.
    for page in (0..16u64).filter(|p| p % 4 != 0) {
        assert_eq!(
            engine.read(page * PAGE_BYTES as u64).unwrap(),
            [page as u8; 64]
        );
    }
    let healthy: Vec<u64> = (0..16u64)
        .filter(|p| p % 4 != 0)
        .map(|p| p * PAGE_BYTES as u64)
        .collect();
    assert_eq!(engine.read_batch(&healthy).unwrap().len(), healthy.len());
    // The quarantined shard refuses everything with the frozen snapshot.
    assert!(matches!(
        engine.read(4 * PAGE_BYTES as u64),
        Err(ToleoError::ShardQuarantined { shard: 0, .. })
    ));
    assert!(engine.write_batch(&[(0, [1u8; 64])]).is_err());
}

/// A tamper detected inside a batch quarantines the offending shard and
/// freezes its counters, while the healthy shards' counters keep
/// advancing — and the aggregate is always exactly the per-shard sum.
#[test]
fn quarantine_during_batch_freezes_shard_stats_while_healthy_advance() {
    let engine = ShardedEngine::new(ToleoConfig::small(), 4, [0x33u8; 48]).unwrap();
    let writes: Vec<(u64, [u8; 64])> = (0..32u64).map(|i| (i * 4096, [i as u8; 64])).collect();
    engine.write_batch(&writes).unwrap();
    // Page 9 routes to shard 1.
    engine.with_adversary(9 * 4096, |dram| dram.corrupt_data(9 * 4096, 0, 1));

    let addrs: Vec<u64> = (0..32u64).map(|i| i * 4096).collect();
    assert!(matches!(
        engine.read_batch(&addrs),
        Err(ToleoError::IntegrityViolation { address }) if address == 9 * 4096
    ));
    assert!(!engine.is_killed());
    assert!(engine.is_shard_quarantined(1));

    let frozen = engine.per_shard_stats()[1];
    // Hammer the partially quarantined engine: batches touching shard 1
    // keep failing, but shard 1's frozen counters never move.
    for _ in 0..3 {
        assert!(matches!(
            engine.read_batch(&addrs),
            Err(ToleoError::ShardQuarantined { shard: 1, .. })
        ));
        assert!(engine.write_batch(&writes).is_err());
        assert_eq!(engine.per_shard_stats()[1], frozen);
    }
    // Healthy-shard traffic advances the live counters...
    let before = engine.stats();
    let healthy: Vec<u64> = (0..32u64)
        .filter(|i| i % 4 != 1)
        .map(|i| i * 4096)
        .collect();
    assert_eq!(engine.read_batch(&healthy).unwrap().len(), 24);
    let after = engine.stats();
    assert_eq!(after.reads, before.reads + 24);
    assert_eq!(engine.per_shard_stats()[1], frozen);
    // ...and the aggregate merges frozen + live without double-counting.
    let mut summed = toleo_core::engine::EngineStats::default();
    for s in engine.per_shard_stats() {
        summed.merge(&s);
    }
    assert_eq!(after, summed);
}

/// Replays a trace through a single sequential engine, returning the
/// observed read values in op order.
fn replay_single(trace: &[Op], key: [u8; 48]) -> Vec<[u8; 64]> {
    let mut engine = ProtectionEngine::try_new(ToleoConfig::small(), key).unwrap();
    let mut reads = Vec::new();
    for op in trace {
        match op {
            Op::Write(addr) => {
                let fill = (addr >> 6) as u8;
                engine.write(*addr, &[fill; 64]).unwrap();
            }
            Op::Read(addr) => reads.push(engine.read(*addr).unwrap()),
            Op::Compute(_) => {}
        }
    }
    reads
}

/// Replays a trace through the sharded batch path: maximal runs of
/// consecutive writes become one `write_batch`, runs of reads one
/// `read_batch` (within a run there is no read-after-write dependency, so
/// batching preserves sequential semantics). Returns reads in op order.
fn replay_sharded_batched(trace: &[Op], shards: usize, key: [u8; 48]) -> Vec<[u8; 64]> {
    let engine = ShardedEngine::new(ToleoConfig::small(), shards, key).unwrap();
    let mut reads = Vec::new();
    let mut pending_writes: Vec<(u64, [u8; 64])> = Vec::new();
    let mut pending_reads: Vec<u64> = Vec::new();
    for op in trace {
        match op {
            Op::Write(addr) => {
                if !pending_reads.is_empty() {
                    reads.extend(engine.read_batch(&pending_reads).unwrap());
                    pending_reads.clear();
                }
                pending_writes.push((*addr, [(addr >> 6) as u8; 64]));
            }
            Op::Read(addr) => {
                if !pending_writes.is_empty() {
                    engine.write_batch(&pending_writes).unwrap();
                    pending_writes.clear();
                }
                pending_reads.push(*addr);
            }
            Op::Compute(_) => {}
        }
    }
    if !pending_writes.is_empty() {
        engine.write_batch(&pending_writes).unwrap();
    }
    if !pending_reads.is_empty() {
        reads.extend(engine.read_batch(&pending_reads).unwrap());
    }
    assert!(!engine.is_killed());
    reads
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sharded batch read/write over a random trace is
    /// observation-equivalent to a single `ProtectionEngine` replaying
    /// the same trace sequentially: every read returns the same value.
    #[test]
    fn sharded_batches_match_single_engine_replay(
        ops in proptest::collection::vec((0u64..512, any::<bool>()), 1..400),
        shards in 1usize..9,
    ) {
        // 512 block slots span 8 pages; values are a function of the
        // address so write batches stay order-insensitive per address.
        let trace: Vec<Op> = ops
            .iter()
            .map(|(slot, is_write)| {
                let addr = slot * 64;
                if *is_write { Op::Write(addr) } else { Op::Read(addr) }
            })
            .collect();
        let expect = replay_single(&trace, [0x44u8; 48]);
        let got = replay_sharded_batched(&trace, shards, [0x44u8; 48]);
        prop_assert_eq!(got, expect);
    }

    /// The same equivalence holds for generated workload traces (random
    /// pattern) driven through the per-shard partitions one shard at a
    /// time — the decomposition the throughput harness measures. Per-shard
    /// replay order preserves each address's dependency chain (a page
    /// never spans shards), so the final memory image must match a
    /// sequential replay's exactly.
    #[test]
    fn partitioned_replay_matches_single_engine_replay(seed in 0u64..64) {
        let trace = engine_pattern(EnginePattern::Random, 2_000, 1 << 18, seed);
        let shards = 4usize;

        let mut single = ProtectionEngine::try_new(ToleoConfig::small(), [0x55u8; 48]).unwrap();
        let mut touched = std::collections::BTreeSet::new();
        for op in &trace.ops {
            match op {
                Op::Write(addr) => {
                    single.write(*addr, &[(addr >> 6) as u8; 64]).unwrap();
                    touched.insert(*addr);
                }
                Op::Read(addr) => {
                    single.read(*addr).unwrap();
                    touched.insert(*addr);
                }
                Op::Compute(_) => {}
            }
        }

        let engine = ShardedEngine::new(ToleoConfig::small(), shards, [0x55u8; 48]).unwrap();
        let parts = partition_by_page(&trace, shards);
        for part in &parts {
            for op in &part.ops {
                match op {
                    Op::Write(addr) => {
                        engine.write(*addr, &[(addr >> 6) as u8; 64]).unwrap();
                    }
                    Op::Read(addr) => {
                        engine.read(*addr).unwrap();
                    }
                    Op::Compute(_) => {}
                }
            }
        }
        // After both replays the full touched address space must agree.
        for addr in &touched {
            prop_assert_eq!(engine.read(*addr).unwrap(), single.read(*addr).unwrap());
        }
        prop_assert_eq!(engine.stats().writes, single.stats().writes);
    }
}
