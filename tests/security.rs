//! End-to-end security tests: every attack in the threat model (§2.1)
//! must be detected by **every** scheme in the evaluation arena — Toleo,
//! sharded Toleo, and the Merkle baselines — driven through the shared
//! [`ProtectedMemory`] trait so all schemes face the same tamper/replay
//! corpus. The §6 confidentiality arguments must hold on observable
//! traces.

use toleo_baselines::sgx::SgxEngine;
use toleo_baselines::{MorphEngine, VaultEngine};
use toleo_core::config::ToleoConfig;
use toleo_core::engine::ProtectionEngine;
use toleo_core::error::ToleoError;
use toleo_core::protected::{MemoryError, ProtectedMemory};
use toleo_core::sharded::ShardedEngine;

fn engine() -> ProtectionEngine {
    ProtectionEngine::try_new(ToleoConfig::small(), [0xabu8; 48]).unwrap()
}

/// Footprint the baseline engines protect in the shared corpus.
const ARENA_BYTES: u64 = 1 << 20;

/// One fresh engine per scheme in the arena, behind the shared trait.
fn arena() -> Vec<Box<dyn ProtectedMemory>> {
    vec![
        Box::new(ProtectionEngine::try_new(ToleoConfig::small(), [0xabu8; 48]).unwrap()),
        Box::new(ShardedEngine::new(ToleoConfig::small(), 4, [0xacu8; 48]).unwrap()),
        Box::new(SgxEngine::new(ARENA_BYTES)),
        Box::new(VaultEngine::new(ARENA_BYTES)),
        Box::new(MorphEngine::new(ARENA_BYTES)),
    ]
}

#[test]
fn arena_covers_every_scheme_exactly_once() {
    let names: Vec<&str> = arena().iter().map(|m| m.scheme()).collect();
    assert_eq!(
        names,
        vec!["toleo", "toleo-sharded", "sgx-tree", "vault", "morph"]
    );
}

#[test]
fn every_scheme_roundtrips_and_zero_fills() {
    for mut m in arena() {
        let scheme = m.scheme();
        for i in 0..32u64 {
            m.write(i * 64, &[i as u8 + 1; 64])
                .unwrap_or_else(|e| panic!("{scheme}: write {i}: {e}"));
        }
        for i in 0..32u64 {
            assert_eq!(
                m.read(i * 64).unwrap(),
                [i as u8 + 1; 64],
                "{scheme} op {i}"
            );
        }
        assert_eq!(m.read(0x8000).unwrap(), [0u8; 64], "{scheme} zero fill");
        let ops: Vec<(u64, [u8; 64])> = (0..32u64).map(|i| (i * 64, [i as u8; 64])).collect();
        m.write_batch(&ops)
            .unwrap_or_else(|e| panic!("{scheme}: {e}"));
        let addrs: Vec<u64> = ops.iter().map(|(a, _)| *a).collect();
        let blocks = m.read_batch(&addrs).unwrap();
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(*b, [i as u8; 64], "{scheme} batch op {i}");
        }
    }
}

#[test]
fn every_scheme_detects_corruption_at_any_offset() {
    for offset in [0usize, 1, 17, 31, 48, 63] {
        for mut m in arena() {
            let scheme = m.scheme();
            m.write(0x40, &[7u8; 64]).unwrap();
            assert!(m.corrupt(0x40, offset, 0x01), "{scheme} offset {offset}");
            assert!(
                matches!(
                    m.read(0x40),
                    Err(MemoryError::IntegrityViolation { address: 0x40 })
                ),
                "{scheme}: corruption at byte {offset} must be detected"
            );
        }
    }
}

#[test]
fn every_scheme_detects_replay_at_every_overwrite_depth() {
    for depth in 1..5u8 {
        for mut m in arena() {
            let scheme = m.scheme();
            m.write(0x40, &[0u8; 64]).unwrap();
            let stale = m.capture(0x40);
            for v in 0..depth {
                m.write(0x40, &[v + 1; 64]).unwrap();
            }
            assert!(m.replay(&stale), "{scheme}: capsule must be accepted");
            assert!(
                matches!(m.read(0x40), Err(MemoryError::IntegrityViolation { .. })),
                "{scheme}: replay at depth {depth} must be detected"
            );
        }
    }
}

#[test]
fn every_scheme_detects_tamper_inside_a_batch_read() {
    for mut m in arena() {
        let scheme = m.scheme();
        let ops: Vec<(u64, [u8; 64])> = (0..8u64).map(|i| (i * 64, [i as u8 + 1; 64])).collect();
        m.write_batch(&ops).unwrap();
        assert!(m.corrupt(5 * 64, 9, 0x80), "{scheme}");
        let addrs: Vec<u64> = ops.iter().map(|(a, _)| *a).collect();
        let err = m.read_batch(&addrs).unwrap_err();
        assert!(
            matches!(err.error, MemoryError::IntegrityViolation { .. }),
            "{scheme}: batch must surface the violation, got {err}"
        );
    }
}

#[test]
fn every_scheme_rejects_out_of_range_addresses() {
    // Each scheme bounds a different resource (Toleo protected pages,
    // the EPC, a tree's covered blocks); all must refuse service beyond
    // it rather than silently wrap.
    for mut m in arena() {
        let scheme = m.scheme();
        let beyond = match scheme {
            "toleo" | "toleo-sharded" => {
                ToleoConfig::small().protected_pages() * 4096 // first page past the pool
            }
            _ => ARENA_BYTES,
        };
        assert!(
            matches!(
                m.write(beyond, &[1u8; 64]),
                Err(MemoryError::OutOfRange { .. })
            ),
            "{scheme}: write beyond the range must be rejected"
        );
        assert!(
            matches!(m.read(beyond), Err(MemoryError::OutOfRange { .. })),
            "{scheme}: read beyond the range must be rejected"
        );
    }
}

#[test]
fn quickstart_replay_capture_overwrite_replay_detected() {
    // The toleo-core crate-docs quickstart, as a named integration test:
    // ordinary protected accesses work, then a replay attack (capture
    // stale ciphertext+MAC, overwrite with new data, replay the stale
    // capsule) is detected on the next read and kills the platform.
    let mut engine = ProtectionEngine::try_new(ToleoConfig::small(), [0u8; 48]).unwrap();

    // Ordinary protected accesses.
    engine.write(0x1000, &[1u8; 64]).unwrap();
    assert_eq!(engine.read(0x1000).unwrap(), [1u8; 64]);

    // Capture the current (ciphertext, MAC) capsule at 0x1000...
    let stale = engine.adversary().capture(0x1000);
    // ...let the victim overwrite it...
    engine.write(0x1000, &[2u8; 64]).unwrap();
    // ...and replay the stale capsule.
    engine.adversary().replay(&stale);

    // The stale capsule carries an out-of-date version: detected.
    assert!(
        matches!(
            engine.read(0x1000),
            Err(ToleoError::IntegrityViolation { address: 0x1000 })
        ),
        "replayed capsule must fail the freshness check"
    );
    assert!(engine.is_killed(), "detection must engage the kill switch");
}

#[test]
fn replay_detected_at_every_overwrite_depth() {
    // Capture at each historical version; all replays must fail.
    for depth in 1..6u8 {
        let mut e = engine();
        e.write(0x40, &[0u8; 64]).unwrap();
        let stale = e.adversary().capture(0x40);
        for v in 0..depth {
            e.write(0x40, &[v + 1; 64]).unwrap();
        }
        e.adversary().replay(&stale);
        assert!(
            matches!(e.read(0x40), Err(ToleoError::IntegrityViolation { .. })),
            "replay at depth {depth} must be detected"
        );
    }
}

#[test]
fn replay_detected_across_stealth_resets() {
    // A reset re-randomizes the stealth version AND bumps the UV: even if
    // the adversary replays a capsule from before the reset (including its
    // old UV), the full version has moved on.
    let mut cfg = ToleoConfig::small();
    cfg.reset_log2 = 3; // frequent resets
    let mut e = ProtectionEngine::try_new(cfg, [1u8; 48]).unwrap();
    e.write(0x40, &[1u8; 64]).unwrap();
    let stale = e.adversary().capture(0x40);
    for i in 0..100u8 {
        e.write(0x40, &[i; 64]).unwrap();
    }
    assert!(e.stats().pages_reencrypted > 0, "resets must have fired");
    e.adversary().replay(&stale);
    assert!(e.read(0x40).is_err());
}

#[test]
fn cross_address_splice_detected() {
    // Move valid (ciphertext, MAC) from one address to another: the MAC
    // binds the address, so the splice fails.
    let mut e = engine();
    e.write(0x40, &[1u8; 64]).unwrap();
    e.write(0x80, &[2u8; 64]).unwrap();
    let a = e.adversary().capture(0x40);
    // Replay block A's capsule at address B by rebasing the capture.
    // (ReplayCapsule is address-bound, so emulate a splice by corrupting
    // B's ciphertext with A's bytes via the raw tamper interface.)
    let a_ct = *e.adversary().ciphertext(0x40).expect("resident");
    let _ = a;
    // Overwrite B's data with A's ciphertext, keep B's MAC.
    e.adversary().corrupt_data(0x80, 0, a_ct[0] ^ 0x55);
    assert!(e.read(0x80).is_err(), "spliced/corrupted block must fail");
}

#[test]
fn corruption_at_any_byte_offset_detected() {
    // The MAC covers the whole 64-byte ciphertext: flipping bits at any
    // position — not just byte 0 — must be detected.
    for offset in [1usize, 17, 31, 48, 63] {
        let mut e = engine();
        e.write(0x40, &[7u8; 64]).unwrap();
        e.adversary().corrupt_data(0x40, offset, 0x01);
        assert!(
            matches!(e.read(0x40), Err(ToleoError::IntegrityViolation { .. })),
            "corruption at byte {offset} must be detected"
        );
        assert!(e.is_killed(), "offset {offset} must engage the kill switch");
    }
}

#[test]
fn tamper_and_replay_still_kill_after_storage_refactor() {
    // Regression for the page-arena storage layer: drive a page through
    // uneven/full upgrades and stealth resets (slab re-encryption), then
    // confirm a mid-page tamper and a stale-capsule replay each still kill.
    let mut cfg = ToleoConfig::small();
    cfg.reset_log2 = 5;
    let mut tampered = ProtectionEngine::try_new(cfg.clone(), [8u8; 48]).unwrap();
    for line in 0..16u64 {
        tampered
            .write(0x2000 + line * 64, &[line as u8; 64])
            .unwrap();
    }
    for i in 0..300u64 {
        tampered.write(0x2000 + 3 * 64, &[i as u8; 64]).unwrap();
    }
    assert!(tampered.stats().pages_reencrypted > 0, "resets must fire");
    tampered.adversary().corrupt_data(0x2000 + 7 * 64, 42, 0x10);
    assert!(tampered.read(0x2000 + 7 * 64).is_err());
    assert!(tampered.is_killed());

    let mut replayed = ProtectionEngine::try_new(cfg, [9u8; 48]).unwrap();
    replayed.write(0x2000, &[1u8; 64]).unwrap();
    let stale = replayed.adversary().capture(0x2000);
    for i in 0..300u64 {
        replayed.write(0x2000, &[i as u8; 64]).unwrap();
    }
    assert!(replayed.stats().pages_reencrypted > 0, "resets must fire");
    replayed.adversary().replay(&stale);
    assert!(replayed.read(0x2000).is_err());
    assert!(replayed.is_killed());
}

#[test]
fn kill_switch_is_global_and_sticky() {
    let mut e = engine();
    e.write(0x40, &[1u8; 64]).unwrap();
    e.write(0x80, &[2u8; 64]).unwrap();
    e.adversary().corrupt_data(0x40, 0, 1);
    assert!(e.read(0x40).is_err());
    // Every subsequent operation on any address fails.
    assert!(e.read(0x80).is_err());
    assert!(e.write(0xc0, &[3u8; 64]).is_err());
    assert!(e.free_page(0).is_err());
    assert!(e.is_killed());
}

#[test]
fn same_plaintext_never_repeats_ciphertext_across_writes() {
    // §6.3: the full version never repeats, so identical writes to the
    // same address always yield distinct ciphertexts (traffic analysis
    // defeated). 200 rewrites with frequent resets exercise UV bumps too.
    let mut cfg = ToleoConfig::small();
    cfg.reset_log2 = 4;
    let mut e = ProtectionEngine::try_new(cfg, [3u8; 48]).unwrap();
    let mut seen = std::collections::HashSet::new();
    for i in 0..200 {
        e.write(0x1000, &[0x77u8; 64]).unwrap();
        let ct = *e.adversary().ciphertext(0x1000).expect("resident");
        assert!(seen.insert(ct.to_vec()), "ciphertext repeated at write {i}");
    }
}

#[test]
fn stealth_version_not_inferable_from_fresh_pages() {
    // §4.2 address side-channel: two engines observing identical write
    // traces must still hold different (random) stealth versions, because
    // initial values are drawn from the device RNG, not from the trace.
    let mut cfg_a = ToleoConfig::small();
    cfg_a.rng_seed = 111;
    let mut cfg_b = ToleoConfig::small();
    cfg_b.rng_seed = 222;
    let mut a = ProtectionEngine::try_new(cfg_a, [5u8; 48]).unwrap();
    let mut b = ProtectionEngine::try_new(cfg_b, [5u8; 48]).unwrap();
    let mut diffs = 0;
    for page in 0..8u64 {
        a.write(page * 4096, &[1u8; 64]).unwrap();
        b.write(page * 4096, &[1u8; 64]).unwrap();
        let va = a.device().peek_base(page);
        let vb = b.device().peek_base(page);
        if va != vb {
            diffs += 1;
        }
    }
    assert!(
        diffs >= 7,
        "stealth bases must be trace-independent ({diffs}/8 differ)"
    );
}

#[test]
fn sgx_baseline_detects_the_same_attacks() {
    let mut sgx = SgxEngine::new(1 << 20);
    sgx.write(0x40, &[1u8; 64]).unwrap();
    let stale = sgx.capture(0x40);
    sgx.write(0x40, &[2u8; 64]).unwrap();
    sgx.replay(0x40, stale);
    assert!(sgx.read(0x40).is_err());
}

#[test]
fn freed_page_is_scrambled_without_reencryption() {
    let mut e = engine();
    for line in 0..8u64 {
        e.write(0x3000 + line * 64, &[line as u8; 64]).unwrap();
    }
    e.free_page(0x3000 / 4096).unwrap();
    // The first read fails and engages the kill switch, which covers the
    // rest of the page by construction.
    assert!(e.read(0x3000).is_err(), "freed page must be unreadable");
    assert!(e.is_killed());
}
