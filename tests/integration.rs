//! Cross-crate integration tests: workloads → simulator → device, and the
//! end-to-end shapes the paper's evaluation claims.

use toleo_sim::config::{Protection, SimConfig};
use toleo_sim::system::{Rack, System};
use toleo_workloads::{generate, Benchmark, GenConfig};

fn quick(b: Benchmark) -> toleo_workloads::Trace {
    generate(
        b,
        &GenConfig {
            mem_ops: 20_000,
            ..GenConfig::default()
        },
    )
}

/// A longer trace for tests that need warmed caches / converged formats.
fn warm(b: Benchmark) -> toleo_workloads::Trace {
    generate(
        b,
        &GenConfig {
            mem_ops: 100_000,
            ..GenConfig::default()
        },
    )
}

#[test]
fn every_benchmark_runs_under_every_protection() {
    for b in Benchmark::all() {
        let trace = generate(
            b,
            &GenConfig {
                mem_ops: 4_000,
                ..GenConfig::default()
            },
        );
        for p in Protection::all() {
            let s = System::new(SimConfig::scaled(p)).run(&trace);
            assert!(s.cycles > 0.0, "{b}/{p}");
            assert_eq!(s.name, b.name());
            assert!(s.instructions > 0);
        }
    }
}

#[test]
fn fig6_shape_toleo_freshness_is_cheap() {
    // The paper's headline: freshness adds only a few percent over CI.
    let mut ratios = Vec::new();
    for b in [
        Benchmark::Bsw,
        Benchmark::Chain,
        Benchmark::Llama2Gen,
        Benchmark::Sssp,
    ] {
        let t = quick(b);
        let ci = System::new(SimConfig::scaled(Protection::Ci)).run(&t);
        let toleo = System::new(SimConfig::scaled(Protection::Toleo)).run(&t);
        ratios.push(toleo.cycles / ci.cycles);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        avg < 1.06,
        "Toleo over CI averaged {:.1}% (paper: 1-2%)",
        (avg - 1.0) * 100.0
    );
}

#[test]
fn fig6_shape_invisimem_costs_more_than_toleo_on_bandwidth_bound() {
    let t = quick(Benchmark::Pr);
    let toleo = System::new(SimConfig::scaled(Protection::Toleo)).run(&t);
    let inv = System::new(SimConfig::scaled(Protection::InvisiMem)).run(&t);
    let base = System::new(SimConfig::scaled(Protection::NoProtect)).run(&t);
    assert!(
        inv.cycles / base.cycles > toleo.cycles / base.cycles * 0.95,
        "InvisiMem must not beat Toleo on pr"
    );
}

#[test]
fn fig7_shape_kv_stores_are_stealth_cache_outliers() {
    let regular = System::new(SimConfig::scaled(Protection::Toleo)).run(&quick(Benchmark::Bsw));
    let redis = System::new(SimConfig::scaled(Protection::Toleo)).run(&quick(Benchmark::Redis));
    assert!(
        regular.stealth_hit_rate > 0.93,
        "bsw: {}",
        regular.stealth_hit_rate
    );
    assert!(
        redis.stealth_hit_rate < regular.stealth_hit_rate - 0.1,
        "redis must be an outlier: {} vs {}",
        redis.stealth_hit_rate,
        regular.stealth_hit_rate
    );
}

#[test]
fn fig8_shape_stealth_traffic_is_marginal() {
    let t = warm(Benchmark::Pr);
    let s = System::new(SimConfig::scaled(Protection::Toleo)).run(&t);
    let stealth_frac =
        s.bytes_stealth as f64 / (s.bytes_data + s.bytes_mac + s.bytes_stealth) as f64;
    // Paper reports ~2% for pr; our synthetic trace has somewhat less
    // page locality, so allow up to 8% — still far below MAC traffic.
    assert!(
        stealth_frac < 0.08,
        "stealth traffic {:.1}%",
        stealth_frac * 100.0
    );
    assert!(
        s.bytes_mac > s.bytes_stealth,
        "MAC traffic dominates metadata"
    );
}

#[test]
fn fig9_shape_latency_components_ordered() {
    let t = quick(Benchmark::Bfs);
    let s = System::new(SimConfig::scaled(Protection::Toleo)).run(&t);
    assert!(s.avg_dram_ns > 0.0);
    assert!(s.avg_aes_ns > 0.0);
    assert!(
        s.avg_dram_ns > s.avg_fresh_ns,
        "freshness must be a minor component"
    );
}

#[test]
fn fig10_shape_dp_flat_graphs_mixed() {
    let cfg = SimConfig::scaled(Protection::Toleo);
    let bsw = System::new(cfg.clone()).run(&quick(Benchmark::Bsw));
    let (f, u, fl) = bsw.trip_pages;
    assert_eq!(u + fl, 0, "bsw pages must all stay flat");
    assert!(f > 0);
    let pr = System::new(cfg).run(&warm(Benchmark::Pr));
    let (pf, pu, _) = pr.trip_pages;
    assert!(pu > 0, "pr must produce uneven pages");
    assert!(pf > pu, "flat still dominates pr");
}

#[test]
fn fig11_shape_toleo_usage_a_few_gb_per_tb() {
    let t = quick(Benchmark::Llama2Gen);
    let s = System::new(SimConfig::scaled(Protection::Toleo)).run(&t);
    let gb_per_tb = s.toleo_gb_per_tb();
    // Static flat floor is 2.93 GB/TB (12 B / 4 KB); paper average 4.27.
    assert!(
        gb_per_tb > 2.8 && gb_per_tb < 10.0,
        "usage {gb_per_tb:.2} GB/TB"
    );
}

#[test]
fn table2_shape_mpki_ranking() {
    let cfg = GenConfig {
        mem_ops: 20_000,
        ..GenConfig::default()
    };
    let mpki = |b| {
        System::new(SimConfig::scaled(Protection::NoProtect))
            .run(&generate(b, &cfg))
            .llc_mpki
    };
    let pr = mpki(Benchmark::Pr);
    let llama = mpki(Benchmark::Llama2Gen);
    let bfs = mpki(Benchmark::Bfs);
    let chain = mpki(Benchmark::Chain);
    assert!(
        pr > llama && llama > bfs && bfs > chain,
        "pr {pr} > llama {llama} > bfs {bfs} > chain {chain}"
    );
}

#[test]
fn rack_of_four_shares_one_device() {
    let mix = [
        Benchmark::Bsw,
        Benchmark::Dbg,
        Benchmark::Hyrise,
        Benchmark::Chain,
    ];
    let gen = GenConfig {
        mem_ops: 5_000,
        ..GenConfig::default()
    };
    let traces: Vec<_> = mix.iter().map(|b| generate(*b, &gen)).collect();
    let mut rack = Rack::new(SimConfig::scaled(Protection::Toleo), 4);
    let stats = rack.run(&traces);
    assert_eq!(stats.len(), 4);
    for s in &stats {
        assert!(s.cycles > 0.0);
        assert!(s.stealth_hit_rate > 0.0);
    }
}
