//! End-to-end robustness tests for the fault plane and shard quarantine
//! (the PR 7 acceptance criteria):
//!
//! * Under an injected transient-fault rate of 1e-3 with retries enabled,
//!   all four bench workloads complete with **zero false kills** and
//!   **bit-identical observations** vs the fault-free run.
//! * Tampering one shard under traffic quarantines only that shard; the
//!   remaining shards keep serving (no world-kill).
//! * A fault plan of dropped/duplicated responses is observation-
//!   equivalent to the fault-free engine under arbitrary op sequences
//!   (proptest), because retries replay buffered responses and never
//!   re-issue to the device.
//! * A replay attack mounted *inside a retry window* is still detected
//!   and quarantined — transient-fault absorption never masks integrity.
//! * Exhausting the retry budget (device unreachable) escalates past
//!   quarantine to the world-kill.

use proptest::prelude::*;
use toleo_core::channel::RetryPolicy;
use toleo_core::config::ToleoConfig;
use toleo_core::engine::ProtectionEngine;
use toleo_core::error::ToleoError;
use toleo_core::fault::FaultPlanConfig;
use toleo_core::sharded::{RobustnessStats, ShardedEngine};
use toleo_workloads::campaign::{tamper_schedule, FAULT_RATE_SWEEP};
use toleo_workloads::concurrent::multi_tenant;
use toleo_workloads::pattern::{engine_pattern, EnginePattern};
use toleo_workloads::trace::{Op, Trace};

/// Footprint the replay traces touch; well inside `ToleoConfig::small()`.
const FOOTPRINT: u64 = 1 << 19;
/// Memory ops per workload trace: small enough for a debug-profile test,
/// large enough that a 1e-3 fault rate injects dozens of faults.
const OPS: u64 = 12_000;
const SHARDS: usize = 4;

fn workloads() -> Vec<(&'static str, Trace)> {
    vec![
        (
            "sequential",
            engine_pattern(EnginePattern::Sequential, OPS, FOOTPRINT, 0x2C),
        ),
        (
            "random",
            engine_pattern(EnginePattern::Random, OPS, FOOTPRINT, 0x2D),
        ),
        (
            "hot-reset",
            engine_pattern(EnginePattern::HotReset, OPS, FOOTPRINT, 0x2E),
        ),
        (
            "multi-tenant",
            multi_tenant(4, OPS / 4, FOOTPRINT / 4, 0x2F),
        ),
    ]
}

/// Replays `trace` on a sharded engine with the given fault plan and
/// returns (observation checksum, blocks served, robustness stats). Every
/// op must succeed: a refusal or kill under a transient-only plan is a
/// false kill and fails the test via the expect.
fn replay(trace: &Trace, plan: Option<FaultPlanConfig>) -> (u64, u64, RobustnessStats) {
    let engine = ShardedEngine::new_with_robustness(
        ToleoConfig::small(),
        SHARDS,
        [0x42u8; 48],
        plan,
        RetryPolicy::default(),
    )
    .expect("sharded engine");
    let mut blocks = 0u64;
    let mut checksum = 0xcbf2_9ce4_8422_2325u64;
    for op in &trace.ops {
        match op {
            Op::Write(addr) => {
                let fill = (addr >> 6) as u8 ^ blocks as u8;
                engine.write(*addr, &[fill; 64]).expect("protected write");
                blocks += 1;
            }
            Op::Read(addr) => {
                let block = engine.read(*addr).expect("protected read");
                for b in block {
                    checksum = (checksum ^ b as u64).wrapping_mul(0x100_0000_01b3);
                }
                blocks += 1;
            }
            Op::Compute(_) => {}
        }
    }
    (checksum, blocks, engine.robustness_stats())
}

/// Transient events that would be wrongly terminal: any of these under a
/// transient-only fault plan is a false kill.
fn false_kills(stats: &RobustnessStats) -> u64 {
    stats.quarantined_shards + u64::from(stats.world_killed) + stats.channel.retry_exhaustions
}

/// The headline acceptance criterion: all four workloads, fault rate
/// 1e-3 (and the rest of the sweep), zero false kills, observations
/// bit-identical to the fault-free run.
#[test]
fn faulted_workloads_are_observation_identical_with_zero_false_kills() {
    for (name, trace) in workloads() {
        let (ref_checksum, ref_blocks, ref_stats) = replay(&trace, None);
        assert_eq!(false_kills(&ref_stats), 0, "{name}: fault-free run");
        for (i, &rate) in FAULT_RATE_SWEEP.iter().enumerate().skip(1) {
            let plan = FaultPlanConfig::uniform(0xFA00 + i as u64, rate);
            let (checksum, blocks, stats) = replay(&trace, Some(plan));
            assert_eq!(blocks, ref_blocks, "{name} rate {rate}: blocks served");
            assert_eq!(
                checksum, ref_checksum,
                "{name} rate {rate}: observations must be bit-identical"
            );
            assert_eq!(false_kills(&stats), 0, "{name} rate {rate}: false kills");
            if rate >= 1e-3 {
                assert!(
                    stats.channel.faults_injected > 0,
                    "{name} rate {rate}: campaign must actually inject faults"
                );
                assert_eq!(
                    stats.channel.faults_absorbed, stats.channel.faults_injected,
                    "{name} rate {rate}: every injected transient must be absorbed"
                );
            }
        }
    }
}

/// A campaign-scheduled tamper mid-trace quarantines the owner shard
/// only; the rest of the trace keeps serving on healthy shards and the
/// platform stays alive.
#[test]
fn scheduled_tamper_quarantines_owner_shard_only_mid_trace() {
    let trace = engine_pattern(EnginePattern::Random, 8_000, FOOTPRINT, 0x51);
    let event = tamper_schedule(&trace, 1, 0xFA17)[0];
    let engine = ShardedEngine::new(ToleoConfig::small(), SHARDS, [0x42u8; 48]).unwrap();
    let tampered_shard = engine.shard_of_addr(event.addr);

    let mut blocks = 0u64;
    let mut tampered = false;
    let mut detected = false;
    let mut healthy_after_detection = 0u64;
    let mut refused_after_detection = 0u64;
    for op in &trace.ops {
        if !tampered && blocks == event.at_op {
            engine.with_adversary(event.addr, |dram| dram.corrupt_data(event.addr, 11, 0x5a));
            tampered = true;
        }
        let addr = match op {
            Op::Write(addr) | Op::Read(addr) => *addr,
            Op::Compute(_) => continue,
        };
        blocks += 1;
        let result = match op {
            Op::Write(_) => engine.write(addr, &[blocks as u8; 64]),
            Op::Read(_) => engine.read(addr).map(|_| ()),
            Op::Compute(_) => unreachable!(),
        };
        match result {
            Ok(()) => {
                if detected {
                    healthy_after_detection += 1;
                    assert_ne!(
                        engine.shard_of_addr(addr),
                        tampered_shard,
                        "quarantined shard must refuse, not serve"
                    );
                }
            }
            Err(ToleoError::IntegrityViolation { address }) => {
                assert!(tampered, "no violation before the tamper event");
                assert!(!detected, "only the detecting access reports the violation");
                assert_eq!(address, event.addr);
                detected = true;
            }
            Err(ToleoError::ShardQuarantined { shard, .. }) => {
                assert!(detected, "refusals only after detection");
                assert_eq!(shard, tampered_shard);
                refused_after_detection += 1;
            }
            Err(other) => panic!("unexpected error mid-trace: {other}"),
        }
    }

    assert!(
        detected,
        "the corrupted block must be re-accessed and detected"
    );
    assert!(
        !engine.is_killed(),
        "one tampered shard must not kill the world"
    );
    assert_eq!(engine.quarantined_shard_count(), 1);
    assert!(engine.is_shard_quarantined(tampered_shard));
    assert!(
        healthy_after_detection > 0,
        "healthy shards must keep serving after the quarantine"
    );
    // The random trace revisits the hot quarantined shard.
    assert!(refused_after_detection > 0, "trace must exercise refusals");
    let stats = engine.robustness_stats();
    assert!(!stats.world_killed);
    assert_eq!(stats.quarantined_shards, 1);
    assert!(stats.ops_at_last_quarantine <= stats.ops_served);
}

/// Device unreachability (retry budget exhausted) is not a shard-local
/// event: it escalates past quarantine to the world-kill, end to end.
#[test]
fn retry_budget_exhaustion_escalates_to_world_kill() {
    let mut plan = FaultPlanConfig::uniform(9, 0.0);
    plan.update.timeout = 1.0; // the device link never delivers an UPDATE
    let policy = RetryPolicy {
        max_attempts: 3,
        ..RetryPolicy::default()
    };
    let engine = ShardedEngine::new_with_robustness(
        ToleoConfig::small(),
        SHARDS,
        [0x42u8; 48],
        Some(plan),
        policy,
    )
    .unwrap();

    match engine.write(0, &[1u8; 64]) {
        Err(ToleoError::DeviceUnavailable { attempts: 3, .. }) => {}
        other => panic!("expected DeviceUnavailable after 3 attempts, got {other:?}"),
    }
    assert!(
        engine.is_killed(),
        "an unreachable freshness device fails the world closed"
    );
    let stats = engine.robustness_stats();
    assert!(stats.world_killed);
    assert!(stats.channel.retry_exhaustions >= 1);
    // Every shard — including ones that never saw the fault — refuses.
    for shard in 0..SHARDS as u64 {
        let addr = shard * 4096;
        assert!(
            matches!(
                engine.read(addr),
                Err(ToleoError::IntegrityViolation { .. })
            ),
            "shard {shard} must be dead after the world-kill"
        );
    }
}

/// A replay attack mounted while the victim's device link is degraded
/// (nearly every READ suffers a dropped response, so detection happens
/// inside a retry window) is still detected, and detection still
/// quarantines exactly the victim shard. Retry absorption and integrity
/// enforcement compose; they never mask each other.
#[test]
fn replay_attack_inside_a_retry_window_is_detected_and_quarantined() {
    let mut plan = FaultPlanConfig::uniform(0xC0FFEE, 0.0);
    plan.read.dropped = 0.9;
    plan.read.duplicated = 0.05;
    let engine = ShardedEngine::new_with_robustness(
        ToleoConfig::small(),
        SHARDS,
        [0x42u8; 48],
        Some(plan),
        RetryPolicy::default(),
    )
    .unwrap();

    let victim = 2 * 4096u64;
    let shard = engine.shard_of_addr(victim);
    engine.write(victim, &[0xA1u8; 64]).unwrap();
    assert_eq!(engine.read(victim).unwrap(), [0xA1u8; 64]);

    // Capture the stale capsule, let the victim overwrite, replay it.
    let stale = engine.with_adversary(victim, |dram| dram.capture(victim));
    engine.write(victim, &[0xB2u8; 64]).unwrap();
    engine.with_adversary(victim, |dram| dram.replay(&stale));

    assert!(
        matches!(
            engine.read(victim),
            Err(ToleoError::IntegrityViolation { address }) if address == victim
        ),
        "stale capsule must fail the freshness check despite link faults"
    );
    assert!(engine.is_shard_quarantined(shard));
    assert!(
        !engine.is_killed(),
        "replay detection quarantines, never world-kills"
    );

    let stats = engine.robustness_stats();
    assert!(
        stats.channel.replayed_responses > 0,
        "the campaign must actually have opened retry windows (dropped responses)"
    );
    assert!(stats.channel.retries > 0);
    assert_eq!(stats.quarantined_shards, 1);

    // Healthy shards still serve through their own degraded links.
    for page in [0u64, 1, 3] {
        let addr = page * 4096;
        engine.write(addr, &[page as u8 + 1; 64]).unwrap();
        assert_eq!(engine.read(addr).unwrap(), [page as u8 + 1; 64]);
    }
    // The quarantined shard refuses with the frozen forensic snapshot.
    match engine.read(victim) {
        Err(ToleoError::ShardQuarantined {
            shard: s, snapshot, ..
        }) => {
            assert_eq!(s, shard);
            assert!(
                snapshot.stats.reads > 0,
                "snapshot carries the frozen counters"
            );
        }
        other => panic!("expected ShardQuarantined, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Observation-equivalence under response-delivery faults: a fault
    /// plan that drops and duplicates responses (the faults where a
    /// naive retry would double-apply) yields exactly the fault-free
    /// engine's reads, device state, and counters, for arbitrary op
    /// sequences — the idempotency guard, as a property.
    #[test]
    fn dropped_and_duplicated_responses_are_observation_equivalent(
        seed in any::<u64>(),
        dropped_pct in 0u32..45,
        duplicated_pct in 0u32..45,
        ops in proptest::collection::vec((0u64..96, any::<u8>(), any::<bool>()), 1..140),
    ) {
        let dropped = f64::from(dropped_pct) / 100.0;
        let duplicated = f64::from(duplicated_pct) / 100.0;
        let mut plan = FaultPlanConfig::uniform(seed, 0.0);
        for rates in [&mut plan.read, &mut plan.update, &mut plan.reset] {
            rates.dropped = dropped;
            rates.duplicated = duplicated;
        }
        let mut faulted = ProtectionEngine::try_new_with_robustness(
            ToleoConfig::small(),
            [0x7Cu8; 48],
            Some(plan),
            RetryPolicy::default(),
        )
        .unwrap();
        let mut clean =
            ProtectionEngine::try_new(ToleoConfig::small(), [0x7Cu8; 48]).unwrap();

        for (block, fill, is_write) in ops {
            let addr = block * 64;
            if is_write {
                faulted.write(addr, &[fill; 64]).unwrap();
                clean.write(addr, &[fill; 64]).unwrap();
            } else {
                let a = faulted.read(addr).unwrap();
                let b = clean.read(addr).unwrap();
                prop_assert_eq!(a, b);
            }
        }

        // Retries must never re-issue an operation to the device.
        prop_assert_eq!(faulted.device_stats(), clean.device_stats());
        prop_assert_eq!(faulted.stats().reads, clean.stats().reads);
        prop_assert_eq!(faulted.stats().writes, clean.stats().writes);
        let ch = faulted.channel_stats();
        prop_assert_eq!(ch.faults_absorbed, ch.faults_injected);
        prop_assert_eq!(ch.retry_exhaustions, 0);
        prop_assert!(!faulted.is_killed());
    }
}
