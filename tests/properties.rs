//! Property-based tests (proptest) on the core invariants:
//!
//! * Trip entries agree with a naive per-line counter model under any
//!   write sequence, through all upgrades and renormalizations.
//! * The protection engine is a faithful memory under any op sequence.
//! * Full versions never repeat per address under any write pattern.
//! * Crypto round-trips hold for arbitrary data/tweaks.
//! * The counter tree stays consistent under arbitrary update patterns.

use proptest::prelude::*;
use toleo_baselines::tree::CounterTree;
use toleo_baselines::{MorphEngine, SgxEngine, VaultEngine};
use toleo_core::config::{ToleoConfig, LINES_PER_PAGE};
use toleo_core::engine::ProtectionEngine;
use toleo_core::protected::{MemoryError, ProtectedMemory};
use toleo_core::sharded::ShardedEngine;
use toleo_core::trip::PageEntry;
use toleo_core::version::StealthVersion;
use toleo_crypto::modes::{AesXts, Tweak};

/// Fresh engines for every scheme in the evaluation arena, protecting at
/// least 1 MB each.
fn arena() -> Vec<Box<dyn ProtectedMemory>> {
    vec![
        Box::new(ProtectionEngine::try_new(ToleoConfig::small(), [0x61u8; 48]).unwrap()),
        Box::new(ShardedEngine::new(ToleoConfig::small(), 4, [0x62u8; 48]).unwrap()),
        Box::new(SgxEngine::new(1 << 20)),
        Box::new(VaultEngine::new(1 << 20)),
        Box::new(MorphEngine::new(1 << 20)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Trip versions always equal a wrapping per-line shadow counter.
    #[test]
    fn trip_matches_shadow_counters(
        base in 0u64..(1 << 27),
        writes in proptest::collection::vec(0usize..LINES_PER_PAGE, 1..600),
    ) {
        let cfg = ToleoConfig::small();
        let mask = (1u32 << 27) - 1;
        let mut entry = PageEntry::new_flat(StealthVersion::new(base, 27));
        let mut shadow = [base as u32; LINES_PER_PAGE];
        for line in writes {
            entry.record_write(line, &cfg);
            shadow[line] = shadow[line].wrapping_add(1) & mask;
            for (l, expect) in shadow.iter().enumerate() {
                prop_assert_eq!(entry.version_of(l, &cfg).raw(), *expect);
            }
        }
    }

    /// Trip's leading version is always the max of the per-line versions
    /// (modulo wrap, which these bounded sequences cannot reach).
    #[test]
    fn trip_leading_is_max(
        writes in proptest::collection::vec(0usize..LINES_PER_PAGE, 1..400),
    ) {
        let cfg = ToleoConfig::small();
        let mut entry = PageEntry::new_flat(StealthVersion::new(0, 27));
        for line in writes {
            entry.record_write(line, &cfg);
            let max = (0..LINES_PER_PAGE)
                .map(|l| entry.version_of(l, &cfg).raw())
                .max()
                .unwrap();
            prop_assert_eq!(entry.leading_version(&cfg).raw(), max);
        }
    }

    /// The engine behaves as an ordinary memory for any access sequence:
    /// reads return the last write.
    #[test]
    fn engine_is_a_faithful_memory(
        ops in proptest::collection::vec((0u64..64, 0u8..=255, any::<bool>()), 1..150),
    ) {
        let mut e = ProtectionEngine::try_new(ToleoConfig::small(), [9u8; 48]).unwrap();
        let mut model = std::collections::HashMap::new();
        for (slot, val, is_write) in ops {
            let addr = slot * 64;
            if is_write {
                e.write(addr, &[val; 64]).unwrap();
                model.insert(addr, val);
            } else {
                let got = e.read(addr).unwrap();
                let expect = model.get(&addr).map(|v| [*v; 64]).unwrap_or([0u8; 64]);
                prop_assert_eq!(got, expect);
            }
        }
    }

    /// The page-arena-backed engine remains a faithful memory when the
    /// access stream spans many pages and aggressive stealth resets force
    /// the slab re-encryption walk — the storage-refactor equivalence
    /// check against a simple model map.
    #[test]
    fn engine_is_faithful_across_pages_and_resets(
        ops in proptest::collection::vec((0u64..512, 0u8..=255, any::<bool>()), 1..300),
    ) {
        let mut cfg = ToleoConfig::small();
        cfg.reset_log2 = 4; // frequent resets
        let mut e = ProtectionEngine::try_new(cfg, [7u8; 48]).unwrap();
        let mut model = std::collections::HashMap::new();
        for (slot, val, is_write) in ops {
            let addr = slot * 64; // spans 8 pages
            if is_write {
                e.write(addr, &[val; 64]).unwrap();
                model.insert(addr, val);
            } else {
                let got = e.read(addr).unwrap();
                let expect = model.get(&addr).map(|v| [*v; 64]).unwrap_or([0u8; 64]);
                prop_assert_eq!(got, expect);
            }
        }
        prop_assert!(!e.is_killed());
    }

    /// Full versions (UV, stealth) never repeat per address, even with an
    /// aggressive reset policy.
    #[test]
    fn full_versions_never_repeat(n_writes in 50usize..400) {
        let mut cfg = ToleoConfig::small();
        cfg.reset_log2 = 4; // aggressive resets
        let mut e = ProtectionEngine::try_new(cfg.clone(), [2u8; 48]).unwrap();
        let mut seen = std::collections::HashSet::new();
        for i in 0..n_writes {
            e.write(0x40, &[i as u8; 64]).unwrap();
            let stealth = e.device().peek_base(0).expect("touched");
            // Reconstruct the full version of the hammered line via a
            // fresh read of device state.
            let _ = stealth;
            let fv = {
                // Engine-internal: UV from untrusted memory would need a
                // getter; use ciphertext uniqueness as the observable
                // proxy for version uniqueness.
                *e.adversary().ciphertext(0x40).expect("resident")
            };
            prop_assert!(seen.insert(fv.to_vec()), "ciphertext repeated at write {}", i);
        }
    }

    /// XTS round-trips for arbitrary block contents and tweaks.
    #[test]
    fn xts_roundtrip(
        data in proptest::array::uniform32(any::<u8>()),
        version in any::<u64>(),
        address in any::<u64>(),
    ) {
        let xts = AesXts::new(b"prop test key 16", b"prop tweak key16");
        let mut buf = [0u8; 64];
        buf[..32].copy_from_slice(&data);
        buf[32..].copy_from_slice(&data);
        let orig = buf;
        let tweak = Tweak { version, address };
        xts.encrypt(tweak, &mut buf);
        prop_assert_ne!(buf, orig);
        xts.decrypt(tweak, &mut buf);
        prop_assert_eq!(buf, orig);
    }

    /// The counter tree stays verifiable under arbitrary update sequences
    /// and counts versions exactly.
    #[test]
    fn counter_tree_consistency(
        updates in proptest::collection::vec(0u64..512, 1..120),
    ) {
        let mut tree = CounterTree::new(8, 512, 32);
        let mut model = std::collections::HashMap::new();
        for b in updates {
            tree.update(b).unwrap();
            *model.entry(b).or_insert(0u64) += 1;
        }
        for (b, count) in model {
            prop_assert_eq!(tree.verify(b).unwrap().version, count);
        }
    }

    /// Device UPDATE responses always match a subsequent READ.
    #[test]
    fn device_update_matches_read(
        ops in proptest::collection::vec((0u64..16, 0usize..LINES_PER_PAGE), 1..300),
    ) {
        let mut cfg = ToleoConfig::small();
        cfg.reset_log2 = 5;
        let mut dev = toleo_core::device::ToleoDevice::new(cfg).unwrap();
        for (page, line) in ops {
            let resp = dev.update(page, line).unwrap();
            prop_assert_eq!(dev.read(page, line).unwrap(), resp.stealth);
        }
    }

    /// Engine `read_batch`/`write_batch` are observation-equivalent to the
    /// op-at-a-time loop on untampered streams — results *and* every
    /// statistics counter (engine, both caches, device), with stealth
    /// resets firing identically in both worlds (same seed, same update
    /// sequence). This pins the batched fast path (run-grouped version
    /// fetches, pipelined tweak precompute, hoisted slot lookups) to the
    /// semantics of the simple loop.
    #[test]
    fn engine_batches_match_op_at_a_time_loop(
        ops in proptest::collection::vec((0u64..256, 0u8..=255, any::<bool>()), 1..300),
        reset_log2 in 4u32..8,
    ) {
        let mut cfg = ToleoConfig::small();
        cfg.reset_log2 = reset_log2; // make reset walks common in-test
        let mut batched = ProtectionEngine::try_new(cfg.clone(), [0x17u8; 48]).unwrap();
        let mut looped = ProtectionEngine::try_new(cfg, [0x17u8; 48]).unwrap();
        let mut i = 0usize;
        while i < ops.len() {
            let is_write = ops[i].2;
            let mut j = i;
            while j < ops.len() && ops[j].2 == is_write {
                j += 1;
            }
            if is_write {
                let batch: Vec<(u64, [u8; 64])> = ops[i..j]
                    .iter()
                    .map(|&(block, val, _)| (block * 64, [val; 64]))
                    .collect();
                batched.write_batch(&batch).unwrap();
                for (addr, data) in &batch {
                    looped.write(*addr, data).unwrap();
                }
            } else {
                let addrs: Vec<u64> =
                    ops[i..j].iter().map(|&(block, _, _)| block * 64).collect();
                let got = batched.read_batch(&addrs).unwrap();
                for (k, addr) in addrs.iter().enumerate() {
                    prop_assert_eq!(got[k], looped.read(*addr).unwrap());
                }
            }
            i = j;
        }
        prop_assert_eq!(batched.stats(), looped.stats());
        prop_assert_eq!(batched.stealth_cache_stats(), looped.stealth_cache_stats());
        prop_assert_eq!(batched.mac_cache_stats(), looped.mac_cache_stats());
        prop_assert_eq!(batched.device_stats(), looped.device_stats());
    }

    /// Every `ProtectedMemory` scheme is a faithful memory under any
    /// mixed single/batch op sequence: reads return the last write,
    /// never-written blocks read as zeros, and the batch entry points
    /// agree with the model exactly like the single-op path.
    #[test]
    fn every_scheme_is_a_faithful_memory(
        ops in proptest::collection::vec(
            (0u64..256, 0u8..=255, any::<bool>(), any::<bool>()),
            1..120,
        ),
    ) {
        for mut m in arena() {
            let scheme = m.scheme();
            let mut model: std::collections::HashMap<u64, u8> = std::collections::HashMap::new();
            let mut i = 0usize;
            while i < ops.len() {
                // Group same-kind runs; every other run goes through the
                // batch entry points so both paths face the same stream.
                let (_, _, is_write, batch) = ops[i];
                let mut j = i;
                while j < ops.len() && ops[j].2 == is_write {
                    j += 1;
                }
                let run = &ops[i..j];
                if is_write {
                    for &(block, val, _, _) in run {
                        model.insert(block * 64, val);
                    }
                    if batch {
                        let writes: Vec<(u64, [u8; 64])> =
                            run.iter().map(|&(b, v, _, _)| (b * 64, [v; 64])).collect();
                        m.write_batch(&writes)
                            .unwrap_or_else(|e| panic!("{scheme}: {e}"));
                    } else {
                        for &(b, v, _, _) in run {
                            m.write(b * 64, &[v; 64])
                                .unwrap_or_else(|e| panic!("{scheme}: {e}"));
                        }
                    }
                } else {
                    let addrs: Vec<u64> = run.iter().map(|&(b, _, _, _)| b * 64).collect();
                    let got = if batch {
                        m.read_batch(&addrs).unwrap_or_else(|e| panic!("{scheme}: {e}"))
                    } else {
                        addrs
                            .iter()
                            .map(|a| m.read(*a).unwrap_or_else(|e| panic!("{scheme}: {e}")))
                            .collect()
                    };
                    for (k, addr) in addrs.iter().enumerate() {
                        let expect = model.get(addr).map(|v| [*v; 64]).unwrap_or([0u8; 64]);
                        prop_assert!(
                            got[k] == expect,
                            "{} addr {:#x}: wrong block",
                            scheme,
                            addr
                        );
                    }
                }
                i = j;
            }
        }
    }

    /// Every `ProtectedMemory` scheme detects the shared tamper corpus:
    /// after an arbitrary warm-up stream, either a single-byte ciphertext
    /// corruption at any offset or a stale-capsule replay over newer data
    /// must fail the next read with an integrity violation.
    #[test]
    fn every_scheme_detects_the_shared_tamper_corpus(
        warmup in proptest::collection::vec((0u64..128, 0u8..=255), 0..60),
        target in 0u64..128,
        offset in 0usize..64,
        xor in 1u8..=255,
        use_replay in any::<bool>(),
        depth in 1u8..4,
    ) {
        for mut m in arena() {
            let scheme = m.scheme();
            for &(b, v) in &warmup {
                m.write(b * 64, &[v; 64]).unwrap_or_else(|e| panic!("{scheme}: {e}"));
            }
            let addr = target * 64;
            m.write(addr, &[0x5Au8; 64]).unwrap_or_else(|e| panic!("{scheme}: {e}"));
            if use_replay {
                let stale = m.capture(addr);
                for d in 0..depth {
                    m.write(addr, &[d; 64]).unwrap_or_else(|e| panic!("{scheme}: {e}"));
                }
                prop_assert!(m.replay(&stale), "{}: capsule rejected", scheme);
            } else {
                prop_assert!(m.corrupt(addr, offset, xor), "{}: nothing resident", scheme);
            }
            prop_assert!(
                matches!(m.read(addr), Err(MemoryError::IntegrityViolation { .. })),
                "{}: tamper (replay={}) must be detected at {:#x}",
                scheme, use_replay, addr
            );
        }
    }
}
