//! # toleo
//!
//! Umbrella crate for the Toleo reproduction (*Toleo: Scaling Freshness
//! to Tera-scale Memory using CXL and PIM*, ASPLOS 2024). It re-exports
//! every workspace crate under one roof and hosts the cross-crate
//! integration, property, security, and concurrency tests in `tests/`,
//! plus the runnable walkthroughs in `examples/`.
//!
//! The individual crates:
//!
//! * [`crypto`](toleo_crypto) — AES, XTS/CTR modes, 56-bit MACs, CXL IDE,
//!   D-RaNGe entropy, TDISP attestation.
//! * [`core`](toleo_core) — versions, Trip compression, the Toleo device,
//!   and the host protection engine.
//! * [`sim`](toleo_sim) — the trace-driven performance model.
//! * [`workloads`](toleo_workloads) — the 12 synthetic benchmark traces.
//! * [`baselines`](toleo_baselines) — Merkle counter tree, VAULT, SGX,
//!   and Morphable-counter baselines.
//! * [`bench`](toleo_bench) — the table/figure regeneration harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use toleo_baselines;
pub use toleo_bench;
pub use toleo_core;
pub use toleo_crypto;
pub use toleo_sim;
pub use toleo_workloads;
