//! Engine-level access patterns for the end-to-end throughput harness.
//!
//! Unlike the Table-2 generators in [`gen`](crate::gen), which reproduce
//! the *paper benchmarks'* locality profiles for the timing simulator,
//! these patterns are designed to stress specific hot paths of the
//! functional [`ProtectionEngine`]: the XTS + MAC pipeline (sequential),
//! the metadata-cache and arena probe paths (random), and the stealth-reset
//! re-encryption loop (hot-reset).
//!
//! [`ProtectionEngine`]: ../../toleo_core/engine/struct.ProtectionEngine.html

use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cache-block size used for address generation.
const BLOCK: u64 = 64;
/// Page size.
const PAGE: u64 = 4096;

/// A synthetic engine stress pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnginePattern {
    /// Write sweep then read sweep over the footprint: peak streaming
    /// bandwidth through the encrypt/MAC and decrypt/verify pipelines.
    Sequential,
    /// Uniformly random block addresses, half reads half writes: worst
    /// case for the stealth/MAC caches and the storage-arena probes.
    Random,
    /// Hammers a few hot lines per page so pages upgrade to uneven/full
    /// and the probabilistic stealth reset fires often, exercising the
    /// page re-encryption slab walk.
    HotReset,
}

impl EnginePattern {
    /// All patterns, in reporting order.
    pub fn all() -> [EnginePattern; 3] {
        [
            EnginePattern::Sequential,
            EnginePattern::Random,
            EnginePattern::HotReset,
        ]
    }

    /// Stable name used in reports and `BENCH_*.json`.
    pub fn name(self) -> &'static str {
        match self {
            EnginePattern::Sequential => "sequential",
            EnginePattern::Random => "random",
            EnginePattern::HotReset => "hot-reset",
        }
    }
}

/// Generates a trace of `mem_ops` block accesses confined to
/// `footprint_bytes` of (page-aligned) memory.
///
/// # Examples
///
/// ```
/// use toleo_workloads::pattern::{engine_pattern, EnginePattern};
///
/// let t = engine_pattern(EnginePattern::Sequential, 1_000, 1 << 20, 7);
/// assert_eq!(t.mem_ops(), 1_000);
/// ```
pub fn engine_pattern(
    pattern: EnginePattern,
    mem_ops: u64,
    footprint_bytes: u64,
    seed: u64,
) -> Trace {
    let mut t = Trace::new(pattern.name());
    let blocks = (footprint_bytes / BLOCK).max(1);
    let pages = (footprint_bytes / PAGE).max(1);
    t.rss_bytes = footprint_bytes;
    let mut rng = StdRng::seed_from_u64(seed);
    match pattern {
        EnginePattern::Sequential => {
            // Alternate full write sweeps and read sweeps so both engine
            // directions are measured; wrap around the footprint.
            let mut i = 0u64;
            let mut writing = true;
            for _ in 0..mem_ops {
                let addr = (i % blocks) * BLOCK;
                if writing {
                    t.write(addr);
                } else {
                    t.read(addr);
                }
                i += 1;
                if i.is_multiple_of(blocks) {
                    writing = !writing;
                }
            }
        }
        EnginePattern::Random => {
            for _ in 0..mem_ops {
                let addr = rng.gen_range(0..blocks) * BLOCK;
                if rng.gen_bool(0.5) {
                    t.write(addr);
                } else {
                    t.read(addr);
                }
            }
        }
        EnginePattern::HotReset => {
            // 8 resident lines per page (written up front), then hammer one
            // hot line per page: every write advances the leading version,
            // so with a small `reset_log2` the stealth reset fires often and
            // re-encrypts the resident lines.
            let hot_pages = pages.min(16);
            let mut emitted = 0u64;
            'warmup: for p in 0..hot_pages {
                for line in 0..8u64 {
                    if emitted >= mem_ops {
                        break 'warmup;
                    }
                    t.write(p * PAGE + line * BLOCK);
                    emitted += 1;
                }
            }
            for _ in emitted..mem_ops {
                let p = rng.gen_range(0..hot_pages);
                if rng.gen_bool(0.9) {
                    t.write(p * PAGE + 9 * BLOCK); // the hot line
                } else {
                    let line = rng.gen_range(0..8u64);
                    t.read(p * PAGE + line * BLOCK);
                }
            }
        }
    }
    t
}

/// Splits a trace into maximal same-kind runs — consecutive reads or
/// consecutive writes — capped at `max_run` ops each, for replay through
/// an engine's batched entry points (`read_batch` / `write_batch`).
/// `Compute` ops are dropped (they carry no memory traffic). Returns
/// `(is_write, addresses)` runs in trace order, so replaying the runs
/// preserves the trace's exact memory-op sequence.
///
/// # Examples
///
/// ```
/// use toleo_workloads::pattern::{engine_pattern, homogeneous_runs, EnginePattern};
///
/// let t = engine_pattern(EnginePattern::Sequential, 1_000, 1 << 20, 7);
/// let runs = homogeneous_runs(&t, 256);
/// let total: usize = runs.iter().map(|(_, addrs)| addrs.len()).sum();
/// assert_eq!(total as u64, t.mem_ops());
/// ```
pub fn homogeneous_runs(trace: &Trace, max_run: usize) -> Vec<(bool, Vec<u64>)> {
    assert!(max_run > 0, "runs must hold at least one op");
    let mut runs: Vec<(bool, Vec<u64>)> = Vec::new();
    for op in &trace.ops {
        let (is_write, addr) = match op {
            crate::trace::Op::Write(a) => (true, *a),
            crate::trace::Op::Read(a) => (false, *a),
            crate::trace::Op::Compute(_) => continue,
        };
        match runs.last_mut() {
            Some((kind, addrs)) if *kind == is_write && addrs.len() < max_run => {
                addrs.push(addr);
            }
            _ => runs.push((is_write, vec![addr])),
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Op;

    #[test]
    fn op_counts_match_request() {
        for p in EnginePattern::all() {
            let t = engine_pattern(p, 5_000, 1 << 20, 42);
            assert_eq!(t.mem_ops(), 5_000, "{}", p.name());
            assert!(t.writes() > 0, "{} must exercise writes", p.name());
        }
    }

    #[test]
    fn addresses_stay_in_footprint_and_are_aligned() {
        for p in EnginePattern::all() {
            let t = engine_pattern(p, 10_000, 1 << 20, 1);
            for op in &t.ops {
                let addr = match op {
                    Op::Read(a) | Op::Write(a) => *a,
                    Op::Compute(_) => continue,
                };
                assert!(addr < 1 << 20, "{}: {addr:#x} out of footprint", p.name());
                assert_eq!(addr % BLOCK, 0, "{}: {addr:#x} unaligned", p.name());
            }
        }
    }

    #[test]
    fn sequential_alternates_sweeps() {
        let blocks = (1u64 << 20) / BLOCK;
        let t = engine_pattern(EnginePattern::Sequential, 2 * blocks, 1 << 20, 0);
        assert!(matches!(t.ops[0], Op::Write(0)));
        assert!(matches!(t.ops[blocks as usize], Op::Read(0)));
    }

    #[test]
    fn hot_reset_concentrates_writes() {
        let t = engine_pattern(EnginePattern::HotReset, 50_000, 1 << 20, 3);
        let hot_writes = t
            .ops
            .iter()
            .filter(|op| matches!(op, Op::Write(a) if a % PAGE == 9 * BLOCK))
            .count();
        assert!(
            hot_writes > 30_000,
            "hot line must dominate ({hot_writes} writes)"
        );
    }

    #[test]
    fn hot_reset_honors_tiny_op_counts() {
        // Requests smaller than the warmup budget must still produce
        // exactly the requested number of ops.
        for ops in [1u64, 50, 100, 128, 129] {
            let t = engine_pattern(EnginePattern::HotReset, ops, 1 << 20, 2);
            assert_eq!(t.mem_ops(), ops);
        }
    }

    #[test]
    fn homogeneous_runs_preserve_order_kind_and_cap() {
        for p in EnginePattern::all() {
            let t = engine_pattern(p, 5_000, 1 << 20, 11);
            let runs = homogeneous_runs(&t, 100);
            // Flattening the runs reproduces the memory-op stream exactly.
            let mut flat = Vec::new();
            for (is_write, addrs) in &runs {
                assert!(!addrs.is_empty());
                assert!(addrs.len() <= 100, "{}: run over cap", p.name());
                for a in addrs {
                    flat.push(if *is_write {
                        Op::Write(*a)
                    } else {
                        Op::Read(*a)
                    });
                }
            }
            let expect: Vec<Op> = t
                .ops
                .iter()
                .filter(|op| !matches!(op, Op::Compute(_)))
                .cloned()
                .collect();
            assert_eq!(flat, expect, "{}", p.name());
            // Adjacent runs only split on a kind change or the cap.
            for pair in runs.windows(2) {
                assert!(
                    pair[0].0 != pair[1].0 || pair[0].1.len() == 100,
                    "{}: needless split",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = engine_pattern(EnginePattern::Random, 1_000, 1 << 20, 9);
        let b = engine_pattern(EnginePattern::Random, 1_000, 1 << 20, 9);
        assert_eq!(a.ops, b.ops);
        let c = engine_pattern(EnginePattern::Random, 1_000, 1 << 20, 10);
        assert_ne!(a.ops, c.ops);
    }
}
