//! Synthetic trace generators for the 12 benchmarks of the Toleo
//! evaluation (paper Table 2).
//!
//! Each generator reproduces the properties the paper's analysis depends
//! on, scaled down so the suite runs in seconds:
//!
//! * **working-set size** — proportional to the paper's RSS (default
//!   1 MB per paper-GB);
//! * **LLC pressure class** — the compute-per-access and locality are
//!   tuned so the *ranking* of LLC MPKI matches Table 2 (pr ≫ llama2 ≫
//!   bfs ≫ the rest);
//! * **version-locality class** — write patterns reproduce Fig. 10's
//!   Trip-format mix: uniform sweeps (bsw/chain/llama2) stay flat,
//!   write-once hash builds (dbg/pileup) stay flat, graph kernels
//!   (pr/bfs/sssp) go partly uneven/full, fmi's tree updates go heavily
//!   uneven, and KV stores touch pages nearly randomly.

use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cache-block size used for address generation.
const BLOCK: u64 = 64;
/// Page size.
const PAGE: u64 = 4096;

/// The twelve evaluated benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Banded Smith-Waterman (GenomicsBench): 2D dynamic programming.
    Bsw,
    /// Chaining (GenomicsBench): 1D dynamic programming.
    Chain,
    /// De-Bruijn graph construction (GenomicsBench): hash-table build.
    Dbg,
    /// FM-Index search (GenomicsBench): tree traversal, irregular updates.
    Fmi,
    /// Pileup counting (GenomicsBench): hash access, read-mostly.
    Pileup,
    /// Breadth-first search (GAP).
    Bfs,
    /// PageRank (GAP): memory-bandwidth bound.
    Pr,
    /// Single-source shortest paths (GAP).
    Sssp,
    /// llama2.c token generation: streaming matmul.
    Llama2Gen,
    /// Redis under memtier (Gaussian all-write KV requests).
    Redis,
    /// Memcached under memtier.
    Memcached,
    /// Hyrise running TPC-C.
    Hyrise,
}

impl Benchmark {
    /// All benchmarks in the paper's Table 2 order.
    pub fn all() -> [Benchmark; 12] {
        use Benchmark::*;
        [
            Bsw, Chain, Dbg, Fmi, Pileup, Bfs, Pr, Sssp, Llama2Gen, Redis, Memcached, Hyrise,
        ]
    }

    /// Table 2 name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Bsw => "bsw",
            Benchmark::Chain => "chain",
            Benchmark::Dbg => "dbg",
            Benchmark::Fmi => "fmi",
            Benchmark::Pileup => "pileup",
            Benchmark::Bfs => "bfs",
            Benchmark::Pr => "pr",
            Benchmark::Sssp => "sssp",
            Benchmark::Llama2Gen => "llama2-gen",
            Benchmark::Redis => "redis",
            Benchmark::Memcached => "memcached",
            Benchmark::Hyrise => "hyrise",
        }
    }

    /// LLC MPKI reported in Table 2 (reference only).
    #[allow(clippy::approx_constant)] // Table 2 really does say 3.14
    pub fn paper_mpki(self) -> f64 {
        match self {
            Benchmark::Bsw => 1.21,
            Benchmark::Chain => 0.49,
            Benchmark::Dbg => 0.47,
            Benchmark::Fmi => 0.45,
            Benchmark::Pileup => 0.66,
            Benchmark::Bfs => 22.57,
            Benchmark::Pr => 133.98,
            Benchmark::Sssp => 2.41,
            Benchmark::Llama2Gen => 57.96,
            Benchmark::Redis => 0.76,
            Benchmark::Memcached => 3.14,
            Benchmark::Hyrise => 3.14,
        }
    }

    /// Peak RSS in GB reported in Table 2 (reference only).
    pub fn paper_rss_gb(self) -> f64 {
        match self {
            Benchmark::Bsw => 11.7,
            Benchmark::Chain => 11.75,
            Benchmark::Dbg => 9.86,
            Benchmark::Fmi => 12.05,
            Benchmark::Pileup => 10.85,
            Benchmark::Bfs => 12.9,
            Benchmark::Pr => 20.8,
            Benchmark::Sssp => 24.57,
            Benchmark::Llama2Gen => 25.8,
            Benchmark::Redis => 11.8,
            Benchmark::Memcached => 11.8,
            Benchmark::Hyrise => 6.96,
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generation parameters.
// audit: allow(secret, seed is the workload generator's RNG seed, not key material)
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    /// Bytes of synthetic working set per paper-GB of RSS (default 1 MB:
    /// a 1000x spatial down-scaling).
    pub bytes_per_paper_gb: u64,
    /// Approximate number of memory operations to generate.
    pub mem_ops: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            bytes_per_paper_gb: 1 << 20,
            mem_ops: 250_000,
            seed: 0xBE7C4,
        }
    }
}

impl GenConfig {
    /// A fast configuration for unit tests.
    pub fn tiny() -> Self {
        GenConfig {
            mem_ops: 5_000,
            ..Self::default()
        }
    }
}

/// Generates the trace for `bench` under `cfg`.
///
/// # Examples
///
/// ```
/// use toleo_workloads::gen::{generate, Benchmark, GenConfig};
///
/// let t = generate(Benchmark::Pr, &GenConfig::tiny());
/// assert!(t.mem_ops() > 0);
/// assert_eq!(t.name, "pr");
/// ```
pub fn generate(bench: Benchmark, cfg: &GenConfig) -> Trace {
    let mut rng =
        StdRng::seed_from_u64(cfg.seed ^ bench.name().len() as u64 ^ (bench as u64) << 32);
    let rss = (bench.paper_rss_gb() * cfg.bytes_per_paper_gb as f64) as u64 / PAGE * PAGE;
    let mut t = Trace::new(bench.name());
    t.rss_bytes = rss;
    match bench {
        Benchmark::Bsw => gen_dp2d(&mut t, rss, cfg, &mut rng),
        Benchmark::Chain => gen_dp1d(&mut t, rss, cfg, &mut rng),
        Benchmark::Dbg => gen_hash_build(&mut t, rss, cfg, &mut rng, 800),
        Benchmark::Fmi => gen_fmi(&mut t, rss, cfg, &mut rng),
        Benchmark::Pileup => gen_hash_build(&mut t, rss, cfg, &mut rng, 620),
        Benchmark::Bfs => gen_graph(&mut t, rss, cfg, &mut rng, GraphKind::Bfs),
        Benchmark::Pr => gen_graph(&mut t, rss, cfg, &mut rng, GraphKind::Pr),
        Benchmark::Sssp => gen_graph(&mut t, rss, cfg, &mut rng, GraphKind::Sssp),
        Benchmark::Llama2Gen => gen_llama(&mut t, rss, cfg, &mut rng),
        Benchmark::Redis => gen_kv(&mut t, rss, cfg, &mut rng, KvKind::Redis),
        Benchmark::Memcached => gen_kv(&mut t, rss, cfg, &mut rng, KvKind::Memcached),
        Benchmark::Hyrise => gen_hyrise(&mut t, rss, cfg, &mut rng),
    }
    t
}

/// Banded Smith-Waterman: sweep a band row by row; each cell reads the
/// previous row and writes the current one. Writes are a uniform sequential
/// sweep — textbook version locality (flat pages).
fn gen_dp2d(t: &mut Trace, rss: u64, cfg: &GenConfig, _rng: &mut StdRng) {
    t.mlp = 4.0;
    let row_bytes = 64 * BLOCK; // 4 KB band rows
    let rows = rss / row_bytes;
    let mut emitted = 0usize;
    'outer: for row in 1..rows {
        let cur = row * row_bytes;
        let prev = (row - 1) * row_bytes;
        for b in 0..row_bytes / BLOCK {
            t.compute(810); // alignment scoring: 16 cells x ~50 instr
            t.read(prev + b * BLOCK);
            t.write(cur + b * BLOCK);
            emitted += 2;
            if emitted >= cfg.mem_ops {
                break 'outer;
            }
        }
    }
}

/// 1D chaining DP: stream the anchor array; read a window of predecessors,
/// write the current cell. Sequential, write-once per sweep.
fn gen_dp1d(t: &mut Trace, rss: u64, cfg: &GenConfig, rng: &mut StdRng) {
    t.mlp = 6.0;
    let n_blocks = rss / BLOCK;
    let mut emitted = 0usize;
    let mut i = 64u64;
    while emitted < cfg.mem_ops {
        let cur = (i % n_blocks) * BLOCK;
        // Look back at a few predecessors within the chaining window.
        let back = rng.gen_range(1..32u64);
        t.compute(2000);
        t.read(cur.saturating_sub(back * BLOCK));
        t.write(cur);
        emitted += 2;
        i += 1;
    }
}

/// Hash-table build + probe (dbg, pileup): write each bucket once while
/// building (random addresses, but write-once => pages stay flat), then
/// read-dominated probing.
fn gen_hash_build(t: &mut Trace, rss: u64, cfg: &GenConfig, rng: &mut StdRng, compute: u32) {
    t.mlp = 2.0; // dependent hash-chain loads
    let n_blocks = rss / BLOCK;
    let n_pages = rss / PAGE;
    let build_ops = cfg.mem_ops / 4;
    // Build: k-mers append into per-region buckets — mostly sequential
    // page-local writes (nodes co-allocated), occasionally a jump to a new
    // region. Write-once, so pages stay flat.
    let mut emitted = 0usize;
    let mut cursor = 0u64;
    while emitted < build_ops {
        // Append-only allocation: each node written exactly once, so the
        // build leaves every page flat (the paper's write-once insight).
        cursor = (cursor + 1) % n_blocks;
        t.compute(compute);
        t.write(cursor * BLOCK);
        emitted += 1;
    }
    // Probe: hash lookups walk a bucket chain of 2-4 nodes co-located in
    // one page; bucket pages are popularity-skewed.
    while emitted < cfg.mem_ops {
        let page = if rng.gen_bool(0.9) {
            rng.gen_range(0..(n_pages / 16).max(1)) // hot buckets
        } else {
            rng.gen_range(0..n_pages)
        };
        let start_line = rng.gen_range(0..57u64);
        let chain = rng.gen_range(3..8);
        for i in 0..chain {
            t.compute(compute + 60);
            t.read(page * PAGE + (start_line + i) * BLOCK);
            emitted += 1;
        }
    }
}

/// FM-Index search: backward-search hops through the index (reads with a
/// skewed hot set), plus irregular in-place updates to tree nodes — the
/// repeated strided writes that push a third of its pages to uneven.
fn gen_fmi(t: &mut Trace, rss: u64, cfg: &GenConfig, rng: &mut StdRng) {
    t.mlp = 1.5; // pointer chase
    let n_pages = rss / PAGE;
    // A third of the pages hold mutable tree nodes; updates concentrate in
    // a window that drifts across the region over the run, so access
    // locality stays high while every tree page eventually goes uneven.
    let tree_pages = (n_pages as f64 * 0.30) as u64;
    let window = 200u64.min(tree_pages.max(1));
    let mut drift = 0u64;
    let mut steps = 0u64;
    let mut emitted = 0usize;
    let n_pages_ro = rss / PAGE;
    while emitted < cfg.mem_ops {
        // One backward-search step: dependent index reads; the occ-table
        // layout co-locates the rank structures a step touches in a page.
        let page = if rng.gen_bool(0.93) {
            rng.gen_range(0..(n_pages_ro / 24).max(1)) // C-table / hot BWT
        } else {
            rng.gen_range(0..n_pages_ro)
        };
        let line = rng.gen_range(0..61u64);
        for i in 0..3 {
            t.compute(520);
            t.read(page * PAGE + (line + i) * BLOCK);
            emitted += 1;
        }
        // Occasionally update a tree node: repeated writes to the same
        // line within a page (stride > 1 => uneven format), with one
        // "count" line per page hammered much harder (toward full format).
        if rng.gen_bool(0.35) {
            steps += 1;
            if steps.is_multiple_of(300) {
                drift = (drift + window / 4) % tree_pages.max(1);
            }
            let page = n_pages - 1 - (drift + rng.gen_range(0..window)) % tree_pages.max(1);
            let line = rng.gen_range(0..6u64);
            let repeats = if line == 0 {
                rng.gen_range(6..12)
            } else {
                rng.gen_range(1..4)
            };
            let addr = page * PAGE + line * BLOCK;
            for _ in 0..repeats {
                t.compute(90);
                t.write(addr);
                emitted += 1;
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum GraphKind {
    Bfs,
    Pr,
    Sssp,
}

/// GAP-style graph kernels over a CSR layout: edge-list streaming reads,
/// random vertex-array accesses, and kernel-specific write patterns.
fn gen_graph(t: &mut Trace, rss: u64, cfg: &GenConfig, rng: &mut StdRng, kind: GraphKind) {
    t.mlp = match kind {
        GraphKind::Pr => 8.0, // independent edge streams
        GraphKind::Bfs => 4.0,
        GraphKind::Sssp => 3.0,
    };
    // Layout: 75% edge list, 25% vertex arrays (rank/dist/parent).
    let edge_bytes = rss / 4 * 3;
    let vert_base = edge_bytes;
    let vert_blocks = (rss - edge_bytes) / BLOCK;
    let compute: u32 = match kind {
        GraphKind::Pr => 3,     // MPKI ~134: almost no compute per edge
        GraphKind::Bfs => 22,   // MPKI ~23
        GraphKind::Sssp => 230, // MPKI ~2.4 (priority-queue work off-trace)
    };
    let mut edge_cursor = 0u64;
    let mut emitted = 0usize;
    while emitted < cfg.mem_ops {
        // Pull-style processing of one vertex: stream its in-edge list
        // (sequential, the dominant miss source), gather a few neighbour
        // ranks (power-law popularity), then update this vertex once.
        let degree = rng.gen_range(4..16);
        for _ in 0..degree {
            t.compute(compute);
            t.read(edge_cursor % edge_bytes);
            edge_cursor += BLOCK / 2; // two edges per block on average
            emitted += 1;
        }
        // Occasional neighbour gather from the (zipf-hot) vertex region;
        // most rank reads hit in the LLC, so the streaming edge list
        // dominates the LLC-miss mix as in the real kernel.
        if rng.gen_bool(0.5) {
            let v = zipf_block(rng, vert_blocks);
            t.compute(compute);
            t.read(vert_base + v * BLOCK);
            emitted += 1;
        }
        match kind {
            GraphKind::Pr => {
                // One accumulated rank write per vertex; repeated writes
                // land on popular vertex lines (uneven/full pressure).
                let d = zipf_block(rng, vert_blocks);
                t.write(vert_base + d * BLOCK);
                emitted += 1;
            }
            GraphKind::Bfs => {
                // Visit: write parent once per vertex (write-once).
                if rng.gen_bool(0.4) {
                    let d = rng.gen_range(0..vert_blocks);
                    t.write(vert_base + d * BLOCK);
                    emitted += 1;
                }
            }
            GraphKind::Sssp => {
                // Relax: occasional distance improvements (repeated
                // writes to popular vertices).
                if rng.gen_bool(0.5) {
                    let d = zipf_block(rng, vert_blocks);
                    t.write(vert_base + d * BLOCK);
                    emitted += 1;
                }
            }
        }
    }
}

/// Power-law block index in [0, n): a few blocks are very popular.
fn zipf_block(rng: &mut StdRng, n: u64) -> u64 {
    let u: f64 = rng.gen_range(0.0f64..1.0);
    // Inverse-CDF of a truncated power law (heavy concentration).
    let x = u.powf(6.0);
    ((x * n as f64) as u64).min(n - 1)
}

/// llama2.c generation: stream all weight matrices per token (read-only,
/// no reuse across the layer), write the activation buffer uniformly — the
/// paper's canonical version-locality example.
fn gen_llama(t: &mut Trace, rss: u64, cfg: &GenConfig, _rng: &mut StdRng) {
    t.mlp = 10.0; // wide independent dot products
    let act_bytes = (rss / 256).max(PAGE); // small activation buffer
    let weight_base = act_bytes;
    let weight_bytes = rss - act_bytes;
    let mut emitted = 0usize;
    let mut w = 0u64;
    'outer: loop {
        // One "layer": stream a large weight slab (no reuse within a
        // token), then update the activation buffer uniformly.
        for _ in 0..8192 {
            t.compute(13); // fused multiply-adds on 16 fp32 per block
            t.read(weight_base + (w % weight_bytes));
            w += BLOCK;
            emitted += 1;
            if emitted >= cfg.mem_ops {
                break 'outer;
            }
        }
        for b in 0..act_bytes / BLOCK {
            t.compute(30);
            t.write(b * BLOCK);
            emitted += 1;
            if emitted >= cfg.mem_ops {
                break 'outer;
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum KvKind {
    Redis,
    Memcached,
}

/// memtier-style all-write key-value workload with Gaussian key popularity.
/// Keys hash to uniformly random pages — the random page stream that
/// degrades the stealth cache to 67% (redis) / 85% (memcached) in Fig. 7.
fn gen_kv(t: &mut Trace, rss: u64, cfg: &GenConfig, rng: &mut StdRng, kind: KvKind) {
    t.mlp = 1.8; // dependent hash + pointer hops per request
    let n_pages = rss / PAGE;
    // Values occupy whole slab pages (memcached's slab allocator; redis
    // values with overhead): a SET rewrites the page uniformly, which is
    // why KV pages overwhelmingly stay flat (Fig. 10) despite all-write
    // request streams.
    let (compute_per_req, hot_prob, sigma_pages, tail_lines) = match kind {
        // Redis: heavyweight request path, Gaussian-hot SETs, and a random
        // cold tail ("random page access patterns and high page fault
        // rates") that drags the stealth hit rate to ~67%.
        KvKind::Redis => (2_000u32, 0.25f64, 8.0f64, 2u64),
        // Memcached: leaner requests, smaller cold tail -> ~85%.
        KvKind::Memcached => (1_200u32, 0.55, 8.0, 8),
    };
    let gauss = rand_distr_normal(sigma_pages.max(1.0));
    let mut emitted = 0usize;
    while emitted < cfg.mem_ops {
        t.compute(compute_per_req / 2);
        // Hash-directory descent (small, hot).
        let probe: u64 = rng.gen();
        let dir_page = probe % (n_pages / 40).max(1);
        t.read(dir_page * PAGE + (probe % 61) * BLOCK);
        emitted += 1;
        t.compute(compute_per_req / 2);
        if rng.gen_bool(hot_prob) {
            // Hot SET: rewrite a Gaussian-popular value page uniformly.
            let offset = gauss_sample(rng, &gauss);
            let page = ((n_pages as f64 / 2.0 + offset).rem_euclid(n_pages as f64)) as u64;
            for line in 0..64u64 {
                t.write(page * PAGE + line * BLOCK);
                emitted += 1;
            }
        } else {
            // Cold-tail request: partial update of a uniformly random page
            // (rarely revisited, so its lines are written ~once: flat).
            let page = rng.gen_range(0..n_pages);
            let start = rng.gen_range(0..(64 - tail_lines));
            t.read(page * PAGE + start * BLOCK);
            emitted += 1;
            for i in 0..tail_lines {
                t.write(page * PAGE + (start + i) * BLOCK);
                emitted += 1;
            }
        }
    }
}

/// Normal distribution helper (Box–Muller free: use rand's Normal via
/// simple polar method to avoid extra deps).
struct SimpleNormal {
    sigma: f64,
}

fn rand_distr_normal(sigma: f64) -> SimpleNormal {
    SimpleNormal { sigma }
}

fn gauss_sample(rng: &mut StdRng, n: &SimpleNormal) -> f64 {
    // Sum of 12 uniforms - 6: Irwin–Hall approximation of N(0,1).
    let s: f64 = (0..12).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() - 6.0;
    s * n.sigma
}

/// Hyrise running TPC-C: table scans (sequential reads), index probes
/// (random reads), and commit batches that write a handful of rows — a
/// small fraction of pages sees strided commit writes (4% uneven).
fn gen_hyrise(t: &mut Trace, rss: u64, cfg: &GenConfig, rng: &mut StdRng) {
    t.mlp = 3.0;
    let n_blocks = rss / BLOCK;
    let n_pages = rss / PAGE;
    let mut emitted = 0usize;
    let mut scan_cursor = 0u64;
    while emitted < cfg.mem_ops {
        // Transaction: an index descent — B-tree nodes of one probe are
        // co-located in a page, with a skewed page popularity.
        let probe_page = if rng.gen_bool(0.7) {
            rng.gen_range(0..(n_pages / 10).max(1))
        } else {
            rng.gen_range(0..n_pages)
        };
        let probe_line = rng.gen_range(0..61u64);
        for i in 0..3 {
            t.compute(360);
            t.read(probe_page * PAGE + (probe_line + i) * BLOCK);
            emitted += 1;
        }
        // ...a short scan segment...
        for _ in 0..4 {
            t.compute(160);
            t.read((scan_cursor % n_blocks) * BLOCK);
            scan_cursor += 1;
            emitted += 1;
        }
        // ...and a commit write batch into version-chain pages.
        if rng.gen_bool(0.5) {
            let page = rng.gen_range(0..n_pages / 25); // MVCC tail pages
            let reps = rng.gen_range(1..3);
            for r in 0..reps {
                t.compute(130);
                t.write(page * PAGE + ((r * 7) % 64) * BLOCK);
                emitted += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_generate() {
        for b in Benchmark::all() {
            let t = generate(b, &GenConfig::tiny());
            assert!(t.mem_ops() >= 4_000, "{b}: {} mem ops", t.mem_ops());
            assert!(t.rss_bytes > 0, "{b}");
            assert_eq!(t.name, b.name());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(Benchmark::Pr, &GenConfig::tiny());
        let b = generate(Benchmark::Pr, &GenConfig::tiny());
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(Benchmark::Redis, &GenConfig::tiny());
        let b = generate(
            Benchmark::Redis,
            &GenConfig {
                seed: 99,
                ..GenConfig::tiny()
            },
        );
        assert_ne!(a.ops, b.ops);
    }

    #[test]
    fn rss_scales_with_paper_values() {
        let cfg = GenConfig::tiny();
        let pr = generate(Benchmark::Pr, &cfg);
        let hyrise = generate(Benchmark::Hyrise, &cfg);
        assert!(
            pr.rss_bytes > 2 * hyrise.rss_bytes,
            "pr 20.8GB vs hyrise 6.96GB"
        );
    }

    #[test]
    fn addresses_stay_within_rss() {
        for b in Benchmark::all() {
            let t = generate(b, &GenConfig::tiny());
            for op in &t.ops {
                if let crate::trace::Op::Read(a) | crate::trace::Op::Write(a) = op {
                    assert!(
                        *a < t.rss_bytes,
                        "{b}: address {a:#x} >= rss {:#x}",
                        t.rss_bytes
                    );
                }
            }
        }
    }

    #[test]
    fn dp_workloads_write_sequentially() {
        let t = generate(Benchmark::Bsw, &GenConfig::tiny());
        let writes: Vec<u64> = t
            .ops
            .iter()
            .filter_map(|op| match op {
                crate::trace::Op::Write(a) => Some(*a),
                _ => None,
            })
            .collect();
        let sequential = writes.windows(2).filter(|w| w[1] == w[0] + BLOCK).count();
        assert!(
            sequential as f64 / writes.len() as f64 > 0.9,
            "bsw writes must sweep sequentially"
        );
    }

    #[test]
    fn pr_has_least_compute_per_access() {
        let cfg = GenConfig::tiny();
        let pr = generate(Benchmark::Pr, &cfg);
        let fmi = generate(Benchmark::Fmi, &cfg);
        let pr_ipm = pr.instructions() as f64 / pr.mem_ops() as f64;
        let fmi_ipm = fmi.instructions() as f64 / fmi.mem_ops() as f64;
        assert!(
            pr_ipm * 10.0 < fmi_ipm,
            "pr {pr_ipm:.1} vs fmi {fmi_ipm:.1} instr/access"
        );
    }

    #[test]
    fn kv_workloads_are_write_heavy_per_request() {
        // memtier drives all-write request streams: the op mix is
        // write-dominated (whole-page SETs).
        let t = generate(Benchmark::Redis, &GenConfig::tiny());
        let frac = t.writes() as f64 / t.mem_ops() as f64;
        assert!(frac > 0.5, "redis write fraction {frac}");
    }

    #[test]
    fn zipf_prefers_low_blocks() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 1000u64;
        let samples: Vec<u64> = (0..10_000).map(|_| zipf_block(&mut rng, n)).collect();
        let low = samples.iter().filter(|&&s| s < n / 10).count();
        assert!(
            low > 4_000,
            "power law must concentrate: {low}/10000 in lowest decile"
        );
    }
}
