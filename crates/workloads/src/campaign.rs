//! Fault-injection campaign schedules: deterministic plans for *when* the
//! robustness harness perturbs a workload, layered on top of the device
//! fault plane's *what* (`toleo_core::fault` decides which device ops see
//! transient faults; this module decides where tamper events land in the
//! traffic and which fault rates a sweep visits).
//!
//! Everything here is seeded and reproducible: the same trace and seed
//! always yield the same schedule, so an availability number in
//! `BENCH_*.json` can be re-derived exactly.

use crate::trace::{Op, Trace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Transient-fault rates the availability sweep visits, in reporting
/// order. The first entry is the fault-free reference every goodput
/// ratio is computed against; the last is an aggressively lossy link
/// (1% of device ops faulted) that retries must still fully absorb.
pub const FAULT_RATE_SWEEP: [f64; 4] = [0.0, 1e-4, 1e-3, 1e-2];

/// One scheduled tamper: after the victim has executed `at_op` memory
/// operations of its trace, the adversary corrupts the block at `addr`
/// — an address the trace has already written, so there is live
/// ciphertext to corrupt and the victim's next access to it must detect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TamperEvent {
    /// Memory-op index (0-based, counting only reads/writes) after which
    /// the corruption is mounted.
    pub at_op: u64,
    /// Block address to corrupt; always an address written by the trace
    /// before `at_op`.
    pub addr: u64,
}

/// Builds a deterministic tamper schedule for `trace`: `events` tamper
/// points spread over the trace's middle section (never the very start,
/// where nothing is written yet, and never the tail, so post-detection
/// behaviour is still observable under traffic), each targeting an
/// address already written before its `at_op`. Returns fewer than
/// `events` entries if the trace has too few writes to support them,
/// and an empty schedule for a write-free trace.
///
/// # Examples
///
/// ```
/// use toleo_workloads::campaign::tamper_schedule;
/// use toleo_workloads::pattern::{engine_pattern, EnginePattern};
///
/// let t = engine_pattern(EnginePattern::Random, 1_000, 1 << 18, 7);
/// let plan = tamper_schedule(&t, 3, 0xFA17);
/// assert_eq!(plan, tamper_schedule(&t, 3, 0xFA17)); // reproducible
/// assert!(plan.windows(2).all(|w| w[0].at_op < w[1].at_op));
/// ```
pub fn tamper_schedule(trace: &Trace, events: usize, seed: u64) -> Vec<TamperEvent> {
    // Prefix of addresses written by each memory-op index: writes_seen[i]
    // = addresses written among mem-ops 0..=i, as a running Vec we sample
    // from at schedule time.
    let mem_ops: Vec<Op> = trace
        .ops
        .iter()
        .filter(|op| matches!(op, Op::Read(_) | Op::Write(_)))
        .copied()
        .collect();
    if mem_ops.is_empty() || events == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Candidate tamper points sit in the middle 60% of the trace, evenly
    // spaced with seeded jitter inside each stride.
    let lo = mem_ops.len() as u64 / 5;
    let hi = mem_ops.len() as u64 - mem_ops.len() as u64 / 5;
    let span = hi.saturating_sub(lo).max(1);
    let stride = (span / events as u64).max(1);
    let mut schedule = Vec::with_capacity(events);
    let mut written: Vec<u64> = Vec::new();
    let mut next_scan = 0usize;
    for e in 0..events as u64 {
        let at_op = (lo + e * stride + rng.gen_range(0..stride)).min(hi.saturating_sub(1));
        // Collect every address written up to (and including) at_op.
        while next_scan < mem_ops.len() && (next_scan as u64) <= at_op {
            if let Op::Write(addr) = mem_ops[next_scan] {
                written.push(addr);
            }
            next_scan += 1;
        }
        if written.is_empty() {
            continue; // nothing corruptible yet at this point
        }
        let addr = written[rng.gen_range(0..written.len())];
        schedule.push(TamperEvent { at_op, addr });
    }
    schedule.sort_by_key(|ev| ev.at_op);
    schedule.dedup_by_key(|ev| ev.at_op);
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{engine_pattern, EnginePattern};

    #[test]
    fn sweep_starts_fault_free_and_is_sorted() {
        assert_eq!(FAULT_RATE_SWEEP[0], 0.0);
        assert!(FAULT_RATE_SWEEP.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let t = engine_pattern(EnginePattern::Random, 2_000, 1 << 18, 3);
        let a = tamper_schedule(&t, 4, 99);
        let b = tamper_schedule(&t, 4, 99);
        assert_eq!(a, b);
        let c = tamper_schedule(&t, 4, 100);
        assert_ne!(a, c, "different seeds must move the schedule");
    }

    #[test]
    fn events_target_previously_written_addresses() {
        let t = engine_pattern(EnginePattern::Sequential, 3_000, 1 << 18, 5);
        let plan = tamper_schedule(&t, 5, 0xFA17);
        assert!(!plan.is_empty());
        let mem_ops: Vec<Op> = t
            .ops
            .iter()
            .filter(|op| matches!(op, Op::Read(_) | Op::Write(_)))
            .copied()
            .collect();
        for ev in &plan {
            let written_before = mem_ops[..=(ev.at_op as usize)]
                .iter()
                .any(|op| matches!(op, Op::Write(a) if *a == ev.addr));
            assert!(
                written_before,
                "tamper at op {} targets {:#x}, which was never written before it",
                ev.at_op, ev.addr
            );
        }
    }

    #[test]
    fn schedule_is_strictly_ordered_and_mid_trace() {
        let t = engine_pattern(EnginePattern::Random, 5_000, 1 << 18, 11);
        let plan = tamper_schedule(&t, 6, 1);
        assert!(plan.windows(2).all(|w| w[0].at_op < w[1].at_op));
        let n = t.mem_ops();
        for ev in &plan {
            assert!(ev.at_op >= n / 5, "event at {} is too early", ev.at_op);
            assert!(ev.at_op < n - n / 5, "event at {} is too late", ev.at_op);
        }
    }

    #[test]
    fn degenerate_traces_yield_empty_schedules() {
        let empty = Trace::new("empty");
        assert!(tamper_schedule(&empty, 3, 7).is_empty());
        let mut reads_only = Trace::new("reads");
        for i in 0..100u64 {
            reads_only.read(i * 64);
        }
        assert!(tamper_schedule(&reads_only, 3, 7).is_empty());
        let t = engine_pattern(EnginePattern::Random, 1_000, 1 << 18, 2);
        assert!(tamper_schedule(&t, 0, 7).is_empty());
    }
}
