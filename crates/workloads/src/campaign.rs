//! Fault-injection campaign schedules: deterministic plans for *when* the
//! robustness harness perturbs a workload, layered on top of the device
//! fault plane's *what* (`toleo_core::fault` decides which device ops see
//! transient faults; this module decides where tamper events land in the
//! traffic and which fault rates a sweep visits).
//!
//! Everything here is seeded and reproducible: the same trace and seed
//! always yield the same schedule, so an availability number in
//! `BENCH_*.json` can be re-derived exactly.

use crate::trace::{Op, Trace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Transient-fault rates the availability sweep visits, in reporting
/// order. The first entry is the fault-free reference every goodput
/// ratio is computed against; the last is an aggressively lossy link
/// (1% of device ops faulted) that retries must still fully absorb.
pub const FAULT_RATE_SWEEP: [f64; 4] = [0.0, 1e-4, 1e-3, 1e-2];

/// One scheduled tamper: after the victim has executed `at_op` memory
/// operations of its trace, the adversary corrupts the block at `addr`
/// — an address the trace has already written, so there is live
/// ciphertext to corrupt and the victim's next access to it must detect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TamperEvent {
    /// Memory-op index (0-based, counting only reads/writes) after which
    /// the corruption is mounted.
    pub at_op: u64,
    /// Block address to corrupt; always an address written by the trace
    /// before `at_op`.
    pub addr: u64,
}

/// Page size mirrored from `toleo_core::layout` (this crate stays
/// dependency-free): shard routing is `(addr / PAGE) % shards`.
const PAGE: u64 = 4096;

/// The shard that owns `addr` under `shards`-way page-interleaved
/// routing — the same function the sharded engine uses, so campaign
/// builders can aim every step of a multi-step attack at one shard.
pub fn shard_of(addr: u64, shards: usize) -> usize {
    ((addr / PAGE) % shards.max(1) as u64) as usize
}

/// One step of a multi-step adversary campaign. Steps are mounted in
/// `at_op` order by the harness while victim traffic keeps flowing;
/// each must be *detected* (quarantine), *recovered* (scrub + re-key +
/// re-admit) and *measured* before the campaign advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryStep {
    /// Corrupt live ciphertext at `addr` after the victim's `at_op`-th
    /// memory operation (integrity attack).
    Tamper {
        /// Memory-op index after which the corruption is mounted.
        at_op: u64,
        /// Block address to corrupt; written by the trace before `at_op`.
        addr: u64,
    },
    /// Capture the (ciphertext, MAC, version) of `addr` after
    /// `capture_at_op`, then splice the stale capsule back after `at_op`
    /// (freshness attack). The schedule guarantees the victim rewrites
    /// `addr` between the two points, so the replayed state is genuinely
    /// stale and the next access must detect a version/MAC mismatch.
    Replay {
        /// Memory-op index after which the adversary snapshots the block.
        capture_at_op: u64,
        /// Memory-op index after which the stale snapshot is spliced back.
        at_op: u64,
        /// Block address under attack; rewritten between the two points.
        addr: u64,
    },
}

impl AdversaryStep {
    /// The memory-op index after which this step's *attack* lands (the
    /// replay splice, not the earlier capture).
    pub fn at_op(&self) -> u64 {
        match *self {
            AdversaryStep::Tamper { at_op, .. } | AdversaryStep::Replay { at_op, .. } => at_op,
        }
    }

    /// The block address this step attacks.
    pub fn addr(&self) -> u64 {
        match *self {
            AdversaryStep::Tamper { addr, .. } | AdversaryStep::Replay { addr, .. } => addr,
        }
    }
}

/// What the robustness harness measured for one mounted adversary step:
/// detection latency and MTTR are the first-class outputs of a campaign,
/// in victim operations (the deterministic unit — wall-clock depends on
/// the host, operation counts replay exactly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// Index of the step in its campaign.
    pub step: usize,
    /// The shard the step attacked (and the harness then recovered).
    pub shard: usize,
    /// Victim memory ops executed before the step was mounted.
    pub mounted_at_op: u64,
    /// Victim ops between mounting and the quarantine verdict
    /// (ops-until-quarantine). Bounded by the engine's kill-poll interval
    /// plus the victim's re-touch distance.
    pub detection_latency_ops: u64,
    /// Victim ops served by healthy shards between the quarantine verdict
    /// and the shard's re-admission (ops-until-readmitted) — the MTTR of
    /// the recovery plane, measured under live traffic.
    pub mttr_ops: u64,
    /// Blocks the recovery scrub classified lost for this step.
    pub blocks_lost: u64,
}

/// Builds a multi-step campaign against a single shard: `steps` tamper
/// events, every one targeting an address owned by `shard` under
/// `shards`-way routing, in strictly increasing `at_op` order. Repeated
/// attacks on one shard are exactly what exercises the per-shard
/// recovery budget and its world-kill escalation. Returns fewer steps if
/// the trace writes too few addresses on that shard.
pub fn same_shard_campaign(
    trace: &Trace,
    shards: usize,
    shard: usize,
    steps: usize,
    seed: u64,
) -> Vec<AdversaryStep> {
    tamper_schedule(trace, steps * 2, seed)
        .into_iter()
        .filter(|ev| shard_of(ev.addr, shards) == shard)
        .take(steps)
        .map(|ev| AdversaryStep::Tamper {
            at_op: ev.at_op,
            addr: ev.addr,
        })
        .collect()
}

/// Builds a deterministic capture/replay schedule: `events` freshness
/// attacks, each picking an address the trace writes at least twice,
/// capturing after an early write and splicing the stale capsule back
/// after a later write — so every replay is detectably stale. Events are
/// strictly ordered by splice point and never share an address.
pub fn replay_schedule(trace: &Trace, events: usize, seed: u64) -> Vec<AdversaryStep> {
    let mem_ops: Vec<Op> = trace
        .ops
        .iter()
        .filter(|op| matches!(op, Op::Read(_) | Op::Write(_)))
        .copied()
        .collect();
    if mem_ops.is_empty() || events == 0 {
        return Vec::new();
    }
    // Addresses written at least twice, with their first two write
    // indices — sorted so the selection is deterministic regardless of
    // map iteration order.
    let mut writes: std::collections::BTreeMap<u64, (u64, u64, u32)> =
        std::collections::BTreeMap::new();
    for (i, op) in mem_ops.iter().enumerate() {
        if let Op::Write(addr) = op {
            let entry = writes.entry(*addr).or_insert((i as u64, i as u64, 0));
            if entry.2 == 1 {
                entry.1 = i as u64;
            }
            entry.2 = entry.2.saturating_add(1);
        }
    }
    let candidates: Vec<(u64, u64, u64)> = writes
        .into_iter()
        .filter(|(_, (_, _, count))| *count >= 2)
        .map(|(addr, (first, second, _))| (addr, first, second))
        .collect();
    if candidates.is_empty() {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_5EED);
    let mut picked = std::collections::BTreeSet::new();
    let mut schedule = Vec::with_capacity(events);
    for _ in 0..events.min(candidates.len()) * 4 {
        if schedule.len() == events {
            break;
        }
        let (addr, first, second) = candidates[rng.gen_range(0..candidates.len())];
        if !picked.insert(addr) {
            continue;
        }
        // Capture after the first write, splice after the second: the
        // victim rewrote the block in between, so the capsule is stale.
        schedule.push(AdversaryStep::Replay {
            capture_at_op: first,
            at_op: second,
            addr,
        });
    }
    schedule.sort_by_key(|s| s.at_op());
    schedule.dedup_by_key(|s| s.at_op());
    schedule
}

/// Interleaves tamper and replay schedules into one campaign, ordered by
/// attack point with duplicate attack points dropped (the harness mounts
/// at most one step per victim op).
pub fn interleave(a: Vec<AdversaryStep>, b: Vec<AdversaryStep>) -> Vec<AdversaryStep> {
    let mut steps = a;
    steps.extend(b);
    steps.sort_by_key(AdversaryStep::at_op);
    steps.dedup_by_key(|s| s.at_op());
    steps
}

/// Builds a deterministic tamper schedule for `trace`: `events` tamper
/// points spread over the trace's middle section (never the very start,
/// where nothing is written yet, and never the tail, so post-detection
/// behaviour is still observable under traffic), each targeting an
/// address already written before its `at_op`. Returns fewer than
/// `events` entries if the trace has too few writes to support them,
/// and an empty schedule for a write-free trace.
///
/// # Examples
///
/// ```
/// use toleo_workloads::campaign::tamper_schedule;
/// use toleo_workloads::pattern::{engine_pattern, EnginePattern};
///
/// let t = engine_pattern(EnginePattern::Random, 1_000, 1 << 18, 7);
/// let plan = tamper_schedule(&t, 3, 0xFA17);
/// assert_eq!(plan, tamper_schedule(&t, 3, 0xFA17)); // reproducible
/// assert!(plan.windows(2).all(|w| w[0].at_op < w[1].at_op));
/// ```
pub fn tamper_schedule(trace: &Trace, events: usize, seed: u64) -> Vec<TamperEvent> {
    // Prefix of addresses written by each memory-op index: writes_seen[i]
    // = addresses written among mem-ops 0..=i, as a running Vec we sample
    // from at schedule time.
    let mem_ops: Vec<Op> = trace
        .ops
        .iter()
        .filter(|op| matches!(op, Op::Read(_) | Op::Write(_)))
        .copied()
        .collect();
    if mem_ops.is_empty() || events == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Candidate tamper points sit in the middle 60% of the trace, evenly
    // spaced with seeded jitter inside each stride.
    let lo = mem_ops.len() as u64 / 5;
    let hi = mem_ops.len() as u64 - mem_ops.len() as u64 / 5;
    let span = hi.saturating_sub(lo).max(1);
    let stride = (span / events as u64).max(1);
    let mut schedule = Vec::with_capacity(events);
    let mut written: Vec<u64> = Vec::new();
    let mut next_scan = 0usize;
    for e in 0..events as u64 {
        let at_op = (lo + e * stride + rng.gen_range(0..stride)).min(hi.saturating_sub(1));
        // Collect every address written up to (and including) at_op.
        while next_scan < mem_ops.len() && (next_scan as u64) <= at_op {
            if let Op::Write(addr) = mem_ops[next_scan] {
                written.push(addr);
            }
            next_scan += 1;
        }
        if written.is_empty() {
            continue; // nothing corruptible yet at this point
        }
        let addr = written[rng.gen_range(0..written.len())];
        schedule.push(TamperEvent { at_op, addr });
    }
    schedule.sort_by_key(|ev| ev.at_op);
    schedule.dedup_by_key(|ev| ev.at_op);
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{engine_pattern, EnginePattern};

    #[test]
    fn sweep_starts_fault_free_and_is_sorted() {
        assert_eq!(FAULT_RATE_SWEEP[0], 0.0);
        assert!(FAULT_RATE_SWEEP.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let t = engine_pattern(EnginePattern::Random, 2_000, 1 << 18, 3);
        let a = tamper_schedule(&t, 4, 99);
        let b = tamper_schedule(&t, 4, 99);
        assert_eq!(a, b);
        let c = tamper_schedule(&t, 4, 100);
        assert_ne!(a, c, "different seeds must move the schedule");
    }

    #[test]
    fn events_target_previously_written_addresses() {
        let t = engine_pattern(EnginePattern::Sequential, 3_000, 1 << 18, 5);
        let plan = tamper_schedule(&t, 5, 0xFA17);
        assert!(!plan.is_empty());
        let mem_ops: Vec<Op> = t
            .ops
            .iter()
            .filter(|op| matches!(op, Op::Read(_) | Op::Write(_)))
            .copied()
            .collect();
        for ev in &plan {
            let written_before = mem_ops[..=(ev.at_op as usize)]
                .iter()
                .any(|op| matches!(op, Op::Write(a) if *a == ev.addr));
            assert!(
                written_before,
                "tamper at op {} targets {:#x}, which was never written before it",
                ev.at_op, ev.addr
            );
        }
    }

    #[test]
    fn schedule_is_strictly_ordered_and_mid_trace() {
        let t = engine_pattern(EnginePattern::Random, 5_000, 1 << 18, 11);
        let plan = tamper_schedule(&t, 6, 1);
        assert!(plan.windows(2).all(|w| w[0].at_op < w[1].at_op));
        let n = t.mem_ops();
        for ev in &plan {
            assert!(ev.at_op >= n / 5, "event at {} is too early", ev.at_op);
            assert!(ev.at_op < n - n / 5, "event at {} is too late", ev.at_op);
        }
    }

    #[test]
    fn same_shard_campaign_targets_one_shard_in_order() {
        let t = engine_pattern(EnginePattern::Random, 8_000, 1 << 20, 13);
        for shard in 0..4 {
            let plan = same_shard_campaign(&t, 4, shard, 3, 0xFA17);
            assert_eq!(plan, same_shard_campaign(&t, 4, shard, 3, 0xFA17));
            assert!(plan.windows(2).all(|w| w[0].at_op() < w[1].at_op()));
            for step in &plan {
                assert_eq!(
                    shard_of(step.addr(), 4),
                    shard,
                    "step {step:?} must attack shard {shard}"
                );
            }
        }
        // At least one shard must get a full 3-step campaign out of a
        // trace this large.
        assert!((0..4).any(|s| same_shard_campaign(&t, 4, s, 3, 0xFA17).len() == 3));
    }

    #[test]
    fn replay_schedule_captures_before_a_rewrite_then_splices() {
        let t = engine_pattern(EnginePattern::HotReset, 6_000, 1 << 18, 29);
        let plan = replay_schedule(&t, 4, 0xCAFE);
        assert_eq!(plan, replay_schedule(&t, 4, 0xCAFE), "reproducible");
        assert!(!plan.is_empty(), "hot/cold traces rewrite addresses");
        assert!(plan.windows(2).all(|w| w[0].at_op() < w[1].at_op()));
        let mem_ops: Vec<Op> = t
            .ops
            .iter()
            .filter(|op| matches!(op, Op::Read(_) | Op::Write(_)))
            .copied()
            .collect();
        for step in &plan {
            let AdversaryStep::Replay {
                capture_at_op,
                at_op,
                addr,
            } = *step
            else {
                panic!("replay_schedule must only emit Replay steps");
            };
            assert!(capture_at_op < at_op);
            let written_before_capture = mem_ops[..=(capture_at_op as usize)]
                .iter()
                .any(|op| matches!(op, Op::Write(a) if *a == addr));
            assert!(written_before_capture, "capsule must hold live ciphertext");
            let rewritten_between = mem_ops[(capture_at_op as usize + 1)..=(at_op as usize)]
                .iter()
                .any(|op| matches!(op, Op::Write(a) if *a == addr));
            assert!(
                rewritten_between,
                "the victim must rewrite {addr:#x} between capture and splice, \
                 or the replay would not be stale"
            );
        }
    }

    #[test]
    fn interleave_merges_ordered_and_deduped() {
        let t = engine_pattern(EnginePattern::HotReset, 6_000, 1 << 18, 29);
        let tampers: Vec<AdversaryStep> = tamper_schedule(&t, 3, 7)
            .into_iter()
            .map(|ev| AdversaryStep::Tamper {
                at_op: ev.at_op,
                addr: ev.addr,
            })
            .collect();
        let replays = replay_schedule(&t, 3, 0xCAFE);
        let merged = interleave(tampers.clone(), replays.clone());
        assert!(merged.len() <= tampers.len() + replays.len());
        assert!(merged.len() >= tampers.len().max(replays.len()));
        assert!(merged.windows(2).all(|w| w[0].at_op() < w[1].at_op()));
    }

    #[test]
    fn degenerate_traces_yield_empty_schedules() {
        let empty = Trace::new("empty");
        assert!(tamper_schedule(&empty, 3, 7).is_empty());
        let mut reads_only = Trace::new("reads");
        for i in 0..100u64 {
            reads_only.read(i * 64);
        }
        assert!(tamper_schedule(&reads_only, 3, 7).is_empty());
        let t = engine_pattern(EnginePattern::Random, 1_000, 1 << 18, 2);
        assert!(tamper_schedule(&t, 0, 7).is_empty());
    }
}
