//! # toleo-workloads
//!
//! Synthetic memory-trace generators mirroring the 12 privacy-sensitive
//! benchmarks of the Toleo evaluation (GenomicsBench, GAP, llama2.c,
//! redis/memcached under memtier, hyrise under TPC-C).
//!
//! The paper drives its Sniper simulations from PinPlay captures of the
//! real applications; this crate substitutes trace generators that
//! reproduce the properties the evaluation depends on — working-set size,
//! LLC-pressure class, and version-locality class — at a 1000x spatial
//! down-scaling so the whole suite runs in seconds. See `DESIGN.md` §2 for
//! the substitution rationale.
//!
//! ```
//! use toleo_workloads::gen::{generate, Benchmark, GenConfig};
//!
//! let trace = generate(Benchmark::Llama2Gen, &GenConfig::tiny());
//! println!("{}: {} instructions, {} memory ops",
//!          trace.name, trace.instructions(), trace.mem_ops());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod concurrent;
pub mod gen;
pub mod pattern;
pub mod trace;

pub use campaign::{tamper_schedule, TamperEvent, FAULT_RATE_SWEEP};
pub use concurrent::{multi_tenant, partition_by_page, shard_ops};
pub use gen::{generate, Benchmark, GenConfig};
pub use pattern::{engine_pattern, EnginePattern};
pub use trace::{Op, Trace};
