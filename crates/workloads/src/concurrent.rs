//! Concurrent access paths for the sharded engine: page-partitioned trace
//! iteration and a multi-tenant interleaved workload.
//!
//! The sharded engine routes addresses page-wise (`page % shards`), so a
//! trace replayed by T workers must be split along the same boundary for
//! workers to proceed without lock contention. [`shard_ops`] iterates the
//! subset of a trace owned by one shard; [`partition_by_page`] materializes
//! all per-shard sub-traces at once.
//!
//! [`multi_tenant`] models the paper's deployment story — one protected
//! pool serving many mutually distrusting tenants — by giving each tenant
//! a disjoint footprint window and its own engine pattern (sequential,
//! random, hot-reset, round-robin by tenant index), then interleaving the
//! per-tenant streams op-by-op so every shard sees mixed traffic.

use crate::pattern::{engine_pattern, EnginePattern};
use crate::trace::{Op, Trace};

/// Page size the partitioner assumes (matches `toleo_core::config`).
const PAGE: u64 = 4096;

/// The shard index (under `shards`-way page interleaving) that owns the
/// address touched by `op`; `None` for compute batches, which retire
/// locally on whichever core issues them.
pub fn shard_of_op(op: &Op, shards: usize) -> Option<usize> {
    match op {
        Op::Read(addr) | Op::Write(addr) => Some(((addr / PAGE) % shards as u64) as usize),
        Op::Compute(_) => None,
    }
}

/// Iterates the memory ops of `trace` owned by `shard` under
/// `shards`-way page interleaving, preserving trace order. Compute
/// batches are skipped: they carry no address and need no shard.
///
/// # Examples
///
/// ```
/// use toleo_workloads::concurrent::shard_ops;
/// use toleo_workloads::Trace;
///
/// let mut t = Trace::new("t");
/// t.write(0);          // page 0 -> shard 0
/// t.write(4096);       // page 1 -> shard 1
/// t.write(8192);       // page 2 -> shard 0
/// let shard0: Vec<_> = shard_ops(&t, 0, 2).collect();
/// assert_eq!(shard0.len(), 2);
/// ```
///
/// # Panics
///
/// Panics if `shards` is 0 or `shard >= shards`.
pub fn shard_ops(trace: &Trace, shard: usize, shards: usize) -> impl Iterator<Item = Op> + '_ {
    assert!(shards > 0, "shards must be non-zero");
    assert!(shard < shards, "shard {shard} out of range 0..{shards}");
    trace
        .ops
        .iter()
        .copied()
        .filter(move |op| shard_of_op(op, shards) == Some(shard))
}

/// Splits `trace` into one sub-trace per shard under `shards`-way page
/// interleaving. Per-shard op order matches the original trace, so a
/// worker replaying shard i's sub-trace observes exactly the dependency
/// order a sequential replay would have produced for those addresses
/// (pages never span shards, so cross-shard order is irrelevant).
///
/// # Panics
///
/// Panics if `shards` is 0.
pub fn partition_by_page(trace: &Trace, shards: usize) -> Vec<Trace> {
    assert!(shards > 0, "shards must be non-zero");
    let mut parts: Vec<Trace> = (0..shards)
        .map(|s| {
            let mut t = Trace::new(format!("{}/shard{}", trace.name, s));
            t.rss_bytes = trace.rss_bytes / shards as u64;
            t.mlp = trace.mlp;
            t
        })
        .collect();
    for op in &trace.ops {
        if let Some(shard) = shard_of_op(op, shards) {
            parts[shard].ops.push(*op);
        }
    }
    parts
}

/// Generates the multi-tenant workload: `tenants` independent streams,
/// each confined to its own `footprint_per_tenant` window (page-aligned,
/// tenant `t` starting at `t * footprint`), running the engine patterns
/// round-robin (tenant 0 sequential, 1 random, 2 hot-reset, 3 sequential,
/// …) and interleaved op-by-op. Total ops = `tenants * ops_per_tenant`.
///
/// # Examples
///
/// ```
/// use toleo_workloads::concurrent::multi_tenant;
///
/// let t = multi_tenant(4, 1_000, 1 << 20, 7);
/// assert_eq!(t.mem_ops(), 4_000);
/// assert_eq!(t.rss_bytes, 4 << 20);
/// ```
///
/// # Panics
///
/// Panics if `tenants` is 0.
pub fn multi_tenant(
    tenants: usize,
    ops_per_tenant: u64,
    footprint_per_tenant: u64,
    seed: u64,
) -> Trace {
    assert!(tenants > 0, "tenants must be non-zero");
    // Round each tenant window up to a page multiple so windows cannot
    // share a page (a shared page would couple tenants to one shard).
    let window = footprint_per_tenant.div_ceil(PAGE) * PAGE;
    let streams: Vec<Trace> = (0..tenants)
        .map(|t| {
            let pattern = EnginePattern::all()[t % 3];
            engine_pattern(
                pattern,
                ops_per_tenant,
                footprint_per_tenant,
                seed.wrapping_add(t as u64).wrapping_mul(0x9E37_79B9),
            )
        })
        .collect();
    let mut out = Trace::new("multi-tenant");
    out.rss_bytes = window * tenants as u64;
    let mut cursors = vec![0usize; tenants];
    let mut remaining = tenants;
    // Round-robin interleave: one op from each tenant per turn, with each
    // tenant's addresses rebased into its window.
    while remaining > 0 {
        remaining = 0;
        for (t, stream) in streams.iter().enumerate() {
            // Tenant streams may contain compute batches; forward memory
            // ops only, one per turn.
            while cursors[t] < stream.ops.len() {
                let op = stream.ops[cursors[t]];
                cursors[t] += 1;
                let base = window * t as u64;
                match op {
                    Op::Read(a) => {
                        out.read(base + a);
                        break;
                    }
                    Op::Write(a) => {
                        out.write(base + a);
                        break;
                    }
                    Op::Compute(_) => continue,
                }
            }
            if cursors[t] < stream.ops.len() {
                remaining += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_every_memory_op_exactly_once() {
        let t = engine_pattern(EnginePattern::Random, 10_000, 1 << 20, 3);
        for shards in [1usize, 2, 3, 8] {
            let parts = partition_by_page(&t, shards);
            assert_eq!(parts.len(), shards);
            let total: u64 = parts.iter().map(Trace::mem_ops).sum();
            assert_eq!(total, t.mem_ops(), "{shards} shards");
            for (s, part) in parts.iter().enumerate() {
                for op in &part.ops {
                    assert_eq!(shard_of_op(op, shards), Some(s));
                }
            }
        }
    }

    #[test]
    fn partition_preserves_per_shard_order() {
        let mut t = Trace::new("t");
        for i in 0..100u64 {
            t.write(i * PAGE); // page i
            t.read(i * PAGE);
        }
        let parts = partition_by_page(&t, 4);
        for part in &parts {
            // Within a shard, each page's write precedes its read.
            let mut last_write: Option<u64> = None;
            for op in &part.ops {
                match op {
                    Op::Write(a) => last_write = Some(*a),
                    Op::Read(a) => assert_eq!(last_write, Some(*a)),
                    Op::Compute(_) => {}
                }
            }
        }
    }

    #[test]
    fn shard_ops_matches_partition() {
        let t = engine_pattern(EnginePattern::HotReset, 5_000, 1 << 20, 11);
        let parts = partition_by_page(&t, 3);
        for (s, part) in parts.iter().enumerate() {
            let iterated: Vec<Op> = shard_ops(&t, s, 3).collect();
            assert_eq!(iterated, part.ops);
        }
    }

    #[test]
    fn one_way_partition_is_the_whole_trace() {
        let t = engine_pattern(EnginePattern::Sequential, 2_000, 1 << 20, 5);
        let parts = partition_by_page(&t, 1);
        assert_eq!(parts[0].mem_ops(), t.mem_ops());
    }

    #[test]
    fn multi_tenant_counts_and_isolation() {
        let tenants = 5usize;
        let per = 2_000u64;
        let window = 1u64 << 20;
        let t = multi_tenant(tenants, per, window, 42);
        assert_eq!(t.mem_ops(), tenants as u64 * per);
        for op in &t.ops {
            let addr = match op {
                Op::Read(a) | Op::Write(a) => *a,
                Op::Compute(_) => continue,
            };
            assert!(addr < window * tenants as u64, "{addr:#x} outside the pool");
            assert_eq!(addr % 64, 0, "{addr:#x} unaligned");
        }
        // Every tenant window sees traffic, and no op strays outside its
        // tenant's window (windows are page-aligned and disjoint).
        let mut per_tenant = vec![0u64; tenants];
        for op in &t.ops {
            if let Op::Read(a) | Op::Write(a) = op {
                per_tenant[(a / window) as usize] += 1;
            }
        }
        for (tenant, count) in per_tenant.iter().enumerate() {
            assert_eq!(*count, per, "tenant {tenant}");
        }
    }

    #[test]
    fn multi_tenant_interleaves_rather_than_concatenates() {
        let t = multi_tenant(3, 100, 1 << 20, 9);
        let window = 1u64 << 20;
        // The first 3 ops must come from 3 different tenants.
        let owners: Vec<u64> = t.ops[..3]
            .iter()
            .filter_map(|op| match op {
                Op::Read(a) | Op::Write(a) => Some(a / window),
                Op::Compute(_) => None,
            })
            .collect();
        assert_eq!(owners, vec![0, 1, 2]);
    }

    #[test]
    fn multi_tenant_is_deterministic_per_seed() {
        let a = multi_tenant(4, 500, 1 << 20, 1);
        let b = multi_tenant(4, 500, 1 << 20, 1);
        assert_eq!(a.ops, b.ops);
        let c = multi_tenant(4, 500, 1 << 20, 2);
        assert_ne!(a.ops, c.ops);
    }
}
