//! Memory-trace representation shared by the workload generators and the
//! simulator.
//!
//! A trace is the stream a PinPlay region-of-interest capture would give
//! the paper's Sniper setup: interleaved compute batches and 64-byte-block
//! memory accesses.

use serde::{Deserialize, Serialize};

/// One trace operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// `n` non-memory instructions (they retire at dispatch width).
    Compute(u32),
    /// A load from the 64-byte block containing this physical address.
    Read(u64),
    /// A store to the 64-byte block containing this physical address.
    Write(u64),
}

/// A workload's memory trace plus the metadata the harness reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// Benchmark name (paper Table 2 spelling).
    pub name: String,
    /// Operation stream.
    pub ops: Vec<Op>,
    /// Peak resident set size the trace touches, in bytes.
    pub rss_bytes: u64,
    /// Memory-level-parallelism hint: how many outstanding misses the
    /// workload's access pattern sustains (dependent pointer chases ~1-2,
    /// streaming ~8+). Drives the simulator's overlap model.
    pub mlp: f64,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            ops: Vec::new(),
            rss_bytes: 0,
            mlp: 4.0,
        }
    }

    /// Total instruction count (compute + one per memory op).
    pub fn instructions(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Compute(n) => *n as u64,
                _ => 1,
            })
            .sum()
    }

    /// Number of memory operations.
    pub fn mem_ops(&self) -> u64 {
        self.ops
            .iter()
            .filter(|op| !matches!(op, Op::Compute(_)))
            .count() as u64
    }

    /// Number of writes.
    pub fn writes(&self) -> u64 {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Write(_)))
            .count() as u64
    }

    /// Appends a compute batch, merging with a trailing batch if present.
    pub fn compute(&mut self, n: u32) {
        if let Some(Op::Compute(last)) = self.ops.last_mut() {
            *last = last.saturating_add(n);
        } else {
            self.ops.push(Op::Compute(n));
        }
    }

    /// Appends a read of the block containing `addr`.
    pub fn read(&mut self, addr: u64) {
        self.ops.push(Op::Read(addr));
    }

    /// Appends a write to the block containing `addr`.
    pub fn write(&mut self, addr: u64) {
        self.ops.push(Op::Write(addr));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_accounting() {
        let mut t = Trace::new("t");
        t.compute(10);
        t.read(0);
        t.write(64);
        t.compute(5);
        assert_eq!(t.instructions(), 17);
        assert_eq!(t.mem_ops(), 2);
        assert_eq!(t.writes(), 1);
    }

    #[test]
    fn compute_batches_merge() {
        let mut t = Trace::new("t");
        t.compute(10);
        t.compute(20);
        assert_eq!(t.ops.len(), 1);
        assert_eq!(t.ops[0], Op::Compute(30));
    }

    #[test]
    fn compute_merge_saturates() {
        let mut t = Trace::new("t");
        t.compute(u32::MAX);
        t.compute(10);
        assert_eq!(t.ops[0], Op::Compute(u32::MAX));
    }
}
