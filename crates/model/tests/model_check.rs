//! The CI model-check surface: explores thousands of interleavings of
//! the quarantine/recovery handshake and the `QuarantineMap` bit/epoch
//! race, and replays op schedules through both the model and the real
//! `toleo_core::sharded::QuarantineMap` so the model cannot drift from
//! the implementation it stands for. Everything here is seeded and
//! deterministic: a failure reproduces bit-for-bit.

use toleo_core::sharded::QuarantineMap;
use toleo_model::map::WordModel;
use toleo_model::{explore_exhaustive, explore_random, Bug, Handshake, MapRace, SplitMix64};

/// The headline CI budget: at least this many complete schedules must
/// be explored with every invariant holding.
const SCHEDULE_FLOOR: u64 = 1_000;

#[test]
fn handshake_protocol_holds_across_thousands_of_schedules() {
    let clean = Handshake::new(Bug::None, false);
    let exhaustive = explore_exhaustive(&clean, 2_000)
        .expect("exhaustive prefix: shipped protocol holds on every interleaving");
    let random = explore_random(&clean, 0x0103_1ED0, 1_500)
        .expect("random sweep: shipped protocol holds under seeded scheduling");
    let budget = explore_random(&Handshake::new(Bug::None, true), 0x0103_1ED1, 1_000)
        .expect("budget-exhausted path: world-kill escalation holds");
    let total = exhaustive.schedules + random.schedules + budget.schedules;
    assert!(
        total >= 4 * SCHEDULE_FLOOR,
        "explored only {total} schedules"
    );
}

#[test]
fn map_bit_epoch_race_is_exhaustively_clean() {
    // Shards 2 and 40 share quarantine word 0: every interleaving of
    // the two mark/clear sub-op sequences, fully enumerated.
    let ex = explore_exhaustive(&MapRace::new([2, 40]), u64::MAX)
        .expect("single-RMW bit flips preserve the neighbour's bits");
    assert_eq!(ex.schedules, 70, "C(8,4) interleavings of 2x4 steps");
    assert!(!ex.capped);
    explore_random(&MapRace::new([5, 63]), 0x0103_1ED2, SCHEDULE_FLOOR)
        .expect("random sweep over the same race");
}

/// Every injected protocol bug must be caught — that is the evidence
/// that the clean runs above are meaningful.
#[test]
fn every_injected_bug_is_detected() {
    let cases: [(Bug, bool, &[&str]); 5] = [
        (Bug::EpochBeforeBit, false, &["before the bit flip"]),
        (Bug::SkipReadmitEpochBump, false, &["deadlock"]),
        (Bug::SkipKillOnBudget, true, &["world-kill"]),
        // Depending on when the bypassing caller grabs the lock it
        // either serves still-tampered data or the old generation.
        (
            Bug::ServeDuringRekey,
            false,
            &["tampered", "old-generation"],
        ),
        (Bug::SkipChunkPoll, false, &["kill-poll bound exceeded"]),
    ];
    for (bug, budget, needles) in cases {
        let model = Handshake::new(bug, budget);
        // Exhaustive prefix first, then the random sweep: at least one
        // must surface the bug, and the message must name it.
        let err = explore_exhaustive(&model, 5_000)
            .and_then(|_| explore_random(&model, 0x0103_1ED3, 5_000))
            .expect_err("injected bug escaped the explorer");
        assert!(
            needles.iter().any(|n| err.contains(n)) || err.contains("deadlock"),
            "{bug:?}: unexpected failure shape: {err}"
        );
    }
}

/// Applies one op to both the sequential model and the real map and
/// diffs every observable: return value, epoch, population count, and
/// both shards' bits.
fn apply_and_diff(model: &mut WordModel, real: &QuarantineMap, mark_phase: bool, shard: usize) {
    let (model_ret, real_ret) = if mark_phase {
        (model.mark(shard), real.mark(shard))
    } else {
        (model.clear(shard), real.clear(shard))
    };
    let op = if mark_phase { "mark" } else { "clear" };
    assert_eq!(model_ret, real_ret, "{op}({shard}) return value diverged");
    assert_eq!(
        model.epoch,
        real.epoch(),
        "epoch diverged after {op}({shard})"
    );
    assert_eq!(
        model.count(),
        real.count(),
        "count diverged after {op}({shard})"
    );
}

/// Replays every op-granularity interleaving of two threads each doing
/// `mark(shard)` then `clear(shard)` through the model AND the real
/// `QuarantineMap`, diffing all observables after every op. Six
/// distinct schedules (orderings of [m0, c0] x [m1, c1]); any semantic
/// drift between `WordModel` and the real crate fails here.
#[test]
fn model_and_real_map_agree_on_every_two_thread_schedule() {
    const SHARDS: [usize; 2] = [7, 55]; // same word, distinct bits
    let schedules: [[usize; 4]; 6] = [
        [0, 0, 1, 1],
        [0, 1, 0, 1],
        [0, 1, 1, 0],
        [1, 0, 0, 1],
        [1, 0, 1, 0],
        [1, 1, 0, 0],
    ];
    for schedule in schedules {
        let mut model = WordModel::default();
        let real = QuarantineMap::for_model_checking(64);
        let mut next_op = [0usize; 2]; // 0 = mark pending, 1 = clear pending
        for tid in schedule {
            apply_and_diff(&mut model, &real, next_op[tid] == 0, SHARDS[tid]);
            next_op[tid] += 1;
            for (t, &shard) in SHARDS.iter().enumerate() {
                assert_eq!(
                    model.is_quarantined(shard),
                    real.is_quarantined(shard),
                    "shard {shard} (thread {t}) bit diverged in schedule {schedule:?}"
                );
            }
        }
        assert_eq!(model.count(), 0, "all bits cleared at end of {schedule:?}");
        assert_eq!(model.epoch, 4, "2 marks + 2 clears = 4 epoch bumps");
    }
}

/// Seeded random replay at larger scale: many shards across several
/// words, random mark/clear streams, model and real map in lockstep.
#[test]
fn model_and_real_map_agree_under_seeded_random_ops() {
    let mut rng = SplitMix64::new(0x0103_1ED4);
    // One WordModel per 64-shard word, mirroring the real layout.
    const SHARD_COUNT: usize = 192;
    let mut models = [WordModel::default(); SHARD_COUNT / 64];
    let real = QuarantineMap::for_model_checking(SHARD_COUNT);
    let mut epoch = 0u64;
    for _ in 0..4_096 {
        let shard = (rng.next_u64() % SHARD_COUNT as u64) as usize;
        let model = &mut models[shard / 64];
        let (model_ret, real_ret, op) = if rng.next_u64().is_multiple_of(2) {
            let before = model.epoch;
            let ret = model.mark(shard);
            epoch += model.epoch - before;
            (ret, real.mark(shard), "mark")
        } else {
            let before = model.epoch;
            let ret = model.clear(shard);
            epoch += model.epoch - before;
            (ret, real.clear(shard), "clear")
        };
        assert_eq!(model_ret, real_ret, "{op}({shard}) return value diverged");
        assert_eq!(
            model.is_quarantined(shard),
            real.is_quarantined(shard),
            "{op}({shard}) bit diverged"
        );
        assert_eq!(
            epoch,
            real.epoch(),
            "global epoch diverged after {op}({shard})"
        );
        let model_count: u64 = models.iter().map(WordModel::count).sum();
        assert_eq!(model_count, real.count(), "population count diverged");
    }
}
