//! State-machine model of the quarantine → snapshot-freeze → recover/
//! re-key → re-admit handshake from `toleo-core`'s sharded engine.
//!
//! Three threads at one shared-atomic-action-per-step granularity:
//!
//! - **thread 0, recovery**: under the shard lock, detects tampering,
//!   sets the quarantine bit, bumps the epoch, freezes the audit
//!   snapshot; then (outside the lock) scrubs and re-keys, re-acquires
//!   the lock to install the fresh engine, and finally clears the bit
//!   and bumps the epoch to re-admit. If the recovery budget is
//!   exhausted it must escalate to the world-kill instead.
//! - **thread 1, batch worker on a peer shard**: serves ops in chunks,
//!   polling the kill flag and quarantine epoch at every chunk
//!   boundary — the dynamic twin of the static `blocking-in-poll` rule.
//! - **thread 2, caller on the quarantined shard**: tries to serve one
//!   op; on seeing the quarantine bit it parks, using the epoch as its
//!   wake condition, and retries when the epoch moves. A re-admission
//!   that forgets the epoch bump strands it forever, which the explorer
//!   reports as a deadlock (the lost-wakeup invariant).
//!
//! [`Bug`] injects one protocol mistake at a time; the test suite
//! proves the explorer detects every one of them, which is the evidence
//! that the clean model passing means something.

// audit: allow-file(secret, key_gen/data_gen are abstract generation counters in a protocol model, not key material)

use crate::sched::{Program, Step};

/// Ops the peer-shard batch worker serves in total, and per chunk.
const PEER_OPS: u8 = 4;
const CHUNK: u8 = 2;

/// One deliberately-injected protocol mistake. `None` is the shipped
/// protocol; every other variant must be caught by the explorer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Bug {
    None,
    /// Bump the quarantine epoch before setting the bit: the epoch
    /// announces a state change that is not yet visible.
    EpochBeforeBit,
    /// Re-admit (clear the bit) without bumping the epoch: a parked
    /// caller waiting on the epoch never wakes.
    SkipReadmitEpochBump,
    /// Exhausted recovery budget but no world-kill: workers are left
    /// running (or parked forever) against a dead shard.
    SkipKillOnBudget,
    /// The caller skips the quarantine check and serves anyway,
    /// observing the re-keyed shard's old-generation data.
    ServeDuringRekey,
    /// The batch worker stops polling at chunk boundaries, exceeding
    /// the declared `kill_poll_ops` bound (dynamic twin of the static
    /// `blocking-in-poll` finding).
    SkipChunkPoll,
}

/// Shared + per-thread state of the handshake. Cloned by the explorer
/// at every branch point; every field is plain data.
#[derive(Clone, Debug)]
pub struct Handshake {
    bug: Bug,
    /// When true the recovery budget is already spent: the only legal
    /// outcome of detection is the world-kill.
    budget_exhausted: bool,

    // Shared state of the quarantined shard B.
    lock: Option<usize>,
    bit: bool,
    epoch: u64,
    /// Bit flips (set or clear) not yet announced by an epoch bump.
    /// A bump with nothing pending is the announce-before-flip bug.
    pending_flips: u8,
    killed: bool,
    tampered: bool,
    snapshot_frozen: bool,
    /// Key generation advances at re-key; the engine's data generation
    /// catches up only when the fresh engine is installed. Serving
    /// while they differ is the old-generation-read violation.
    key_gen: u64,
    data_gen: u64,

    // Thread 0: recovery program counter.
    rec_pc: u8,

    // Thread 1: batch worker on a peer shard.
    peer_pc: u8,
    peer_done_ops: u8,
    peer_since_poll: u8,
    peer_seen_epoch: u64,

    // Thread 2: caller on the quarantined shard.
    caller_pc: u8,
    caller_wait_epoch: u64,
    caller_served: bool,

    violation: Option<String>,
}

impl Handshake {
    pub fn new(bug: Bug, budget_exhausted: bool) -> Self {
        Handshake {
            bug,
            budget_exhausted,
            lock: None,
            bit: false,
            epoch: 0,
            pending_flips: 0,
            killed: false,
            tampered: false,
            snapshot_frozen: false,
            key_gen: 0,
            data_gen: 0,
            rec_pc: 0,
            peer_pc: 0,
            peer_done_ops: 0,
            peer_since_poll: 0,
            peer_seen_epoch: 0,
            caller_pc: 0,
            caller_wait_epoch: 0,
            caller_served: false,
            violation: None,
        }
    }

    fn flip_bit(&mut self, to: bool) {
        self.bit = to;
        self.pending_flips += 1;
    }

    fn bump_epoch(&mut self) {
        self.epoch += 1;
        if self.pending_flips == 0 {
            self.violation = Some(
                "quarantine epoch bumped before the bit flip it announces was visible: \
                 a peer polling now acts on a stale quarantine set"
                    .to_owned(),
            );
        } else {
            self.pending_flips -= 1;
        }
    }

    fn recovery_step(&mut self) -> Step {
        match self.rec_pc {
            // Quarantine phase, under the shard lock.
            0 => match self.lock {
                Some(_) => return Step::Blocked,
                None => self.lock = Some(0),
            },
            1 => self.tampered = true, // MAC mismatch detected on access
            2 => {
                if self.bug == Bug::EpochBeforeBit {
                    self.bump_epoch();
                } else {
                    self.flip_bit(true);
                }
            }
            3 => {
                if self.bug == Bug::EpochBeforeBit {
                    self.flip_bit(true);
                } else {
                    self.bump_epoch();
                }
            }
            4 => self.snapshot_frozen = true,
            5 => self.lock = None,
            // Budget gate: escalate or recover.
            6 => {
                if self.budget_exhausted {
                    if self.bug != Bug::SkipKillOnBudget {
                        self.killed = true;
                    }
                    self.rec_pc = 13;
                    return Step::Ran;
                }
            }
            // Recovery phase: scrub + re-key runs outside the lock,
            // the engine swap back under it.
            7 => self.key_gen += 1,
            8 => match self.lock {
                Some(_) => return Step::Blocked,
                None => self.lock = Some(0),
            },
            9 => {
                self.data_gen = self.key_gen;
                self.tampered = false;
            }
            10 => self.lock = None,
            // Re-admission: clear the bit, announce via the epoch.
            11 => self.flip_bit(false),
            12 => {
                if self.bug != Bug::SkipReadmitEpochBump {
                    self.bump_epoch();
                }
            }
            _ => return Step::Done,
        }
        self.rec_pc += 1;
        Step::Ran
    }

    fn peer_step(&mut self) -> Step {
        match self.peer_pc {
            // Chunk boundary: poll the kill flag and quarantine epoch.
            0 => {
                if self.killed {
                    self.peer_pc = 2;
                    return Step::Ran;
                }
                self.peer_seen_epoch = self.epoch;
                self.peer_since_poll = 0;
                self.peer_pc = if self.peer_done_ops == PEER_OPS { 2 } else { 1 };
                Step::Ran
            }
            // Serve one op of the current chunk.
            1 => {
                self.peer_done_ops += 1;
                self.peer_since_poll += 1;
                if self.peer_since_poll > CHUNK {
                    self.violation = Some(format!(
                        "kill-poll bound exceeded: peer worker served {} ops without \
                         polling the kill flag and quarantine epoch (declared bound {CHUNK})",
                        self.peer_since_poll
                    ));
                }
                let boundary = self.peer_since_poll >= CHUNK || self.peer_done_ops == PEER_OPS;
                if boundary && self.bug != Bug::SkipChunkPoll {
                    self.peer_pc = 0;
                } else if self.peer_done_ops == PEER_OPS {
                    self.peer_pc = 2;
                }
                Step::Ran
            }
            _ => Step::Done,
        }
    }

    fn caller_step(&mut self) -> Step {
        match self.caller_pc {
            // Entry: check alive, then the quarantine bit.
            0 => {
                if self.killed {
                    self.caller_pc = 4;
                } else if self.bit && self.bug != Bug::ServeDuringRekey {
                    self.caller_wait_epoch = self.epoch;
                    self.caller_pc = 1;
                } else {
                    self.caller_pc = 2;
                }
                Step::Ran
            }
            // Parked: the epoch is the wake condition. A re-admission
            // that skips the bump leaves this thread Blocked forever,
            // which the explorer reports as a deadlock.
            1 => {
                if self.killed {
                    self.caller_pc = 4;
                    Step::Ran
                } else if self.epoch != self.caller_wait_epoch {
                    self.caller_pc = 0;
                    Step::Ran
                } else {
                    Step::Blocked
                }
            }
            // Acquire the shard lock.
            2 => match self.lock {
                Some(_) => Step::Blocked,
                None => {
                    self.lock = Some(2);
                    self.caller_pc = 3;
                    Step::Ran
                }
            },
            // Serve under the lock, re-checking quarantine first —
            // the model of `run_on_shard`'s inner block.
            3 => {
                if self.killed {
                    self.lock = None;
                    self.caller_pc = 4;
                } else if self.bit && self.bug != Bug::ServeDuringRekey {
                    self.lock = None;
                    self.caller_wait_epoch = self.epoch;
                    self.caller_pc = 1;
                } else {
                    if self.tampered {
                        self.violation = Some(
                            "op served a quarantined shard's tampered data: the quarantine \
                             check was bypassed before recovery completed"
                                .to_owned(),
                        );
                    } else if self.data_gen != self.key_gen {
                        self.violation = Some(format!(
                            "op observed a re-keyed shard's old-generation data: key \
                             generation {} but engine data generation {}",
                            self.key_gen, self.data_gen
                        ));
                    }
                    self.caller_served = true;
                    self.lock = None;
                    self.caller_pc = 4;
                }
                Step::Ran
            }
            _ => Step::Done,
        }
    }
}

impl Program for Handshake {
    fn thread_count(&self) -> usize {
        3
    }

    fn step(&mut self, tid: usize) -> Step {
        match tid {
            0 => self.recovery_step(),
            1 => self.peer_step(),
            _ => self.caller_step(),
        }
    }

    fn check(&self) -> Result<(), String> {
        match &self.violation {
            Some(v) => Err(v.clone()),
            None => Ok(()),
        }
    }

    fn check_final(&self) -> Result<(), String> {
        if self.budget_exhausted {
            if !self.killed {
                return Err(
                    "recovery-budget exhaustion never reached the world-kill: workers \
                     were left running against an unrecoverable shard"
                        .to_owned(),
                );
            }
            return Ok(());
        }
        if self.bit {
            return Err("recovery completed but the shard was never re-admitted".to_owned());
        }
        if self.tampered || self.data_gen != self.key_gen {
            return Err(format!(
                "recovery completed but the engine still serves stale state \
                 (tampered={}, key_gen={}, data_gen={})",
                self.tampered, self.key_gen, self.data_gen
            ));
        }
        if !self.snapshot_frozen {
            return Err("quarantine ran but the audit snapshot was never frozen".to_owned());
        }
        if !self.caller_served {
            return Err(
                "the caller on the quarantined shard never completed its op despite \
                 re-admission (missed wakeup that did not deadlock)"
                    .to_owned(),
            );
        }
        if self.peer_done_ops != PEER_OPS {
            return Err(format!(
                "peer worker finished with {}/{PEER_OPS} ops despite no kill",
                self.peer_done_ops
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{explore_exhaustive, explore_random};

    #[test]
    fn clean_protocol_survives_a_capped_exhaustive_prefix() {
        let ex = explore_exhaustive(&Handshake::new(Bug::None, false), 1_500)
            .expect("shipped protocol holds on every explored interleaving");
        assert!(ex.schedules >= 1_500, "explored {} schedules", ex.schedules);
    }

    #[test]
    fn clean_protocol_survives_random_schedules() {
        let ex = explore_random(&Handshake::new(Bug::None, false), 0x701E0, 500)
            .expect("shipped protocol holds under random scheduling");
        assert_eq!(ex.schedules, 500);
    }

    #[test]
    fn budget_exhaustion_reaches_the_world_kill() {
        explore_random(&Handshake::new(Bug::None, true), 0x701E1, 500)
            .expect("kill escalation satisfies every invariant");
    }

    #[test]
    fn epoch_before_bit_is_caught() {
        let err = explore_exhaustive(&Handshake::new(Bug::EpochBeforeBit, false), 1_000)
            .expect_err("announce-before-flip must be detected");
        assert!(err.contains("before the bit flip"), "{err}");
    }

    #[test]
    fn skipped_readmit_epoch_bump_is_a_lost_wakeup() {
        let err = explore_random(
            &Handshake::new(Bug::SkipReadmitEpochBump, false),
            0x701E2,
            3_000,
        )
        .expect_err("parked caller must be reported stranded");
        assert!(err.contains("deadlock"), "{err}");
    }

    #[test]
    fn skipped_kill_on_budget_is_caught() {
        let err = explore_random(&Handshake::new(Bug::SkipKillOnBudget, true), 0x701E3, 3_000)
            .expect_err("missing world-kill must be detected");
        assert!(
            err.contains("world-kill") || err.contains("deadlock"),
            "{err}"
        );
    }

    #[test]
    fn serving_during_rekey_observes_old_generation_data() {
        let err = explore_random(
            &Handshake::new(Bug::ServeDuringRekey, false),
            0x701E4,
            3_000,
        )
        .expect_err("bypassed quarantine check must be detected");
        assert!(
            err.contains("old-generation") || err.contains("tampered"),
            "{err}"
        );
    }

    #[test]
    fn skipped_chunk_poll_exceeds_the_kill_poll_bound() {
        let err = explore_exhaustive(&Handshake::new(Bug::SkipChunkPoll, false), 1_000)
            .expect_err("unpolled batch loop must be detected");
        assert!(err.contains("kill-poll bound exceeded"), "{err}");
    }
}
