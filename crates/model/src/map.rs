//! Models of the `QuarantineMap` bit/epoch arithmetic.
//!
//! Two layers, at two granularities:
//!
//! - [`WordModel`] is a sequential, op-granularity model of one 64-shard
//!   word: `mark`/`clear`/`is_quarantined`/`epoch`/`count` with exactly
//!   the real crate's return-value semantics. The integration tests
//!   replay interleaved op schedules through both this model and the
//!   real `toleo_core::sharded::QuarantineMap` and diff every
//!   observation, so the model cannot drift from the implementation.
//! - [`MapRace`] is a [`Program`] at *sub-op* granularity: the real
//!   `mark` is a `fetch_or` followed by a separate conditional epoch
//!   `fetch_add`, and `clear` is the mirror image. Two shards in the
//!   same word quarantine and re-admit concurrently; the explorer
//!   proves the single-RMW bit flips keep the neighbours' bits intact
//!   through every interleaving of the non-atomic (bit, epoch) pair.

use crate::sched::{Program, Step};

/// Sequential model of one quarantine word plus the shared epoch,
/// mirroring the real map's return-value contract op for op.
#[derive(Clone, Copy, Debug, Default)]
pub struct WordModel {
    pub word: u64,
    pub epoch: u64,
}

impl WordModel {
    /// Returns `true` if this call newly set the bit (real `mark`).
    pub fn mark(&mut self, shard: usize) -> bool {
        let bit = 1u64 << (shard % 64);
        let newly = self.word & bit == 0;
        self.word |= bit;
        if newly {
            self.epoch += 1;
        }
        newly
    }

    /// Returns `true` if the bit was set (real `clear`).
    pub fn clear(&mut self, shard: usize) -> bool {
        let bit = 1u64 << (shard % 64);
        let was_set = self.word & bit != 0;
        self.word &= !bit;
        if was_set {
            self.epoch += 1;
        }
        was_set
    }

    pub fn is_quarantined(&self, shard: usize) -> bool {
        self.word & (1u64 << (shard % 64)) != 0
    }

    pub fn count(&self) -> u64 {
        u64::from(self.word.count_ones())
    }
}

/// Per-thread position in the mark-then-clear sequence. Each RMW and
/// each epoch bump is its own step, exactly the atomicity the real code
/// has: the (bit, epoch) pair is NOT updated atomically.
#[derive(Clone, Copy, Debug)]
enum Pc {
    FetchOr,
    BumpAfterMark,
    FetchAnd,
    BumpAfterClear,
    Done,
}

/// Two threads, one shard each in the same word, each running
/// `mark(shard)` then `clear(shard)` at sub-op granularity.
#[derive(Clone, Debug)]
pub struct MapRace {
    shards: [usize; 2],
    word: u64,
    epoch: u64,
    pcs: [Pc; 2],
    violation: Option<String>,
}

impl MapRace {
    /// Both shards must fall in the same 64-shard word, else the race
    /// being modelled (two RMWs on one cell) would not exist.
    pub fn new(shards: [usize; 2]) -> Self {
        assert_eq!(shards[0] / 64, shards[1] / 64, "shards must share a word");
        assert_ne!(shards[0], shards[1], "distinct shards required");
        MapRace {
            shards,
            word: 0,
            epoch: 0,
            pcs: [Pc::FetchOr; 2],
            violation: None,
        }
    }

    fn bit(&self, tid: usize) -> u64 {
        1u64 << (self.shards[tid] % 64)
    }
}

impl Program for MapRace {
    fn thread_count(&self) -> usize {
        2
    }

    fn step(&mut self, tid: usize) -> Step {
        let bit = self.bit(tid);
        match self.pcs[tid] {
            Pc::FetchOr => {
                // fetch_or is one atomic action; `newly` is computed
                // from its return value, so the neighbour can never
                // make our own mark look pre-existing.
                let newly = self.word & bit == 0;
                self.word |= bit;
                if !newly {
                    self.violation = Some(format!(
                        "mark(shard {}) saw its own bit already set: a neighbour's RMW \
                         leaked into our cell",
                        self.shards[tid]
                    ));
                }
                self.pcs[tid] = Pc::BumpAfterMark;
                Step::Ran
            }
            Pc::BumpAfterMark => {
                self.epoch += 1;
                self.pcs[tid] = Pc::FetchAnd;
                Step::Ran
            }
            Pc::FetchAnd => {
                let was_set = self.word & bit != 0;
                self.word &= !bit;
                if !was_set {
                    self.violation = Some(format!(
                        "clear(shard {}) found its bit already gone: a neighbour's RMW \
                         erased it",
                        self.shards[tid]
                    ));
                }
                self.pcs[tid] = Pc::BumpAfterClear;
                Step::Ran
            }
            Pc::BumpAfterClear => {
                self.epoch += 1;
                self.pcs[tid] = Pc::Done;
                Step::Ran
            }
            Pc::Done => Step::Done,
        }
    }

    fn check(&self) -> Result<(), String> {
        if let Some(v) = &self.violation {
            return Err(v.clone());
        }
        let foreign = self.word & !(self.bit(0) | self.bit(1));
        if foreign != 0 {
            return Err(format!(
                "word grew bits {foreign:#x} belonging to no modelled shard"
            ));
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        if self.word != 0 {
            return Err(format!(
                "both shards re-admitted but word is {:#x}, not empty",
                self.word
            ));
        }
        if self.epoch != 4 {
            return Err(format!(
                "two marks + two clears must bump the epoch 4 times, saw {}",
                self.epoch
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{explore_exhaustive, explore_random};

    #[test]
    fn concurrent_mark_clear_on_one_word_is_exhaustively_clean() {
        // Shards 3 and 41 share word 0: C(8,4) = 70 interleavings of
        // the eight sub-op steps, all explored, all invariant-clean.
        let ex = explore_exhaustive(&MapRace::new([3, 41]), u64::MAX)
            .expect("bit/epoch protocol holds under every interleaving");
        assert_eq!(ex.schedules, 70);
        assert!(!ex.capped);
    }

    #[test]
    fn random_exploration_agrees() {
        let ex = explore_random(&MapRace::new([0, 63]), 0xD0_DE, 200)
            .expect("bit/epoch protocol holds under random schedules");
        assert_eq!(ex.schedules, 200);
    }

    #[test]
    fn word_model_matches_the_documented_return_contract() {
        let mut m = WordModel::default();
        assert!(m.mark(5));
        assert!(!m.mark(5), "second mark is not 'newly'");
        assert_eq!(m.epoch, 1, "no-op mark must not bump the epoch");
        assert!(m.is_quarantined(5));
        assert_eq!(m.count(), 1);
        assert!(m.clear(5));
        assert!(!m.clear(5), "second clear finds the bit gone");
        assert_eq!(m.epoch, 2, "no-op clear must not bump the epoch");
        assert!(!m.is_quarantined(5));
    }

    #[test]
    #[should_panic(expected = "share a word")]
    fn cross_word_shards_are_rejected() {
        MapRace::new([0, 64]);
    }
}
