//! The explorer: exhaustive DFS and seeded-random schedule exploration
//! over cloneable [`Program`] state machines.

// audit: allow-file(secret, explorer seeds are schedule-reproduction inputs that MUST be reported on failure, not key material)

/// Outcome of offering one scheduling slot to a thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Step {
    /// The thread performed one shared atomic action and advanced.
    Ran,
    /// The thread cannot make progress until another thread acts. A
    /// blocked step MUST NOT have mutated the program state: the
    /// explorer treats the state as unchanged and re-offers the slot
    /// later. If every unfinished thread reports `Blocked` the explorer
    /// reports a deadlock.
    Blocked,
    /// The thread has finished. Further offers must keep returning
    /// `Done` without mutating state.
    Done,
}

/// A concurrent protocol modelled as a deterministic state machine.
///
/// All shared and per-thread state lives in `self`; `step(tid)` performs
/// at most one shared atomic action on behalf of thread `tid`. The
/// explorer decides who runs next, so every interleaving of the real
/// protocol at the model's granularity is reachable.
pub trait Program: Clone {
    /// Number of threads; `step` accepts `0..thread_count()`.
    fn thread_count(&self) -> usize;

    /// Offer one scheduling slot to thread `tid`.
    fn step(&mut self, tid: usize) -> Step;

    /// Safety invariants, checked after every `Ran` step.
    fn check(&self) -> Result<(), String>;

    /// Liveness/terminal invariants, checked once all threads are done.
    fn check_final(&self) -> Result<(), String>;
}

/// Exploration statistics. `schedules` counts complete interleavings
/// (every thread reached `Done`); `steps` counts explored transitions.
#[derive(Clone, Copy, Debug, Default)]
pub struct Explored {
    pub schedules: u64,
    pub steps: u64,
    /// True when exhaustive exploration stopped at its schedule cap
    /// rather than exhausting the state space.
    pub capped: bool,
}

/// Any single schedule longer than this is reported as a livelock.
const MAX_STEPS_PER_SCHEDULE: u64 = 4_096;

/// Explore every interleaving by depth-first search, cloning the state
/// at each branch point, up to `max_schedules` complete schedules.
///
/// Returns the first invariant violation, deadlock, or livelock as
/// `Err`; the message names the failure so tests can pin it.
pub fn explore_exhaustive<P: Program>(program: &P, max_schedules: u64) -> Result<Explored, String> {
    let mut explored = Explored::default();
    dfs(program, &mut explored, max_schedules, 0)?;
    Ok(explored)
}

fn dfs<P: Program>(state: &P, ex: &mut Explored, cap: u64, depth: u64) -> Result<(), String> {
    if ex.schedules >= cap {
        ex.capped = true;
        return Ok(());
    }
    if depth > MAX_STEPS_PER_SCHEDULE {
        return Err(format!(
            "livelock: schedule exceeded {MAX_STEPS_PER_SCHEDULE} steps"
        ));
    }
    let threads = state.thread_count();
    let mut progressed = false;
    let mut done = 0usize;
    for tid in 0..threads {
        let mut next = state.clone();
        match next.step(tid) {
            Step::Done => done += 1,
            Step::Blocked => {}
            Step::Ran => {
                progressed = true;
                ex.steps += 1;
                next.check()
                    .map_err(|e| format!("invariant violated after thread {tid} step: {e}"))?;
                dfs(&next, ex, cap, depth + 1)?;
                if ex.capped {
                    return Ok(());
                }
            }
        }
    }
    if done == threads {
        state
            .check_final()
            .map_err(|e| format!("final invariant violated: {e}"))?;
        ex.schedules += 1;
    } else if !progressed {
        return Err(format!(
            "deadlock: {} of {threads} threads blocked, {done} done — a waiter's wake \
             condition can no longer become true (lost wakeup)",
            threads - done
        ));
    }
    Ok(())
}

/// splitmix64: tiny, high-quality, dependency-free PRNG. The same seed
/// always reproduces the same schedule sequence.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Run `schedules` fresh copies of the program to completion, picking a
/// uniformly random runnable thread at every scheduling point.
///
/// Random exploration reaches deep interleavings that a capped DFS
/// prefix never visits; with a fixed seed it is just as reproducible.
pub fn explore_random<P: Program>(
    program: &P,
    seed: u64,
    schedules: u64,
) -> Result<Explored, String> {
    let mut rng = SplitMix64::new(seed);
    let mut ex = Explored::default();
    for run in 0..schedules {
        let mut state = program.clone();
        let threads = state.thread_count();
        let mut steps_in_run = 0u64;
        loop {
            // Rotate from a random start so every runnable thread has a
            // chance at every slot; Blocked/Done probes do not mutate.
            let start = (rng.next_u64() % threads as u64) as usize;
            let mut acted = false;
            let mut done = 0usize;
            for offset in 0..threads {
                let tid = (start + offset) % threads;
                match state.step(tid) {
                    Step::Ran => {
                        ex.steps += 1;
                        state.check().map_err(|e| {
                            format!(
                                "invariant violated after thread {tid} step \
                                 (seed {seed}, run {run}): {e}"
                            )
                        })?;
                        acted = true;
                        break;
                    }
                    Step::Done => done += 1,
                    Step::Blocked => {}
                }
            }
            if !acted {
                if done == threads {
                    state.check_final().map_err(|e| {
                        format!("final invariant violated (seed {seed}, run {run}): {e}")
                    })?;
                    ex.schedules += 1;
                    break;
                }
                return Err(format!(
                    "deadlock (seed {seed}, run {run}): {} of {threads} threads blocked, \
                     {done} done — a waiter's wake condition can no longer become true \
                     (lost wakeup)",
                    threads - done
                ));
            }
            steps_in_run += 1;
            if steps_in_run > MAX_STEPS_PER_SCHEDULE {
                return Err(format!(
                    "livelock (seed {seed}, run {run}): schedule exceeded \
                     {MAX_STEPS_PER_SCHEDULE} steps"
                ));
            }
        }
    }
    Ok(ex)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads each increment a shared counter twice; a third
    /// "checker" thread waits for the total. Exercises Ran/Blocked/Done
    /// bookkeeping without any protocol content.
    #[derive(Clone)]
    struct Counter {
        total: u8,
        pcs: [u8; 3],
    }

    impl Program for Counter {
        fn thread_count(&self) -> usize {
            3
        }

        fn step(&mut self, tid: usize) -> Step {
            if tid < 2 {
                if self.pcs[tid] >= 2 {
                    return Step::Done;
                }
                self.pcs[tid] += 1;
                self.total += 1;
                Step::Ran
            } else {
                match self.pcs[2] {
                    0 if self.total == 4 => {
                        self.pcs[2] = 1;
                        Step::Ran
                    }
                    0 => Step::Blocked,
                    _ => Step::Done,
                }
            }
        }

        fn check(&self) -> Result<(), String> {
            (self.total <= 4)
                .then_some(())
                .ok_or_else(|| format!("total overshot: {}", self.total))
        }

        fn check_final(&self) -> Result<(), String> {
            (self.total == 4)
                .then_some(())
                .ok_or_else(|| format!("final total {} != 4", self.total))
        }
    }

    fn counter() -> Counter {
        Counter {
            total: 0,
            pcs: [0; 3],
        }
    }

    #[test]
    fn exhaustive_counts_every_interleaving() {
        let ex = explore_exhaustive(&counter(), u64::MAX).expect("counter model is sound");
        // Four increment steps from two 2-step threads: C(4,2) = 6
        // orderings, each followed by the checker's single step.
        assert_eq!(ex.schedules, 6);
        assert!(!ex.capped);
    }

    #[test]
    fn exhaustive_honours_the_schedule_cap() {
        let ex = explore_exhaustive(&counter(), 2).expect("counter model is sound");
        assert_eq!(ex.schedules, 2);
        assert!(ex.capped);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = explore_random(&counter(), 42, 50).expect("counter model is sound");
        let b = explore_random(&counter(), 42, 50).expect("counter model is sound");
        assert_eq!(a.schedules, 50);
        assert_eq!((a.steps, a.schedules), (b.steps, b.schedules));
    }

    /// A waiter whose wake condition never becomes true is reported as
    /// a deadlock, not silently skipped: the lost-wakeup detector.
    #[derive(Clone)]
    struct Stuck {
        pc: u8,
    }

    impl Program for Stuck {
        fn thread_count(&self) -> usize {
            2
        }

        fn step(&mut self, tid: usize) -> Step {
            if tid == 0 {
                if self.pc == 0 {
                    self.pc = 1;
                    Step::Ran
                } else {
                    Step::Done
                }
            } else {
                Step::Blocked
            }
        }

        fn check(&self) -> Result<(), String> {
            Ok(())
        }

        fn check_final(&self) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn permanently_blocked_thread_is_a_deadlock() {
        let err = explore_exhaustive(&Stuck { pc: 0 }, u64::MAX).expect_err("must deadlock");
        assert!(err.contains("deadlock"), "{err}");
        assert!(err.contains("lost wakeup"), "{err}");
        let err = explore_random(&Stuck { pc: 0 }, 7, 1).expect_err("must deadlock");
        assert!(err.contains("deadlock"), "{err}");
    }

    #[test]
    fn splitmix_is_stable() {
        let mut rng = SplitMix64::new(0);
        // First output of splitmix64(0), a published reference value.
        assert_eq!(rng.next_u64(), 0xe220_a839_7b1d_cdaf);
    }
}
