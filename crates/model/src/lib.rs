//! Deterministic interleaving checker for Toleo's concurrency protocols.
//!
//! The static side of the concurrency-correctness plane (`toleo-audit`)
//! proves that every atomic call site uses the ordering its protocol row
//! in `AUDIT.json` declares. This crate is the dynamic side: it proves
//! the *protocol itself* is sound by exhaustively (at small bounds) and
//! randomly (seeded, at larger bounds) exploring thread interleavings of
//! a state-machine model of the quarantine/recovery handshake, and
//! asserting the scheme invariants on every explored schedule:
//!
//! - no operation observes a re-keyed shard's old-generation data,
//! - no wakeup is lost between quarantine and recovery (a waiter parked
//!   on the quarantine epoch always reaches re-admission or the kill),
//! - recovery-budget exhaustion always reaches the world-kill.
//!
//! Design rules, in the spirit of loom but dependency-free:
//!
//! - A [`Program`] is a cloneable value; one shared
//!   atomic action per [`Program::step`]. The explorer owns
//!   scheduling: exhaustive DFS clones the state at every branch point,
//!   the random explorer walks fresh copies under a splitmix64 stream.
//! - A step that returns [`Step::Blocked`] must not
//!   mutate state; the explorer re-tries it after other threads run.
//!   When every unfinished thread is blocked the explorer reports a
//!   deadlock — which is exactly how a lost wakeup (a waiter whose wake
//!   condition can no longer become true) is detected.
//! - Everything is deterministic: no clocks, no OS randomness. A seed
//!   reproduces a failing schedule bit-for-bit.
//!
//! The models live in [`map`] (the `QuarantineMap` word/epoch bit
//! arithmetic, two shards racing on one word) and [`handshake`] (the
//! four-phase quarantine → snapshot-freeze → recover/re-key → re-admit
//! handshake, with injectable protocol bugs that the test suite proves
//! the explorer catches). The integration tests replay explored
//! schedules against the real `toleo_core::sharded::QuarantineMap` so
//! the model cannot drift from the implementation it stands for.

pub mod handshake;
pub mod map;
pub mod sched;

pub use handshake::{Bug, Handshake};
pub use map::MapRace;
pub use sched::{explore_exhaustive, explore_random, Explored, Program, SplitMix64, Step};
