//! CXL 2.0 Integrity and Data Encryption (IDE) link model.
//!
//! IDE provides confidentiality, integrity and replay protection at flit
//! granularity on the CXL link between the trusted host CPU and the Toleo
//! device. The paper relies on three properties:
//!
//! 1. **Non-deterministic stream cipher** — identical payloads produce
//!    different ciphertexts on each transmission, so an eavesdropper cannot
//!    tell that the same stealth version was sent twice. We realize this
//!    with an AES-CTR keystream over a never-repeating per-link sequence
//!    counter.
//! 2. **Flit MAC + replay counter** — every flit carries a truncated MAC
//!    over (sequence number, payload); out-of-order or replayed flits fail.
//! 3. **Skid mode** — the receiver may *release* payloads before the MAC
//!    aggregation completes; the security check happens in parallel and a
//!    late failure still triggers the kill switch before data leaves the
//!    trusted boundary. We model this as a latency annotation, not a change
//!    in the crypto.
//!
//! The sender/receiver pair share a session established by the TDISP-style
//! [`establish_session`] handshake.

// audit: allow-file(indexing, flit header fields are fixed-width with literal indices)

use crate::aes::Aes128;
use crate::mac::{MacKey, Tag56};

/// Errors from IDE receive processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdeError {
    /// MAC over the flit did not verify: tampering on the link.
    BadMac {
        /// Sequence number of the offending flit.
        seq: u64,
    },
    /// Sequence number regressed or repeated: replay on the link.
    Replay {
        /// Expected next sequence number.
        expected: u64,
        /// Sequence number actually observed.
        got: u64,
    },
}

impl std::fmt::Display for IdeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IdeError::BadMac { seq } => write!(f, "ide flit {seq} failed integrity check"),
            IdeError::Replay { expected, got } => {
                write!(f, "ide replay detected: expected seq {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for IdeError {}

/// An encrypted flit in flight on the CXL link. An adversary with physical
/// access can observe and mutate all of these fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flit {
    /// Link sequence number (public).
    pub seq: u64,
    /// Encrypted payload.
    pub ciphertext: Vec<u8>,
    /// Truncated MAC over (seq, ciphertext).
    pub tag: Tag56,
}

/// Transmit side of an IDE stream.
#[derive(Debug)]
pub struct IdeTx {
    cipher: Aes128,
    mac: MacKey,
    next_seq: u64,
}

/// Receive side of an IDE stream.
#[derive(Debug)]
pub struct IdeRx {
    cipher: Aes128,
    mac: MacKey,
    next_seq: u64,
}

/// Establishes a paired IDE session (one direction) from shared key
/// material, as TDISP key exchange would.
///
/// # Examples
///
/// ```
/// use toleo_crypto::ide::establish_session;
///
/// let (mut tx, mut rx) = establish_session([0x11u8; 32]);
/// let flit = tx.send(b"stealth version 12345");
/// let plain = rx.receive(&flit).expect("untampered flit passes");
/// assert_eq!(plain, b"stealth version 12345");
/// ```
pub fn establish_session(shared_secret: [u8; 32]) -> (IdeTx, IdeRx) {
    let halves = shared_secret.as_chunks::<16>().0;
    let (enc_key, mac_key) = (halves[0], halves[1]);
    let tx = IdeTx {
        cipher: Aes128::new(&enc_key),
        mac: MacKey::new(mac_key),
        next_seq: 0,
    };
    let rx = IdeRx {
        cipher: Aes128::new(&enc_key),
        mac: MacKey::new(mac_key),
        next_seq: 0,
    };
    (tx, rx)
}

/// Applies the per-flit keystream (counter = seq ‖ block index), batched
/// through the shared pipelined CTR core in [`crate::modes`].
fn keystream_xor(cipher: &Aes128, seq: u64, data: &mut [u8]) {
    let mut template = [0u8; 16];
    template[..8].copy_from_slice(&seq.to_le_bytes());
    crate::modes::ctr_keystream_xor(
        cipher,
        template,
        |block, i| block[8..12].copy_from_slice(&i.to_le_bytes()),
        data,
    );
}

impl IdeTx {
    /// Encrypts `payload` into a flit, consuming one sequence number.
    ///
    /// Because the sequence number advances on every send, the same payload
    /// never yields the same ciphertext — the non-determinism the stealth
    /// version scheme requires.
    pub fn send(&mut self, payload: &[u8]) -> Flit {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut ciphertext = payload.to_vec();
        keystream_xor(&self.cipher, seq, &mut ciphertext);
        let tag = self.mac.mac(seq, 0, &ciphertext);
        Flit {
            seq,
            ciphertext,
            tag,
        }
    }
}

impl IdeRx {
    /// Verifies and decrypts a flit.
    ///
    /// # Errors
    ///
    /// [`IdeError::Replay`] if the sequence number is not the expected next
    /// one; [`IdeError::BadMac`] if the flit was modified in flight. Either
    /// error must escalate to the platform kill switch.
    pub fn receive(&mut self, flit: &Flit) -> Result<Vec<u8>, IdeError> {
        if flit.seq != self.next_seq {
            return Err(IdeError::Replay {
                expected: self.next_seq,
                got: flit.seq,
            });
        }
        let expect = self.mac.mac(flit.seq, 0, &flit.ciphertext);
        if !expect.verify(&flit.tag) {
            return Err(IdeError::BadMac { seq: flit.seq });
        }
        self.next_seq += 1;
        let mut plain = flit.ciphertext.clone();
        keystream_xor(&self.cipher, flit.seq, &mut plain);
        Ok(plain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> (IdeTx, IdeRx) {
        establish_session([0xa5u8; 32])
    }

    #[test]
    fn roundtrip_stream() {
        let (mut tx, mut rx) = session();
        for i in 0..32u64 {
            let payload = i.to_le_bytes();
            let flit = tx.send(&payload);
            assert_eq!(rx.receive(&flit).unwrap(), payload);
        }
    }

    #[test]
    fn identical_payloads_nondeterministic() {
        let (mut tx, _rx) = session();
        let a = tx.send(b"same stealth version");
        let b = tx.send(b"same stealth version");
        assert_ne!(
            a.ciphertext, b.ciphertext,
            "IDE stream must be non-deterministic"
        );
    }

    #[test]
    fn tampered_flit_rejected() {
        let (mut tx, mut rx) = session();
        let mut flit = tx.send(b"version=5");
        flit.ciphertext[0] ^= 1;
        assert!(matches!(rx.receive(&flit), Err(IdeError::BadMac { .. })));
    }

    #[test]
    fn replayed_flit_rejected() {
        let (mut tx, mut rx) = session();
        let first = tx.send(b"v1");
        rx.receive(&first).unwrap();
        let second = tx.send(b"v2");
        rx.receive(&second).unwrap();
        // Adversary replays the first flit.
        assert!(matches!(rx.receive(&first), Err(IdeError::Replay { .. })));
    }

    #[test]
    fn reordered_flit_rejected() {
        let (mut tx, mut rx) = session();
        let f0 = tx.send(b"v1");
        let f1 = tx.send(b"v2");
        assert!(matches!(
            rx.receive(&f1),
            Err(IdeError::Replay {
                expected: 0,
                got: 1
            })
        ));
        // In-order delivery still works after the rejection.
        assert!(rx.receive(&f0).is_ok());
    }

    #[test]
    fn forged_tag_rejected() {
        let (mut tx, mut rx) = session();
        let mut flit = tx.send(b"v1");
        flit.tag = Tag56::from_raw(flit.tag.as_raw() ^ 1);
        assert!(matches!(rx.receive(&flit), Err(IdeError::BadMac { .. })));
    }

    #[test]
    fn error_display() {
        let e = IdeError::Replay {
            expected: 3,
            got: 1,
        };
        assert!(e.to_string().contains("replay"));
    }
}
