//! TDISP-style device attach / detach (§3.1): the TEE Device Interface
//! Security Protocol establishes the trust relationship between the host
//! and the Toleo device, performs key exchange for the IDE stream, and
//! lets a Trusted Virtual Machine securely attach or detach the device.
//!
//! The model covers the lifecycle the paper relies on:
//!
//! 1. **attest** — the device proves possession of its embedded
//!    attestation key over a host nonce;
//! 2. **attach** — on successful attestation, fresh IDE session keys are
//!    derived and an encrypted channel comes up ([`crate::ide`]);
//! 3. **detach** — keys are destroyed; a re-attach derives *different*
//!    session keys, so no state leaks across tenants.

// audit: allow-file(indexing, challenge/response buffers are fixed-width with literal indices)

use crate::ide::{establish_session, IdeRx, IdeTx};
use crate::mac::{siphash24, MacKey, Tag56};

/// Errors during device attach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TdispError {
    /// The attestation response did not verify against the device's
    /// expected identity.
    AttestationFailed,
    /// Attach requested while a session is already live.
    AlreadyAttached,
    /// Operation requires an attached device.
    NotAttached,
}

impl std::fmt::Display for TdispError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TdispError::AttestationFailed => write!(f, "device attestation failed"),
            TdispError::AlreadyAttached => write!(f, "device already attached"),
            TdispError::NotAttached => write!(f, "no attached device"),
        }
    }
}

impl std::error::Error for TdispError {}

/// The device side: holds the hardware-embedded attestation key.
pub struct DeviceIdentity {
    attestation_key: [u8; 16],
}

impl std::fmt::Debug for DeviceIdentity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceIdentity")
            .field("attestation_key", &"<redacted>")
            .finish()
    }
}

impl DeviceIdentity {
    /// A device with the given embedded key (burned in at manufacture).
    pub fn new(attestation_key: [u8; 16]) -> Self {
        DeviceIdentity { attestation_key }
    }

    /// The public measurement the manufacturer publishes: a one-way
    /// fingerprint of the embedded key.
    pub fn measurement(&self) -> u64 {
        siphash24(0x746f6c656f, 0x6d656173, &self.attestation_key)
    }

    /// Responds to an attestation challenge.
    pub fn respond(&self, nonce: u64) -> Tag56 {
        MacKey::new(self.attestation_key).mac(nonce, 0, b"toleo-attest")
    }

    fn derive_session(&self, nonce: u64, epoch: u64) -> [u8; 32] {
        let mut secret = [0u8; 32];
        let a = siphash24(nonce, epoch, &self.attestation_key);
        let b = siphash24(epoch, nonce, &self.attestation_key);
        secret[..8].copy_from_slice(&a.to_le_bytes());
        secret[8..16].copy_from_slice(&b.to_le_bytes());
        secret[16..24].copy_from_slice(&(a ^ 0x5a5a).to_le_bytes());
        secret[24..].copy_from_slice(&(b ^ 0xa5a5).to_le_bytes());
        secret
    }
}

/// Host-side TDISP manager for one device slot of a Trusted VM.
#[derive(Debug)]
pub struct TdispManager {
    /// The measurement of the genuine device (from the manufacturer).
    expected_measurement: u64,
    /// Attach epoch counter: guarantees fresh keys per attach.
    epoch: u64,
    session: Option<(IdeTx, IdeRx)>,
}

impl TdispManager {
    /// A manager that will only attach devices matching `expected`.
    pub fn new(expected_measurement: u64) -> Self {
        TdispManager {
            expected_measurement,
            epoch: 0,
            session: None,
        }
    }

    /// Whether a device is currently attached.
    pub fn is_attached(&self) -> bool {
        self.session.is_some()
    }

    /// Attests and attaches `device`, bringing up the IDE channel.
    ///
    /// # Errors
    ///
    /// [`TdispError::AttestationFailed`] if the device is not the expected
    /// one; [`TdispError::AlreadyAttached`] if a session exists.
    pub fn attach(&mut self, device: &DeviceIdentity, nonce: u64) -> Result<(), TdispError> {
        if self.session.is_some() {
            return Err(TdispError::AlreadyAttached);
        }
        if device.measurement() != self.expected_measurement {
            return Err(TdispError::AttestationFailed);
        }
        // Verify the challenge-response (the host knows the expected
        // response via the attestation service; modelled by recomputation).
        let expected = device.respond(nonce);
        if !expected.verify(&device.respond(nonce)) {
            return Err(TdispError::AttestationFailed);
        }
        self.epoch += 1;
        let secret = device.derive_session(nonce, self.epoch);
        self.session = Some(establish_session(secret));
        Ok(())
    }

    /// Detaches the device, destroying session keys.
    ///
    /// # Errors
    ///
    /// [`TdispError::NotAttached`] if nothing is attached.
    pub fn detach(&mut self) -> Result<(), TdispError> {
        self.session
            .take()
            .map(|_| ())
            .ok_or(TdispError::NotAttached)
    }

    /// The live IDE channel endpoints.
    ///
    /// # Errors
    ///
    /// [`TdispError::NotAttached`] if nothing is attached.
    pub fn channel(&mut self) -> Result<&mut (IdeTx, IdeRx), TdispError> {
        self.session.as_mut().ok_or(TdispError::NotAttached)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn genuine() -> DeviceIdentity {
        DeviceIdentity::new([0x42u8; 16])
    }

    #[test]
    fn attach_genuine_device() {
        let dev = genuine();
        let mut mgr = TdispManager::new(dev.measurement());
        mgr.attach(&dev, 12345).unwrap();
        assert!(mgr.is_attached());
        // The channel round-trips.
        let (tx, rx) = mgr.channel().unwrap();
        let flit = tx.send(b"hello toleo");
        assert_eq!(rx.receive(&flit).unwrap(), b"hello toleo");
    }

    #[test]
    fn impostor_device_rejected() {
        let dev = genuine();
        let impostor = DeviceIdentity::new([0x66u8; 16]);
        let mut mgr = TdispManager::new(dev.measurement());
        assert_eq!(mgr.attach(&impostor, 1), Err(TdispError::AttestationFailed));
        assert!(!mgr.is_attached());
    }

    #[test]
    fn double_attach_rejected() {
        let dev = genuine();
        let mut mgr = TdispManager::new(dev.measurement());
        mgr.attach(&dev, 1).unwrap();
        assert_eq!(mgr.attach(&dev, 2), Err(TdispError::AlreadyAttached));
    }

    #[test]
    fn detach_destroys_session() {
        let dev = genuine();
        let mut mgr = TdispManager::new(dev.measurement());
        mgr.attach(&dev, 1).unwrap();
        mgr.detach().unwrap();
        assert!(!mgr.is_attached());
        assert_eq!(mgr.detach(), Err(TdispError::NotAttached));
        assert!(matches!(mgr.channel(), Err(TdispError::NotAttached)));
    }

    #[test]
    fn reattach_uses_fresh_keys() {
        let dev = genuine();
        let mut mgr = TdispManager::new(dev.measurement());
        mgr.attach(&dev, 7).unwrap();
        let flit_a = mgr.channel().unwrap().0.send(b"epoch one");
        mgr.detach().unwrap();
        mgr.attach(&dev, 7).unwrap(); // same nonce, new epoch
        let flit_b = mgr.channel().unwrap().0.send(b"epoch one");
        assert_ne!(
            flit_a.ciphertext, flit_b.ciphertext,
            "sessions must not share keys"
        );
        // Old-session flits fail on the new channel.
        assert!(mgr.channel().unwrap().1.receive(&flit_a).is_err());
    }

    #[test]
    fn measurement_is_stable_and_key_dependent() {
        assert_eq!(genuine().measurement(), genuine().measurement());
        assert_ne!(
            genuine().measurement(),
            DeviceIdentity::new([1u8; 16]).measurement()
        );
    }

    #[test]
    fn error_display() {
        assert!(TdispError::AttestationFailed
            .to_string()
            .contains("attestation"));
    }
}
