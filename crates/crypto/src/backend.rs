//! Pluggable AES-128 backends with runtime dispatch.
//!
//! The protection engine is crypto-bound: every 64-byte cache block pays a
//! tweak encryption plus four data-block AES passes, so the cipher
//! implementation decides end-to-end throughput. This module provides
//!
//! * [`Aes128Backend`] — the backend contract: single-block encrypt and
//!   decrypt plus a pipelined multi-block API ([`encrypt_blocks8`] /
//!   [`encrypt_blocks`]) that lets implementations keep several
//!   independent blocks in flight, which is where hardware AES earns its
//!   throughput (the AESENC units are fully pipelined; a serial chain of
//!   single blocks runs at instruction *latency*).
//! * [`TtableAes`](crate::aes::TtableAes) — the portable software
//!   fallback (re-exported from [`crate::aes`]). T-table lookups are also
//!   the classic AES cache-timing side channel; prefer hardware.
//! * `AesNiAes` — x86_64 AES-NI, guarded by
//!   `is_x86_feature_detected!("aes")`.
//! * `ArmCeAes` — aarch64 crypto extensions, guarded by
//!   `is_aarch64_feature_detected!("aes")` (each hardware type only
//!   exists on its architecture).
//!
//! Selection happens **once at cipher construction**
//! ([`default_backend`]): hardware when detected, overridable for testing
//! with the `TOLEO_AES_BACKEND` environment variable (`software`, `aesni`,
//! `armce`, `auto`) or programmatically with [`set_default_backend`]. CI
//! runs the whole suite once with `TOLEO_AES_BACKEND=software` so the
//! fallback stays covered on runners with AES hardware.
//!
//! [`encrypt_blocks8`]: Aes128Backend::encrypt_blocks8
//! [`encrypt_blocks`]: Aes128Backend::encrypt_blocks

// audit: allow-file(indexing, round-key and lane indices are bounded by the AES-128 schedule: 11 round keys, 8 lanes)

use std::sync::atomic::{AtomicU8, Ordering};

/// Contract every AES-128 backend fulfills. All methods compute plain
/// FIPS-197 AES-128, so backends are interchangeable bit-for-bit; they
/// differ only in speed and side-channel profile.
pub trait Aes128Backend {
    /// Encrypts one 16-byte block.
    fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16];

    /// Decrypts one 16-byte block.
    fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16];

    /// Encrypts eight independent blocks in place. The default loops over
    /// [`encrypt_block`](Self::encrypt_block); hardware backends override
    /// it with an interleaved schedule that keeps all eight blocks in
    /// flight through the AES pipeline.
    fn encrypt_blocks8(&self, blocks: &mut [[u8; 16]; 8]) {
        for b in blocks.iter_mut() {
            *b = self.encrypt_block(b);
        }
    }

    /// Decrypts eight independent blocks in place.
    fn decrypt_blocks8(&self, blocks: &mut [[u8; 16]; 8]) {
        for b in blocks.iter_mut() {
            *b = self.decrypt_block(b);
        }
    }

    /// Encrypts any number of independent blocks in place, pipelining in
    /// groups of up to eight.
    fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        let (groups, rest) = blocks.as_chunks_mut::<8>();
        for lanes in groups {
            self.encrypt_blocks8(lanes);
        }
        for b in rest {
            *b = self.encrypt_block(b);
        }
    }

    /// Decrypts any number of independent blocks in place.
    fn decrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        let (groups, rest) = blocks.as_chunks_mut::<8>();
        for lanes in groups {
            self.decrypt_blocks8(lanes);
        }
        for b in rest {
            *b = self.decrypt_block(b);
        }
    }
}

/// The AES implementations a host may offer. All variants exist on every
/// architecture so reports and configuration stay portable;
/// [`is_available`](BackendKind::is_available) says whether this host can
/// actually run one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Portable T-table software cipher (always available).
    Software,
    /// x86_64 AES-NI instructions.
    AesNi,
    /// aarch64 (ARMv8) cryptography extensions.
    ArmCe,
}

impl BackendKind {
    /// Stable lowercase name used in reports, `BENCH_*.json` and the
    /// `TOLEO_AES_BACKEND` override.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Software => "software",
            BackendKind::AesNi => "aes-ni",
            BackendKind::ArmCe => "armv8-ce",
        }
    }

    /// Whether this host can construct the backend.
    pub fn is_available(self) -> bool {
        match self {
            BackendKind::Software => true,
            #[cfg(target_arch = "x86_64")]
            BackendKind::AesNi => std::arch::is_x86_feature_detected!("aes"),
            #[cfg(target_arch = "aarch64")]
            BackendKind::ArmCe => std::arch::is_aarch64_feature_detected!("aes"),
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// The best backend this host offers: hardware AES when detected,
    /// software otherwise.
    pub fn detect() -> Self {
        if BackendKind::AesNi.is_available() {
            BackendKind::AesNi
        } else if BackendKind::ArmCe.is_available() {
            BackendKind::ArmCe
        } else {
            BackendKind::Software
        }
    }
}

/// Every backend this host can run, software fallback always included and
/// listed first. Tests iterate this to property-check each enabled
/// backend against the reference oracle.
pub fn available_backends() -> Vec<BackendKind> {
    [
        BackendKind::Software,
        BackendKind::AesNi,
        BackendKind::ArmCe,
    ]
    .into_iter()
    .filter(|k| k.is_available())
    .collect()
}

/// Cached process-default backend: 0 = unresolved, else `kind_to_tag`.
static DEFAULT_BACKEND: AtomicU8 = AtomicU8::new(0);

fn kind_to_tag(kind: BackendKind) -> u8 {
    match kind {
        BackendKind::Software => 1,
        BackendKind::AesNi => 2,
        BackendKind::ArmCe => 3,
    }
}

fn tag_to_kind(tag: u8) -> Option<BackendKind> {
    match tag {
        1 => Some(BackendKind::Software),
        2 => Some(BackendKind::AesNi),
        3 => Some(BackendKind::ArmCe),
        _ => None,
    }
}

/// Resolves the `TOLEO_AES_BACKEND` override. Unknown values and `auto`
/// fall through to detection; a hardware backend requested on a host that
/// lacks it degrades to the software fallback (deterministic, and the
/// cipher is identical).
fn resolve_default() -> BackendKind {
    let requested = match std::env::var("TOLEO_AES_BACKEND") {
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "software" | "soft" | "table" | "ttable" => Some(BackendKind::Software),
            "aesni" | "aes-ni" | "ni" => Some(BackendKind::AesNi),
            "armce" | "armv8-ce" | "ce" | "neon" => Some(BackendKind::ArmCe),
            _ => None,
        },
        Err(_) => None,
    };
    match requested {
        Some(kind) if kind.is_available() => kind,
        Some(_) => BackendKind::Software,
        None => BackendKind::detect(),
    }
}

/// The backend new [`Aes128`](crate::aes::Aes128) instances dispatch to.
/// Resolved once per process (environment override, then hardware
/// detection) and cached; [`set_default_backend`] replaces it.
pub fn default_backend() -> BackendKind {
    if let Some(kind) = tag_to_kind(DEFAULT_BACKEND.load(Ordering::Relaxed)) {
        return kind;
    }
    let kind = resolve_default();
    DEFAULT_BACKEND.store(kind_to_tag(kind), Ordering::Relaxed);
    kind
}

/// Overrides the process-default backend (`None` re-runs environment +
/// detection). A test/bench hook: it only affects ciphers constructed
/// *after* the call, so concurrent tests should prefer
/// [`Aes128::with_backend`](crate::aes::Aes128::with_backend).
pub fn set_default_backend(kind: Option<BackendKind>) {
    let tag = match kind {
        Some(kind) => {
            let kind = if kind.is_available() {
                kind
            } else {
                BackendKind::Software
            };
            kind_to_tag(kind)
        }
        None => 0,
    };
    DEFAULT_BACKEND.store(tag, Ordering::Relaxed);
}

/// x86_64 AES-NI backend.
#[cfg(target_arch = "x86_64")]
pub use hw_x86::AesNiAes;

/// aarch64 crypto-extension backend.
#[cfg(target_arch = "aarch64")]
pub use hw_aarch64::ArmCeAes;

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod hw_x86 {
    //! AES-NI implementation. The only unsafe code in the workspace; every
    //! intrinsic call is guarded by the construction-time `aes` feature
    //! check (`AesNiAes::new` returns `None` without it).

    use super::Aes128Backend;
    use core::arch::x86_64::{
        __m128i, _mm_aesdec_si128, _mm_aesdeclast_si128, _mm_aesenc_si128, _mm_aesenclast_si128,
        _mm_aesimc_si128, _mm_aeskeygenassist_si128, _mm_loadu_si128, _mm_shuffle_epi32,
        _mm_slli_si128, _mm_storeu_si128, _mm_xor_si128,
    };

    /// AES-128 on the x86_64 AES-NI instructions, with an 8-wide
    /// interleaved multi-block schedule.
    #[derive(Clone, Copy)]
    pub struct AesNiAes {
        /// Encryption round keys.
        ek: [__m128i; 11],
        /// Equivalent-inverse-cipher decryption round keys (middle keys
        /// passed through AESIMC).
        dk: [__m128i; 11],
    }

    impl std::fmt::Debug for AesNiAes {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Never print key material.
            f.debug_struct("AesNiAes")
                .field("round_keys", &"<redacted>")
                .finish()
        }
    }

    impl AesNiAes {
        /// Expands `key`, or returns `None` when the CPU lacks AES-NI.
        pub fn new(key: &[u8; 16]) -> Option<Self> {
            if !std::arch::is_x86_feature_detected!("aes") {
                return None;
            }
            // SAFETY: the `aes` feature (which implies the SSE2 baseline
            // of x86_64) was verified on this CPU immediately above.
            Some(unsafe { Self::expand(key) })
        }

        /// # Safety
        ///
        /// The `aes` target feature must be available on the running CPU
        /// (`new` verifies it via `is_x86_feature_detected!` before the
        /// only call site).
        #[target_feature(enable = "aes")]
        unsafe fn expand(key: &[u8; 16]) -> Self {
            let mut ek = [_mm_setzero(); 11];
            ek[0] = _mm_loadu_si128(key.as_ptr().cast());
            // One key-schedule round: AESKEYGENASSIST supplies
            // RotWord/SubWord/Rcon in its top word; the xor-cascade of
            // shifted copies reproduces w[i] = w[i-4] ^ w[i-1] chaining.
            macro_rules! round {
                ($i:expr, $rcon:expr) => {{
                    let t = _mm_shuffle_epi32(_mm_aeskeygenassist_si128(ek[$i - 1], $rcon), 0xff);
                    let mut k = ek[$i - 1];
                    k = _mm_xor_si128(k, _mm_slli_si128(k, 4));
                    k = _mm_xor_si128(k, _mm_slli_si128(k, 4));
                    k = _mm_xor_si128(k, _mm_slli_si128(k, 4));
                    ek[$i] = _mm_xor_si128(k, t);
                }};
            }
            round!(1, 0x01);
            round!(2, 0x02);
            round!(3, 0x04);
            round!(4, 0x08);
            round!(5, 0x10);
            round!(6, 0x20);
            round!(7, 0x40);
            round!(8, 0x80);
            round!(9, 0x1b);
            round!(10, 0x36);
            let mut dk = [_mm_setzero(); 11];
            dk[0] = ek[10];
            dk[10] = ek[0];
            for i in 1..10 {
                dk[i] = _mm_aesimc_si128(ek[10 - i]);
            }
            AesNiAes { ek, dk }
        }
    }

    /// `_mm_setzero_si128` without importing another intrinsic name.
    #[inline]
    fn _mm_setzero() -> __m128i {
        // SAFETY: SSE2 is part of the x86_64 baseline.
        unsafe { core::arch::x86_64::_mm_setzero_si128() }
    }

    /// Encrypts up to 8 blocks with the round loop interleaved across all
    /// lanes, so the pipelined AESENC units stay busy.
    ///
    /// # Safety
    ///
    /// The `aes` target feature must be available on the running CPU; an
    /// `AesNiAes` value (whose constructor verified it) is proof.
    #[target_feature(enable = "aes")]
    unsafe fn enc_chunk(ek: &[__m128i; 11], blocks: &mut [[u8; 16]]) {
        debug_assert!(blocks.len() <= 8);
        let n = blocks.len();
        let mut b = [_mm_setzero(); 8];
        for (lane, block) in b.iter_mut().zip(blocks.iter()) {
            *lane = _mm_xor_si128(_mm_loadu_si128(block.as_ptr().cast()), ek[0]);
        }
        for k in &ek[1..10] {
            for lane in b.iter_mut().take(n) {
                *lane = _mm_aesenc_si128(*lane, *k);
            }
        }
        for (lane, block) in b.iter().zip(blocks.iter_mut()) {
            _mm_storeu_si128(
                block.as_mut_ptr().cast(),
                _mm_aesenclast_si128(*lane, ek[10]),
            );
        }
    }

    /// Decrypts up to 8 blocks (equivalent inverse cipher), interleaved.
    ///
    /// # Safety
    ///
    /// As [`enc_chunk`]: the `aes` target feature must be available.
    #[target_feature(enable = "aes")]
    unsafe fn dec_chunk(dk: &[__m128i; 11], blocks: &mut [[u8; 16]]) {
        debug_assert!(blocks.len() <= 8);
        let n = blocks.len();
        let mut b = [_mm_setzero(); 8];
        for (lane, block) in b.iter_mut().zip(blocks.iter()) {
            *lane = _mm_xor_si128(_mm_loadu_si128(block.as_ptr().cast()), dk[0]);
        }
        for k in &dk[1..10] {
            for lane in b.iter_mut().take(n) {
                *lane = _mm_aesdec_si128(*lane, *k);
            }
        }
        for (lane, block) in b.iter().zip(blocks.iter_mut()) {
            _mm_storeu_si128(
                block.as_mut_ptr().cast(),
                _mm_aesdeclast_si128(*lane, dk[10]),
            );
        }
    }

    impl Aes128Backend for AesNiAes {
        fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
            let mut out = [*block];
            // SAFETY: constructing `AesNiAes` proved the `aes` feature.
            unsafe { enc_chunk(&self.ek, &mut out) };
            out[0]
        }

        fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
            let mut out = [*block];
            // SAFETY: constructing `AesNiAes` proved the `aes` feature.
            unsafe { dec_chunk(&self.dk, &mut out) };
            out[0]
        }

        fn encrypt_blocks8(&self, blocks: &mut [[u8; 16]; 8]) {
            // SAFETY: constructing `AesNiAes` proved the `aes` feature.
            unsafe { enc_chunk(&self.ek, blocks) };
        }

        fn decrypt_blocks8(&self, blocks: &mut [[u8; 16]; 8]) {
            // SAFETY: constructing `AesNiAes` proved the `aes` feature.
            unsafe { dec_chunk(&self.dk, blocks) };
        }

        fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
            for chunk in blocks.chunks_mut(8) {
                // SAFETY: constructing `AesNiAes` proved the `aes` feature.
                unsafe { enc_chunk(&self.ek, chunk) };
            }
        }

        fn decrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
            for chunk in blocks.chunks_mut(8) {
                // SAFETY: constructing `AesNiAes` proved the `aes` feature.
                unsafe { dec_chunk(&self.dk, chunk) };
            }
        }
    }
}

#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
mod hw_aarch64 {
    //! ARMv8 crypto-extension implementation. Key expansion reuses the
    //! portable scalar schedule (there is no keygen-assist instruction);
    //! the round function uses AESE/AESMC and AESD/AESIMC, which fuse on
    //! every shipping ARMv8 core.

    use super::Aes128Backend;
    use core::arch::aarch64::{
        uint8x16_t, vaesdq_u8, vaeseq_u8, vaesimcq_u8, vaesmcq_u8, veorq_u8, vld1q_u8, vst1q_u8,
    };

    /// AES-128 on the aarch64 cryptography extensions, with an 8-wide
    /// interleaved multi-block schedule.
    #[derive(Clone, Copy)]
    pub struct ArmCeAes {
        /// Encryption round keys as raw bytes (loaded per call; the loads
        /// stay in L1 and the form keeps the struct arch-independent).
        ek: [[u8; 16]; 11],
        /// Equivalent-inverse-cipher decryption round keys.
        dk: [[u8; 16]; 11],
    }

    impl std::fmt::Debug for ArmCeAes {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Never print key material.
            f.debug_struct("ArmCeAes")
                .field("round_keys", &"<redacted>")
                .finish()
        }
    }

    impl ArmCeAes {
        /// Expands `key`, or returns `None` when the CPU lacks the AES
        /// extension.
        pub fn new(key: &[u8; 16]) -> Option<Self> {
            if !std::arch::is_aarch64_feature_detected!("aes") {
                return None;
            }
            // Scalar FIPS-197 key schedule, identical to the software
            // backend's, then AESIMC the middle decryption keys.
            let soft = crate::aes::TtableAes::new(key);
            let (ek_words, _) = soft.round_key_words();
            let mut ek = [[0u8; 16]; 11];
            for (r, rk) in ek.iter_mut().enumerate() {
                for c in 0..4 {
                    rk[4 * c..4 * c + 4].copy_from_slice(&ek_words[4 * r + c].to_be_bytes());
                }
            }
            let mut dk = [[0u8; 16]; 11];
            dk[0] = ek[10];
            dk[10] = ek[0];
            for i in 1..10 {
                // SAFETY: the `aes` feature was verified above.
                unsafe {
                    let k = vld1q_u8(ek[10 - i].as_ptr());
                    vst1q_u8(dk[i].as_mut_ptr(), vaesimcq_u8(k));
                }
            }
            Some(ArmCeAes { ek, dk })
        }
    }

    /// Encrypts up to 8 blocks, rounds interleaved across lanes.
    ///
    /// # Safety
    ///
    /// The `aes` target feature must be available on the running CPU; an
    /// `ArmCeAes` value (whose constructor verified it) is proof.
    #[target_feature(enable = "aes")]
    unsafe fn enc_chunk(ek: &[[u8; 16]; 11], blocks: &mut [[u8; 16]]) {
        debug_assert!(blocks.len() <= 8);
        let n = blocks.len();
        let mut b: [uint8x16_t; 8] = [vld1q_u8([0u8; 16].as_ptr()); 8];
        for (lane, block) in b.iter_mut().zip(blocks.iter()) {
            *lane = vld1q_u8(block.as_ptr());
        }
        // AESE = AddRoundKey + SubBytes + ShiftRows; AESMC = MixColumns.
        for rk in ek.iter().take(9) {
            let k = vld1q_u8(rk.as_ptr());
            for lane in b.iter_mut().take(n) {
                *lane = vaesmcq_u8(vaeseq_u8(*lane, k));
            }
        }
        let k9 = vld1q_u8(ek[9].as_ptr());
        let k10 = vld1q_u8(ek[10].as_ptr());
        for (lane, block) in b.iter_mut().zip(blocks.iter_mut()) {
            *lane = veorq_u8(vaeseq_u8(*lane, k9), k10);
            vst1q_u8(block.as_mut_ptr(), *lane);
        }
    }

    /// Decrypts up to 8 blocks (equivalent inverse cipher), interleaved.
    ///
    /// # Safety
    ///
    /// As [`enc_chunk`]: the `aes` target feature must be available.
    #[target_feature(enable = "aes")]
    unsafe fn dec_chunk(dk: &[[u8; 16]; 11], blocks: &mut [[u8; 16]]) {
        debug_assert!(blocks.len() <= 8);
        let n = blocks.len();
        let mut b: [uint8x16_t; 8] = [vld1q_u8([0u8; 16].as_ptr()); 8];
        for (lane, block) in b.iter_mut().zip(blocks.iter()) {
            *lane = vld1q_u8(block.as_ptr());
        }
        // AESD = AddRoundKey + InvShiftRows + InvSubBytes; AESIMC folds
        // the InvMixColumns between rounds (keys 1..=9 are pre-IMC'd).
        for rk in dk.iter().take(9) {
            let k = vld1q_u8(rk.as_ptr());
            for lane in b.iter_mut().take(n) {
                *lane = vaesimcq_u8(vaesdq_u8(*lane, k));
            }
        }
        let k9 = vld1q_u8(dk[9].as_ptr());
        let k10 = vld1q_u8(dk[10].as_ptr());
        for (lane, block) in b.iter_mut().zip(blocks.iter_mut()) {
            *lane = veorq_u8(vaesdq_u8(*lane, k9), k10);
            vst1q_u8(block.as_mut_ptr(), *lane);
        }
    }

    impl Aes128Backend for ArmCeAes {
        fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
            let mut out = [*block];
            // SAFETY: constructing `ArmCeAes` proved the `aes` feature.
            unsafe { enc_chunk(&self.ek, &mut out) };
            out[0]
        }

        fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
            let mut out = [*block];
            // SAFETY: constructing `ArmCeAes` proved the `aes` feature.
            unsafe { dec_chunk(&self.dk, &mut out) };
            out[0]
        }

        fn encrypt_blocks8(&self, blocks: &mut [[u8; 16]; 8]) {
            // SAFETY: constructing `ArmCeAes` proved the `aes` feature.
            unsafe { enc_chunk(&self.ek, blocks) };
        }

        fn decrypt_blocks8(&self, blocks: &mut [[u8; 16]; 8]) {
            // SAFETY: constructing `ArmCeAes` proved the `aes` feature.
            unsafe { dec_chunk(&self.dk, blocks) };
        }

        fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
            for chunk in blocks.chunks_mut(8) {
                // SAFETY: constructing `ArmCeAes` proved the `aes` feature.
                unsafe { enc_chunk(&self.ek, chunk) };
            }
        }

        fn decrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
            for chunk in blocks.chunks_mut(8) {
                // SAFETY: constructing `ArmCeAes` proved the `aes` feature.
                unsafe { dec_chunk(&self.dk, chunk) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::{reference::RefAes128, Aes128, TtableAes};
    use proptest::prelude::*;

    /// FIPS-197 Appendix B and C.1 vectors, run against every backend the
    /// host can construct.
    #[test]
    fn fips197_vectors_per_backend() {
        let vectors: [([u8; 16], [u8; 16], [u8; 16]); 2] = [
            (
                [
                    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09,
                    0xcf, 0x4f, 0x3c,
                ],
                [
                    0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0,
                    0x37, 0x07, 0x34,
                ],
                [
                    0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19,
                    0x6a, 0x0b, 0x32,
                ],
            ),
            (
                [
                    0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c,
                    0x0d, 0x0e, 0x0f,
                ],
                [
                    0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc,
                    0xdd, 0xee, 0xff,
                ],
                [
                    0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70,
                    0xb4, 0xc5, 0x5a,
                ],
            ),
        ];
        for kind in available_backends() {
            for (key, pt, ct) in &vectors {
                let aes = Aes128::with_backend(key, kind);
                assert_eq!(aes.backend(), kind, "requested backend must be honored");
                assert_eq!(aes.encrypt_block(pt), *ct, "{} encrypt", kind.name());
                assert_eq!(aes.decrypt_block(ct), *pt, "{} decrypt", kind.name());
            }
        }
    }

    #[test]
    fn software_is_always_available_and_first() {
        let all = available_backends();
        assert_eq!(all[0], BackendKind::Software);
        assert!(BackendKind::Software.is_available());
    }

    #[test]
    fn unavailable_backend_falls_back_to_software() {
        // At least one of the two hardware kinds is impossible on any
        // single host (they belong to different architectures).
        let foreign = if cfg!(target_arch = "x86_64") {
            BackendKind::ArmCe
        } else {
            BackendKind::AesNi
        };
        assert!(!foreign.is_available());
        let aes = Aes128::with_backend(&[7u8; 16], foreign);
        assert_eq!(aes.backend(), BackendKind::Software);
        // Still computes AES correctly.
        let soft = TtableAes::new(&[7u8; 16]);
        assert_eq!(
            aes.encrypt_block(&[1u8; 16]),
            soft.encrypt_block(&[1u8; 16])
        );
    }

    #[test]
    fn default_backend_override_roundtrip() {
        let prior = default_backend();
        set_default_backend(Some(BackendKind::Software));
        assert_eq!(default_backend(), BackendKind::Software);
        assert_eq!(Aes128::new(&[0u8; 16]).backend(), BackendKind::Software);
        set_default_backend(Some(prior));
        assert_eq!(default_backend(), prior);
    }

    #[test]
    fn detect_prefers_hardware_when_available() {
        let detected = BackendKind::detect();
        assert!(detected.is_available());
        if BackendKind::AesNi.is_available() || BackendKind::ArmCe.is_available() {
            assert_ne!(detected, BackendKind::Software);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(BackendKind::Software.name(), "software");
        assert_eq!(BackendKind::AesNi.name(), "aes-ni");
        assert_eq!(BackendKind::ArmCe.name(), "armv8-ce");
    }

    #[test]
    fn blocks8_matches_singles_per_backend() {
        for kind in available_backends() {
            let aes = Aes128::with_backend(b"interleave-key!!", kind);
            let mut lanes = [[0u8; 16]; 8];
            for (i, lane) in lanes.iter_mut().enumerate() {
                lane[0] = i as u8;
                lane[15] = 0xa5;
            }
            let singles: Vec<[u8; 16]> = lanes.iter().map(|b| aes.encrypt_block(b)).collect();
            let mut batch = lanes;
            aes.encrypt_blocks8(&mut batch);
            assert_eq!(batch.to_vec(), singles, "{} encrypt8", kind.name());
            aes.decrypt_blocks8(&mut batch);
            assert_eq!(batch, lanes, "{} decrypt8 roundtrip", kind.name());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        /// Every enabled backend agrees with the byte-oriented FIPS-197
        /// reference oracle on random keys and blocks, both directions.
        #[test]
        fn backends_match_reference_oracle(
            key in proptest::array::uniform16(any::<u8>()),
            block in proptest::array::uniform16(any::<u8>()),
        ) {
            let oracle = RefAes128::new(&key);
            let expect_ct = oracle.encrypt_block(&block);
            let expect_pt = oracle.decrypt_block(&block);
            for kind in available_backends() {
                let aes = Aes128::with_backend(&key, kind);
                prop_assert_eq!(aes.backend(), kind);
                prop_assert_eq!(aes.encrypt_block(&block), expect_ct);
                prop_assert_eq!(aes.decrypt_block(&block), expect_pt);
            }
        }

        /// The multi-block API agrees with single-block calls for every
        /// enabled backend at every batch length (1..=20 covers full
        /// 8-lane chunks plus ragged remainders).
        #[test]
        fn batch_api_matches_singles(
            key in proptest::array::uniform16(any::<u8>()),
            blocks in proptest::collection::vec(proptest::array::uniform16(any::<u8>()), 1..20),
        ) {
            for kind in available_backends() {
                let aes = Aes128::with_backend(&key, kind);
                let mut batch = blocks.clone();
                aes.encrypt_blocks(&mut batch);
                for (b, orig) in batch.iter().zip(blocks.iter()) {
                    prop_assert_eq!(*b, aes.encrypt_block(orig));
                }
                aes.decrypt_blocks(&mut batch);
                prop_assert_eq!(&batch, &blocks);
            }
        }
    }
}
