//! Keyed message authentication codes.
//!
//! The paper's integrity scheme is `MAC = Hash_key(version, address, cipher)`
//! with 56-bit tags (eight tags packed per 64-byte MAC block, Fig. 4). We
//! implement the keyed hash as SipHash-2-4 — a real PRF, written from
//! scratch — and truncate to 56 bits.

/// A 56-bit MAC tag as stored in the MAC block.
///
/// # Examples
///
/// ```
/// use toleo_crypto::mac::{MacKey, Tag56};
///
/// let key = MacKey::new([0u8; 16]);
/// let tag: Tag56 = key.mac(7, 0x1000, b"ciphertext bytes");
/// assert!(tag.verify(&key.mac(7, 0x1000, b"ciphertext bytes")));
/// assert!(!tag.verify(&key.mac(8, 0x1000, b"ciphertext bytes")));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Tag56(u64);

impl Tag56 {
    /// Bit width of the stored tag.
    pub const BITS: u32 = 56;

    /// Builds a tag from a raw value (masked to 56 bits).
    pub fn from_raw(v: u64) -> Self {
        Tag56(v & ((1u64 << 56) - 1))
    }

    /// The raw 56-bit value.
    pub fn as_raw(self) -> u64 {
        self.0
    }

    /// Constant-shape comparison against another tag.
    pub fn verify(self, other: &Tag56) -> bool {
        // A real implementation would be constant-time; for the simulator a
        // branch-free xor-compare keeps the spirit.
        (self.0 ^ other.0) == 0
    }
}

/// Key for the MAC PRF.
#[derive(Clone)]
pub struct MacKey {
    k0: u64,
    k1: u64,
}

impl std::fmt::Debug for MacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MacKey")
            .field("key", &"<redacted>")
            .finish()
    }
}

impl MacKey {
    /// Creates a MAC key from 16 bytes of key material.
    pub fn new(key: [u8; 16]) -> Self {
        MacKey {
            k0: u64::from_le_bytes(key[..8].try_into().expect("8 bytes")),
            k1: u64::from_le_bytes(key[8..].try_into().expect("8 bytes")),
        }
    }

    /// Computes the 56-bit tag over `(version, address, ciphertext)`.
    pub fn mac(&self, version: u64, address: u64, ciphertext: &[u8]) -> Tag56 {
        let mut input = Vec::with_capacity(16 + ciphertext.len());
        input.extend_from_slice(&version.to_le_bytes());
        input.extend_from_slice(&address.to_le_bytes());
        input.extend_from_slice(ciphertext);
        Tag56::from_raw(siphash24(self.k0, self.k1, &input))
    }
}

#[inline]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// SipHash-2-4 (Aumasson & Bernstein), from scratch.
pub fn siphash24(k0: u64, k1: u64, data: &[u8]) -> u64 {
    let mut v = [
        k0 ^ 0x736f6d6570736575,
        k1 ^ 0x646f72616e646f6d,
        k0 ^ 0x6c7967656e657261,
        k1 ^ 0x7465646279746573,
    ];
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        v[3] ^= m;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= m;
    }
    let rem = chunks.remainder();
    let mut last = (data.len() as u64 & 0xff) << 56;
    for (i, b) in rem.iter().enumerate() {
        last |= (*b as u64) << (8 * i);
    }
    v[3] ^= last;
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^= last;
    v[2] ^= 0xff;
    for _ in 0..4 {
        sipround(&mut v);
    }
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the SipHash paper (Appendix A):
    /// key = 00..0f, message = 00..0e, output 0xa129ca6149be45e5.
    #[test]
    fn siphash_reference_vector() {
        let key: Vec<u8> = (0..16u8).collect();
        let k0 = u64::from_le_bytes(key[..8].try_into().unwrap());
        let k1 = u64::from_le_bytes(key[8..].try_into().unwrap());
        let msg: Vec<u8> = (0..15u8).collect();
        assert_eq!(siphash24(k0, k1, &msg), 0xa129ca6149be45e5);
    }

    #[test]
    fn tag_is_56_bits() {
        let key = MacKey::new([0xffu8; 16]);
        for i in 0..100u64 {
            let tag = key.mac(i, i * 64, &[0u8; 64]);
            assert!(tag.as_raw() < (1 << 56));
        }
    }

    #[test]
    fn mac_binds_version_address_and_data() {
        let key = MacKey::new([1u8; 16]);
        let base = key.mac(1, 0x1000, b"data");
        assert_ne!(base, key.mac(2, 0x1000, b"data"), "version must be bound");
        assert_ne!(base, key.mac(1, 0x1040, b"data"), "address must be bound");
        assert_ne!(base, key.mac(1, 0x1000, b"data!"), "data must be bound");
        assert_eq!(base, key.mac(1, 0x1000, b"data"));
    }

    #[test]
    fn mac_key_separation() {
        let a = MacKey::new([1u8; 16]);
        let b = MacKey::new([2u8; 16]);
        assert_ne!(a.mac(0, 0, b"x"), b.mac(0, 0, b"x"));
    }

    #[test]
    fn debug_redacts_key() {
        let key = MacKey::new([7u8; 16]);
        assert!(format!("{key:?}").contains("redacted"));
    }
}
