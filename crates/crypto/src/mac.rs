//! Keyed message authentication codes.
//!
//! The paper's integrity scheme is `MAC = Hash_key(version, address, cipher)`
//! with 56-bit tags (eight tags packed per 64-byte MAC block, Fig. 4). We
//! implement the keyed hash as SipHash-2-4 — a real PRF, written from
//! scratch — and truncate to 56 bits.

// audit: allow-file(indexing, SipHash state words and 8-byte chunks have fixed widths by construction)

/// A 56-bit MAC tag as stored in the MAC block.
///
/// # Examples
///
/// ```
/// use toleo_crypto::mac::{MacKey, Tag56};
///
/// let key = MacKey::new([0u8; 16]);
/// let tag: Tag56 = key.mac(7, 0x1000, b"ciphertext bytes");
/// assert!(tag.verify(&key.mac(7, 0x1000, b"ciphertext bytes")));
/// assert!(!tag.verify(&key.mac(8, 0x1000, b"ciphertext bytes")));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Tag56(u64);

impl Tag56 {
    /// Bit width of the stored tag.
    pub const BITS: u32 = 56;

    /// Builds a tag from a raw value (masked to 56 bits).
    pub fn from_raw(v: u64) -> Self {
        Tag56(v & ((1u64 << 56) - 1))
    }

    /// The raw 56-bit value.
    pub fn as_raw(self) -> u64 {
        self.0
    }

    /// Constant-shape comparison against another tag.
    pub fn verify(self, other: &Tag56) -> bool {
        // A real implementation would be constant-time; for the simulator a
        // branch-free xor-compare keeps the spirit.
        (self.0 ^ other.0) == 0
    }
}

/// Key for the MAC PRF.
#[derive(Clone)]
pub struct MacKey {
    k0: u64,
    k1: u64,
}

impl std::fmt::Debug for MacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MacKey")
            .field("key", &"<redacted>")
            .finish()
    }
}

impl MacKey {
    /// Creates a MAC key from 16 bytes of key material.
    pub fn new(key: [u8; 16]) -> Self {
        let halves = key.as_chunks::<8>().0;
        MacKey {
            k0: u64::from_le_bytes(halves[0]),
            k1: u64::from_le_bytes(halves[1]),
        }
    }

    /// Computes the 56-bit tag over `(version, address, ciphertext)`.
    ///
    /// The `(version, address)` prefix is fed to SipHash as two
    /// pre-packed 64-bit words, so no concatenation buffer is allocated —
    /// this runs twice per protected memory operation (seal + verify) and
    /// used to be the engine's only hot-path heap allocation.
    pub fn mac(&self, version: u64, address: u64, ciphertext: &[u8]) -> Tag56 {
        Tag56::from_raw(siphash24_prefixed(
            self.k0,
            self.k1,
            [version, address],
            ciphertext,
        ))
    }
}

#[inline]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// One SipHash message-word compression (two c-rounds).
#[inline]
fn sip_compress(v: &mut [u64; 4], m: u64) {
    v[3] ^= m;
    sipround(v);
    sipround(v);
    v[0] ^= m;
}

/// SipHash-2-4 (Aumasson & Bernstein), from scratch.
pub fn siphash24(k0: u64, k1: u64, data: &[u8]) -> u64 {
    siphash24_prefixed(k0, k1, [], data)
}

/// SipHash-2-4 over the message `prefix words ‖ data`, hashing the prefix
/// as pre-packed little-endian 64-bit words. Byte-identical to
/// [`siphash24`] over the concatenated buffer, without materializing it.
fn siphash24_prefixed<const N: usize>(k0: u64, k1: u64, prefix: [u64; N], data: &[u8]) -> u64 {
    let mut v = [
        k0 ^ 0x736f6d6570736575,
        k1 ^ 0x646f72616e646f6d,
        k0 ^ 0x6c7967656e657261,
        k1 ^ 0x7465646279746573,
    ];
    for m in prefix {
        sip_compress(&mut v, m);
    }
    let (words, rem) = data.as_chunks::<8>();
    for chunk in words {
        let m = u64::from_le_bytes(*chunk);
        sip_compress(&mut v, m);
    }
    let total_len = 8 * N + data.len();
    let mut last = (total_len as u64 & 0xff) << 56;
    for (i, b) in rem.iter().enumerate() {
        last |= (*b as u64) << (8 * i);
    }
    sip_compress(&mut v, last);
    v[2] ^= 0xff;
    for _ in 0..4 {
        sipround(&mut v);
    }
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the SipHash paper (Appendix A):
    /// key = 00..0f, message = 00..0e, output 0xa129ca6149be45e5.
    #[test]
    fn siphash_reference_vector() {
        let key: Vec<u8> = (0..16u8).collect();
        let k0 = u64::from_le_bytes(key[..8].try_into().unwrap());
        let k1 = u64::from_le_bytes(key[8..].try_into().unwrap());
        let msg: Vec<u8> = (0..15u8).collect();
        assert_eq!(siphash24(k0, k1, &msg), 0xa129ca6149be45e5);
    }

    #[test]
    fn tag_is_56_bits() {
        let key = MacKey::new([0xffu8; 16]);
        for i in 0..100u64 {
            let tag = key.mac(i, i * 64, &[0u8; 64]);
            assert!(tag.as_raw() < (1 << 56));
        }
    }

    /// The prefixed (allocation-free) path is byte-identical to hashing
    /// the concatenated `version ‖ address ‖ ciphertext` buffer, at every
    /// tail length mod 8.
    #[test]
    fn mac_matches_concatenated_siphash() {
        let key = MacKey::new([0x3cu8; 16]);
        for len in 0..=67usize {
            let ct: Vec<u8> = (0..len as u8).collect();
            let mut buf = Vec::with_capacity(16 + len);
            buf.extend_from_slice(&0xdead_beef_u64.to_le_bytes());
            buf.extend_from_slice(&0x1040_u64.to_le_bytes());
            buf.extend_from_slice(&ct);
            let expect = Tag56::from_raw(siphash24(key.k0, key.k1, &buf));
            assert_eq!(key.mac(0xdead_beef, 0x1040, &ct), expect, "len {len}");
        }
    }

    #[test]
    fn mac_binds_version_address_and_data() {
        let key = MacKey::new([1u8; 16]);
        let base = key.mac(1, 0x1000, b"data");
        assert_ne!(base, key.mac(2, 0x1000, b"data"), "version must be bound");
        assert_ne!(base, key.mac(1, 0x1040, b"data"), "address must be bound");
        assert_ne!(base, key.mac(1, 0x1000, b"data!"), "data must be bound");
        assert_eq!(base, key.mac(1, 0x1000, b"data"));
    }

    #[test]
    fn mac_key_separation() {
        let a = MacKey::new([1u8; 16]);
        let b = MacKey::new([2u8; 16]);
        assert_ne!(a.mac(0, 0, b"x"), b.mac(0, 0, b"x"));
    }

    #[test]
    fn debug_redacts_key() {
        let key = MacKey::new([7u8; 16]);
        assert!(format!("{key:?}").contains("redacted"));
    }
}
