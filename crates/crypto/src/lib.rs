//! # toleo-crypto
//!
//! Cryptographic substrate for the Toleo reproduction
//! (*Toleo: Scaling Freshness to Tera-scale Memory using CXL and PIM*,
//! ASPLOS 2024). Everything here is implemented from scratch:
//!
//! * [`aes`] — AES-128 block cipher (FIPS-197, test vectors included),
//!   dispatching at construction to the best [`backend`] the host offers.
//! * [`backend`] — pluggable AES-128 backends: the portable T-table
//!   software cipher plus hardware AES (x86_64 AES-NI / aarch64 crypto
//!   extensions) selected by runtime feature detection, all exposing a
//!   pipelined multi-block API so hardware instruction-level parallelism
//!   is actually exploited.
//! * [`modes`] — AES-CTR (client-SGX MEE style) and AES-XTS (scalable-SGX /
//!   Toleo style, with a `(version, address)` tweak).
//! * [`mac`] — 56-bit truncated SipHash-2-4 tags, as packed eight-per-block
//!   in the paper's MAC layout.
//! * [`ide`] — CXL 2.0 IDE link model: non-deterministic stream cipher,
//!   per-flit MAC, replay counter (the properties §4.1/§6.1 rely on).
//! * [`range`] — D-RaNGe DRAM true-random generator model, the Toleo
//!   controller's entropy source for stealth re-initialization.
//! * [`tdisp`] — TDISP-style attestation and TVM attach/detach lifecycle
//!   with per-epoch IDE key derivation.
//!
//! # Quick example
//!
//! ```
//! use toleo_crypto::modes::{AesXts, Tweak};
//! use toleo_crypto::mac::MacKey;
//!
//! let xts = AesXts::new(b"0123456789abcdef", b"fedcba9876543210");
//! let mac = MacKey::new(*b"mac-key-16-bytes");
//!
//! // Encrypt one 64-byte cache block under version 3 at address 0x4_0000.
//! let mut block = [0u8; 64];
//! let tweak = Tweak { version: 3, address: 0x4_0000 };
//! xts.encrypt(tweak, &mut block);
//! let tag = mac.mac(3, 0x4_0000, &block);
//!
//! // Verify on read-back.
//! assert!(tag.verify(&mac.mac(3, 0x4_0000, &block)));
//! xts.decrypt(tweak, &mut block);
//! assert_eq!(block, [0u8; 64]);
//! ```

// `unsafe` is denied everywhere except the hardware AES backends, which
// need `core::arch` intrinsics; `backend::hw` carries the only allow and
// every unsafe block there documents its safety contract.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod backend;
pub mod ide;
pub mod mac;
pub mod modes;
pub mod range;
pub mod tdisp;
