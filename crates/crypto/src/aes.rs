//! AES-128 block cipher implemented from scratch (FIPS-197).
//!
//! This is the cipher substrate the Toleo memory-protection engine uses for
//! AES-XTS (data confidentiality, scalable-SGX style) and AES-CTR (client-SGX
//! style). The *latency* of the hardware AES engine (40 cycles in the paper's
//! Table 3) is modelled separately in `toleo-sim`; this implementation is
//! about functional-engine wall-clock.
//!
//! [`Aes128`] is a thin dispatcher over the pluggable [`crate::backend`]
//! layer: at construction it selects the best [`BackendKind`] the host
//! offers (x86_64 AES-NI, aarch64 crypto extensions, or the portable
//! [`TtableAes`] software fallback) and every block operation — including
//! the pipelined [`encrypt_blocks`](Aes128::encrypt_blocks) multi-block
//! API — routes to that backend with a single enum match.
//!
//! [`TtableAes`] is the classic T-table formulation: SubBytes, ShiftRows
//! and MixColumns are fused into four 256-entry u32 lookup tables per
//! direction (built at compile time from the S-box), the state is held as
//! four u32 column words, and the key schedule — including the
//! InvMixColumns-transformed decryption round keys of the equivalent
//! inverse cipher — is expanded once at construction. Table lookups are
//! the classic AES cache-timing side channel, which is one more reason the
//! hardware backends are preferred whenever the host supports them.
//!
//! The original byte-oriented implementation is retained under
//! `#[cfg(test)]` as [`reference`] and every backend is property-tested
//! for equivalence against it over random keys and blocks.
//!
//! # Examples
//!
//! ```
//! use toleo_crypto::aes::Aes128;
//!
//! let key = [0u8; 16];
//! let aes = Aes128::new(&key);
//! let pt = *b"attack at dawn!!";
//! let ct = aes.encrypt_block(&pt);
//! assert_eq!(aes.decrypt_block(&ct), pt);
//! ```

// audit: allow-file(indexing, state words and T-table lookups use 8-bit indices into 256-entry tables and fixed-width round-key arrays)

use crate::backend::{Aes128Backend, BackendKind};

/// Number of 32-bit words in an AES-128 key.
const NK: usize = 4;
/// Number of rounds for AES-128.
const NR: usize = 10;

/// The AES S-box.
#[rustfmt::skip]
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The inverse AES S-box.
#[rustfmt::skip]
const INV_SBOX: [u8; 256] = [
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e, 0x81, 0xf3, 0xd7, 0xfb,
    0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87, 0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb,
    0x54, 0x7b, 0x94, 0x32, 0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49, 0x6d, 0x8b, 0xd1, 0x25,
    0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16, 0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92,
    0x6c, 0x70, 0x48, 0x50, 0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05, 0xb8, 0xb3, 0x45, 0x06,
    0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02, 0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b,
    0x3a, 0x91, 0x11, 0x41, 0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8, 0x1c, 0x75, 0xdf, 0x6e,
    0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89, 0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b,
    0xfc, 0x56, 0x3e, 0x4b, 0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59, 0x27, 0x80, 0xec, 0x5f,
    0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d, 0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef,
    0xa0, 0xe0, 0x3b, 0x4d, 0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63, 0x55, 0x21, 0x0c, 0x7d,
];

/// Round constants for key expansion.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiply by x in GF(2^8) modulo x^8 + x^4 + x^3 + x + 1.
#[inline]
const fn xtime(b: u8) -> u8 {
    (b << 1) ^ (0x1b * (b >> 7))
}

/// General GF(2^8) multiplication (small multiplier, used for table
/// construction and by the reference MixColumns).
#[inline]
const fn gmul(a: u8, b: u8) -> u8 {
    let mut p = 0u8;
    let mut a = a;
    let mut b = b;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
        i += 1;
    }
    p
}

/// Builds the four forward T-tables. `TE[0][x]` packs one MixColumns column
/// of `SBOX[x]` as `(2s, s, s, 3s)` big-endian; `TE[k]` is the same word
/// rotated right by `8k` bits, so one table lookup per state byte covers
/// SubBytes, ShiftRows (via the byte the caller picks) and MixColumns.
const fn build_enc_tables() -> [[u32; 256]; 4] {
    let mut t = [[0u32; 256]; 4];
    let mut x = 0;
    while x < 256 {
        let s = SBOX[x];
        let w = ((xtime(s) as u32) << 24)
            | ((s as u32) << 16)
            | ((s as u32) << 8)
            | (xtime(s) ^ s) as u32;
        t[0][x] = w;
        t[1][x] = w.rotate_right(8);
        t[2][x] = w.rotate_right(16);
        t[3][x] = w.rotate_right(24);
        x += 1;
    }
    t
}

/// Builds the four inverse T-tables: `TD[0][x]` packs the InvMixColumns
/// column of `INV_SBOX[x]` as `(14s, 9s, 13s, 11s)` big-endian.
const fn build_dec_tables() -> [[u32; 256]; 4] {
    let mut t = [[0u32; 256]; 4];
    let mut x = 0;
    while x < 256 {
        let s = INV_SBOX[x];
        let w = ((gmul(s, 0x0e) as u32) << 24)
            | ((gmul(s, 0x09) as u32) << 16)
            | ((gmul(s, 0x0d) as u32) << 8)
            | gmul(s, 0x0b) as u32;
        t[0][x] = w;
        t[1][x] = w.rotate_right(8);
        t[2][x] = w.rotate_right(16);
        t[3][x] = w.rotate_right(24);
        x += 1;
    }
    t
}

/// Forward T-tables (SubBytes + ShiftRows + MixColumns fused).
static TE: [[u32; 256]; 4] = build_enc_tables();
/// Inverse T-tables (InvSubBytes + InvShiftRows + InvMixColumns fused).
static TD: [[u32; 256]; 4] = build_dec_tables();

/// InvMixColumns of a round-key word, expressed through the TD tables:
/// `TD[k][x]` applies InvMixColumns to `INV_SBOX[x]`, so indexing with
/// `SBOX[byte]` cancels the S-box and leaves pure InvMixColumns.
#[inline]
fn inv_mix_word(w: u32) -> u32 {
    TD[0][SBOX[(w >> 24) as usize] as usize]
        ^ TD[1][SBOX[(w >> 16) as usize & 0xff] as usize]
        ^ TD[2][SBOX[(w >> 8) as usize & 0xff] as usize]
        ^ TD[3][SBOX[w as usize & 0xff] as usize]
}

/// The portable T-table software backend: an expanded AES-128 key ready
/// for block encryption/decryption on any architecture.
///
/// Construct with [`TtableAes::new`]; both the 44 encryption round-key
/// words and the InvMixColumns-transformed decryption round keys of the
/// equivalent inverse cipher are precomputed. Most callers should use
/// [`Aes128`], which picks a hardware backend when one is available.
#[derive(Clone)]
pub struct TtableAes {
    /// Encryption round keys, one u32 per state column, big-endian packed.
    ek: [u32; 4 * (NR + 1)],
    /// Decryption round keys for the equivalent inverse cipher.
    dk: [u32; 4 * (NR + 1)],
}

impl std::fmt::Debug for TtableAes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("TtableAes")
            .field("round_keys", &"<redacted>")
            .finish()
    }
}

impl TtableAes {
    /// Expands `key` into encryption and decryption round keys.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut ek = [0u32; 4 * (NR + 1)];
        for (i, chunk) in key.as_chunks::<4>().0.iter().enumerate() {
            ek[i] = u32::from_be_bytes(*chunk);
        }
        for i in NK..4 * (NR + 1) {
            let mut temp = ek[i - 1];
            if i % NK == 0 {
                let r = temp.rotate_left(8);
                temp = ((SBOX[(r >> 24) as usize] as u32) << 24)
                    | ((SBOX[(r >> 16) as usize & 0xff] as u32) << 16)
                    | ((SBOX[(r >> 8) as usize & 0xff] as u32) << 8)
                    | SBOX[r as usize & 0xff] as u32;
                temp ^= (RCON[i / NK - 1] as u32) << 24;
            }
            ek[i] = ek[i - NK] ^ temp;
        }
        // Equivalent inverse cipher: reverse the round order and apply
        // InvMixColumns to every round key except the first and last.
        let mut dk = [0u32; 4 * (NR + 1)];
        for r in 0..=NR {
            for j in 0..4 {
                let w = ek[4 * (NR - r) + j];
                dk[4 * r + j] = if r == 0 || r == NR {
                    w
                } else {
                    inv_mix_word(w)
                };
            }
        }
        TtableAes { ek, dk }
    }

    /// Raw big-endian (encryption, decryption) round-key words. The
    /// aarch64 hardware backend reuses this scalar key schedule (ARMv8 has
    /// no keygen-assist instruction).
    #[cfg(target_arch = "aarch64")]
    pub(crate) fn round_key_words(&self) -> (&[u32; 4 * (NR + 1)], &[u32; 4 * (NR + 1)]) {
        (&self.ek, &self.dk)
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let rk = &self.ek;
        let words = block.as_chunks::<4>().0;
        let mut s0 = u32::from_be_bytes(words[0]) ^ rk[0];
        let mut s1 = u32::from_be_bytes(words[1]) ^ rk[1];
        let mut s2 = u32::from_be_bytes(words[2]) ^ rk[2];
        let mut s3 = u32::from_be_bytes(words[3]) ^ rk[3];
        // Middle rounds: iterate round keys by 4-word chunks so the
        // compiler sees in-bounds indexing without checks.
        for k in rk[4..4 * NR].chunks_exact(4) {
            let t0 = TE[0][(s0 >> 24) as usize]
                ^ TE[1][(s1 >> 16) as usize & 0xff]
                ^ TE[2][(s2 >> 8) as usize & 0xff]
                ^ TE[3][s3 as usize & 0xff]
                ^ k[0];
            let t1 = TE[0][(s1 >> 24) as usize]
                ^ TE[1][(s2 >> 16) as usize & 0xff]
                ^ TE[2][(s3 >> 8) as usize & 0xff]
                ^ TE[3][s0 as usize & 0xff]
                ^ k[1];
            let t2 = TE[0][(s2 >> 24) as usize]
                ^ TE[1][(s3 >> 16) as usize & 0xff]
                ^ TE[2][(s0 >> 8) as usize & 0xff]
                ^ TE[3][s1 as usize & 0xff]
                ^ k[2];
            let t3 = TE[0][(s3 >> 24) as usize]
                ^ TE[1][(s0 >> 16) as usize & 0xff]
                ^ TE[2][(s1 >> 8) as usize & 0xff]
                ^ TE[3][s2 as usize & 0xff]
                ^ k[3];
            s0 = t0;
            s1 = t1;
            s2 = t2;
            s3 = t3;
        }
        // Final round: SubBytes + ShiftRows only.
        let k = 4 * NR;
        let o0 = sub_word_shifted(s0, s1, s2, s3) ^ rk[k];
        let o1 = sub_word_shifted(s1, s2, s3, s0) ^ rk[k + 1];
        let o2 = sub_word_shifted(s2, s3, s0, s1) ^ rk[k + 2];
        let o3 = sub_word_shifted(s3, s0, s1, s2) ^ rk[k + 3];
        pack_state(o0, o1, o2, o3)
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let rk = &self.dk;
        let words = block.as_chunks::<4>().0;
        let mut s0 = u32::from_be_bytes(words[0]) ^ rk[0];
        let mut s1 = u32::from_be_bytes(words[1]) ^ rk[1];
        let mut s2 = u32::from_be_bytes(words[2]) ^ rk[2];
        let mut s3 = u32::from_be_bytes(words[3]) ^ rk[3];
        for k in rk[4..4 * NR].chunks_exact(4) {
            let t0 = TD[0][(s0 >> 24) as usize]
                ^ TD[1][(s3 >> 16) as usize & 0xff]
                ^ TD[2][(s2 >> 8) as usize & 0xff]
                ^ TD[3][s1 as usize & 0xff]
                ^ k[0];
            let t1 = TD[0][(s1 >> 24) as usize]
                ^ TD[1][(s0 >> 16) as usize & 0xff]
                ^ TD[2][(s3 >> 8) as usize & 0xff]
                ^ TD[3][s2 as usize & 0xff]
                ^ k[1];
            let t2 = TD[0][(s2 >> 24) as usize]
                ^ TD[1][(s1 >> 16) as usize & 0xff]
                ^ TD[2][(s0 >> 8) as usize & 0xff]
                ^ TD[3][s3 as usize & 0xff]
                ^ k[2];
            let t3 = TD[0][(s3 >> 24) as usize]
                ^ TD[1][(s2 >> 16) as usize & 0xff]
                ^ TD[2][(s1 >> 8) as usize & 0xff]
                ^ TD[3][s0 as usize & 0xff]
                ^ k[3];
            s0 = t0;
            s1 = t1;
            s2 = t2;
            s3 = t3;
        }
        // Final round: InvSubBytes + InvShiftRows only.
        let k = 4 * NR;
        let o0 = inv_sub_word_shifted(s0, s3, s2, s1) ^ rk[k];
        let o1 = inv_sub_word_shifted(s1, s0, s3, s2) ^ rk[k + 1];
        let o2 = inv_sub_word_shifted(s2, s1, s0, s3) ^ rk[k + 2];
        let o3 = inv_sub_word_shifted(s3, s2, s1, s0) ^ rk[k + 3];
        pack_state(o0, o1, o2, o3)
    }
}

impl Aes128Backend for TtableAes {
    fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        TtableAes::encrypt_block(self, block)
    }

    fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        TtableAes::decrypt_block(self, block)
    }
}

/// AES-128 with the backend chosen at construction.
///
/// [`Aes128::new`] consults [`crate::backend::default_backend`]: hardware
/// AES (AES-NI / ARMv8-CE) when the host supports it, the T-table software
/// cipher otherwise, overridable through the `TOLEO_AES_BACKEND`
/// environment variable or [`crate::backend::set_default_backend`]. The
/// choice is per-instance and immutable, so a protection engine built with
/// one backend keeps it for life.
#[derive(Clone)]
pub struct Aes128 {
    inner: Inner,
}

#[derive(Clone)]
enum Inner {
    Soft(TtableAes),
    #[cfg(target_arch = "x86_64")]
    AesNi(crate::backend::AesNiAes),
    #[cfg(target_arch = "aarch64")]
    ArmCe(crate::backend::ArmCeAes),
}

/// Dispatches `$body` to the selected backend with `$b` bound to it.
macro_rules! dispatch {
    ($self:expr, $b:ident => $body:expr) => {
        match &$self.inner {
            Inner::Soft($b) => $body,
            #[cfg(target_arch = "x86_64")]
            Inner::AesNi($b) => $body,
            #[cfg(target_arch = "aarch64")]
            Inner::ArmCe($b) => $body,
        }
    };
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128")
            .field("backend", &self.backend().name())
            .field("round_keys", &"<redacted>")
            .finish()
    }
}

impl Aes128 {
    /// Expands `key` under the process-default backend.
    pub fn new(key: &[u8; 16]) -> Self {
        Self::with_backend(key, crate::backend::default_backend())
    }

    /// Expands `key` under an explicit backend. If `kind` is not available
    /// on this host the portable software backend is used instead, so the
    /// result is always functional (and always computes the same cipher).
    pub fn with_backend(key: &[u8; 16], kind: BackendKind) -> Self {
        let inner = match kind {
            #[cfg(target_arch = "x86_64")]
            BackendKind::AesNi => match crate::backend::AesNiAes::new(key) {
                Some(hw) => Inner::AesNi(hw),
                None => Inner::Soft(TtableAes::new(key)),
            },
            #[cfg(target_arch = "aarch64")]
            BackendKind::ArmCe => match crate::backend::ArmCeAes::new(key) {
                Some(hw) => Inner::ArmCe(hw),
                None => Inner::Soft(TtableAes::new(key)),
            },
            _ => Inner::Soft(TtableAes::new(key)),
        };
        Aes128 { inner }
    }

    /// The backend this instance dispatches to.
    pub fn backend(&self) -> BackendKind {
        match &self.inner {
            Inner::Soft(_) => BackendKind::Software,
            #[cfg(target_arch = "x86_64")]
            Inner::AesNi(_) => BackendKind::AesNi,
            #[cfg(target_arch = "aarch64")]
            Inner::ArmCe(_) => BackendKind::ArmCe,
        }
    }

    /// Encrypts one 16-byte block.
    #[inline]
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        dispatch!(self, b => b.encrypt_block(block))
    }

    /// Decrypts one 16-byte block.
    #[inline]
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        dispatch!(self, b => b.decrypt_block(block))
    }

    /// Encrypts eight independent blocks in place, exploiting the
    /// instruction-level parallelism of hardware AES.
    #[inline]
    pub fn encrypt_blocks8(&self, blocks: &mut [[u8; 16]; 8]) {
        dispatch!(self, b => b.encrypt_blocks8(blocks))
    }

    /// Decrypts eight independent blocks in place.
    #[inline]
    pub fn decrypt_blocks8(&self, blocks: &mut [[u8; 16]; 8]) {
        dispatch!(self, b => b.decrypt_blocks8(blocks))
    }

    /// Encrypts any number of independent blocks in place, pipelining in
    /// groups of up to eight. The single enum dispatch is paid once per
    /// call, not per block.
    #[inline]
    pub fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        dispatch!(self, b => b.encrypt_blocks(blocks))
    }

    /// Decrypts any number of independent blocks in place.
    #[inline]
    pub fn decrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        dispatch!(self, b => b.decrypt_blocks(blocks))
    }
}

/// SubBytes over the ShiftRows byte selection `(a>>24, b>>16, c>>8, d)`.
#[inline]
fn sub_word_shifted(a: u32, b: u32, c: u32, d: u32) -> u32 {
    ((SBOX[(a >> 24) as usize] as u32) << 24)
        | ((SBOX[(b >> 16) as usize & 0xff] as u32) << 16)
        | ((SBOX[(c >> 8) as usize & 0xff] as u32) << 8)
        | SBOX[d as usize & 0xff] as u32
}

/// InvSubBytes over the InvShiftRows byte selection.
#[inline]
fn inv_sub_word_shifted(a: u32, b: u32, c: u32, d: u32) -> u32 {
    ((INV_SBOX[(a >> 24) as usize] as u32) << 24)
        | ((INV_SBOX[(b >> 16) as usize & 0xff] as u32) << 16)
        | ((INV_SBOX[(c >> 8) as usize & 0xff] as u32) << 8)
        | INV_SBOX[d as usize & 0xff] as u32
}

#[inline]
fn pack_state(s0: u32, s1: u32, s2: u32, s3: u32) -> [u8; 16] {
    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(&s0.to_be_bytes());
    out[4..8].copy_from_slice(&s1.to_be_bytes());
    out[8..12].copy_from_slice(&s2.to_be_bytes());
    out[12..16].copy_from_slice(&s3.to_be_bytes());
    out
}

/// The original byte-oriented FIPS-197 implementation, retained verbatim as
/// the correctness oracle for the T-table cipher. Test-only: production code
/// always uses [`Aes128`].
#[cfg(test)]
pub(crate) mod reference {
    use super::{gmul, xtime, INV_SBOX, NK, NR, RCON, SBOX};

    /// Byte-oriented AES-128 (round keys as 16-byte arrays).
    #[derive(Clone)]
    pub struct RefAes128 {
        round_keys: [[u8; 16]; NR + 1],
    }

    impl RefAes128 {
        /// Expands `key` into round keys.
        pub fn new(key: &[u8; 16]) -> Self {
            let mut w = [[0u8; 4]; 4 * (NR + 1)];
            for (i, chunk) in key.chunks_exact(4).enumerate() {
                w[i].copy_from_slice(chunk);
            }
            for i in NK..4 * (NR + 1) {
                let mut temp = w[i - 1];
                if i % NK == 0 {
                    temp.rotate_left(1);
                    for t in temp.iter_mut() {
                        *t = SBOX[*t as usize];
                    }
                    temp[0] ^= RCON[i / NK - 1];
                }
                for j in 0..4 {
                    w[i][j] = w[i - NK][j] ^ temp[j];
                }
            }
            let mut round_keys = [[0u8; 16]; NR + 1];
            for (r, rk) in round_keys.iter_mut().enumerate() {
                for c in 0..4 {
                    rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
                }
            }
            RefAes128 { round_keys }
        }

        /// Encrypts one 16-byte block.
        pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
            let mut state = *block;
            add_round_key(&mut state, &self.round_keys[0]);
            for round in 1..NR {
                sub_bytes(&mut state);
                shift_rows(&mut state);
                mix_columns(&mut state);
                add_round_key(&mut state, &self.round_keys[round]);
            }
            sub_bytes(&mut state);
            shift_rows(&mut state);
            add_round_key(&mut state, &self.round_keys[NR]);
            state
        }

        /// Decrypts one 16-byte block.
        pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
            let mut state = *block;
            add_round_key(&mut state, &self.round_keys[NR]);
            for round in (1..NR).rev() {
                inv_shift_rows(&mut state);
                inv_sub_bytes(&mut state);
                add_round_key(&mut state, &self.round_keys[round]);
                inv_mix_columns(&mut state);
            }
            inv_shift_rows(&mut state);
            inv_sub_bytes(&mut state);
            add_round_key(&mut state, &self.round_keys[0]);
            state
        }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for s in state.iter_mut() {
            *s = SBOX[*s as usize];
        }
    }

    fn inv_sub_bytes(state: &mut [u8; 16]) {
        for s in state.iter_mut() {
            *s = INV_SBOX[*s as usize];
        }
    }

    /// State is column-major: state[4*c + r] is row r, column c.
    fn shift_rows(state: &mut [u8; 16]) {
        for r in 1..4 {
            let mut row = [0u8; 4];
            for c in 0..4 {
                row[c] = state[4 * ((c + r) % 4) + r];
            }
            for c in 0..4 {
                state[4 * c + r] = row[c];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        for r in 1..4 {
            let mut row = [0u8; 4];
            for c in 0..4 {
                row[c] = state[4 * ((c + 4 - r) % 4) + r];
            }
            for c in 0..4 {
                state[4 * c + r] = row[c];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
            state[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] =
                gmul(col[0], 0x0e) ^ gmul(col[1], 0x0b) ^ gmul(col[2], 0x0d) ^ gmul(col[3], 0x09);
            state[4 * c + 1] =
                gmul(col[0], 0x09) ^ gmul(col[1], 0x0e) ^ gmul(col[2], 0x0b) ^ gmul(col[3], 0x0d);
            state[4 * c + 2] =
                gmul(col[0], 0x0d) ^ gmul(col[1], 0x09) ^ gmul(col[2], 0x0e) ^ gmul(col[3], 0x0b);
            state[4 * c + 3] =
                gmul(col[0], 0x0b) ^ gmul(col[1], 0x0d) ^ gmul(col[2], 0x09) ^ gmul(col[3], 0x0e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// FIPS-197 Appendix B example vector.
    #[test]
    fn fips197_appendix_b() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expect = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt_block(&pt), expect);
        assert_eq!(aes.decrypt_block(&expect), pt);
        let oracle = reference::RefAes128::new(&key);
        assert_eq!(oracle.encrypt_block(&pt), expect);
        assert_eq!(oracle.decrypt_block(&expect), pt);
    }

    /// FIPS-197 Appendix C.1 vector.
    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = (0..16u8).collect::<Vec<_>>().try_into().unwrap();
        let pt = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expect = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt_block(&pt), expect);
        assert_eq!(aes.decrypt_block(&expect), pt);
        let oracle = reference::RefAes128::new(&key);
        assert_eq!(oracle.encrypt_block(&pt), expect);
        assert_eq!(oracle.decrypt_block(&expect), pt);
    }

    #[test]
    fn roundtrip_many_blocks() {
        let aes = Aes128::new(b"0123456789abcdef");
        for i in 0..64u64 {
            let mut block = [0u8; 16];
            block[..8].copy_from_slice(&i.to_le_bytes());
            block[8..].copy_from_slice(&(i.wrapping_mul(0x9e3779b97f4a7c15)).to_le_bytes());
            assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
        }
    }

    #[test]
    fn different_keys_differ() {
        let a = Aes128::new(&[0u8; 16]);
        let b = Aes128::new(&[1u8; 16]);
        let pt = [7u8; 16];
        assert_ne!(a.encrypt_block(&pt), b.encrypt_block(&pt));
    }

    #[test]
    fn debug_redacts_key() {
        let aes = Aes128::new(&[9u8; 16]);
        let dbg = format!("{aes:?}");
        assert!(dbg.contains("redacted"));
        assert!(!dbg.contains('9'));
    }

    #[test]
    fn gmul_identity_and_known() {
        assert_eq!(gmul(0x57, 0x01), 0x57);
        assert_eq!(gmul(0x57, 0x02), 0xae);
        assert_eq!(gmul(0x57, 0x13), 0xfe); // FIPS-197 example
    }

    #[test]
    fn tables_relate_by_rotation() {
        for x in 0..256usize {
            for k in 1..4usize {
                assert_eq!(TE[k][x], TE[0][x].rotate_right(8 * k as u32));
                assert_eq!(TD[k][x], TD[0][x].rotate_right(8 * k as u32));
            }
        }
    }

    /// Walk the whole byte space through both ciphers at a fixed key.
    #[test]
    fn matches_reference_exhaustive_single_byte_sweep() {
        let key = *b"table-vs-bytes!!";
        let fast = Aes128::new(&key);
        let slow = reference::RefAes128::new(&key);
        for b in 0..=255u8 {
            let block = [b; 16];
            let ct = fast.encrypt_block(&block);
            assert_eq!(ct, slow.encrypt_block(&block), "byte {b:#04x}");
            assert_eq!(fast.decrypt_block(&ct), slow.decrypt_block(&ct));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The T-table cipher agrees with the byte-oriented oracle on
        /// random keys and blocks, both directions.
        #[test]
        fn matches_reference(key in proptest::array::uniform16(any::<u8>()),
                             block in proptest::array::uniform16(any::<u8>())) {
            let fast = Aes128::new(&key);
            let slow = reference::RefAes128::new(&key);
            prop_assert_eq!(fast.encrypt_block(&block), slow.encrypt_block(&block));
            prop_assert_eq!(fast.decrypt_block(&block), slow.decrypt_block(&block));
        }

        /// Roundtrip under the optimized cipher alone.
        #[test]
        fn roundtrip(key in proptest::array::uniform16(any::<u8>()),
                     block in proptest::array::uniform16(any::<u8>())) {
            let aes = Aes128::new(&key);
            prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
        }
    }
}
