//! D-RaNGe-style DRAM true-random number generator model.
//!
//! The Toleo controller uses D-RaNGe [Kim et al., HPCA'19] as its source of
//! randomness for stealth-version re-initialization and reset draws.
//! D-RaNGe reads DRAM cells with deliberately violated `tRCD` timing; some
//! cells ("RNG cells") then fail non-deterministically, and those failures
//! are harvested as entropy.
//!
//! We model the physics with a deterministic-but-well-mixed failure process
//! (so simulations are reproducible given a seed) exposed through the same
//! harvest-and-whiten pipeline real D-RaNGe uses: sample a segment of cells,
//! collect failure bits, whiten them (von Neumann extraction), and buffer
//! the output. The type implements [`rand::RngCore`] so any consumer in the
//! workspace can draw from it.

use rand::RngCore;

/// Number of simulated RNG cells harvested per activation.
const CELLS_PER_ACTIVATION: usize = 256;

/// Cells sampled per splitmix draw: one activation reads all 256 cells in
/// four 64-cell row segments, one well-mixed u64 per segment.
const CELLS_PER_DRAW: usize = 64;

/// A modelled D-RaNGe generator.
///
/// # Examples
///
/// ```
/// use toleo_crypto::range::DRange;
/// use rand::RngCore;
///
/// let mut rng = DRange::from_seed(42);
/// let a = rng.next_u64();
/// let b = rng.next_u64();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct DRange {
    /// Per-cell latent state: cells flip pseudo-randomly under reduced tRCD.
    cell_state: u64,
    /// Whitened output bits awaiting consumption (LSB-first).
    bit_buffer: u64,
    /// Number of valid bits in `bit_buffer`.
    bits_avail: u32,
    /// Count of raw cell reads performed (exposed for throughput stats).
    activations: u64,
}

impl DRange {
    /// Creates a generator whose cell process is seeded for reproducibility.
    pub fn from_seed(seed: u64) -> Self {
        DRange {
            cell_state: seed ^ 0x9e3779b97f4a7c15,
            bit_buffer: 0,
            bits_avail: 0,
            activations: 0,
        }
    }

    /// Number of reduced-latency DRAM activations performed so far.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// One splitmix64 step: models the charge race a 64-cell row segment of
    /// failed-timing reads loses or wins, one bit per cell.
    #[inline]
    fn sample_segment(&mut self) -> u64 {
        self.cell_state = self.cell_state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.cell_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// One reduced-tRCD activation: harvest failure bits from all 256 RNG
    /// cells (four 64-cell segments) and refill the buffer with von-Neumann
    /// whitened bits (consume bit pairs, emit the first bit on 01/10).
    fn activate(&mut self) {
        self.activations += 1;
        let mut out = 0u64;
        let mut n = 0u32;
        for _ in 0..CELLS_PER_ACTIVATION / CELLS_PER_DRAW {
            let mut raw = self.sample_segment();
            for _ in 0..CELLS_PER_DRAW / 2 {
                let pair = raw & 3;
                raw >>= 2;
                if (pair == 0b01 || pair == 0b10) && n < 64 {
                    out = (out << 1) | (pair & 1);
                    n += 1;
                }
            }
        }
        self.bit_buffer = out;
        self.bits_avail = n;
    }

    /// Consumes `n` whitened entropy bits (`n <= 64`), LSB-aligned.
    #[inline]
    fn take_bits(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 64);
        let mut out = 0u64;
        let mut got = 0u32;
        while got < n {
            if self.bits_avail == 0 {
                self.activate();
                continue;
            }
            let take = (n - got).min(self.bits_avail);
            let chunk = if take == 64 {
                self.bit_buffer
            } else {
                self.bit_buffer & ((1u64 << take) - 1)
            };
            self.bit_buffer = if take == 64 {
                0
            } else {
                self.bit_buffer >> take
            };
            self.bits_avail -= take;
            out |= chunk << got;
            got += take;
        }
        out
    }

    /// Draws a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Bernoulli draw with probability `1 / 2^log2_denominator`.
    ///
    /// This is the primitive the stealth reset policy uses (p = 2^-20). It
    /// consumes exactly `log2_denominator` entropy bits — the draw succeeds
    /// iff they are all zero — so the per-write reset check on the device
    /// hot path does not burn a full word of whitened entropy.
    pub fn one_in_pow2(&mut self, log2_denominator: u32) -> bool {
        debug_assert!(log2_denominator <= 63);
        self.take_bits(log2_denominator) == 0
    }
}

impl RngCore for DRange {
    fn next_u32(&mut self) -> u32 {
        self.take_bits(32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.take_bits(64)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for d in dest.iter_mut() {
            *d = self.take_bits(8) as u8;
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_bits_partial_draws_compose() {
        // Drawing 64 bits in uneven pieces consumes the same stream as one
        // whole-word draw from an identically seeded generator.
        let mut whole = DRange::from_seed(123);
        let mut pieces = DRange::from_seed(123);
        let expect = whole.take_bits(64);
        let lo = pieces.take_bits(7);
        let mid = pieces.take_bits(33);
        let hi = pieces.take_bits(24);
        assert_eq!(lo | (mid << 7) | (hi << 40), expect);
    }

    #[test]
    fn zero_bit_draw_is_free_and_true() {
        let mut rng = DRange::from_seed(5);
        // p = 2^0 = 1: always fires, consumes nothing.
        let before = rng.activations();
        assert!(rng.one_in_pow2(0));
        assert_eq!(rng.activations(), before);
    }

    #[test]
    fn reproducible_given_seed() {
        let mut a = DRange::from_seed(7);
        let mut b = DRange::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DRange::from_seed(1);
        let mut b = DRange::from_seed(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DRange::from_seed(3);
        for _ in 0..1000 {
            assert!(rng.below(1 << 27) < (1 << 27));
        }
        for _ in 0..1000 {
            assert!(rng.below(3) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn below_zero_panics() {
        DRange::from_seed(0).below(0);
    }

    #[test]
    fn one_in_pow2_rate_is_plausible() {
        let mut rng = DRange::from_seed(11);
        let trials = 200_000;
        let hits = (0..trials).filter(|_| rng.one_in_pow2(4)).count();
        let expected = trials / 16;
        // within 25% of 1/16
        assert!(
            (hits as f64 - expected as f64).abs() < expected as f64 * 0.25,
            "hits={hits} expected~{expected}"
        );
    }

    #[test]
    fn whitened_bytes_are_balanced() {
        let mut rng = DRange::from_seed(5);
        let mut ones = 0u32;
        let n = 10_000;
        for _ in 0..n {
            ones += (rng.take_bits(8) as u8).count_ones();
        }
        let total_bits = n * 8;
        let frac = ones as f64 / total_bits as f64;
        assert!((frac - 0.5).abs() < 0.02, "bit balance {frac}");
    }

    #[test]
    fn activations_counter_advances() {
        let mut rng = DRange::from_seed(5);
        let before = rng.activations();
        let _ = rng.next_u64();
        assert!(rng.activations() > before);
    }
}
