//! D-RaNGe-style DRAM true-random number generator model.
//!
//! The Toleo controller uses D-RaNGe [Kim et al., HPCA'19] as its source of
//! randomness for stealth-version re-initialization and reset draws.
//! D-RaNGe reads DRAM cells with deliberately violated `tRCD` timing; some
//! cells ("RNG cells") then fail non-deterministically, and those failures
//! are harvested as entropy.
//!
//! We model the physics with a deterministic-but-well-mixed failure process
//! (so simulations are reproducible given a seed) exposed through the same
//! harvest-and-whiten pipeline real D-RaNGe uses: sample a segment of cells,
//! collect failure bits, whiten them (von Neumann extraction), and buffer
//! the output. The type implements [`rand::RngCore`] so any consumer in the
//! workspace can draw from it.

use rand::RngCore;

/// Number of simulated RNG cells harvested per activation.
const CELLS_PER_ACTIVATION: usize = 256;

/// A modelled D-RaNGe generator.
///
/// # Examples
///
/// ```
/// use toleo_crypto::range::DRange;
/// use rand::RngCore;
///
/// let mut rng = DRange::from_seed(42);
/// let a = rng.next_u64();
/// let b = rng.next_u64();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct DRange {
    /// Per-cell latent state: cells flip pseudo-randomly under reduced tRCD.
    cell_state: u64,
    /// Whitened output bits awaiting consumption.
    buffer: Vec<u8>,
    /// Count of raw cell reads performed (exposed for throughput stats).
    activations: u64,
}

impl DRange {
    /// Creates a generator whose cell process is seeded for reproducibility.
    pub fn from_seed(seed: u64) -> Self {
        DRange {
            cell_state: seed ^ 0x9e3779b97f4a7c15,
            buffer: Vec::new(),
            activations: 0,
        }
    }

    /// Number of reduced-latency DRAM activations performed so far.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// One reduced-tRCD activation: harvest failure bits from the RNG cells
    /// and append von-Neumann-whitened bytes to the buffer.
    fn activate(&mut self) {
        self.activations += 1;
        let mut raw_bits = Vec::with_capacity(CELLS_PER_ACTIVATION);
        for _ in 0..CELLS_PER_ACTIVATION {
            // splitmix64 step models the charge race each failed-timing read
            // loses or wins.
            self.cell_state = self.cell_state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.cell_state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            raw_bits.push((z & 1) as u8);
        }
        // Von Neumann whitening: consume bit pairs, emit on 01/10.
        let mut acc = 0u8;
        let mut nbits = 0;
        for pair in raw_bits.chunks_exact(2) {
            match (pair[0], pair[1]) {
                (0, 1) => {
                    acc = (acc << 1) | 1;
                    nbits += 1;
                }
                (1, 0) => {
                    acc <<= 1;
                    nbits += 1;
                }
                _ => {}
            }
            if nbits == 8 {
                self.buffer.push(acc);
                acc = 0;
                nbits = 0;
            }
        }
    }

    fn take_byte(&mut self) -> u8 {
        while self.buffer.is_empty() {
            self.activate();
        }
        self.buffer.remove(0)
    }

    /// Draws a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Bernoulli draw with probability `1 / 2^log2_denominator`.
    ///
    /// This is the primitive the stealth reset policy uses (p = 2^-20).
    pub fn one_in_pow2(&mut self, log2_denominator: u32) -> bool {
        debug_assert!(log2_denominator <= 63);
        let mask = (1u64 << log2_denominator) - 1;
        (self.next_u64() & mask) == 0
    }
}

impl RngCore for DRange {
    fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill_bytes(&mut b);
        u32::from_le_bytes(b)
    }

    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for d in dest.iter_mut() {
            *d = self.take_byte();
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_given_seed() {
        let mut a = DRange::from_seed(7);
        let mut b = DRange::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DRange::from_seed(1);
        let mut b = DRange::from_seed(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DRange::from_seed(3);
        for _ in 0..1000 {
            assert!(rng.below(1 << 27) < (1 << 27));
        }
        for _ in 0..1000 {
            assert!(rng.below(3) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn below_zero_panics() {
        DRange::from_seed(0).below(0);
    }

    #[test]
    fn one_in_pow2_rate_is_plausible() {
        let mut rng = DRange::from_seed(11);
        let trials = 200_000;
        let hits = (0..trials).filter(|_| rng.one_in_pow2(4)).count();
        let expected = trials / 16;
        // within 25% of 1/16
        assert!(
            (hits as f64 - expected as f64).abs() < expected as f64 * 0.25,
            "hits={hits} expected~{expected}"
        );
    }

    #[test]
    fn whitened_bytes_are_balanced() {
        let mut rng = DRange::from_seed(5);
        let mut ones = 0u32;
        let n = 10_000;
        for _ in 0..n {
            ones += rng.take_byte().count_ones();
        }
        let total_bits = n * 8;
        let frac = ones as f64 / total_bits as f64;
        assert!((frac - 0.5).abs() < 0.02, "bit balance {frac}");
    }

    #[test]
    fn activations_counter_advances() {
        let mut rng = DRange::from_seed(5);
        let before = rng.activations();
        let _ = rng.next_u64();
        assert!(rng.activations() > before);
    }
}
