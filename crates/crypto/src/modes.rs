//! Block-cipher modes used by the Toleo protection engine.
//!
//! * [`AesCtr`] — counter mode, as used by client SGX's memory encryption
//!   engine. Requires a non-repeating nonce (the version number).
//! * [`AesXts`] — XEX-based tweaked-codebook mode with ciphertext stealing
//!   (we only need whole 16-byte blocks, so no stealing is implemented).
//!   Scalable SGX uses XTS with an address tweak only; Toleo uses XTS with a
//!   (version, address) tweak so freshness is bound into the ciphertext.

// audit: allow-file(indexing, lane indices are bounded by the 8-block pipeline width)

use crate::aes::Aes128;

/// A 128-bit XTS tweak: in Toleo it encodes the 64-bit full version number
/// and the 64-bit physical address of the cache-block sector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tweak {
    /// Full version number (UV << 27 | stealth), or 0 for version-less XTS.
    pub version: u64,
    /// Physical address of the 16-byte sector being processed.
    pub address: u64,
}

impl Tweak {
    /// Packs the tweak into the 16-byte little-endian block fed to AES.
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.version.to_le_bytes());
        out[8..].copy_from_slice(&self.address.to_le_bytes());
        out
    }
}

/// AES-128 counter mode (client-SGX style).
///
/// # Examples
///
/// ```
/// use toleo_crypto::modes::AesCtr;
///
/// let ctr = AesCtr::new(b"an example key!!");
/// let mut buf = *b"secret cacheline";
/// ctr.apply(42, 0x1000, &mut buf);
/// assert_ne!(&buf, b"secret cacheline");
/// ctr.apply(42, 0x1000, &mut buf); // CTR is an involution for same nonce
/// assert_eq!(&buf, b"secret cacheline");
/// ```
#[derive(Debug, Clone)]
pub struct AesCtr {
    cipher: Aes128,
}

impl AesCtr {
    /// Creates a CTR cipher from a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        AesCtr {
            cipher: Aes128::new(key),
        }
    }

    /// Creates a CTR cipher pinned to an explicit AES backend (testing and
    /// benchmarking; falls back to software if `kind` is unavailable).
    pub fn with_backend(key: &[u8; 16], kind: crate::backend::BackendKind) -> Self {
        AesCtr {
            cipher: Aes128::with_backend(key, kind),
        }
    }

    /// Encrypts or decrypts `data` in place with keystream derived from
    /// `(nonce, address, block_index)`. Same parameters -> same keystream,
    /// so calling twice round-trips.
    ///
    /// The keystream is generated up to eight counter blocks at a time
    /// through the cipher's pipelined multi-block API — CTR blocks are
    /// independent by construction, the ideal shape for hardware AES.
    pub fn apply(&self, nonce: u64, address: u64, data: &mut [u8]) {
        let mut template = [0u8; 16];
        template[..8].copy_from_slice(&nonce.to_le_bytes());
        template[8..12].copy_from_slice(&((address >> 4) as u32).to_le_bytes());
        ctr_keystream_xor(
            &self.cipher,
            template,
            |block, i| block[12..].copy_from_slice(&i.to_le_bytes()),
            data,
        );
    }
}

/// Applies an AES-CTR keystream to `data` in place, generating up to
/// eight counter blocks per pass through the pipelined multi-block API.
/// `template` carries the fixed counter-block fields (nonce, address,
/// sequence number — whatever the caller's layout is); `set_index`
/// writes the running block index into its slot. Shared by [`AesCtr`]
/// and the IDE link cipher, which differ only in that layout.
pub(crate) fn ctr_keystream_xor(
    cipher: &Aes128,
    template: [u8; 16],
    set_index: impl Fn(&mut [u8; 16], u32),
    data: &mut [u8],
) {
    let mut ctr_block = template;
    let mut ks = [[0u8; 16]; 8];
    for (batch, chunks) in data.chunks_mut(8 * 16).enumerate() {
        let lanes = chunks.len().div_ceil(16);
        for (j, lane) in ks.iter_mut().take(lanes).enumerate() {
            set_index(&mut ctr_block, (batch * 8 + j) as u32);
            *lane = ctr_block;
        }
        cipher.encrypt_blocks(&mut ks[..lanes]);
        for (chunk, lane) in chunks.chunks_mut(16).zip(ks.iter()) {
            xor_with(chunk, lane);
        }
    }
}

/// Multiply a 128-bit value by x (alpha) in GF(2^128) with the XTS
/// polynomial x^128 + x^7 + x^2 + x + 1, as one little-endian u128 shift
/// (byte i bit 7 carries into byte i+1 bit 0; the top bit folds back the
/// reduction constant 0x87).
#[inline]
fn gf128_mul_alpha(block: &mut [u8; 16]) {
    let v = u128::from_le_bytes(*block);
    let folded = (v << 1) ^ ((v >> 127) * 0x87);
    *block = folded.to_le_bytes();
}

/// AES-128-XTS for whole 16-byte sectors (IEEE 1619-2007 without ciphertext
/// stealing).
///
/// The memory protection engine encrypts each 64-byte cache block as four
/// consecutive sectors under one data-unit tweak.
///
/// # Examples
///
/// ```
/// use toleo_crypto::modes::{AesXts, Tweak};
///
/// let xts = AesXts::new(b"data-unit key 1!", b"tweak key 2 ....");
/// let tweak = Tweak { version: 7, address: 0x4000 };
/// let mut block = [0xabu8; 64];
/// xts.encrypt(tweak, &mut block);
/// assert_ne!(block, [0xabu8; 64]);
/// xts.decrypt(tweak, &mut block);
/// assert_eq!(block, [0xabu8; 64]);
/// ```
// audit: allow(secret, Aes128's manual Debug impl already redacts its round keys)
#[derive(Debug, Clone)]
pub struct AesXts {
    data_cipher: Aes128,
    tweak_cipher: Aes128,
}

impl AesXts {
    /// Creates an XTS cipher from the data key and the tweak key.
    pub fn new(data_key: &[u8; 16], tweak_key: &[u8; 16]) -> Self {
        AesXts {
            data_cipher: Aes128::new(data_key),
            tweak_cipher: Aes128::new(tweak_key),
        }
    }

    /// Creates an XTS cipher pinned to an explicit AES backend (testing
    /// and benchmarking; falls back to software if `kind` is unavailable).
    pub fn with_backend(
        data_key: &[u8; 16],
        tweak_key: &[u8; 16],
        kind: crate::backend::BackendKind,
    ) -> Self {
        AesXts {
            data_cipher: Aes128::with_backend(data_key, kind),
            tweak_cipher: Aes128::with_backend(tweak_key, kind),
        }
    }

    /// The backend the data cipher dispatches to.
    pub fn backend(&self) -> crate::backend::BackendKind {
        self.data_cipher.backend()
    }

    /// Encrypts the data-unit tweak once; per-16-byte-unit tweaks are then
    /// derived by GF(2^128) doubling, so a 64-byte cache block costs one
    /// tweak encryption plus four data-block encryptions.
    ///
    /// The returned bundle can be precomputed (and batched via
    /// [`tweak_blocks`](Self::tweak_blocks)) and replayed through
    /// [`encrypt_with_tweak`](Self::encrypt_with_tweak) /
    /// [`decrypt_with_tweak`](Self::decrypt_with_tweak), which is how the
    /// protection engine amortizes tweak encryption across a page walk.
    pub fn tweak_block(&self, tweak: Tweak) -> [u8; 16] {
        self.tweak_cipher.encrypt_block(&tweak.to_bytes())
    }

    /// Encrypts a whole run of data-unit tweaks through the pipelined
    /// multi-block API (tweak encryptions are mutually independent, so
    /// eight can be in flight at once). `out` receives one tweak bundle
    /// per input at the same index.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than `tweaks`.
    pub fn tweak_blocks(&self, tweaks: &[Tweak], out: &mut [[u8; 16]]) {
        // audit: allow(secret, only the tweak count reaches the panic message, never tweak values)
        assert!(out.len() >= tweaks.len(), "output bundle slice too short");
        for (slot, tweak) in out.iter_mut().zip(tweaks.iter()) {
            *slot = tweak.to_bytes();
        }
        self.tweak_cipher.encrypt_blocks(&mut out[..tweaks.len()]);
    }

    /// Encrypts `data` (length must be a multiple of 16) in place.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() % 16 != 0`.
    pub fn encrypt(&self, tweak: Tweak, data: &mut [u8]) {
        self.encrypt_with_tweak(self.tweak_block(tweak), data);
    }

    /// Decrypts `data` (length must be a multiple of 16) in place.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() % 16 != 0`.
    pub fn decrypt(&self, tweak: Tweak, data: &mut [u8]) {
        self.decrypt_with_tweak(self.tweak_block(tweak), data);
    }

    /// Encrypts `data` in place under a precomputed
    /// [`tweak_block`](Self::tweak_block) bundle, feeding consecutive
    /// sectors through the cipher's multi-block pipeline (a 64-byte cache
    /// block is one four-wide batch instead of four serial passes).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() % 16 != 0`.
    pub fn encrypt_with_tweak(&self, tweak0: [u8; 16], data: &mut [u8]) {
        self.apply_with_tweak(tweak0, data, true);
    }

    /// Decrypts `data` in place under a precomputed tweak bundle.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() % 16 != 0`.
    pub fn decrypt_with_tweak(&self, tweak0: [u8; 16], data: &mut [u8]) {
        self.apply_with_tweak(tweak0, data, false);
    }

    /// Shared XEX core: xor the per-sector tweak in, push up to eight
    /// sectors through the block cipher at once, xor the tweak back out.
    fn apply_with_tweak(&self, tweak0: [u8; 16], data: &mut [u8], encrypt: bool) {
        assert_eq!(data.len() % 16, 0, "XTS data must be whole sectors");
        let mut t = tweak0;
        let mut tweaks = [[0u8; 16]; 8];
        let mut blocks = [[0u8; 16]; 8];
        for chunks in data.chunks_mut(8 * 16) {
            let lanes = chunks.len() / 16;
            for (j, chunk) in chunks.as_chunks::<16>().0.iter().enumerate() {
                tweaks[j] = t;
                gf128_mul_alpha(&mut t);
                blocks[j] = *chunk;
                xor16(&mut blocks[j], &tweaks[j]);
            }
            if encrypt {
                self.data_cipher.encrypt_blocks(&mut blocks[..lanes]);
            } else {
                self.data_cipher.decrypt_blocks(&mut blocks[..lanes]);
            }
            for (j, chunk) in chunks.chunks_exact_mut(16).enumerate() {
                xor16(&mut blocks[j], &tweaks[j]);
                chunk.copy_from_slice(&blocks[j]);
            }
        }
    }
}

#[inline]
fn xor16(dst: &mut [u8; 16], src: &[u8; 16]) {
    *dst = (u128::from_ne_bytes(*dst) ^ u128::from_ne_bytes(*src)).to_ne_bytes();
}

/// XORs `key` into `data` (which may be shorter on the final chunk of a
/// keystream application). Shared with the IDE link cipher.
#[inline]
pub(crate) fn xor_with(data: &mut [u8], key: &[u8; 16]) {
    let (chunks, rest) = data.as_chunks_mut::<16>();
    for chunk in chunks {
        xor16(chunk, key);
    }
    for (d, k) in rest.iter_mut().zip(key.iter()) {
        *d ^= k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::reference::RefAes128;
    use proptest::prelude::*;

    /// Byte-wise GF(2^128) doubling, as originally implemented — the
    /// oracle for the u128 fast path.
    fn ref_gf128_mul_alpha(block: &mut [u8; 16]) {
        let mut carry = 0u8;
        for b in block.iter_mut() {
            let new_carry = *b >> 7;
            *b = (*b << 1) | carry;
            carry = new_carry;
        }
        if carry != 0 {
            block[0] ^= 0x87;
        }
    }

    /// XTS over the byte-oriented reference cipher: the oracle for
    /// [`AesXts`].
    fn ref_xts(
        data_key: &[u8; 16],
        tweak_key: &[u8; 16],
        tweak: Tweak,
        data: &mut [u8],
        encrypt: bool,
    ) {
        let data_cipher = RefAes128::new(data_key);
        let mut t = RefAes128::new(tweak_key).encrypt_block(&tweak.to_bytes());
        for chunk in data.chunks_mut(16) {
            let mut block: [u8; 16] = chunk.try_into().unwrap();
            for (b, k) in block.iter_mut().zip(t.iter()) {
                *b ^= k;
            }
            block = if encrypt {
                data_cipher.encrypt_block(&block)
            } else {
                data_cipher.decrypt_block(&block)
            };
            for (b, k) in block.iter_mut().zip(t.iter()) {
                *b ^= k;
            }
            chunk.copy_from_slice(&block);
            ref_gf128_mul_alpha(&mut t);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// u128 GF doubling agrees with the byte-wise original.
        #[test]
        fn gf128_matches_reference(block in proptest::array::uniform16(any::<u8>())) {
            let mut fast = block;
            let mut slow = block;
            gf128_mul_alpha(&mut fast);
            ref_gf128_mul_alpha(&mut slow);
            prop_assert_eq!(fast, slow);
        }

        /// The optimized XTS agrees with XTS over the reference cipher on
        /// random keys, tweaks and sector counts, both directions.
        #[test]
        fn xts_matches_reference(
            data_key in proptest::array::uniform16(any::<u8>()),
            tweak_key in proptest::array::uniform16(any::<u8>()),
            version in any::<u64>(),
            address in any::<u64>(),
            sectors in 1usize..8,
            seed in any::<u8>(),
        ) {
            let tweak = Tweak { version, address };
            let xts = AesXts::new(&data_key, &tweak_key);
            let data: Vec<u8> = (0..sectors * 16).map(|i| seed.wrapping_add(i as u8)).collect();

            let mut fast = data.clone();
            xts.encrypt(tweak, &mut fast);
            let mut slow = data.clone();
            ref_xts(&data_key, &tweak_key, tweak, &mut slow, true);
            prop_assert_eq!(&fast, &slow);

            xts.decrypt(tweak, &mut fast);
            ref_xts(&data_key, &tweak_key, tweak, &mut slow, false);
            prop_assert_eq!(&fast, &data);
            prop_assert_eq!(&slow, &data);
        }

        /// CTR over the optimized cipher matches a reference-cipher CTR.
        #[test]
        fn ctr_matches_reference(
            key in proptest::array::uniform16(any::<u8>()),
            nonce in any::<u64>(),
            address in any::<u64>(),
            data in proptest::collection::vec(any::<u8>(), 1..100),
        ) {
            let mut fast = data.clone();
            AesCtr::new(&key).apply(nonce, address, &mut fast);

            let cipher = RefAes128::new(&key);
            let mut slow = data.clone();
            for (i, chunk) in slow.chunks_mut(16).enumerate() {
                let mut ctr_block = [0u8; 16];
                ctr_block[..8].copy_from_slice(&nonce.to_le_bytes());
                ctr_block[8..12].copy_from_slice(&((address >> 4) as u32).to_le_bytes());
                ctr_block[12..].copy_from_slice(&(i as u32).to_le_bytes());
                let ks = cipher.encrypt_block(&ctr_block);
                for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                    *d ^= k;
                }
            }
            prop_assert_eq!(fast, slow);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Precomputing tweak bundles in a batch and replaying them via
        /// the `_with_tweak` entry points is identical to the one-shot
        /// API, for every backend this host enables.
        #[test]
        fn precomputed_tweaks_match_one_shot(
            data_key in proptest::array::uniform16(any::<u8>()),
            tweak_key in proptest::array::uniform16(any::<u8>()),
            versions in proptest::collection::vec(any::<u64>(), 1..12),
            address in any::<u64>(),
            seed in any::<u8>(),
        ) {
            for kind in crate::backend::available_backends() {
                let xts = AesXts::with_backend(&data_key, &tweak_key, kind);
                let tweaks: Vec<Tweak> = versions
                    .iter()
                    .map(|&v| Tweak { version: v, address })
                    .collect();
                let mut bundles = vec![[0u8; 16]; tweaks.len()];
                xts.tweak_blocks(&tweaks, &mut bundles);
                for (tw, bundle) in tweaks.iter().zip(bundles.iter()) {
                    prop_assert_eq!(*bundle, xts.tweak_block(*tw));
                    let data: Vec<u8> = (0..64).map(|i| seed.wrapping_add(i)).collect();
                    let mut one_shot = data.clone();
                    xts.encrypt(*tw, &mut one_shot);
                    let mut replayed = data.clone();
                    xts.encrypt_with_tweak(*bundle, &mut replayed);
                    prop_assert_eq!(&one_shot, &replayed);
                    xts.decrypt_with_tweak(*bundle, &mut replayed);
                    prop_assert_eq!(&replayed, &data);
                }
            }
        }

        /// XTS and CTR produce identical bytes on every enabled backend
        /// (hardware and software are interchangeable bit-for-bit).
        #[test]
        fn modes_agree_across_backends(
            key in proptest::array::uniform16(any::<u8>()),
            key2 in proptest::array::uniform16(any::<u8>()),
            version in any::<u64>(),
            address in any::<u64>(),
            sectors in 1usize..10,
            seed in any::<u8>(),
        ) {
            let data: Vec<u8> = (0..sectors * 16).map(|i| seed.wrapping_add(i as u8)).collect();
            let tweak = Tweak { version, address };
            let mut reference: Option<(Vec<u8>, Vec<u8>)> = None;
            for kind in crate::backend::available_backends() {
                let mut xts_out = data.clone();
                AesXts::with_backend(&key, &key2, kind).encrypt(tweak, &mut xts_out);
                let mut ctr_out = data.clone();
                AesCtr::with_backend(&key, kind).apply(version, address, &mut ctr_out);
                match &reference {
                    None => reference = Some((xts_out, ctr_out)),
                    Some((x, c)) => {
                        prop_assert_eq!(&xts_out, x);
                        prop_assert_eq!(&ctr_out, c);
                    }
                }
            }
        }
    }

    #[test]
    fn ctr_roundtrip_and_nonce_sensitivity() {
        let ctr = AesCtr::new(&[3u8; 16]);
        let orig = [0x5au8; 64];
        let mut a = orig;
        let mut b = orig;
        ctr.apply(1, 0x1000, &mut a);
        ctr.apply(2, 0x1000, &mut b);
        assert_ne!(a, b, "different nonces must give different ciphertext");
        ctr.apply(1, 0x1000, &mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn ctr_address_sensitivity() {
        let ctr = AesCtr::new(&[3u8; 16]);
        let mut a = [0u8; 16];
        let mut b = [0u8; 16];
        ctr.apply(1, 0x1000, &mut a);
        ctr.apply(1, 0x2000, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn xts_roundtrip_64_bytes() {
        let xts = AesXts::new(&[1u8; 16], &[2u8; 16]);
        let orig: Vec<u8> = (0..64u8).collect();
        let mut buf = orig.clone();
        let tw = Tweak {
            version: 99,
            address: 0xdead_beef,
        };
        xts.encrypt(tw, &mut buf);
        assert_ne!(buf, orig);
        xts.decrypt(tw, &mut buf);
        assert_eq!(buf, orig);
    }

    #[test]
    fn xts_same_data_same_tweak_same_ct() {
        // This is the scalable-SGX confidentiality weakness: deterministic
        // encryption under a fixed tweak.
        let xts = AesXts::new(&[1u8; 16], &[2u8; 16]);
        let tw = Tweak {
            version: 0,
            address: 0x1000,
        };
        let mut a = [7u8; 16];
        let mut b = [7u8; 16];
        xts.encrypt(tw, &mut a);
        xts.encrypt(tw, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn xts_version_tweak_breaks_determinism() {
        // Toleo folds the version into the tweak: same write data at the
        // same address yields fresh ciphertext.
        let xts = AesXts::new(&[1u8; 16], &[2u8; 16]);
        let mut a = [7u8; 16];
        let mut b = [7u8; 16];
        xts.encrypt(
            Tweak {
                version: 1,
                address: 0x1000,
            },
            &mut a,
        );
        xts.encrypt(
            Tweak {
                version: 2,
                address: 0x1000,
            },
            &mut b,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn xts_blocks_are_position_dependent() {
        let xts = AesXts::new(&[1u8; 16], &[2u8; 16]);
        let tw = Tweak {
            version: 5,
            address: 0,
        };
        let mut buf = [9u8; 32];
        xts.encrypt(tw, &mut buf);
        assert_ne!(
            buf[..16],
            buf[16..],
            "sequential sectors must differ via alpha tweak"
        );
    }

    #[test]
    #[should_panic(expected = "whole sectors")]
    fn xts_rejects_partial_sector() {
        let xts = AesXts::new(&[1u8; 16], &[2u8; 16]);
        let mut buf = [0u8; 15];
        xts.encrypt(
            Tweak {
                version: 0,
                address: 0,
            },
            &mut buf,
        );
    }

    #[test]
    fn gf128_known_doubling() {
        let mut t = [0u8; 16];
        t[0] = 0x80; // high bit of first byte -> shifts within the byte
        gf128_mul_alpha(&mut t);
        assert_eq!(t[1], 0x01);
        // Overflow of the topmost bit folds back the polynomial 0x87.
        let mut t = [0u8; 16];
        t[15] = 0x80;
        gf128_mul_alpha(&mut t);
        assert_eq!(t[0], 0x87);
        assert_eq!(t[15], 0x00);
    }
}
