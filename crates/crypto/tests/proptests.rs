//! Property-based tests for the cryptographic substrate.

use proptest::prelude::*;
use toleo_crypto::aes::Aes128;
use toleo_crypto::ide::establish_session;
use toleo_crypto::mac::MacKey;
use toleo_crypto::modes::AesCtr;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// AES decrypt(encrypt(x)) == x for any key and block.
    #[test]
    fn aes_roundtrip(key in proptest::array::uniform16(any::<u8>()),
                     block in proptest::array::uniform16(any::<u8>())) {
        let aes = Aes128::new(&key);
        prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
    }

    /// AES is a permutation: distinct plaintexts map to distinct
    /// ciphertexts under the same key.
    #[test]
    fn aes_injective(key in proptest::array::uniform16(any::<u8>()),
                     a in proptest::array::uniform16(any::<u8>()),
                     b in proptest::array::uniform16(any::<u8>())) {
        prop_assume!(a != b);
        let aes = Aes128::new(&key);
        prop_assert_ne!(aes.encrypt_block(&a), aes.encrypt_block(&b));
    }

    /// CTR is an involution for fixed (nonce, address).
    #[test]
    fn ctr_involution(key in proptest::array::uniform16(any::<u8>()),
                      nonce in any::<u64>(), addr in any::<u64>(),
                      data in proptest::collection::vec(any::<u8>(), 1..200)) {
        let ctr = AesCtr::new(&key);
        let mut buf = data.clone();
        ctr.apply(nonce, addr, &mut buf);
        ctr.apply(nonce, addr, &mut buf);
        prop_assert_eq!(buf, data);
    }

    /// MAC tags are deterministic and 56-bit.
    #[test]
    fn mac_deterministic(key in proptest::array::uniform16(any::<u8>()),
                         v in any::<u64>(), a in any::<u64>(),
                         data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let k = MacKey::new(key);
        let t1 = k.mac(v, a, &data);
        let t2 = k.mac(v, a, &data);
        prop_assert_eq!(t1, t2);
        prop_assert!(t1.as_raw() < (1 << 56));
    }

    /// IDE delivers any payload sequence intact, in order.
    #[test]
    fn ide_delivers_streams(payloads in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..64), 1..20)) {
        let (mut tx, mut rx) = establish_session([0x21u8; 32]);
        for p in &payloads {
            let flit = tx.send(p);
            prop_assert_eq!(&rx.receive(&flit).unwrap(), p);
        }
    }

    /// Any single-bit flip anywhere in an IDE flit's ciphertext is caught.
    #[test]
    fn ide_detects_any_bitflip(payload in proptest::collection::vec(any::<u8>(), 1..64),
                               bit in 0usize..8, which in any::<u16>()) {
        let (mut tx, mut rx) = establish_session([0x21u8; 32]);
        let mut flit = tx.send(&payload);
        let idx = which as usize % flit.ciphertext.len();
        flit.ciphertext[idx] ^= 1 << bit;
        prop_assert!(rx.receive(&flit).is_err());
    }
}
