//! Host-side metadata caches (§4.4, Fig. 5).
//!
//! Stealth versions are cached on the trusted host in two inclusive
//! structures, probed in parallel on every LLC miss:
//!
//! * the **L2-TLB stealth extension** — the last-level TLB's data array is
//!   widened by 12 bytes so every TLB entry carries its page's flat entry
//!   (256 entries, fully associative);
//! * the **stealth version overflow buffer** — a 28 KB, 16-way buffer of
//!   56-byte blocks holding uneven and full side entries (a full entry
//!   occupies four blocks, tagged with a 2-bit offset).
//!
//! MAC blocks (with their co-located UVs) are cached in a dedicated 32 KB
//! per-core, 16-way MAC cache, exactly as client SGX does.
//!
//! These caches are *performance* structures: the authoritative version
//! state lives in the Toleo device. Hits avoid CXL round trips; misses are
//! counted as device traffic by the protection engine and the simulator.

// audit: allow-file(indexing, set indices are reduced by set_index modulo the set count)

use crate::trip::TripFormat;
use serde::{Deserialize, Serialize};

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that found the block resident.
    pub hits: u64,
    /// Accesses that had to fetch.
    pub misses: u64,
}

impl CacheStats {
    /// Accumulates another cache's counters into this one (used to
    /// aggregate per-shard caches in a sharded deployment).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }

    /// Hit rate in `[0, 1]`; 0 if never accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A generic set-associative cache directory with LRU replacement. Tracks
/// presence only (tags, no data) — the simulator's standard idiom.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    /// Per-set LRU stacks, most-recent first.
    sets: Vec<Vec<u64>>,
    ways: usize,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates a cache with `num_sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets == 0` or `ways == 0`.
    pub fn new(num_sets: usize, ways: usize) -> Self {
        assert!(num_sets > 0 && ways > 0, "cache geometry must be non-zero");
        SetAssocCache {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            stats: CacheStats::default(),
        }
    }

    /// A fully associative cache with `entries` entries.
    pub fn fully_associative(entries: usize) -> Self {
        Self::new(1, entries)
    }

    fn set_index(&self, key: u64) -> usize {
        // Multiplicative hash spreads page-grain keys across sets.
        (key.wrapping_mul(0x9e3779b97f4a7c15) >> 32) as usize % self.sets.len()
    }

    /// Looks up `key`, updating LRU and filling on miss. Returns `true` on
    /// hit. The evicted victim (if any) is returned via `Err`-free side
    /// effect — use [`access_with_victim`](Self::access_with_victim) when
    /// the caller needs it.
    pub fn access(&mut self, key: u64) -> bool {
        self.access_with_victim(key).0
    }

    /// Like [`access`](Self::access) but also returns the evicted key.
    pub fn access_with_victim(&mut self, key: u64) -> (bool, Option<u64>) {
        let idx = self.set_index(key);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&k| k == key) {
            let k = set.remove(pos);
            set.insert(0, k);
            self.stats.hits += 1;
            return (true, None);
        }
        self.stats.misses += 1;
        set.insert(0, key);
        let victim = if set.len() > self.ways {
            set.pop()
        } else {
            None
        };
        (false, victim)
    }

    /// Probes without filling or touching LRU/stats.
    pub fn contains(&self, key: u64) -> bool {
        self.sets[self.set_index(key)].contains(&key)
    }

    /// Removes `key` if present (e.g. TLB shootdown / page remap).
    pub fn invalidate(&mut self, key: u64) {
        let idx = self.set_index(key);
        self.sets[idx].retain(|&k| k != key);
    }

    /// Access statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The combined host-side stealth version cache: TLB extension + overflow
/// buffer, with the paper's geometry by default.
#[derive(Debug, Clone)]
pub struct StealthCache {
    /// Flat entries ride in the L2 TLB extension, keyed by page number.
    tlb_ext: SetAssocCache,
    /// Uneven/full side entries in 56-byte blocks, keyed by
    /// `page * 4 + sub-block`.
    overflow: SetAssocCache,
    combined: CacheStats,
}

/// Geometry of the stealth cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StealthCacheConfig {
    /// L2 TLB entries (paper: 256, fully associative).
    pub tlb_entries: usize,
    /// Overflow buffer blocks (paper: 512 x 56 B = 28 KB).
    pub overflow_blocks: usize,
    /// Overflow buffer associativity (paper: 16).
    pub overflow_ways: usize,
}

impl Default for StealthCacheConfig {
    fn default() -> Self {
        StealthCacheConfig {
            tlb_entries: 256,
            overflow_blocks: 512,
            overflow_ways: 16,
        }
    }
}

impl StealthCache {
    /// Creates a stealth cache with the given geometry.
    pub fn new(cfg: StealthCacheConfig) -> Self {
        StealthCache {
            tlb_ext: SetAssocCache::fully_associative(cfg.tlb_entries),
            overflow: SetAssocCache::new(
                (cfg.overflow_blocks / cfg.overflow_ways).max(1),
                cfg.overflow_ways,
            ),
            combined: CacheStats::default(),
        }
    }

    /// Paper-default geometry.
    pub fn paper_default() -> Self {
        Self::new(StealthCacheConfig::default())
    }

    /// Looks up the stealth version(s) for `page` stored in `format`.
    /// Returns `true` when every structure needed to reconstruct the
    /// version was resident (no CXL access needed).
    pub fn access(&mut self, page: u64, format: TripFormat) -> bool {
        let flat_hit = self.tlb_ext.access(page);
        let hit = match format {
            TripFormat::Flat => flat_hit,
            TripFormat::Uneven => {
                let side_hit = self.overflow.access(page * 4);
                flat_hit && side_hit
            }
            TripFormat::Full => {
                // A full entry spans four 56-byte blocks; all must be
                // resident. Access them all so they fill together.
                let mut all = true;
                for sub in 0..4 {
                    all &= self.overflow.access(page * 4 + sub);
                }
                flat_hit && all
            }
        };
        if hit {
            self.combined.hits += 1;
        } else {
            self.combined.misses += 1;
        }
        hit
    }

    /// Drops any cached state for `page` (reset / remap / downgrade).
    pub fn invalidate_page(&mut self, page: u64) {
        self.tlb_ext.invalidate(page);
        for sub in 0..4 {
            self.overflow.invalidate(page * 4 + sub);
        }
    }

    /// Combined page-grain hit/miss statistics (the paper's Fig. 7 metric).
    pub fn stats(&self) -> CacheStats {
        self.combined
    }

    /// TLB-extension-only statistics.
    pub fn tlb_stats(&self) -> CacheStats {
        self.tlb_ext.stats()
    }

    /// Overflow-buffer-only statistics.
    pub fn overflow_stats(&self) -> CacheStats {
        self.overflow.stats()
    }
}

/// The per-core MAC cache (32 KB, 16-way, 64-byte blocks -> 512 blocks).
/// Each MAC block covers eight data blocks and carries the page's UV.
#[derive(Debug, Clone)]
pub struct MacCache {
    inner: SetAssocCache,
}

impl MacCache {
    /// Creates a MAC cache of `kib` kibibytes, 16-way, 64-byte blocks.
    pub fn new(kib: usize) -> Self {
        let blocks = kib * 1024 / 64;
        MacCache {
            inner: SetAssocCache::new((blocks / 16).max(1), 16),
        }
    }

    /// Paper default: 32 KB per core.
    pub fn paper_default() -> Self {
        Self::new(32)
    }

    /// Accesses the MAC block covering data block `block_addr` (a 64-byte-
    /// aligned physical address). Returns `true` on hit.
    pub fn access(&mut self, block_addr: u64) -> bool {
        // Eight 56-bit MACs pack per 64-byte MAC block: the covering MAC
        // block index is block_index / 8.
        self.inner.access(block_addr / 64 / 8)
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_oldest() {
        let mut c = SetAssocCache::fully_associative(2);
        assert!(!c.access(1));
        assert!(!c.access(2));
        assert!(c.access(1)); // 1 now MRU
        let (hit, victim) = c.access_with_victim(3);
        assert!(!hit);
        assert_eq!(victim, Some(2), "LRU victim is 2");
        assert!(c.contains(1));
        assert!(!c.contains(2));
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut c = SetAssocCache::fully_associative(4);
        c.access(1);
        c.access(1);
        c.access(2);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_cache_hit_rate_is_zero() {
        assert_eq!(SetAssocCache::fully_associative(4).stats().hit_rate(), 0.0);
        assert!(SetAssocCache::fully_associative(4).is_empty());
    }

    #[test]
    fn invalidate_removes() {
        let mut c = SetAssocCache::new(4, 2);
        c.access(10);
        assert!(c.contains(10));
        c.invalidate(10);
        assert!(!c.contains(10));
        assert!(!c.access(10), "re-access misses after invalidate");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_geometry_panics() {
        SetAssocCache::new(0, 4);
    }

    #[test]
    fn stealth_cache_flat_needs_only_tlb() {
        let mut sc = StealthCache::paper_default();
        assert!(!sc.access(7, TripFormat::Flat));
        assert!(sc.access(7, TripFormat::Flat));
        assert_eq!(sc.stats().hits, 1);
        assert_eq!(sc.stats().misses, 1);
    }

    #[test]
    fn stealth_cache_uneven_needs_both_structures() {
        let mut sc = StealthCache::paper_default();
        // Warm only the TLB side via a flat access.
        sc.access(7, TripFormat::Flat);
        // Uneven access still misses (side entry cold)...
        assert!(!sc.access(7, TripFormat::Uneven));
        // ...then hits once both are warm.
        assert!(sc.access(7, TripFormat::Uneven));
    }

    #[test]
    fn stealth_cache_full_occupies_four_blocks() {
        let mut sc = StealthCache::new(StealthCacheConfig {
            tlb_entries: 8,
            overflow_blocks: 8,
            overflow_ways: 8,
        });
        assert!(!sc.access(1, TripFormat::Full));
        assert!(sc.access(1, TripFormat::Full));
        // A second full page forces the 8-block buffer to evict: with two
        // full entries (8 blocks) the buffer is exactly full.
        assert!(!sc.access(2, TripFormat::Full));
        assert!(sc.access(2, TripFormat::Full));
        // A third page's fill must evict some of page 1 or 2.
        assert!(!sc.access(3, TripFormat::Full));
        let resident_after: usize = [1u64, 2, 3]
            .iter()
            .filter(|&&p| sc.access(p, TripFormat::Full))
            .count();
        assert!(resident_after < 3, "capacity must bound residency");
    }

    #[test]
    fn stealth_cache_invalidate_page() {
        let mut sc = StealthCache::paper_default();
        sc.access(5, TripFormat::Uneven);
        sc.access(5, TripFormat::Uneven);
        sc.invalidate_page(5);
        assert!(
            !sc.access(5, TripFormat::Uneven),
            "post-invalidate access misses"
        );
    }

    #[test]
    fn mac_cache_eight_blocks_share_entry() {
        let mut mc = MacCache::paper_default();
        assert!(!mc.access(0)); // fills MAC block 0 (covers data blocks 0..8)
        for i in 1..8u64 {
            assert!(mc.access(i * 64), "data block {i} shares the MAC block");
        }
        assert!(!mc.access(8 * 64), "ninth block needs the next MAC block");
    }

    #[test]
    fn mac_cache_capacity() {
        let mut mc = MacCache::new(1); // 1 KB = 16 blocks, one 16-way set
        for i in 0..16u64 {
            mc.access(i * 64 * 8);
        }
        for i in 0..16u64 {
            assert!(mc.access(i * 64 * 8), "16 distinct MAC blocks fit in 1 KB");
        }
        mc.access(16 * 64 * 8); // evicts one
        let s = mc.stats();
        assert_eq!(s.misses, 17);
    }
}
