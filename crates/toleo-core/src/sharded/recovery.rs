//! Shard recovery: scrub, re-key, re-admit.
//!
//! Quarantine alone is terminal — one tamper event permanently retires
//! 1/N of protected capacity, so a hostile tenant could consume shards
//! forever. This module turns quarantine into a bounded outage, the
//! middle rung of the escalation ladder:
//!
//! 1. **Quarantine** — tamper detection freezes the owning shard alone
//!    (forensic [`KillSnapshot`], healthy peers keep serving).
//! 2. **Recover** — [`ShardedEngine::recover_shard`] *scrubs* the frozen
//!    shard (re-verifies every resident block's ciphertext + MAC +
//!    composed version against untrusted memory), *re-keys* it (fresh
//!    AES-PRF-derived key material and device RNG seed under a bumped
//!    generation, with every intact block re-encrypted), and *re-admits*
//!    it to service. Blocks that no longer verify are **lost**: they
//!    refuse with [`ToleoError::PageLost`] on the next read instead of
//!    serving silent zeroes, until a fresh write repopulates the address.
//! 3. **World-kill** — a shard tampered *again* after consuming its
//!    per-shard recovery budget signals a determined adversary parked on
//!    one address range; containment has failed and every shard fails
//!    closed (as it does for a device-level failure at any rung).
//!
//! The whole recovery cycle runs under the quarantined shard's own engine
//! lock: healthy shards never block on it, and in-flight batch workers
//! observe nothing but the quarantine-epoch bump when the shard is
//! re-admitted.

use super::{derive_shard_key_gen, derive_shard_seed_gen, ShardedEngine};
use crate::channel::RetryPolicy;
use crate::engine::{KillSnapshot, ProtectionEngine};
use crate::error::{Result, ToleoError};
use crate::fault::FaultPlanConfig;
use crate::layout;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

// audit: allow-file(indexing, per-shard plane arrays are sized to the shard count at construction and every index is validated against shard_count first)

/// Default number of recoveries one shard may consume before its next
/// quarantine escalates to the world-kill: enough to ride out a
/// realistic fault-plus-tamper campaign, small enough that an adversary
/// replaying tamper against one shard cannot spin the recovery plane
/// forever.
pub const DEFAULT_RECOVERY_BUDGET: u64 = 3;

/// Upper bound on the per-shard recovery budget: the recovery generation
/// salts one byte of the key-derivation PRF block, so generations beyond
/// 255 would reuse key material.
pub const MAX_RECOVERY_BUDGET: u64 = 255;

/// Root key material the handle retains so a recovered shard can be
/// re-keyed. The Debug impl is redacted; the bytes never leave the
/// derivation PRF.
pub(super) struct RootKey(pub(super) [u8; 48]);

impl std::fmt::Debug for RootKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RootKey(<redacted>)")
    }
}

/// Aggregate recovery-plane counters, folded into
/// [`RobustnessStats`](super::RobustnessStats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryStats {
    /// Completed recoveries across all shards.
    pub recoveries: u64,
    /// Pages walked by recovery scrubs (cumulative).
    pub pages_scrubbed: u64,
    /// Resident blocks re-verified by recovery scrubs (cumulative).
    pub blocks_scrubbed: u64,
    /// Blocks classified lost at scrub time (cumulative).
    pub blocks_lost: u64,
    /// Lost blocks not yet repopulated by a fresh write.
    pub blocks_still_lost: u64,
    /// Wall-clock nanoseconds spent scrubbing + re-keying (cumulative).
    pub rekey_nanos: u64,
    /// World-kills taken because a tampered shard had already consumed
    /// its recovery budget.
    pub budget_kills: u64,
}

/// Report of one completed [`ShardedEngine::recover_shard`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// The recovered shard.
    pub shard: usize,
    /// The shard's new key/seed generation (1-based; generation 0 is the
    /// original derivation).
    pub generation: u64,
    /// Pages the scrub walked.
    pub pages_scrubbed: u64,
    /// Resident blocks the scrub re-verified.
    pub blocks_scrubbed: u64,
    /// Blocks that verified and were re-encrypted under the new keys.
    pub blocks_intact: u64,
    /// Blocks that failed re-verification, now marked lost.
    pub blocks_lost: u64,
    /// Wall-clock nanoseconds from scrub start to re-admission.
    pub rekey_nanos: u64,
    /// The quarantined engine's frozen counters, preserved as the
    /// forensic record (the re-admitted engine restarts its stats from
    /// zero).
    pub forensic: Box<KillSnapshot>,
}

/// Per-handle recovery state: retained re-keying inputs, per-shard
/// recovery generations, the lost-block ledger, and aggregate telemetry.
///
/// Lock discipline: `lost[shard]` and `totals` are leaf locks, acquired
/// only while holding (at most) one shard engine lock and never while
/// acquiring another lock.
// audit: allow(secret, RootKey's manual Debug impl already redacts the bytes)
#[derive(Debug)]
pub(super) struct RecoveryPlane {
    root_key: RootKey,
    fault_plan: Option<FaultPlanConfig>,
    policy: RetryPolicy,
    /// Max recoveries per shard before the ladder escalates. Mutated only
    /// through `&mut ShardedEngine`, so plain storage is safe to read
    /// through `&self`.
    pub(super) budget: u64,
    /// Completed recoveries per shard — equal to the shard's current key
    /// generation.
    recoveries: Box<[AtomicU64]>,
    /// Per-shard lost-address ledger.
    lost: Box<[Mutex<HashSet<u64>>]>,
    /// Per-shard ledger size: the hot-path hint that lets every operation
    /// skip the ledger lock while its shard has no losses (the
    /// overwhelmingly common case).
    lost_counts: Box<[AtomicU64]>,
    /// Aggregate telemetry (leaf lock; recoveries are rare).
    totals: Mutex<RecoveryTotals>,
}

#[derive(Debug, Clone, Copy, Default)]
struct RecoveryTotals {
    recoveries: u64,
    pages_scrubbed: u64,
    blocks_scrubbed: u64,
    blocks_lost: u64,
    rekey_nanos: u64,
    budget_kills: u64,
}

impl RecoveryPlane {
    pub(super) fn new(
        shards: usize,
        root_key: [u8; 48],
        fault_plan: Option<FaultPlanConfig>,
        policy: RetryPolicy,
    ) -> Self {
        RecoveryPlane {
            root_key: RootKey(root_key),
            fault_plan,
            policy,
            budget: DEFAULT_RECOVERY_BUDGET,
            recoveries: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            lost: (0..shards).map(|_| Mutex::new(HashSet::new())).collect(),
            lost_counts: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            totals: Mutex::new(RecoveryTotals::default()),
        }
    }

    fn lock_lost(&self, shard: usize) -> MutexGuard<'_, HashSet<u64>> {
        self.lost[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_totals(&self) -> MutexGuard<'_, RecoveryTotals> {
        self.totals.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Completed recoveries of `shard` (its current key generation).
    pub(super) fn recoveries_of(&self, shard: usize) -> u64 {
        let shard_recoveries = &self.recoveries[shard];
        shard_recoveries.load(Ordering::Acquire)
    }

    /// Whether `shard` has consumed its whole recovery budget — the
    /// escalation ladder's last-rung test.
    pub(super) fn budget_consumed(&self, shard: usize) -> bool {
        self.recoveries_of(shard) >= self.budget
    }

    /// Records a world-kill taken because of an exhausted budget.
    pub(super) fn note_budget_kill(&self) {
        self.lock_totals().budget_kills += 1;
    }

    /// Whether `addr` on `shard` is marked lost. One atomic load while
    /// the shard has no losses.
    pub(super) fn is_lost(&self, shard: usize, addr: u64) -> bool {
        let lost_count = &self.lost_counts[shard];
        if lost_count.load(Ordering::Acquire) == 0 {
            return false;
        }
        self.lock_lost(shard).contains(&addr)
    }

    /// Drops the lost marker for `addr` (a fresh write repopulated it).
    pub(super) fn clear_lost(&self, shard: usize, addr: u64) {
        let lost_count = &self.lost_counts[shard];
        if lost_count.load(Ordering::Acquire) == 0 {
            return;
        }
        if self.lock_lost(shard).remove(&addr) {
            lost_count.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Drops every lost marker on the page owning `addr`: the OS freed
    /// and scrambled the page, so subsequent accesses answer for its
    /// *new* contents, not for blocks lost from its previous life.
    pub(super) fn clear_lost_page(&self, shard: usize, addr: u64) {
        let lost_count = &self.lost_counts[shard];
        if lost_count.load(Ordering::Acquire) == 0 {
            return;
        }
        let page = layout::page_of(addr);
        let mut set = self.lock_lost(shard);
        let before = set.len();
        set.retain(|&a| layout::page_of(a) != page);
        let removed = (before - set.len()) as u64;
        drop(set);
        if removed > 0 {
            lost_count.fetch_sub(removed, Ordering::AcqRel);
        }
    }

    /// Installs a scrub's lost addresses, unioned with any still-lost
    /// markers surviving from earlier generations (an address lost in
    /// generation k and never rewritten is still lost in generation k+1,
    /// even though the fresh engine never held it).
    fn install_losses(&self, shard: usize, lost: &[u64]) {
        if lost.is_empty() {
            return;
        }
        let mut set = self.lock_lost(shard);
        let mut added = 0u64;
        for &addr in lost {
            if set.insert(addr) {
                added += 1;
            }
        }
        drop(set);
        if added > 0 {
            let lost_count = &self.lost_counts[shard];
            lost_count.fetch_add(added, Ordering::AcqRel);
        }
    }

    /// Stats snapshot (see [`RecoveryStats`]).
    pub(super) fn stats(&self) -> RecoveryStats {
        let t = *self.lock_totals();
        let blocks_still_lost: u64 = self
            .lost_counts
            .iter()
            .map(|lost_count| lost_count.load(Ordering::Acquire))
            .sum();
        RecoveryStats {
            recoveries: t.recoveries,
            pages_scrubbed: t.pages_scrubbed,
            blocks_scrubbed: t.blocks_scrubbed,
            blocks_lost: t.blocks_lost,
            blocks_still_lost,
            rekey_nanos: t.rekey_nanos,
            budget_kills: t.budget_kills,
        }
    }
}

impl ShardedEngine {
    /// Max recoveries each shard may consume before its next quarantine
    /// escalates to the world-kill.
    pub fn recovery_budget(&self) -> u64 {
        self.recovery.budget
    }

    /// Sets the per-shard recovery budget, clamped to
    /// `1..=`[`MAX_RECOVERY_BUDGET`]. `&mut self` proves no worker is
    /// mid-flight while the ladder's last rung moves.
    pub fn set_recovery_budget(&mut self, budget: u64) {
        self.recovery.budget = budget.clamp(1, MAX_RECOVERY_BUDGET);
    }

    /// Completed recoveries per shard, in shard order.
    pub fn shard_recovery_counts(&self) -> Vec<u64> {
        (0..self.shard_count())
            .map(|shard| self.recovery.recoveries_of(shard))
            .collect()
    }

    /// Recovery-plane counters (also folded into
    /// [`robustness_stats`](Self::robustness_stats)).
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery.stats()
    }

    /// Scrubs, re-keys and re-admits the quarantined `shard`.
    ///
    /// The whole cycle runs under the shard's own engine lock: healthy
    /// shards keep serving throughout and observe only the
    /// quarantine-epoch bump once the shard is re-admitted. On success
    /// the shard serves again under generation-fresh key material and a
    /// fresh device seed, with every block the scrub verified re-encrypted
    /// bit-identically; blocks that failed re-verification refuse with
    /// [`ToleoError::PageLost`] until rewritten. The quarantined engine's
    /// frozen counters are preserved in the returned
    /// [`RecoveryOutcome::forensic`] snapshot.
    ///
    /// # Errors
    ///
    /// [`ToleoError::IntegrityViolation`] once the world-kill has
    /// engaged; [`ToleoError::InvalidConfig`] for an out-of-range shard
    /// index, a shard that is not quarantined, or a shard that has
    /// consumed its recovery budget. Errors from re-keying (for example
    /// the freshness device unreachable while re-encrypting under an
    /// armed fault plan) abort the recovery with the shard still
    /// quarantined — the call can simply be retried.
    pub fn recover_shard(&self, shard: usize) -> Result<RecoveryOutcome> {
        self.check_alive(0)?;
        if shard >= self.shard_count() {
            return Err(ToleoError::InvalidConfig {
                detail: format!(
                    "recover_shard: shard {shard} outside 0..{}",
                    self.shard_count()
                ),
            });
        }
        let mut engine = self.lock_shard(shard);
        if !self.quarantine.is_quarantined(shard) {
            return Err(ToleoError::InvalidConfig {
                detail: format!("recover_shard: shard {shard} is not quarantined"),
            });
        }
        let generation = self.recovery.recoveries_of(shard) + 1;
        if generation > self.recovery.budget {
            return Err(ToleoError::InvalidConfig {
                detail: format!(
                    "recover_shard: shard {shard} consumed its recovery budget of {}",
                    self.recovery.budget
                ),
            });
        }
        let start = Instant::now();
        let forensic = Box::new(engine.kill_snapshot().unwrap_or_default());
        // Scrub: re-verify every resident block of the frozen engine
        // against untrusted memory, splitting intact plaintext from lost
        // addresses.
        let scrub = engine.scrub_extract();
        // Re-key: a fresh engine under generation-salted key material and
        // device seed — no cryptographic state survives the compromise —
        // with every intact block re-encrypted into it.
        let mut shard_cfg = self.cfg.clone();
        shard_cfg.rng_seed = derive_shard_seed_gen(self.cfg.rng_seed, shard as u64, generation);
        let mut fresh = ProtectionEngine::try_new_with_robustness(
            shard_cfg,
            derive_shard_key_gen(&self.recovery.root_key.0, shard as u64, generation as u8),
            self.recovery.fault_plan,
            self.recovery.policy,
        )?;
        for (addr, plaintext) in &scrub.intact {
            fresh.write(*addr, plaintext)?;
        }
        let rekey_nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // Re-admit: swap the fresh engine in, install the lost-block
        // markers, bump the generation, then clear the quarantine bit
        // (epoch bump) — all before the shard lock drops, so the first
        // peer routed here sees a fully re-admitted shard.
        *engine = fresh;
        let blocks_intact = scrub.intact.len() as u64;
        let blocks_lost = scrub.lost.len() as u64;
        self.recovery.install_losses(shard, &scrub.lost);
        let shard_recoveries = &self.recovery.recoveries[shard];
        shard_recoveries.store(generation, Ordering::Release);
        {
            let mut totals = self.recovery.lock_totals();
            totals.recoveries += 1;
            totals.pages_scrubbed += scrub.pages_scrubbed;
            totals.blocks_scrubbed += scrub.blocks_scrubbed;
            totals.blocks_lost += blocks_lost;
            totals.rekey_nanos += rekey_nanos;
        }
        self.quarantine.clear(shard);
        drop(engine);
        Ok(RecoveryOutcome {
            shard,
            generation,
            pages_scrubbed: scrub.pages_scrubbed,
            blocks_scrubbed: scrub.blocks_scrubbed,
            blocks_intact,
            blocks_lost,
            rekey_nanos,
            forensic,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::{derive_shard_key, derive_shard_seed};
    use super::*;
    use crate::config::{ToleoConfig, PAGE_BYTES};
    use crate::engine::Block;

    fn sharded(shards: usize) -> ShardedEngine {
        ShardedEngine::new(ToleoConfig::small(), shards, [0x5cu8; 48]).unwrap()
    }

    /// Writes pages 0..8 (value `page + 1`), corrupts the block on page 2
    /// (shard 2 at 4 shards), and trips the quarantine with a read.
    /// Returns the tampered address.
    fn quarantine_shard2(e: &ShardedEngine) -> u64 {
        for page in 0..8u64 {
            e.write(page * PAGE_BYTES as u64, &[page as u8 + 1; 64])
                .unwrap();
        }
        let victim = 2 * PAGE_BYTES as u64;
        e.with_adversary(victim, |dram| dram.corrupt_data(victim, 9, 0x77));
        assert!(matches!(
            e.read(victim),
            Err(ToleoError::IntegrityViolation { .. })
        ));
        assert!(e.is_shard_quarantined(2));
        victim
    }

    #[test]
    fn recover_readmits_shard_with_intact_data_and_lost_markers() {
        let e = sharded(4);
        let victim = quarantine_shard2(&e);
        let out = e.recover_shard(2).unwrap();
        assert_eq!(out.shard, 2);
        assert_eq!(out.generation, 1);
        assert_eq!(out.blocks_lost, 1, "exactly the corrupted block");
        assert_eq!(out.blocks_intact + out.blocks_lost, out.blocks_scrubbed);
        assert_eq!(out.pages_scrubbed, 2, "shard 2 owned pages 2 and 6");
        assert!(out.rekey_nanos > 0);
        assert_eq!(out.forensic.stats.reads, 1, "forensic snapshot preserved");
        assert!(!e.is_shard_quarantined(2));
        assert_eq!(e.quarantined_shard_count(), 0);
        assert!(!e.is_killed());
        // The intact block on shard 2 reads back bit-identically under
        // the new generation's keys.
        assert_eq!(e.read(6 * PAGE_BYTES as u64).unwrap(), [7u8; 64]);
        // The tampered block is lost — a typed refusal, never silent
        // zeroes.
        match e.read(victim) {
            Err(ToleoError::PageLost { shard: 2, address }) => assert_eq!(address, victim),
            other => panic!("expected PageLost, got {other:?}"),
        }
        let rs = e.robustness_stats();
        assert_eq!(rs.recovery.recoveries, 1);
        assert_eq!(rs.recovery.blocks_lost, 1);
        assert_eq!(rs.recovery.blocks_still_lost, 1);
        assert_eq!(rs.recovery.pages_scrubbed, 2);
        assert!(rs.recovery.rekey_nanos > 0);
        assert_eq!(e.shard_recovery_counts(), vec![0, 0, 1, 0]);
        // A fresh write repopulates the lost address and drops the marker.
        e.write(victim, &[0xaa; 64]).unwrap();
        assert_eq!(e.read(victim).unwrap(), [0xaa; 64]);
        assert_eq!(e.robustness_stats().recovery.blocks_still_lost, 0);
    }

    #[test]
    fn batches_refuse_lost_addresses_and_writes_clear_markers() {
        let e = sharded(4);
        let victim = quarantine_shard2(&e);
        e.recover_shard(2).unwrap();
        // Batch order on shard 2's queue: index 2 (page 6, intact) then
        // index 3 (the lost block). The read refuses at the lost op's own
        // index, having served the ops before it.
        let addrs: Vec<u64> = [0u64, 1, 6, 2, 3]
            .iter()
            .map(|p| p * PAGE_BYTES as u64)
            .collect();
        let err = e.read_batch_indexed(&addrs).unwrap_err();
        assert_eq!(err.index, 3);
        assert!(matches!(err.error, ToleoError::PageLost { shard: 2, .. }));
        // A write batch covering the lost address clears the marker.
        e.write_batch(&[(victim, [0x33u8; 64])]).unwrap();
        let blocks = e.read_batch(&addrs).unwrap();
        assert_eq!(blocks[3], [0x33u8; 64]);
        assert_eq!(blocks[2], [7u8; 64]);
    }

    #[test]
    fn re_quarantine_past_budget_world_kills() {
        let mut e = sharded(2);
        e.set_recovery_budget(1);
        assert_eq!(e.recovery_budget(), 1);
        e.write(0, &[1u8; 64]).unwrap();
        e.write(PAGE_BYTES as u64, &[2u8; 64]).unwrap();
        // First tamper: quarantine, then recover (consumes the budget).
        e.with_adversary(0, |dram| dram.corrupt_data(0, 0, 0x01));
        assert!(e.read(0).is_err());
        assert!(e.is_shard_quarantined(0));
        e.recover_shard(0).unwrap();
        assert!(!e.is_shard_quarantined(0));
        assert!(!e.is_killed());
        // Repopulate and tamper the same shard again: the ladder's last
        // rung — containment has failed, the world fails closed.
        e.write(0, &[3u8; 64]).unwrap();
        e.with_adversary(0, |dram| dram.corrupt_data(0, 0, 0x01));
        assert!(e.read(0).is_err());
        assert!(
            e.is_killed(),
            "budget-exhausted re-quarantine must world-kill"
        );
        let rs = e.robustness_stats();
        assert!(rs.world_killed);
        assert_eq!(rs.recovery.budget_kills, 1);
        // A recover attempt on the killed world refuses.
        assert!(matches!(
            e.recover_shard(0),
            Err(ToleoError::IntegrityViolation { .. })
        ));
    }

    #[test]
    fn recover_refuses_healthy_out_of_range_and_budget_consumed_shards() {
        let mut e = sharded(2);
        assert!(
            matches!(e.recover_shard(0), Err(ToleoError::InvalidConfig { .. })),
            "healthy shard has nothing to recover"
        );
        assert!(
            matches!(e.recover_shard(9), Err(ToleoError::InvalidConfig { .. })),
            "out-of-range shard index"
        );
        // Recover once (generation 1), re-quarantine within the default
        // budget, then shrink the budget under it: the recovery refuses
        // and the quarantine stays in place.
        e.write(0, &[1u8; 64]).unwrap();
        e.with_adversary(0, |dram| dram.corrupt_data(0, 0, 0x01));
        assert!(e.read(0).is_err());
        e.recover_shard(0).unwrap();
        e.write(0, &[2u8; 64]).unwrap();
        e.with_adversary(0, |dram| dram.corrupt_data(0, 0, 0x01));
        assert!(e.read(0).is_err());
        assert!(!e.is_killed(), "second quarantine is within budget 3");
        e.set_recovery_budget(1);
        assert!(matches!(
            e.recover_shard(0),
            Err(ToleoError::InvalidConfig { .. })
        ));
        assert!(
            e.is_shard_quarantined(0),
            "a refused recovery leaves the quarantine in place"
        );
    }

    #[test]
    fn healthy_shards_serve_while_recovery_runs() {
        let e = sharded(4);
        // A big resident set on shard 2 so the scrub plus re-encryption
        // has real work to do while shard 1 keeps serving.
        let mut writes: Vec<(u64, Block)> = Vec::new();
        for k in 0..32u64 {
            let page = 2 + 4 * k;
            for line in 0..16u64 {
                writes.push((page * PAGE_BYTES as u64 + line * 64, [k as u8; 64]));
            }
        }
        e.write_batch(&writes).unwrap();
        e.write(PAGE_BYTES as u64, &[9u8; 64]).unwrap(); // shard 1
        let victim = 2 * PAGE_BYTES as u64;
        e.with_adversary(victim, |dram| dram.corrupt_data(victim, 0, 0x01));
        assert!(e.read(victim).is_err());
        std::thread::scope(|s| {
            let rec = s.spawn(|| e.recover_shard(2).unwrap());
            // Healthy shard 1 serves at least one op while the recovery
            // may still be in flight — recovery holds only shard 2's lock.
            loop {
                assert_eq!(e.read(PAGE_BYTES as u64).unwrap(), [9u8; 64]);
                if rec.is_finished() {
                    break;
                }
            }
            let out = rec.join().expect("recovery must not panic");
            assert_eq!(out.blocks_lost, 1);
            assert_eq!(out.blocks_intact, writes.len() as u64 - 1);
        });
        assert!(!e.is_shard_quarantined(2));
        // Every intact block reads back bit-identically post-recovery.
        for (addr, block) in &writes {
            if *addr == victim {
                continue;
            }
            assert_eq!(e.read(*addr).unwrap(), *block, "addr {addr:#x}");
        }
    }

    #[test]
    fn free_page_discards_lost_markers() {
        let e = sharded(4);
        let victim = quarantine_shard2(&e);
        e.recover_shard(2).unwrap();
        assert_eq!(e.recovery_stats().blocks_still_lost, 1);
        e.free_page(victim / PAGE_BYTES as u64).unwrap();
        assert_eq!(
            e.recovery_stats().blocks_still_lost,
            0,
            "a freed page answers for its new life, not its lost blocks"
        );
        e.write(victim, &[0x44u8; 64]).unwrap();
        assert_eq!(e.read(victim).unwrap(), [0x44u8; 64]);
    }

    #[test]
    fn recovery_rekeys_under_an_armed_fault_plan() {
        let e = ShardedEngine::new_with_robustness(
            ToleoConfig::small(),
            2,
            [8u8; 48],
            Some(FaultPlanConfig::uniform(21, 0.2)),
            RetryPolicy::default(),
        )
        .unwrap();
        for page in 0..8u64 {
            e.write(page * PAGE_BYTES as u64, &[5u8; 64]).unwrap();
        }
        e.with_adversary(0, |dram| dram.corrupt_data(0, 1, 0x10));
        assert!(e.read(0).is_err());
        let out = e.recover_shard(0).unwrap();
        assert_eq!(out.blocks_lost, 1);
        for page in [2u64, 4, 6] {
            assert_eq!(e.read(page * PAGE_BYTES as u64).unwrap(), [5u8; 64]);
        }
        assert!(e.robustness_stats().channel.faults_injected > 0);
    }

    #[test]
    fn generation_salted_derivations_are_fresh_and_gen0_compatible() {
        let root = [0x42u8; 48];
        assert_eq!(
            derive_shard_key_gen(&root, 3, 0),
            derive_shard_key(&root, 3),
            "generation 0 must stay byte-identical to the original derivation"
        );
        assert_eq!(derive_shard_seed_gen(7, 3, 0), derive_shard_seed(7, 3));
        let mut keys: Vec<[u8; 48]> = Vec::new();
        for shard in 0..4u64 {
            for generation in 0..4u8 {
                keys.push(derive_shard_key_gen(&root, shard, generation));
            }
        }
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "key reuse across shard/generation");
            }
        }
        let seeds: Vec<u64> = (0..4u64)
            .flat_map(|s| (0..4u64).map(move |g| derive_shard_seed_gen(7, s, g)))
            .collect();
        let unique: HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(unique.len(), seeds.len());
    }
}
