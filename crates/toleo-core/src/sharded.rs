//! Sharded concurrent protection engine.
//!
//! The paper pitches Toleo at tera-scale pools serving many hosts, which a
//! single-threaded [`ProtectionEngine`] cannot saturate. This module
//! partitions the physical address space page-wise across N independent
//! shards. Each shard owns a complete `ProtectionEngine` — its own
//! untrusted-memory arena, stealth/MAC caches, device slice and a key
//! schedule derived per-shard from the root key material — so shards share
//! **no** mutable state except the kill/quarantine flags. That makes the
//! decomposition embarrassingly parallel: on a host with enough cores,
//! throughput scales with the shard-worker count until memory bandwidth
//! saturates.
//!
//! [`ShardedEngine`] is the thread-safe handle. Single operations route to
//! the owning shard under its mutex; [`read_batch`](ShardedEngine::read_batch)
//! and [`write_batch`](ShardedEngine::write_batch) split a batch into
//! per-shard op queues and drain them with [`std::thread::scope`] workers,
//! one per occupied shard.
//!
//! Failure containment is an escalation ladder:
//!
//! * **Quarantine** — a shard whose engine detects tampering or replay is
//!   frozen *alone*: its engine's kill switch engages (so the shard is
//!   individually inert, counters frozen in a [`KillSnapshot`]), its bit
//!   flips in the quarantine bitmap, and subsequent operations routed to
//!   it refuse with [`ToleoError::ShardQuarantined`] carrying that frozen
//!   snapshot. Healthy shards keep serving — one hostile tenant cannot
//!   deny service to every other tenant in the pool. In-flight batch
//!   workers on healthy shards observe the quarantine within one
//!   kill-poll interval and simply keep draining their own queues.
//! * **Recover** — a quarantined shard can be scrubbed, re-keyed under a
//!   fresh key generation, and re-admitted to service by
//!   [`ShardedEngine::recover_shard`] (see the [`recovery`] module);
//!   blocks the scrub could not re-verify refuse with
//!   [`ToleoError::PageLost`] until rewritten.
//! * **World-kill** — a *device-level* failure (the freshness device
//!   unreachable after the [`DeviceChannel`](crate::channel::DeviceChannel)
//!   retry budget), or a shard tampered *again* after exhausting its
//!   per-shard recovery budget, means containment is over: the global
//!   flag flips, in-flight batch workers abort, and every peer shard is
//!   force-killed so each is individually inert thereafter.

// audit: allow-file(indexing, shard and queue indices come from shard_of_addr and the queue builder, bounded by the shard count)

use crate::channel::{ChannelStats, RetryPolicy};
use crate::config::{ToleoConfig, CACHE_BLOCK_BYTES, PAGE_BYTES};
use crate::device::DeviceStats;
use crate::engine::{Block, EngineStats, KillSnapshot, ProtectionEngine, UntrustedDram};
use crate::error::{BatchError, Result, ToleoError};
use crate::fault::FaultPlanConfig;
use crate::layout;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use toleo_crypto::aes::Aes128;

pub mod recovery;

pub use recovery::{RecoveryOutcome, RecoveryStats, DEFAULT_RECOVERY_BUDGET};

use recovery::RecoveryPlane;

// The shards are driven from scoped worker threads; this fails to compile
// if `ProtectionEngine` ever grows a non-Send member.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<ProtectionEngine>();
};

/// Upper bound on the shard count: one shard per page-interleave slot of
/// the smallest supported pool would be absurd; 4096 comfortably covers
/// any plausible worker fleet while keeping the routing modulus cheap.
pub const MAX_SHARDS: usize = 4096;

/// Default ops a batch worker hands to the engine's batched entry points
/// between kill/quarantine polls. Large enough that run-grouping and
/// pipelined tweak precompute inside [`ProtectionEngine::read_batch`] pay
/// off; small enough that a peer shard's failure is still observed
/// promptly. Tunable per engine via
/// [`ShardedEngine::set_kill_poll_ops`].
pub const DEFAULT_KILL_POLL_OPS: usize = 64;

/// Lock-free per-shard quarantine state: one bit per shard, plus a
/// monotonically increasing epoch that batch workers poll to learn that
/// *some* peer's quarantine state changed without scanning the bitmap.
/// Marking is a `fetch_or`, so the shard that detects tampering can flip
/// its own bit while still holding its engine lock — no lock ordering
/// hazard with [`ShardedEngine::trip_kill`], which takes every lock.
///
/// Orderings follow the AUDIT.json protocol table: the word and epoch
/// are `guard`/`epoch` roles, so writers publish with the release half
/// of an `AcqRel` RMW and pollers observe with `Acquire` loads — the
/// epoch bump that follows a bit flip is what carries the bit to a
/// worker that only polls the epoch. Nothing here needs the single
/// total order `SeqCst` buys; `toleo-model` explores the handshake's
/// interleavings to back that claim.
///
/// Public (but doc-hidden) so `toleo-model` can cross-validate its
/// bit/epoch model against the real implementation.
#[doc(hidden)]
#[derive(Debug)]
pub struct QuarantineMap {
    words: Box<[AtomicU64]>,
    epoch: AtomicU64,
}

impl QuarantineMap {
    pub(crate) fn new(shards: usize) -> Self {
        QuarantineMap {
            words: (0..shards.div_ceil(64))
                .map(|_| AtomicU64::new(0))
                .collect(),
            epoch: AtomicU64::new(0),
        }
    }

    /// A free-standing map for cross-validation harnesses.
    #[doc(hidden)]
    pub fn for_model_checking(shards: usize) -> Self {
        QuarantineMap::new(shards)
    }

    /// Flips `shard`'s bit; returns `true` if this call newly set it.
    #[doc(hidden)]
    pub fn mark(&self, shard: usize) -> bool {
        let bit = 1u64 << (shard % 64);
        let quarantine_word = &self.words[shard / 64];
        let newly = quarantine_word.fetch_or(bit, Ordering::AcqRel) & bit == 0;
        if newly {
            let quarantine_epoch = &self.epoch;
            quarantine_epoch.fetch_add(1, Ordering::AcqRel);
        }
        newly
    }

    /// Clears `shard`'s bit after a completed recovery; returns `true` if
    /// it was set. Bumps the epoch just like [`mark`](Self::mark), so
    /// in-flight batch workers observe the re-admission at their next
    /// poll — the only thing peers ever see of a recovery.
    #[doc(hidden)]
    pub fn clear(&self, shard: usize) -> bool {
        let bit = 1u64 << (shard % 64);
        let quarantine_word = &self.words[shard / 64];
        let was_set = quarantine_word.fetch_and(!bit, Ordering::AcqRel) & bit != 0;
        if was_set {
            let quarantine_epoch = &self.epoch;
            quarantine_epoch.fetch_add(1, Ordering::AcqRel);
        }
        was_set
    }

    #[doc(hidden)]
    pub fn is_quarantined(&self, shard: usize) -> bool {
        let bit = 1u64 << (shard % 64);
        let quarantine_word = &self.words[shard / 64];
        quarantine_word.load(Ordering::Acquire) & bit != 0
    }

    /// Bumped on every new quarantine; workers poll it between chunks.
    #[doc(hidden)]
    pub fn epoch(&self) -> u64 {
        let quarantine_epoch = &self.epoch;
        quarantine_epoch.load(Ordering::Acquire)
    }

    #[doc(hidden)]
    pub fn count(&self) -> u64 {
        self.words
            .iter()
            .map(|quarantine_word| u64::from(quarantine_word.load(Ordering::Acquire).count_ones()))
            .sum()
    }
}

/// Aggregated robustness telemetry for a sharded engine: what the device
/// fault plane absorbed, what the quarantine layer contained, and how
/// fast in-flight workers observed it. Feeds the bench `availability`
/// section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RobustnessStats {
    /// Device-channel counters summed over every shard (faults injected /
    /// absorbed, retries, virtual backoff nanoseconds, replays).
    pub channel: ChannelStats,
    /// Shards currently quarantined.
    pub quarantined_shards: u64,
    /// Whether the world-kill (device-level escalation) has engaged.
    pub world_killed: bool,
    /// Operations served successfully through this handle (singles plus
    /// batch ops).
    pub ops_served: u64,
    /// Value of [`ops_served`](Self::ops_served) at the most recent
    /// quarantine — together with the current value, the detection-to-now
    /// op distance.
    pub ops_at_last_quarantine: u64,
    /// Largest number of ops any in-flight batch worker executed between
    /// the poll that preceded a peer's quarantine and the poll that
    /// observed it — the realized detection latency, bounded by
    /// [`kill_poll_ops`](ShardedEngine::kill_poll_ops).
    pub max_poll_lag_ops: u64,
    /// Recovery-plane counters: scrubs, re-keys, lost blocks, and
    /// budget-exhaustion kills. See [`RecoveryStats`].
    pub recovery: RecoveryStats,
}

/// A sharded, thread-safe protection engine: N independent
/// [`ProtectionEngine`] shards behind one handle, with page-granular
/// address routing, per-shard quarantine, and a world-kill switch for
/// device-level failures.
///
/// # Examples
///
/// ```
/// use toleo_core::config::ToleoConfig;
/// use toleo_core::sharded::ShardedEngine;
///
/// let engine = ShardedEngine::new(ToleoConfig::small(), 4, [7u8; 48]).unwrap();
/// let writes: Vec<(u64, [u8; 64])> =
///     (0..16u64).map(|i| (i * 4096, [i as u8; 64])).collect();
/// engine.write_batch(&writes).unwrap();
/// let addrs: Vec<u64> = writes.iter().map(|(a, _)| *a).collect();
/// let blocks = engine.read_batch(&addrs).unwrap();
/// for (i, block) in blocks.iter().enumerate() {
///     assert_eq!(*block, [i as u8; 64]);
/// }
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Box<[Mutex<ProtectionEngine>]>,
    /// Set only by the world-kill escalation (device unreachable, worker
    /// panic); checked on every entry and between batch ops so workers
    /// abort promptly.
    killed: AtomicBool,
    /// Per-shard quarantine bitmap: tamper on shard *k* freezes only *k*.
    quarantine: QuarantineMap,
    /// Ops between kill/quarantine polls in batch workers.
    kill_poll_ops: usize,
    /// Successful ops served (telemetry; see [`RobustnessStats`]).
    ops_served: AtomicU64,
    /// `ops_served` at the most recent quarantine.
    ops_at_last_quarantine: AtomicU64,
    /// Worst observed poll lag (see [`RobustnessStats::max_poll_lag_ops`]).
    max_poll_lag_ops: AtomicU64,
    /// The recovery plane: retained root key material + robustness config
    /// for re-keying, per-shard recovery generations and budget, and the
    /// lost-block ledger. See the [`recovery`] module.
    recovery: RecoveryPlane,
    cfg: ToleoConfig,
}

impl ShardedEngine {
    /// Creates an engine with `shards` independent shards. Each shard's
    /// 48-byte key material is derived from `root_key` with AES-128 as a
    /// PRF (so shards never share data/tweak/MAC keys), and each shard's
    /// device draws from an independently seeded D-RaNGe stream. Honors
    /// the `TOLEO_FAULT_PLAN` environment variable (see
    /// [`FaultPlanConfig::parse`](crate::fault::FaultPlanConfig::parse)).
    ///
    /// # Errors
    ///
    /// [`ToleoError::InvalidConfig`] if `shards` is 0 or exceeds
    /// [`MAX_SHARDS`], or if `cfg` fails
    /// [`ToleoConfig::validate`](crate::config::ToleoConfig::validate),
    /// or `TOLEO_FAULT_PLAN` is malformed.
    pub fn new(cfg: ToleoConfig, shards: usize, root_key: [u8; 48]) -> Result<Self> {
        let fault_plan = FaultPlanConfig::from_env()?;
        Self::new_with_robustness(cfg, shards, root_key, fault_plan, RetryPolicy::default())
    }

    /// [`new`](Self::new) with an explicit robustness configuration: an
    /// optional device fault-injection campaign and the retry policy that
    /// absorbs its transients. Each shard's plan is salted with that
    /// shard's derived RNG seed, so shards draw independent fault streams
    /// from one campaign spec.
    ///
    /// # Errors
    ///
    /// As [`new`](Self::new); additionally if `fault_plan` is invalid.
    pub fn new_with_robustness(
        cfg: ToleoConfig,
        shards: usize,
        root_key: [u8; 48],
        fault_plan: Option<FaultPlanConfig>,
        policy: RetryPolicy,
    ) -> Result<Self> {
        if shards == 0 || shards > MAX_SHARDS {
            return Err(ToleoError::InvalidConfig {
                detail: format!("shard count {shards} outside 1..={MAX_SHARDS}"),
            });
        }
        let engines = (0..shards)
            .map(|s| {
                let mut shard_cfg = cfg.clone();
                shard_cfg.rng_seed = derive_shard_seed(cfg.rng_seed, s as u64);
                ProtectionEngine::try_new_with_robustness(
                    shard_cfg,
                    derive_shard_key(&root_key, s as u64),
                    fault_plan,
                    policy,
                )
                .map(Mutex::new)
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedEngine {
            shards: engines.into_boxed_slice(),
            killed: AtomicBool::new(false),
            quarantine: QuarantineMap::new(shards),
            kill_poll_ops: DEFAULT_KILL_POLL_OPS,
            ops_served: AtomicU64::new(0),
            ops_at_last_quarantine: AtomicU64::new(0),
            max_poll_lag_ops: AtomicU64::new(0),
            recovery: RecoveryPlane::new(shards, root_key, fault_plan, policy),
            cfg,
        })
    }

    /// The configuration shards were built from (per-shard configs differ
    /// only in their derived RNG seed).
    pub fn config(&self) -> &ToleoConfig {
        &self.cfg
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Ops a batch worker executes between kill/quarantine polls.
    pub fn kill_poll_ops(&self) -> usize {
        self.kill_poll_ops
    }

    /// Sets the batch-worker poll interval (clamped to at least 1).
    /// Smaller values bound the latency until an in-flight batch observes
    /// a peer shard's quarantine or a world-kill, at the cost of more
    /// frequent polls and smaller run-grouped chunks; `&mut self` proves
    /// no batch is in flight while the knob moves.
    pub fn set_kill_poll_ops(&mut self, ops: usize) {
        self.kill_poll_ops = ops.max(1);
    }

    /// The shard that owns `addr` (page-wise interleaving: consecutive
    /// pages land on consecutive shards, so page-local version state —
    /// Trip entries, UVs, reset walks — never crosses a shard boundary).
    pub fn shard_of_addr(&self, addr: u64) -> usize {
        self.shard_of_page(layout::page_of(addr))
    }

    /// The shard that owns `page`.
    pub fn shard_of_page(&self, page: u64) -> usize {
        (page % self.shards.len() as u64) as usize
    }

    /// Whether the world-kill switch has engaged (device-level failure or
    /// worker panic). Per-shard tamper detections quarantine instead; see
    /// [`is_shard_quarantined`](Self::is_shard_quarantined).
    pub fn is_killed(&self) -> bool {
        // Acquire pairs with the Release stores in trip_kill and the
        // batch workers: seeing the flag also sees the state that
        // justified it. The flag only latches, so no total order is
        // needed (protocol role `flag` in AUDIT.json).
        self.killed.load(Ordering::Acquire)
    }

    /// Whether `shard` is quarantined (out-of-range shard indices are
    /// simply not quarantined).
    pub fn is_shard_quarantined(&self, shard: usize) -> bool {
        shard < self.shards.len() && self.quarantine.is_quarantined(shard)
    }

    /// Number of quarantined shards.
    pub fn quarantined_shard_count(&self) -> u64 {
        self.quarantine.count()
    }

    fn lock_shard(&self, index: usize) -> MutexGuard<'_, ProtectionEngine> {
        // A panic in an engine op must not wedge the handle: the engine's
        // state is still sound (it never holds half-updated invariants
        // across public calls), so recover the guard from the poison.
        self.shards[index]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn check_alive(&self, address: u64) -> Result<()> {
        if self.is_killed() {
            return Err(ToleoError::IntegrityViolation { address });
        }
        Ok(())
    }

    /// Engages the world-kill: flips the flag and force-kills every shard
    /// so each is individually inert. Must not be called while holding a
    /// shard lock (it acquires all of them in turn).
    fn trip_kill(&self) {
        self.killed.store(true, Ordering::Release);
        for index in 0..self.shards.len() {
            self.lock_shard(index).force_kill();
        }
    }

    /// Records a fresh quarantine of `shard`. Lock-free, so the detecting
    /// thread may call it while still holding the shard's engine lock —
    /// the bit is visible to peers before the lock is released.
    fn note_quarantine(&self, shard: usize) {
        if self.quarantine.mark(shard) {
            let served = self.ops_served.load(Ordering::Relaxed);
            self.ops_at_last_quarantine.store(served, Ordering::Release);
        }
    }

    /// The refusal a quarantined shard serves: [`ToleoError::ShardQuarantined`]
    /// carrying the engine's frozen [`KillSnapshot`]. `engine` must be the
    /// already-locked shard engine.
    fn quarantine_refusal(shard: usize, address: u64, engine: &ProtectionEngine) -> ToleoError {
        ToleoError::ShardQuarantined {
            shard,
            address,
            snapshot: Box::new(engine.kill_snapshot().unwrap_or_default()),
        }
    }

    /// Classifies an engine-kill observed after an operation: a channel
    /// retry-budget exhaustion escalates to the world-kill; anything else
    /// (tamper, replay) quarantines only this shard — unless the shard
    /// has already consumed its recovery budget, in which case a repeat
    /// tamper is a determined adversary parked on one address range and
    /// containment gives way to the world-kill. Returns `true` when the
    /// caller must finish the world-kill (after releasing the lock).
    fn escalate_after_kill(&self, shard: usize, error: &ToleoError) -> bool {
        if matches!(error, ToleoError::DeviceUnavailable { .. }) {
            return true;
        }
        self.note_quarantine(shard);
        if self.recovery.budget_consumed(shard) {
            self.recovery.note_budget_kill();
            return true;
        }
        false
    }

    /// Runs `f` on the shard owning `address`, then applies the
    /// escalation ladder if the shard's engine died doing it. `access`
    /// decides how the op interacts with the lost-block ledger a recovery
    /// may have left behind: reads refuse lost addresses with
    /// [`ToleoError::PageLost`], successful writes repopulate them
    /// (clearing the marker), and page frees discard every marker on the
    /// page.
    fn run_on_shard<R>(
        &self,
        address: u64,
        access: Access,
        f: impl FnOnce(&mut ProtectionEngine) -> Result<R>,
    ) -> Result<R> {
        self.check_alive(address)?;
        let shard = self.shard_of_addr(address);
        let mut escalate_world = false;
        let result = {
            let mut engine = self.lock_shard(shard);
            if self.quarantine.is_quarantined(shard) {
                return Err(Self::quarantine_refusal(shard, address, &engine));
            }
            if matches!(access, Access::Read) && self.recovery.is_lost(shard, address) {
                return Err(ToleoError::PageLost { shard, address });
            }
            let result = f(&mut engine);
            if result.is_ok() {
                match access {
                    Access::Read => {}
                    Access::Write => self.recovery.clear_lost(shard, address),
                    Access::Free => self.recovery.clear_lost_page(shard, address),
                }
            }
            if engine.is_killed() && !self.is_killed() {
                if let Err(e) = &result {
                    escalate_world = self.escalate_after_kill(shard, e);
                }
            }
            result
        };
        if escalate_world {
            self.trip_kill();
        }
        if result.is_ok() {
            self.ops_served.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Writes a 64-byte block at `addr` through the owning shard.
    ///
    /// # Errors
    ///
    /// As [`ProtectionEngine::write`]; additionally
    /// [`ToleoError::ShardQuarantined`] once the owning shard is
    /// quarantined, and [`ToleoError::IntegrityViolation`] once the
    /// world-kill has engaged.
    pub fn write(&self, addr: u64, plaintext: &Block) -> Result<()> {
        self.run_on_shard(addr, Access::Write, |engine| engine.write(addr, plaintext))
    }

    /// Reads the 64-byte block at `addr` through the owning shard.
    ///
    /// # Errors
    ///
    /// As [`ProtectionEngine::read`]; a tamper detection on this shard
    /// quarantines it (healthy shards keep serving), while a device-level
    /// failure escalates to the world-kill. An address a recovery scrub
    /// classified lost refuses with [`ToleoError::PageLost`] until a
    /// fresh write repopulates it.
    pub fn read(&self, addr: u64) -> Result<Block> {
        self.run_on_shard(addr, Access::Read, |engine| engine.read(addr))
    }

    /// OS page free / remap, routed to the owning shard.
    ///
    /// # Errors
    ///
    /// As [`ProtectionEngine::free_page`].
    pub fn free_page(&self, page: u64) -> Result<()> {
        self.run_on_shard(page * PAGE_BYTES as u64, Access::Free, |engine| {
            engine.free_page(page)
        })
    }

    /// Writes a batch of blocks, fanned out across shards with one scoped
    /// worker thread per occupied shard. Each worker drains its queue
    /// through [`ProtectionEngine::write_batch`] in
    /// [`kill_poll_ops`](Self::kill_poll_ops)-op chunks, polling the
    /// world-kill flag and the quarantine epoch between chunks. Within a
    /// shard, ops execute in batch order (so a later write to the same
    /// address wins, exactly as in a sequential replay); across shards
    /// there is no ordering, which is safe because shards share no state.
    ///
    /// # Errors
    ///
    /// The failing op's error, smallest batch index first, except that a
    /// security-relevant failure ([`ToleoError::IntegrityViolation`],
    /// [`ToleoError::ShardQuarantined`],
    /// [`ToleoError::DeviceUnavailable`]) anywhere in the batch always
    /// wins over benign failures (a security event must not be masked by
    /// a retryable error). A tamper detection quarantines only its shard:
    /// workers on healthy shards drain their queues to completion around
    /// the quarantined member.
    pub fn write_batch(&self, ops: &[(u64, Block)]) -> Result<()> {
        self.write_batch_indexed(ops).map_err(|e| e.error)
    }

    /// [`write_batch`](Self::write_batch) variant that also reports the
    /// smallest failing batch index (security-relevant failures still
    /// take precedence over earlier benign failures). Because shard
    /// workers run concurrently, ops *after* the index on **other**
    /// shards may have completed; on the failing op's own shard, ops
    /// before it completed and ops after it were not attempted.
    ///
    /// # Errors
    ///
    /// [`BatchError`] with the failing index and underlying error.
    pub fn write_batch_indexed(&self, ops: &[(u64, Block)]) -> std::result::Result<(), BatchError> {
        let mut scratch: Vec<(u64, Block)> = Vec::new();
        self.run_batch(
            ops.len(),
            (),
            Access::Write,
            |i| ops[i].0,
            move |engine, chunk| {
                scratch.clear();
                scratch.extend(chunk.iter().map(|&i| ops[i]));
                engine
                    .write_batch(&scratch)
                    .map(|()| vec![(); chunk.len()])
                    .map_err(|e| (e.index, e.error))
            },
        )
        .map(|_: Vec<()>| ())
    }

    /// Reads a batch of blocks, fanned out across shards with one scoped
    /// worker thread per occupied shard, each draining its queue through
    /// [`ProtectionEngine::read_batch`] (run-grouped version fetches and
    /// pipelined tweak precompute) in kill-polled chunks. Results are
    /// returned in batch order.
    ///
    /// # Errors
    ///
    /// As [`write_batch`](Self::write_batch): smallest failing batch
    /// index, with security-relevant errors preferred over benign ones; a
    /// tamper detection quarantines only the offending shard.
    pub fn read_batch(&self, addrs: &[u64]) -> Result<Vec<Block>> {
        self.read_batch_indexed(addrs).map_err(|e| e.error)
    }

    /// [`read_batch`](Self::read_batch) variant that also reports the
    /// smallest failing batch index, with the same concurrent-completion
    /// caveat as [`write_batch_indexed`](Self::write_batch_indexed).
    ///
    /// # Errors
    ///
    /// [`BatchError`] with the failing index and underlying error.
    pub fn read_batch_indexed(&self, addrs: &[u64]) -> std::result::Result<Vec<Block>, BatchError> {
        let mut scratch: Vec<u64> = Vec::new();
        self.run_batch(
            addrs.len(),
            [0u8; CACHE_BLOCK_BYTES],
            Access::Read,
            |i| addrs[i],
            move |engine, chunk| {
                scratch.clear();
                scratch.extend(chunk.iter().map(|&i| addrs[i]));
                engine.read_batch(&scratch).map_err(|e| (e.index, e.error))
            },
        )
    }

    /// Shared batch executor: partitions op indices `0..len` into
    /// per-shard queues by `addr_of`, drains each queue on a scoped worker
    /// under the shard lock via `exec_chunk` (which maps a chunk of op
    /// indices through the engine's batched entry points and reports a
    /// failure as its chunk-local index), and scatters per-op payloads
    /// back into batch order (`fill` seeds the output vector). Returns the
    /// payload vector (unit-cost for writes), or the smallest failing
    /// batch index with its error.
    fn run_batch<T: Clone + Send>(
        &self,
        len: usize,
        fill: T,
        access: Access,
        addr_of: impl Fn(usize) -> u64 + Sync,
        exec_chunk: impl FnMut(
                &mut ProtectionEngine,
                &[usize],
            ) -> std::result::Result<Vec<T>, (usize, ToleoError)>
            + Clone
            + Send
            + Sync,
    ) -> std::result::Result<Vec<T>, BatchError> {
        if len == 0 {
            return Ok(Vec::new());
        }
        self.check_alive(addr_of(0))
            .map_err(|error| BatchError { index: 0, error })?;
        let mut queues: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for i in 0..len {
            queues[self.shard_of_addr(addr_of(i))].push(i);
        }
        let poll_ops = self.kill_poll_ops;

        type ShardOutcome<T> = std::result::Result<Vec<(usize, T)>, (usize, ToleoError)>;
        let outcomes: Vec<ShardOutcome<T>> = std::thread::scope(|s| {
            let handles: Vec<_> = queues
                .iter()
                .enumerate()
                .filter(|(_, queue)| !queue.is_empty())
                .map(|(shard, queue)| {
                    let addr_of = &addr_of;
                    let mut exec_chunk = exec_chunk.clone();
                    let first = queue.first().copied().unwrap_or(0);
                    let handle = s.spawn(move || -> ShardOutcome<T> {
                        let mut engine = self.lock_shard(shard);
                        if self.quarantine.is_quarantined(shard) {
                            // This whole queue is addressed to a frozen
                            // shard: refuse it with the forensic snapshot.
                            return Err((
                                first,
                                Self::quarantine_refusal(shard, addr_of(first), &engine),
                            ));
                        }
                        let mut done = Vec::with_capacity(queue.len());
                        // Quarantine-epoch polling: healthy workers do NOT
                        // abort when a peer is quarantined (that is the
                        // whole point of containment) but they must
                        // *observe* it within one poll interval — the lag
                        // telemetry proves the bound.
                        let mut epoch_seen = self.quarantine.epoch();
                        let mut ops_since_poll = 0usize;
                        for chunk in queue.chunks(poll_ops) {
                            // A device-level failure on any shard trips the
                            // world-kill while this queue was draining:
                            // abort promptly. Acquire is the hot half of
                            // the flag protocol — on x86 it costs nothing
                            // over Relaxed, and on ARM it avoids the full
                            // fence a SeqCst load would issue every chunk.
                            if self.killed.load(Ordering::Acquire) {
                                return Err((
                                    chunk[0],
                                    ToleoError::IntegrityViolation {
                                        address: addr_of(chunk[0]),
                                    },
                                ));
                            }
                            let epoch_now = self.quarantine.epoch();
                            if epoch_now != epoch_seen {
                                epoch_seen = epoch_now;
                                self.max_poll_lag_ops
                                    .fetch_max(ops_since_poll as u64, Ordering::Relaxed);
                            }
                            // Recovery may have left lost-block markers on
                            // this shard: a read chunk stops at the first
                            // lost address (ops before it are served,
                            // exactly as op-at-a-time) and a write chunk
                            // clears the markers it repopulates.
                            let mut chunk = chunk;
                            let mut lost_hit: Option<usize> = None;
                            if matches!(access, Access::Read) {
                                if let Some(pos) = chunk
                                    .iter()
                                    .position(|&i| self.recovery.is_lost(shard, addr_of(i)))
                                {
                                    lost_hit = Some(chunk[pos]);
                                    chunk = &chunk[..pos];
                                }
                            }
                            if !chunk.is_empty() {
                                match exec_chunk(&mut engine, chunk) {
                                    Ok(values) => {
                                        self.ops_served
                                            .fetch_add(chunk.len() as u64, Ordering::Relaxed);
                                        if matches!(access, Access::Write) {
                                            for &i in chunk {
                                                self.recovery.clear_lost(shard, addr_of(i));
                                            }
                                        }
                                        done.extend(chunk.iter().copied().zip(values));
                                        ops_since_poll = chunk.len();
                                    }
                                    Err((local, e)) => {
                                        if engine.is_killed()
                                            && !self.is_killed()
                                            && self.escalate_after_kill(shard, &e)
                                        {
                                            // Only the flag here: trip_kill()
                                            // locks every shard and we hold
                                            // this one. The coordinator
                                            // finishes the kill after join.
                                            self.killed.store(true, Ordering::Release);
                                        }
                                        return Err((chunk[local], e));
                                    }
                                }
                            }
                            if let Some(index) = lost_hit {
                                return Err((
                                    index,
                                    ToleoError::PageLost {
                                        shard,
                                        address: addr_of(index),
                                    },
                                ));
                            }
                        }
                        // Tail poll: a quarantine landing during the final
                        // chunk still gets its observation lag recorded.
                        if self.quarantine.epoch() != epoch_seen {
                            self.max_poll_lag_ops
                                .fetch_max(ops_since_poll as u64, Ordering::Relaxed);
                        }
                        Ok(done)
                    });
                    (first, handle)
                })
                .collect();
            handles
                .into_iter()
                .map(|(first, h)| match h.join() {
                    Ok(outcome) => outcome,
                    // A panicked worker is an engine bug, not tampering,
                    // but the response is the same fail-closed one: kill
                    // the world and fail the shard's whole queue rather
                    // than silently dropping its ops.
                    Err(_) => {
                        self.killed.store(true, Ordering::Release);
                        Err((
                            first,
                            ToleoError::IntegrityViolation {
                                address: addr_of(first),
                            },
                        ))
                    }
                })
                .collect()
        });

        let mut out = vec![fill; len];
        // Smallest-index failure, tracked separately per severity: a
        // security-relevant failure (tamper, quarantine, unreachable
        // device) must never be masked by a benign, retryable failure
        // (e.g. `DeviceFull`) that happens to sit earlier in the batch.
        let mut first_severe: Option<(usize, ToleoError)> = None;
        let mut first_other: Option<(usize, ToleoError)> = None;
        for outcome in outcomes {
            match outcome {
                Ok(done) => {
                    for (i, value) in done {
                        out[i] = value;
                    }
                }
                Err((i, e)) => {
                    let slot = if error_is_severe(&e) {
                        &mut first_severe
                    } else {
                        &mut first_other
                    };
                    if slot.as_ref().is_none_or(|(fi, _)| i < *fi) {
                        *slot = Some((i, e));
                    }
                }
            }
        }
        // No locks held now: finish propagating a worker-detected
        // world-kill to every shard so each is individually inert.
        if self.is_killed() {
            self.trip_kill();
        }
        match first_severe.or(first_other) {
            Some((index, error)) => Err(BatchError { index, error }),
            None => Ok(out),
        }
    }

    /// Aggregated engine counters across all shards. Quarantined (and
    /// world-killed) shards contribute their frozen [`KillSnapshot`]
    /// counters — each shard's engine serves either its live stats or its
    /// snapshot, never both, so a partial quarantine merges live and
    /// frozen shards without double-counting.
    pub fn stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for index in 0..self.shards.len() {
            total.merge(&self.lock_shard(index).stats());
        }
        total
    }

    /// Per-shard engine counters, in shard order (load-balance telemetry
    /// for the throughput harness). Quarantined shards report their
    /// frozen snapshot.
    pub fn per_shard_stats(&self) -> Vec<EngineStats> {
        (0..self.shards.len())
            .map(|index| self.lock_shard(index).stats())
            .collect()
    }

    /// Aggregated stealth-cache statistics across all shards.
    pub fn stealth_cache_stats(&self) -> crate::cache::CacheStats {
        let mut total = crate::cache::CacheStats::default();
        for index in 0..self.shards.len() {
            total.merge(&self.lock_shard(index).stealth_cache_stats());
        }
        total
    }

    /// Aggregated MAC-cache statistics across all shards.
    pub fn mac_cache_stats(&self) -> crate::cache::CacheStats {
        let mut total = crate::cache::CacheStats::default();
        for index in 0..self.shards.len() {
            total.merge(&self.lock_shard(index).mac_cache_stats());
        }
        total
    }

    /// Aggregated device counters across all shards.
    pub fn device_stats(&self) -> DeviceStats {
        let mut total = DeviceStats::default();
        for index in 0..self.shards.len() {
            total.merge(&self.lock_shard(index).device_stats());
        }
        total
    }

    /// Aggregated device-channel counters across all shards (frozen
    /// values for quarantined shards).
    pub fn channel_stats(&self) -> ChannelStats {
        let mut total = ChannelStats::default();
        for index in 0..self.shards.len() {
            total.merge(&self.lock_shard(index).channel_stats());
        }
        total
    }

    /// Aggregated robustness telemetry: channel counters plus quarantine
    /// and poll-lag state. See [`RobustnessStats`].
    pub fn robustness_stats(&self) -> RobustnessStats {
        RobustnessStats {
            channel: self.channel_stats(),
            quarantined_shards: self.quarantine.count(),
            world_killed: self.is_killed(),
            ops_served: self.ops_served.load(Ordering::Relaxed),
            ops_at_last_quarantine: self.ops_at_last_quarantine.load(Ordering::Acquire),
            max_poll_lag_ops: self.max_poll_lag_ops.load(Ordering::Relaxed),
            recovery: self.recovery.stats(),
        }
    }

    /// The frozen [`KillSnapshot`] of a quarantined (or world-killed)
    /// shard, `None` while the shard is healthy.
    pub fn shard_kill_snapshot(&self, shard: usize) -> Option<KillSnapshot> {
        self.lock_shard(shard).kill_snapshot()
    }

    /// Adversary access to the untrusted memory of the shard owning
    /// `addr`. Usable concurrently with victim traffic on other shards —
    /// exactly the attack surface the concurrency security tests drive.
    pub fn with_adversary<R>(&self, addr: u64, f: impl FnOnce(&mut UntrustedDram) -> R) -> R {
        let shard = self.shard_of_addr(addr);
        let mut engine = self.lock_shard(shard);
        f(engine.adversary())
    }

    /// Exclusive access to one shard's engine (tests and tooling; `&mut
    /// self` proves no worker is running).
    pub fn shard_engine_mut(&mut self, index: usize) -> &mut ProtectionEngine {
        self.shards[index]
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// How an operation interacts with the lost-block ledger a recovery may
/// have left behind (see [`recovery`]): reads refuse lost addresses,
/// writes repopulate them, page frees discard every marker on the page.
#[derive(Debug, Clone, Copy)]
enum Access {
    Read,
    Write,
    Free,
}

/// Whether `e` is security-relevant (must never be masked by a benign
/// failure earlier in a batch): tampering, a quarantined shard, an
/// unreachable freshness device, or a block lost to a recovery scrub
/// (data the adversary destroyed).
fn error_is_severe(e: &ToleoError) -> bool {
    matches!(
        e,
        ToleoError::IntegrityViolation { .. }
            | ToleoError::ShardQuarantined { .. }
            | ToleoError::DeviceUnavailable { .. }
            | ToleoError::PageLost { .. }
    )
}

/// Derives a shard's 48-byte key material from the root key: each 16-byte
/// subkey (XTS data, XTS tweak, MAC) keys AES-128 as a PRF over a block
/// encoding the shard index and the subkey's role, so no two shards — and
/// no shard and the root — ever share a key.
fn derive_shard_key(root: &[u8; 48], shard: u64) -> [u8; 48] {
    derive_shard_key_gen(root, shard, 0)
}

/// Generation-salted variant of [`derive_shard_key`]: the recovery
/// generation joins the PRF block, so a shard re-keyed after a quarantine
/// shares no key material with its compromised predecessor. Generation 0
/// is byte-identical to the original derivation.
fn derive_shard_key_gen(root: &[u8; 48], shard: u64, generation: u8) -> [u8; 48] {
    let mut out = [0u8; 48];
    for (role, subkey) in crate::engine::split_key_material(root)
        .into_iter()
        .enumerate()
    {
        let mut block = [0u8; 16];
        block[..8].copy_from_slice(&shard.to_le_bytes());
        block[8] = role as u8;
        block[9..15].copy_from_slice(b"shard/");
        block[15] = generation;
        out[role * 16..(role + 1) * 16]
            .copy_from_slice(&Aes128::new(&subkey).encrypt_block(&block));
    }
    out
}

/// Splitmix64-style derivation of a shard's device RNG seed: shards must
/// draw independent stealth-base streams or identical pages on different
/// shards would reveal correlated versions.
fn derive_shard_seed(root_seed: u64, shard: u64) -> u64 {
    let mut z = root_seed ^ (shard.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generation-salted variant of [`derive_shard_seed`]: a re-keyed shard's
/// device draws a fresh stealth-base stream. `shard` is below
/// [`MAX_SHARDS`] and the generation fits a byte, so distinct
/// (shard, generation) pairs map to distinct derivation inputs.
/// Generation 0 is identical to the original derivation.
fn derive_shard_seed_gen(root_seed: u64, shard: u64, generation: u64) -> u64 {
    derive_shard_seed(root_seed, shard ^ (generation << 32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LINES_PER_PAGE;

    fn sharded(shards: usize) -> ShardedEngine {
        ShardedEngine::new(ToleoConfig::small(), shards, [0x5cu8; 48]).unwrap()
    }

    #[test]
    fn rejects_zero_and_excessive_shard_counts() {
        for shards in [0, MAX_SHARDS + 1] {
            assert!(matches!(
                ShardedEngine::new(ToleoConfig::small(), shards, [0u8; 48]),
                Err(ToleoError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn single_ops_roundtrip_across_shards() {
        let e = sharded(4);
        for page in 0..16u64 {
            let addr = page * PAGE_BYTES as u64;
            e.write(addr, &[page as u8; 64]).unwrap();
        }
        for page in 0..16u64 {
            let addr = page * PAGE_BYTES as u64;
            assert_eq!(e.read(addr).unwrap(), [page as u8; 64]);
        }
        assert_eq!(e.stats().writes, 16);
        assert_eq!(e.stats().reads, 16);
        assert_eq!(e.robustness_stats().ops_served, 32);
    }

    #[test]
    fn pages_route_to_expected_shards() {
        let e = sharded(4);
        for page in 0..32u64 {
            assert_eq!(e.shard_of_page(page), (page % 4) as usize);
            // Every line of a page routes to the same shard.
            for line in [0usize, 17, 63] {
                let addr = page * PAGE_BYTES as u64 + (line * CACHE_BLOCK_BYTES) as u64;
                assert_eq!(e.shard_of_addr(addr), (page % 4) as usize);
            }
        }
    }

    #[test]
    fn batch_roundtrip_and_unwritten_zeros() {
        let e = sharded(3);
        let writes: Vec<(u64, Block)> = (0..64u64).map(|i| (i * 4096, [i as u8; 64])).collect();
        e.write_batch(&writes).unwrap();
        // Interleave written and never-written addresses.
        let addrs: Vec<u64> = (0..128u64).map(|i| i * 4096).collect();
        let blocks = e.read_batch(&addrs).unwrap();
        for (i, block) in blocks.iter().enumerate() {
            let expect = if i < 64 { [i as u8; 64] } else { [0u8; 64] };
            assert_eq!(*block, expect, "address {i}");
        }
    }

    #[test]
    fn duplicate_addresses_in_one_write_batch_keep_batch_order() {
        let e = sharded(4);
        let ops: Vec<(u64, Block)> = (0..10u8).map(|v| (0x3000, [v; 64])).collect();
        e.write_batch(&ops).unwrap();
        assert_eq!(e.read(0x3000).unwrap(), [9u8; 64]);
    }

    #[test]
    fn empty_batches_are_noops() {
        let e = sharded(2);
        e.write_batch(&[]).unwrap();
        assert!(e.read_batch(&[]).unwrap().is_empty());
        assert_eq!(e.stats(), EngineStats::default());
    }

    #[test]
    fn tamper_on_one_shard_quarantines_only_that_shard() {
        let mut e = sharded(4);
        for page in 0..8u64 {
            e.write(page * 4096, &[1u8; 64]).unwrap();
        }
        // Corrupt a block owned by shard 2 (page 2).
        e.with_adversary(2 * 4096, |dram| dram.corrupt_data(2 * 4096, 13, 0xa5));
        assert!(matches!(
            e.read(2 * 4096),
            Err(ToleoError::IntegrityViolation { .. })
        ));
        // Containment: only shard 2 is frozen; the world lives on.
        assert!(!e.is_killed(), "tamper must quarantine, not world-kill");
        assert!(e.is_shard_quarantined(2));
        assert_eq!(e.quarantined_shard_count(), 1);
        // The quarantined shard refuses with the frozen forensic snapshot.
        match e.read(2 * 4096) {
            Err(ToleoError::ShardQuarantined {
                shard: 2,
                address,
                snapshot,
            }) => {
                assert_eq!(address, 2 * 4096);
                // Shard 2 owned pages 2 and 6 of the 8 written, plus the
                // detecting read.
                assert_eq!(snapshot.stats.writes, 2);
                assert_eq!(snapshot.stats.reads, 1);
            }
            other => panic!("expected ShardQuarantined, got {other:?}"),
        }
        assert!(e.write(6 * 4096, &[0u8; 64]).is_err(), "page 6 is shard 2");
        // Every healthy shard keeps serving reads, writes and frees.
        for page in [0u64, 1, 3, 4, 5, 7] {
            assert_eq!(e.read(page * 4096).unwrap(), [1u8; 64], "page {page}");
            e.write(page * 4096, &[2u8; 64]).unwrap();
        }
        e.free_page(3).unwrap();
        // Only shard 2's engine is dead.
        for shard in 0..4 {
            assert_eq!(e.shard_engine_mut(shard).is_killed(), shard == 2);
        }
    }

    #[test]
    fn batch_containing_tampered_block_quarantines_owner_only() {
        let e = sharded(4);
        let writes: Vec<(u64, Block)> = (0..16u64).map(|i| (i * 4096, [i as u8; 64])).collect();
        e.write_batch(&writes).unwrap();
        e.with_adversary(5 * 4096, |dram| dram.corrupt_data(5 * 4096, 0, 0x01));
        let addrs: Vec<u64> = (0..16u64).map(|i| i * 4096).collect();
        assert!(matches!(
            e.read_batch(&addrs),
            Err(ToleoError::IntegrityViolation { .. })
        ));
        assert!(!e.is_killed());
        assert!(e.is_shard_quarantined(1), "page 5 belongs to shard 1");
        assert_eq!(e.quarantined_shard_count(), 1);
        // A batch over the healthy shards' pages drains around the
        // quarantined member.
        let healthy: Vec<u64> = (0..16u64)
            .filter(|i| i % 4 != 1)
            .map(|i| i * 4096)
            .collect();
        let blocks = e.read_batch(&healthy).unwrap();
        assert_eq!(blocks.len(), 12);
        // A batch touching the quarantined shard refuses with the snapshot.
        assert!(matches!(
            e.read_batch(&[0, 4096]),
            Err(ToleoError::ShardQuarantined { shard: 1, .. })
        ));
    }

    #[test]
    fn batch_reports_tamper_over_earlier_benign_error() {
        // A batch whose lowest-index failure is benign (out-of-range) but
        // which also trips a tamper on another shard must surface the
        // integrity violation — the caller has to learn the shard died.
        let e = sharded(2);
        e.write(4096, &[7u8; 64]).unwrap(); // page 1 -> shard 1
        e.with_adversary(4096, |dram| dram.corrupt_data(4096, 3, 0x40));
        let out_of_range = e.config().protected_pages() * PAGE_BYTES as u64; // shard 0
        let err = e.read_batch_indexed(&[out_of_range, 4096]).unwrap_err();
        assert!(matches!(err.error, ToleoError::IntegrityViolation { .. }));
        assert_eq!(err.index, 1, "the violation's own index, not 0");
        assert!(!e.is_killed());
        assert!(e.is_shard_quarantined(1));
    }

    #[test]
    fn indexed_batches_report_the_failing_op_index() {
        let e = sharded(4);
        let writes: Vec<(u64, Block)> = (0..12u64).map(|i| (i * 4096, [i as u8; 64])).collect();
        e.write_batch_indexed(&writes).unwrap();
        // Corrupt page 7 (shard 3): the read batch must name index 7.
        e.with_adversary(7 * 4096, |dram| dram.corrupt_data(7 * 4096, 5, 0x11));
        let addrs: Vec<u64> = (0..12u64).map(|i| i * 4096).collect();
        let err = e.read_batch_indexed(&addrs).unwrap_err();
        assert_eq!(err.index, 7);
        assert!(matches!(
            err.error,
            ToleoError::IntegrityViolation { address } if address == 7 * 4096
        ));
        // Re-running the batch: shard 3's queue (indices 3, 7, 11) refuses
        // at its first op with the quarantine error; other shards served.
        let err = e.read_batch_indexed(&addrs).unwrap_err();
        assert_eq!(err.index, 3);
        assert!(matches!(
            err.error,
            ToleoError::ShardQuarantined { shard: 3, .. }
        ));
    }

    #[test]
    fn device_full_propagates_without_killing() {
        let mut cfg = ToleoConfig::small();
        cfg.device_capacity_bytes = cfg.flat_array_bytes(); // zero dynamic blocks
        let e = ShardedEngine::new(cfg, 2, [1u8; 48]).unwrap();
        // Second hot write to one line forces a flat->uneven upgrade, which
        // the zero-block dynamic region rejects.
        e.write(0x40, &[1u8; 64]).unwrap();
        assert!(matches!(
            e.write(0x40, &[2u8; 64]),
            Err(ToleoError::DeviceFull { .. })
        ));
        assert!(!e.is_killed(), "resource exhaustion is not tampering");
        assert_eq!(e.quarantined_shard_count(), 0);
        // The engine still serves.
        assert_eq!(e.read(0x40).unwrap(), [1u8; 64]);
    }

    #[test]
    fn retry_exhaustion_escalates_to_world_kill() {
        // Every UPDATE times out: the channel burns its whole budget, the
        // engine cannot verify freshness, and — unlike a tamper — this
        // escalates past quarantine to the world-kill.
        let mut plan = FaultPlanConfig::uniform(9, 0.0);
        plan.update.timeout = 1.0;
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let e = ShardedEngine::new_with_robustness(
            ToleoConfig::small(),
            4,
            [1u8; 48],
            Some(plan),
            policy,
        )
        .unwrap();
        match e.write(0x40, &[1u8; 64]) {
            Err(ToleoError::DeviceUnavailable { attempts: 3, .. }) => {}
            other => panic!("expected DeviceUnavailable, got {other:?}"),
        }
        assert!(e.is_killed(), "unreachable device must world-kill");
        assert_eq!(e.quarantined_shard_count(), 0, "this is not a quarantine");
        let rs = e.robustness_stats();
        assert!(rs.world_killed);
        assert_eq!(rs.channel.retry_exhaustions, 1);
        // Every shard — not just the one that saw the fault — is inert.
        for page in 0..8u64 {
            assert!(e.read(page * 4096).is_err(), "page {page}");
        }
    }

    #[test]
    fn kill_poll_ops_knob_clamps_and_batches_still_work() {
        let mut e = sharded(2);
        assert_eq!(e.kill_poll_ops(), DEFAULT_KILL_POLL_OPS);
        e.set_kill_poll_ops(0);
        assert_eq!(e.kill_poll_ops(), 1, "clamped to at least one op");
        e.set_kill_poll_ops(16);
        assert_eq!(e.kill_poll_ops(), 16);
        let writes: Vec<(u64, Block)> = (0..100u64).map(|i| (i * 4096, [i as u8; 64])).collect();
        e.write_batch(&writes).unwrap();
        let addrs: Vec<u64> = writes.iter().map(|(a, _)| *a).collect();
        assert_eq!(e.read_batch(&addrs).unwrap().len(), 100);
    }

    /// Satellite regression: an in-flight batch on a healthy shard must
    /// observe a peer's quarantine within one poll interval — the
    /// recorded poll lag is the realized detection latency and is bounded
    /// by the knob.
    #[test]
    fn healthy_shard_observes_peer_quarantine_within_one_poll_interval() {
        let mut e = sharded(2);
        e.set_kill_poll_ops(16);
        // Shard 1 (odd pages) gets a long queue of real, crypto-heavy
        // reads so the batch is still draining when the tamper lands.
        let mut victim_writes: Vec<(u64, Block)> = Vec::new();
        for page in 0..64u64 {
            for line in 0..8u64 {
                victim_writes.push(((2 * page + 1) * 4096 + line * 64, [7u8; 64]));
            }
        }
        e.write_batch(&victim_writes).unwrap();
        e.write(0, &[1u8; 64]).unwrap(); // page 0 -> shard 0
        e.with_adversary(0, |dram| dram.corrupt_data(0, 0, 0xff));
        let addrs: Vec<u64> = (0..100_000usize)
            .map(|i| victim_writes[i % victim_writes.len()].0)
            .collect();
        let batch_result = std::thread::scope(|s| {
            let handle = s.spawn(|| e.read_batch(&addrs));
            // Let the healthy worker get well into its queue, then trip
            // the quarantine on shard 0 from this thread.
            std::thread::sleep(std::time::Duration::from_millis(5));
            assert!(e.read(0).is_err());
            handle.join().expect("batch worker must not panic")
        });
        let blocks = batch_result.expect("healthy shard's batch must complete");
        assert_eq!(blocks.len(), addrs.len());
        assert!(!e.is_killed());
        assert!(e.is_shard_quarantined(0));
        let rs = e.robustness_stats();
        assert!(
            rs.max_poll_lag_ops <= 16,
            "quarantine observed after {} ops, poll interval is 16",
            rs.max_poll_lag_ops
        );
        assert!(
            rs.max_poll_lag_ops > 0,
            "the in-flight batch must have observed the quarantine mid-drain"
        );
    }

    /// Satellite regression: merged stats during a partial quarantine
    /// combine the live shards' current counters with the quarantined
    /// shard's frozen snapshot, without double-counting.
    #[test]
    fn partial_quarantine_stats_merge_frozen_and_live_shards() {
        let e = sharded(4);
        for page in 0..4u64 {
            e.write(page * 4096, &[1u8; 64]).unwrap();
        }
        // Quarantine shard 1 (page 1).
        e.with_adversary(4096, |dram| dram.corrupt_data(4096, 2, 0x08));
        assert!(e.read(4096).is_err());
        assert!(e.is_shard_quarantined(1));
        let frozen = e.per_shard_stats()[1];
        assert_eq!(frozen.writes, 1);
        assert_eq!(frozen.reads, 1, "the detecting read is in the snapshot");
        let before = e.stats();
        // Drive traffic through the three live shards only.
        let mut healthy_ops = 0u64;
        for round in 0..10u64 {
            for page in [0u64, 2, 3] {
                e.write(page * 4096, &[round as u8; 64]).unwrap();
                assert_eq!(e.read(page * 4096).unwrap(), [round as u8; 64]);
                healthy_ops += 2;
            }
        }
        let after = e.stats();
        let per_shard = e.per_shard_stats();
        // The quarantined shard stayed frozen...
        assert_eq!(per_shard[1], frozen);
        // ...the live shards advanced by exactly the healthy traffic...
        assert_eq!(after.writes, before.writes + healthy_ops / 2);
        assert_eq!(after.reads, before.reads + healthy_ops / 2);
        // ...and the aggregate is exactly the per-shard sum (no double
        // counting of frozen vs live counters).
        let mut summed = EngineStats::default();
        for s in &per_shard {
            summed.merge(s);
        }
        assert_eq!(after, summed);
    }

    #[test]
    fn robustness_stats_aggregate_channel_counters_across_shards() {
        let plan = FaultPlanConfig::uniform(3, 0.2);
        let e = ShardedEngine::new_with_robustness(
            ToleoConfig::small(),
            2,
            [2u8; 48],
            Some(plan),
            RetryPolicy::default(),
        )
        .unwrap();
        for page in 0..50u64 {
            e.write(page * 4096, &[page as u8; 64]).unwrap();
            assert_eq!(e.read(page * 4096).unwrap(), [page as u8; 64]);
        }
        let rs = e.robustness_stats();
        assert_eq!(rs.ops_served, 100);
        assert_eq!(rs.channel.ops, 100, "every device op crossed the channel");
        assert!(rs.channel.faults_injected > 0, "20% rate must inject");
        assert_eq!(rs.channel.faults_absorbed, rs.channel.faults_injected);
        assert!(rs.channel.retries > 0);
        assert!(rs.channel.backoff_nanos > 0);
        assert_eq!(rs.channel.retry_exhaustions, 0);
        assert_eq!(rs.quarantined_shards, 0);
        assert!(!rs.world_killed);
    }

    #[test]
    fn shard_keys_and_seeds_are_pairwise_distinct() {
        let root = [0x42u8; 48];
        let keys: Vec<[u8; 48]> = (0..8).map(|s| derive_shard_key(&root, s)).collect();
        for i in 0..keys.len() {
            assert_ne!(keys[i], root, "shard {i} must not reuse the root key");
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "shards {i}/{j} share key material");
            }
        }
        let seeds: Vec<u64> = (0..8).map(|s| derive_shard_seed(7, s)).collect();
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn aggregated_stats_sum_per_shard_stats() {
        let e = sharded(3);
        let writes: Vec<(u64, Block)> = (0..30u64).map(|i| (i * 4096, [1u8; 64])).collect();
        e.write_batch(&writes).unwrap();
        let per_shard = e.per_shard_stats();
        assert_eq!(per_shard.len(), 3);
        let total: u64 = per_shard.iter().map(|s| s.writes).sum();
        assert_eq!(total, 30);
        assert_eq!(e.stats().writes, 30);
        assert_eq!(e.device_stats().updates, 30);
        // 30 pages over 3 shards: balanced.
        for (i, s) in per_shard.iter().enumerate() {
            assert_eq!(s.writes, 10, "shard {i}");
        }
    }

    #[test]
    fn free_page_routes_and_scrambles() {
        let e = sharded(4);
        e.write(0x5000, &[3u8; 64]).unwrap();
        e.free_page(0x5000 / PAGE_BYTES as u64).unwrap();
        assert!(e.read(0x5000).is_err(), "freed page must be unreadable");
    }

    #[test]
    fn within_page_lines_stay_on_one_shard_through_reset_walks() {
        // Hot-line hammering with aggressive resets exercises the page
        // re-encryption slab walk entirely inside one shard.
        let mut cfg = ToleoConfig::small();
        cfg.reset_log2 = 4;
        let e = ShardedEngine::new(cfg, 4, [9u8; 48]).unwrap();
        for l in 0..8u64 {
            e.write(0x2000 + l * 64, &[l as u8 + 1; 64]).unwrap();
        }
        for _ in 0..300 {
            e.write(0x2000 + 9 * 64, &[0xee; 64]).unwrap();
        }
        assert!(e.stats().pages_reencrypted > 0, "resets must fire");
        for l in 0..8u64 {
            assert_eq!(e.read(0x2000 + l * 64).unwrap(), [l as u8 + 1; 64]);
        }
        let per_shard = e.per_shard_stats();
        let active: Vec<usize> = (0..4).filter(|&s| per_shard[s].writes > 0).collect();
        assert_eq!(active, vec![e.shard_of_addr(0x2000)]);
    }

    #[test]
    fn handle_is_shareable_across_threads() {
        let e = sharded(4);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let e = &e;
                s.spawn(move || {
                    for i in 0..LINES_PER_PAGE as u64 {
                        let addr = (t * 16 + i % 16) * PAGE_BYTES as u64 + (i / 16) * 64;
                        e.write(addr, &[t as u8; 64]).unwrap();
                        assert_eq!(e.read(addr).unwrap(), [t as u8; 64]);
                    }
                });
            }
        });
        assert_eq!(e.stats().writes, 4 * LINES_PER_PAGE as u64);
        assert!(!e.is_killed());
        assert_eq!(e.quarantined_shard_count(), 0);
    }
}
