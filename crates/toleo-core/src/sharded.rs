//! Sharded concurrent protection engine.
//!
//! The paper pitches Toleo at tera-scale pools serving many hosts, which a
//! single-threaded [`ProtectionEngine`] cannot saturate. This module
//! partitions the physical address space page-wise across N independent
//! shards. Each shard owns a complete `ProtectionEngine` — its own
//! untrusted-memory arena, stealth/MAC caches, device slice and a key
//! schedule derived per-shard from the root key material — so shards share
//! **no** mutable state except the global kill flag. That makes the
//! decomposition embarrassingly parallel: on a host with enough cores,
//! throughput scales with the shard-worker count until memory bandwidth
//! saturates.
//!
//! [`ShardedEngine`] is the thread-safe handle. Single operations route to
//! the owning shard under its mutex; [`read_batch`](ShardedEngine::read_batch)
//! and [`write_batch`](ShardedEngine::write_batch) split a batch into
//! per-shard op queues and drain them with [`std::thread::scope`] workers,
//! one per occupied shard.
//!
//! Security composes across shards: the moment any shard's engine detects
//! tampering or replay, the *whole* sharded engine is killed — the global
//! flag flips, in-flight batch workers abort, and every peer shard is
//! force-killed so each is individually inert thereafter.

// audit: allow-file(indexing, shard and queue indices come from shard_of_addr and the queue builder, bounded by the shard count)

use crate::config::{ToleoConfig, CACHE_BLOCK_BYTES, PAGE_BYTES};
use crate::device::DeviceStats;
use crate::engine::{Block, EngineStats, ProtectionEngine, UntrustedDram};
use crate::error::{BatchError, Result, ToleoError};
use crate::layout;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use toleo_crypto::aes::Aes128;

// The shards are driven from scoped worker threads; this fails to compile
// if `ProtectionEngine` ever grows a non-Send member.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<ProtectionEngine>();
};

/// Upper bound on the shard count: one shard per page-interleave slot of
/// the smallest supported pool would be absurd; 4096 comfortably covers
/// any plausible worker fleet while keeping the routing modulus cheap.
pub const MAX_SHARDS: usize = 4096;

/// Ops a batch worker hands to the engine's batched entry points between
/// global-kill polls. Large enough that run-grouping and pipelined tweak
/// precompute inside [`ProtectionEngine::read_batch`] pay off; small
/// enough that a peer shard's tamper detection still aborts this worker
/// promptly.
const KILL_POLL_OPS: usize = 64;

/// A sharded, thread-safe protection engine: N independent
/// [`ProtectionEngine`] shards behind one handle, with page-granular
/// address routing and a global kill switch.
///
/// # Examples
///
/// ```
/// use toleo_core::config::ToleoConfig;
/// use toleo_core::sharded::ShardedEngine;
///
/// let engine = ShardedEngine::new(ToleoConfig::small(), 4, [7u8; 48]).unwrap();
/// let writes: Vec<(u64, [u8; 64])> =
///     (0..16u64).map(|i| (i * 4096, [i as u8; 64])).collect();
/// engine.write_batch(&writes).unwrap();
/// let addrs: Vec<u64> = writes.iter().map(|(a, _)| *a).collect();
/// let blocks = engine.read_batch(&addrs).unwrap();
/// for (i, block) in blocks.iter().enumerate() {
///     assert_eq!(*block, [i as u8; 64]);
/// }
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Box<[Mutex<ProtectionEngine>]>,
    /// Set the instant any shard detects tamper; checked on every entry
    /// and between batch ops so workers abort promptly.
    killed: AtomicBool,
    cfg: ToleoConfig,
}

impl ShardedEngine {
    /// Creates an engine with `shards` independent shards. Each shard's
    /// 48-byte key material is derived from `root_key` with AES-128 as a
    /// PRF (so shards never share data/tweak/MAC keys), and each shard's
    /// device draws from an independently seeded D-RaNGe stream.
    ///
    /// # Errors
    ///
    /// [`ToleoError::InvalidConfig`] if `shards` is 0 or exceeds
    /// [`MAX_SHARDS`], or if `cfg` fails
    /// [`ToleoConfig::validate`](crate::config::ToleoConfig::validate).
    pub fn new(cfg: ToleoConfig, shards: usize, root_key: [u8; 48]) -> Result<Self> {
        if shards == 0 || shards > MAX_SHARDS {
            return Err(ToleoError::InvalidConfig {
                detail: format!("shard count {shards} outside 1..={MAX_SHARDS}"),
            });
        }
        let engines = (0..shards)
            .map(|s| {
                let mut shard_cfg = cfg.clone();
                shard_cfg.rng_seed = derive_shard_seed(cfg.rng_seed, s as u64);
                ProtectionEngine::try_new(shard_cfg, derive_shard_key(&root_key, s as u64))
                    .map(Mutex::new)
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedEngine {
            shards: engines.into_boxed_slice(),
            killed: AtomicBool::new(false),
            cfg,
        })
    }

    /// The configuration shards were built from (per-shard configs differ
    /// only in their derived RNG seed).
    pub fn config(&self) -> &ToleoConfig {
        &self.cfg
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns `addr` (page-wise interleaving: consecutive
    /// pages land on consecutive shards, so page-local version state —
    /// Trip entries, UVs, reset walks — never crosses a shard boundary).
    pub fn shard_of_addr(&self, addr: u64) -> usize {
        self.shard_of_page(layout::page_of(addr))
    }

    /// The shard that owns `page`.
    pub fn shard_of_page(&self, page: u64) -> usize {
        (page % self.shards.len() as u64) as usize
    }

    /// Whether the global kill switch has engaged.
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }

    fn lock_shard(&self, index: usize) -> MutexGuard<'_, ProtectionEngine> {
        // A panic in an engine op must not wedge the handle: the engine's
        // state is still sound (it never holds half-updated invariants
        // across public calls), so recover the guard from the poison.
        self.shards[index]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn check_alive(&self, address: u64) -> Result<()> {
        if self.is_killed() {
            return Err(ToleoError::IntegrityViolation { address });
        }
        Ok(())
    }

    /// Engages the global kill: flips the flag and force-kills every shard
    /// so each is individually inert. Must not be called while holding a
    /// shard lock (it acquires all of them in turn).
    fn trip_kill(&self) {
        self.killed.store(true, Ordering::SeqCst);
        for index in 0..self.shards.len() {
            self.lock_shard(index).force_kill();
        }
    }

    /// Runs `f` on the shard owning `address`, then propagates a shard
    /// kill to the whole engine.
    fn run_on_shard<R>(
        &self,
        address: u64,
        f: impl FnOnce(&mut ProtectionEngine) -> Result<R>,
    ) -> Result<R> {
        self.check_alive(address)?;
        let shard = self.shard_of_addr(address);
        let (result, shard_killed) = {
            let mut engine = self.lock_shard(shard);
            let result = f(&mut engine);
            (result, engine.is_killed())
        };
        if shard_killed {
            self.trip_kill();
        }
        result
    }

    /// Writes a 64-byte block at `addr` through the owning shard.
    ///
    /// # Errors
    ///
    /// As [`ProtectionEngine::write`]; additionally fails with
    /// [`ToleoError::IntegrityViolation`] once any shard has been killed.
    pub fn write(&self, addr: u64, plaintext: &Block) -> Result<()> {
        self.run_on_shard(addr, |engine| engine.write(addr, plaintext))
    }

    /// Reads the 64-byte block at `addr` through the owning shard.
    ///
    /// # Errors
    ///
    /// As [`ProtectionEngine::read`]; a tamper detection on this shard
    /// kills the whole sharded engine.
    pub fn read(&self, addr: u64) -> Result<Block> {
        self.run_on_shard(addr, |engine| engine.read(addr))
    }

    /// OS page free / remap, routed to the owning shard.
    ///
    /// # Errors
    ///
    /// As [`ProtectionEngine::free_page`].
    pub fn free_page(&self, page: u64) -> Result<()> {
        self.run_on_shard(page * PAGE_BYTES as u64, |engine| engine.free_page(page))
    }

    /// Writes a batch of blocks, fanned out across shards with one scoped
    /// worker thread per occupied shard. Each worker drains its queue
    /// through [`ProtectionEngine::write_batch`] in `KILL_POLL_OPS`-op
    /// chunks (checking the global kill flag between chunks), replacing
    /// the old one-call-per-op loop. Within a shard, ops execute in batch
    /// order (so a later write to the same address wins, exactly as in a
    /// sequential replay); across shards there is no ordering, which is
    /// safe because shards share no state.
    ///
    /// # Errors
    ///
    /// The failing op's error, smallest batch index first, except that an
    /// [`ToleoError::IntegrityViolation`] anywhere in the batch always
    /// wins over benign failures (a security event must not be masked by
    /// a retryable error). If any shard detected tampering, the whole
    /// engine is killed and remaining workers abort early.
    pub fn write_batch(&self, ops: &[(u64, Block)]) -> Result<()> {
        self.write_batch_indexed(ops).map_err(|e| e.error)
    }

    /// [`write_batch`](Self::write_batch) variant that also reports the
    /// smallest failing batch index (integrity violations still take
    /// precedence over earlier benign failures). Because shard workers
    /// run concurrently, ops *after* the index on **other** shards may
    /// have completed; on the failing op's own shard, ops before it
    /// completed and ops after it were not attempted.
    ///
    /// # Errors
    ///
    /// [`BatchError`] with the failing index and underlying error.
    pub fn write_batch_indexed(&self, ops: &[(u64, Block)]) -> std::result::Result<(), BatchError> {
        let mut scratch: Vec<(u64, Block)> = Vec::new();
        self.run_batch(
            ops.len(),
            (),
            |i| ops[i].0,
            move |engine, chunk| {
                scratch.clear();
                scratch.extend(chunk.iter().map(|&i| ops[i]));
                engine
                    .write_batch(&scratch)
                    .map(|()| vec![(); chunk.len()])
                    .map_err(|e| (e.index, e.error))
            },
        )
        .map(|_: Vec<()>| ())
    }

    /// Reads a batch of blocks, fanned out across shards with one scoped
    /// worker thread per occupied shard, each draining its queue through
    /// [`ProtectionEngine::read_batch`] (run-grouped version fetches and
    /// pipelined tweak precompute) in kill-polled chunks. Results are
    /// returned in batch order.
    ///
    /// # Errors
    ///
    /// As [`write_batch`](Self::write_batch): smallest failing batch
    /// index, with integrity violations preferred over benign errors; a
    /// tamper detection on any shard kills the whole engine.
    pub fn read_batch(&self, addrs: &[u64]) -> Result<Vec<Block>> {
        self.read_batch_indexed(addrs).map_err(|e| e.error)
    }

    /// [`read_batch`](Self::read_batch) variant that also reports the
    /// smallest failing batch index, with the same concurrent-completion
    /// caveat as [`write_batch_indexed`](Self::write_batch_indexed).
    ///
    /// # Errors
    ///
    /// [`BatchError`] with the failing index and underlying error.
    pub fn read_batch_indexed(&self, addrs: &[u64]) -> std::result::Result<Vec<Block>, BatchError> {
        let mut scratch: Vec<u64> = Vec::new();
        self.run_batch(
            addrs.len(),
            [0u8; CACHE_BLOCK_BYTES],
            |i| addrs[i],
            move |engine, chunk| {
                scratch.clear();
                scratch.extend(chunk.iter().map(|&i| addrs[i]));
                engine.read_batch(&scratch).map_err(|e| (e.index, e.error))
            },
        )
    }

    /// Shared batch executor: partitions op indices `0..len` into
    /// per-shard queues by `addr_of`, drains each queue on a scoped worker
    /// under the shard lock via `exec_chunk` (which maps a chunk of op
    /// indices through the engine's batched entry points and reports a
    /// failure as its chunk-local index), and scatters per-op payloads
    /// back into batch order (`fill` seeds the output vector). Returns the
    /// payload vector (unit-cost for writes), or the smallest failing
    /// batch index with its error.
    fn run_batch<T: Clone + Send>(
        &self,
        len: usize,
        fill: T,
        addr_of: impl Fn(usize) -> u64 + Sync,
        exec_chunk: impl FnMut(
                &mut ProtectionEngine,
                &[usize],
            ) -> std::result::Result<Vec<T>, (usize, ToleoError)>
            + Clone
            + Send
            + Sync,
    ) -> std::result::Result<Vec<T>, BatchError> {
        if len == 0 {
            return Ok(Vec::new());
        }
        self.check_alive(addr_of(0))
            .map_err(|error| BatchError { index: 0, error })?;
        let mut queues: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for i in 0..len {
            queues[self.shard_of_addr(addr_of(i))].push(i);
        }

        type ShardOutcome<T> = std::result::Result<Vec<(usize, T)>, (usize, ToleoError)>;
        let outcomes: Vec<ShardOutcome<T>> = std::thread::scope(|s| {
            let handles: Vec<_> = queues
                .iter()
                .enumerate()
                .filter(|(_, queue)| !queue.is_empty())
                .map(|(shard, queue)| {
                    let addr_of = &addr_of;
                    let mut exec_chunk = exec_chunk.clone();
                    let first = queue.first().copied().unwrap_or(0);
                    let handle = s.spawn(move || -> ShardOutcome<T> {
                        let mut engine = self.lock_shard(shard);
                        let mut done = Vec::with_capacity(queue.len());
                        for chunk in queue.chunks(KILL_POLL_OPS) {
                            // A peer shard may have tripped the kill while
                            // this queue was draining: abort promptly.
                            if self.killed.load(Ordering::SeqCst) {
                                return Err((
                                    chunk[0],
                                    ToleoError::IntegrityViolation {
                                        address: addr_of(chunk[0]),
                                    },
                                ));
                            }
                            match exec_chunk(&mut engine, chunk) {
                                Ok(values) => {
                                    done.extend(chunk.iter().copied().zip(values));
                                }
                                Err((local, e)) => {
                                    if engine.is_killed() {
                                        // Only the flag here: trip_kill()
                                        // locks every shard and we hold
                                        // this one. The coordinator
                                        // finishes the kill after join.
                                        self.killed.store(true, Ordering::SeqCst);
                                    }
                                    return Err((chunk[local], e));
                                }
                            }
                        }
                        Ok(done)
                    });
                    (first, handle)
                })
                .collect();
            handles
                .into_iter()
                .map(|(first, h)| match h.join() {
                    Ok(outcome) => outcome,
                    // A panicked worker is an engine bug, not tampering,
                    // but the response is the same fail-closed one: kill
                    // the engine and fail the shard's whole queue rather
                    // than silently dropping its ops.
                    Err(_) => {
                        self.killed.store(true, Ordering::SeqCst);
                        Err((
                            first,
                            ToleoError::IntegrityViolation {
                                address: addr_of(first),
                            },
                        ))
                    }
                })
                .collect()
        });

        let mut out = vec![fill; len];
        // Smallest-index failure, tracked separately per severity: a
        // tamper detection must never be masked by a benign, retryable
        // failure (e.g. `DeviceFull`) that happens to sit earlier in the
        // batch — the caller has to learn the engine is dead.
        let mut first_integrity: Option<(usize, ToleoError)> = None;
        let mut first_other: Option<(usize, ToleoError)> = None;
        for outcome in outcomes {
            match outcome {
                Ok(done) => {
                    for (i, value) in done {
                        out[i] = value;
                    }
                }
                Err((i, e)) => {
                    let slot = if matches!(e, ToleoError::IntegrityViolation { .. }) {
                        &mut first_integrity
                    } else {
                        &mut first_other
                    };
                    if slot.as_ref().is_none_or(|(fi, _)| i < *fi) {
                        *slot = Some((i, e));
                    }
                }
            }
        }
        // No locks held now: finish propagating a worker-detected kill to
        // every shard so each is individually inert.
        if self.is_killed() {
            self.trip_kill();
        }
        match first_integrity.or(first_other) {
            Some((index, error)) => Err(BatchError { index, error }),
            None => Ok(out),
        }
    }

    /// Aggregated engine counters across all shards.
    pub fn stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for index in 0..self.shards.len() {
            total.merge(&self.lock_shard(index).stats());
        }
        total
    }

    /// Per-shard engine counters, in shard order (load-balance telemetry
    /// for the throughput harness).
    pub fn per_shard_stats(&self) -> Vec<EngineStats> {
        (0..self.shards.len())
            .map(|index| self.lock_shard(index).stats())
            .collect()
    }

    /// Aggregated stealth-cache statistics across all shards.
    pub fn stealth_cache_stats(&self) -> crate::cache::CacheStats {
        let mut total = crate::cache::CacheStats::default();
        for index in 0..self.shards.len() {
            total.merge(&self.lock_shard(index).stealth_cache_stats());
        }
        total
    }

    /// Aggregated MAC-cache statistics across all shards.
    pub fn mac_cache_stats(&self) -> crate::cache::CacheStats {
        let mut total = crate::cache::CacheStats::default();
        for index in 0..self.shards.len() {
            total.merge(&self.lock_shard(index).mac_cache_stats());
        }
        total
    }

    /// Aggregated device counters across all shards.
    pub fn device_stats(&self) -> DeviceStats {
        let mut total = DeviceStats::default();
        for index in 0..self.shards.len() {
            total.merge(&self.lock_shard(index).device_stats());
        }
        total
    }

    /// Adversary access to the untrusted memory of the shard owning
    /// `addr`. Usable concurrently with victim traffic on other shards —
    /// exactly the attack surface the concurrency security tests drive.
    pub fn with_adversary<R>(&self, addr: u64, f: impl FnOnce(&mut UntrustedDram) -> R) -> R {
        let shard = self.shard_of_addr(addr);
        let mut engine = self.lock_shard(shard);
        f(engine.adversary())
    }

    /// Exclusive access to one shard's engine (tests and tooling; `&mut
    /// self` proves no worker is running).
    pub fn shard_engine_mut(&mut self, index: usize) -> &mut ProtectionEngine {
        self.shards[index]
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Derives a shard's 48-byte key material from the root key: each 16-byte
/// subkey (XTS data, XTS tweak, MAC) keys AES-128 as a PRF over a block
/// encoding the shard index and the subkey's role, so no two shards — and
/// no shard and the root — ever share a key.
fn derive_shard_key(root: &[u8; 48], shard: u64) -> [u8; 48] {
    let mut out = [0u8; 48];
    for (role, subkey) in crate::engine::split_key_material(root)
        .into_iter()
        .enumerate()
    {
        let mut block = [0u8; 16];
        block[..8].copy_from_slice(&shard.to_le_bytes());
        block[8] = role as u8;
        block[9..15].copy_from_slice(b"shard/");
        out[role * 16..(role + 1) * 16]
            .copy_from_slice(&Aes128::new(&subkey).encrypt_block(&block));
    }
    out
}

/// Splitmix64-style derivation of a shard's device RNG seed: shards must
/// draw independent stealth-base streams or identical pages on different
/// shards would reveal correlated versions.
fn derive_shard_seed(root_seed: u64, shard: u64) -> u64 {
    let mut z = root_seed ^ (shard.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LINES_PER_PAGE;

    fn sharded(shards: usize) -> ShardedEngine {
        ShardedEngine::new(ToleoConfig::small(), shards, [0x5cu8; 48]).unwrap()
    }

    #[test]
    fn rejects_zero_and_excessive_shard_counts() {
        for shards in [0, MAX_SHARDS + 1] {
            assert!(matches!(
                ShardedEngine::new(ToleoConfig::small(), shards, [0u8; 48]),
                Err(ToleoError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn single_ops_roundtrip_across_shards() {
        let e = sharded(4);
        for page in 0..16u64 {
            let addr = page * PAGE_BYTES as u64;
            e.write(addr, &[page as u8; 64]).unwrap();
        }
        for page in 0..16u64 {
            let addr = page * PAGE_BYTES as u64;
            assert_eq!(e.read(addr).unwrap(), [page as u8; 64]);
        }
        assert_eq!(e.stats().writes, 16);
        assert_eq!(e.stats().reads, 16);
    }

    #[test]
    fn pages_route_to_expected_shards() {
        let e = sharded(4);
        for page in 0..32u64 {
            assert_eq!(e.shard_of_page(page), (page % 4) as usize);
            // Every line of a page routes to the same shard.
            for line in [0usize, 17, 63] {
                let addr = page * PAGE_BYTES as u64 + (line * CACHE_BLOCK_BYTES) as u64;
                assert_eq!(e.shard_of_addr(addr), (page % 4) as usize);
            }
        }
    }

    #[test]
    fn batch_roundtrip_and_unwritten_zeros() {
        let e = sharded(3);
        let writes: Vec<(u64, Block)> = (0..64u64).map(|i| (i * 4096, [i as u8; 64])).collect();
        e.write_batch(&writes).unwrap();
        // Interleave written and never-written addresses.
        let addrs: Vec<u64> = (0..128u64).map(|i| i * 4096).collect();
        let blocks = e.read_batch(&addrs).unwrap();
        for (i, block) in blocks.iter().enumerate() {
            let expect = if i < 64 { [i as u8; 64] } else { [0u8; 64] };
            assert_eq!(*block, expect, "address {i}");
        }
    }

    #[test]
    fn duplicate_addresses_in_one_write_batch_keep_batch_order() {
        let e = sharded(4);
        let ops: Vec<(u64, Block)> = (0..10u8).map(|v| (0x3000, [v; 64])).collect();
        e.write_batch(&ops).unwrap();
        assert_eq!(e.read(0x3000).unwrap(), [9u8; 64]);
    }

    #[test]
    fn empty_batches_are_noops() {
        let e = sharded(2);
        e.write_batch(&[]).unwrap();
        assert!(e.read_batch(&[]).unwrap().is_empty());
        assert_eq!(e.stats(), EngineStats::default());
    }

    #[test]
    fn tamper_on_one_shard_kills_every_shard() {
        let mut e = sharded(4);
        for page in 0..8u64 {
            e.write(page * 4096, &[1u8; 64]).unwrap();
        }
        // Corrupt a block owned by shard 2 (page 2).
        e.with_adversary(2 * 4096, |dram| dram.corrupt_data(2 * 4096, 13, 0xa5));
        assert!(e.read(2 * 4096).is_err());
        assert!(e.is_killed(), "detection must engage the global kill");
        // Every shard — including untampered ones — now refuses service.
        for page in 0..8u64 {
            assert!(e.read(page * 4096).is_err(), "page {page}");
            assert!(e.write(page * 4096, &[0u8; 64]).is_err());
            assert!(e.free_page(page).is_err());
        }
        assert!(e.read_batch(&[0, 4096]).is_err());
        assert!(e.write_batch(&[(0, [0u8; 64])]).is_err());
        for shard in 0..4 {
            assert!(e.shard_engine_mut(shard).is_killed(), "shard {shard}");
        }
    }

    #[test]
    fn batch_containing_tampered_block_fails_and_kills() {
        let e = sharded(4);
        let writes: Vec<(u64, Block)> = (0..16u64).map(|i| (i * 4096, [i as u8; 64])).collect();
        e.write_batch(&writes).unwrap();
        e.with_adversary(5 * 4096, |dram| dram.corrupt_data(5 * 4096, 0, 0x01));
        let addrs: Vec<u64> = (0..16u64).map(|i| i * 4096).collect();
        assert!(matches!(
            e.read_batch(&addrs),
            Err(ToleoError::IntegrityViolation { .. })
        ));
        assert!(e.is_killed());
    }

    #[test]
    fn batch_reports_tamper_over_earlier_benign_error() {
        // A batch whose lowest-index failure is benign (out-of-range) but
        // which also trips a tamper on another shard must surface the
        // integrity violation — the caller has to learn the engine died.
        let e = sharded(2);
        e.write(4096, &[7u8; 64]).unwrap(); // page 1 -> shard 1
        e.with_adversary(4096, |dram| dram.corrupt_data(4096, 3, 0x40));
        let out_of_range = e.config().protected_pages() * PAGE_BYTES as u64; // shard 0
        let err = e.read_batch_indexed(&[out_of_range, 4096]).unwrap_err();
        assert!(matches!(err.error, ToleoError::IntegrityViolation { .. }));
        assert_eq!(err.index, 1, "the violation's own index, not 0");
        assert!(e.is_killed());
    }

    #[test]
    fn indexed_batches_report_the_failing_op_index() {
        let e = sharded(4);
        let writes: Vec<(u64, Block)> = (0..12u64).map(|i| (i * 4096, [i as u8; 64])).collect();
        e.write_batch_indexed(&writes).unwrap();
        // Corrupt page 7 (shard 3): the read batch must name index 7.
        e.with_adversary(7 * 4096, |dram| dram.corrupt_data(7 * 4096, 5, 0x11));
        let addrs: Vec<u64> = (0..12u64).map(|i| i * 4096).collect();
        let err = e.read_batch_indexed(&addrs).unwrap_err();
        assert_eq!(err.index, 7);
        assert!(matches!(
            err.error,
            ToleoError::IntegrityViolation { address } if address == 7 * 4096
        ));
        // Dead engine: batches fail at index 0 before any work.
        let err = e.read_batch_indexed(&addrs).unwrap_err();
        assert_eq!(err.index, 0);
    }

    #[test]
    fn device_full_propagates_without_killing() {
        let mut cfg = ToleoConfig::small();
        cfg.device_capacity_bytes = cfg.flat_array_bytes(); // zero dynamic blocks
        let e = ShardedEngine::new(cfg, 2, [1u8; 48]).unwrap();
        // Second hot write to one line forces a flat->uneven upgrade, which
        // the zero-block dynamic region rejects.
        e.write(0x40, &[1u8; 64]).unwrap();
        assert!(matches!(
            e.write(0x40, &[2u8; 64]),
            Err(ToleoError::DeviceFull { .. })
        ));
        assert!(!e.is_killed(), "resource exhaustion is not tampering");
        // The engine still serves.
        assert_eq!(e.read(0x40).unwrap(), [1u8; 64]);
    }

    #[test]
    fn shard_keys_and_seeds_are_pairwise_distinct() {
        let root = [0x42u8; 48];
        let keys: Vec<[u8; 48]> = (0..8).map(|s| derive_shard_key(&root, s)).collect();
        for i in 0..keys.len() {
            assert_ne!(keys[i], root, "shard {i} must not reuse the root key");
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "shards {i}/{j} share key material");
            }
        }
        let seeds: Vec<u64> = (0..8).map(|s| derive_shard_seed(7, s)).collect();
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn aggregated_stats_sum_per_shard_stats() {
        let e = sharded(3);
        let writes: Vec<(u64, Block)> = (0..30u64).map(|i| (i * 4096, [1u8; 64])).collect();
        e.write_batch(&writes).unwrap();
        let per_shard = e.per_shard_stats();
        assert_eq!(per_shard.len(), 3);
        let total: u64 = per_shard.iter().map(|s| s.writes).sum();
        assert_eq!(total, 30);
        assert_eq!(e.stats().writes, 30);
        assert_eq!(e.device_stats().updates, 30);
        // 30 pages over 3 shards: balanced.
        for (i, s) in per_shard.iter().enumerate() {
            assert_eq!(s.writes, 10, "shard {i}");
        }
    }

    #[test]
    fn free_page_routes_and_scrambles() {
        let e = sharded(4);
        e.write(0x5000, &[3u8; 64]).unwrap();
        e.free_page(0x5000 / PAGE_BYTES as u64).unwrap();
        assert!(e.read(0x5000).is_err(), "freed page must be unreadable");
    }

    #[test]
    fn within_page_lines_stay_on_one_shard_through_reset_walks() {
        // Hot-line hammering with aggressive resets exercises the page
        // re-encryption slab walk entirely inside one shard.
        let mut cfg = ToleoConfig::small();
        cfg.reset_log2 = 4;
        let e = ShardedEngine::new(cfg, 4, [9u8; 48]).unwrap();
        for l in 0..8u64 {
            e.write(0x2000 + l * 64, &[l as u8 + 1; 64]).unwrap();
        }
        for _ in 0..300 {
            e.write(0x2000 + 9 * 64, &[0xee; 64]).unwrap();
        }
        assert!(e.stats().pages_reencrypted > 0, "resets must fire");
        for l in 0..8u64 {
            assert_eq!(e.read(0x2000 + l * 64).unwrap(), [l as u8 + 1; 64]);
        }
        let per_shard = e.per_shard_stats();
        let active: Vec<usize> = (0..4).filter(|&s| per_shard[s].writes > 0).collect();
        assert_eq!(active, vec![e.shard_of_addr(0x2000)]);
    }

    #[test]
    fn handle_is_shareable_across_threads() {
        let e = sharded(4);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let e = &e;
                s.spawn(move || {
                    for i in 0..LINES_PER_PAGE as u64 {
                        let addr = (t * 16 + i % 16) * PAGE_BYTES as u64 + (i / 16) * 64;
                        e.write(addr, &[t as u8; 64]).unwrap();
                        assert_eq!(e.read(addr).unwrap(), [t as u8; 64]);
                    }
                });
            }
        });
        assert_eq!(e.stats().writes, 4 * LINES_PER_PAGE as u64);
        assert!(!e.is_killed());
    }
}
