//! Deterministic fault injection for the device link.
//!
//! A production deployment of a CXL-attached version device sees transient
//! link faults — timeouts, busy retries, dropped and duplicated responses —
//! that the paper's trust model abstracts away. [`FaultPlan`] injects those
//! faults *deterministically* from a seeded pseudo-random stream with
//! per-operation-type rates and optional burst windows, so an entire fault
//! campaign replays bit-for-bit from one seed.
//!
//! The plan draws from its **own** splitmix64 stream, never from the
//! device's D-RaNGe generator: injecting faults must not perturb the
//! stealth-version stream, or a faulted run would diverge from the
//! fault-free run for reasons unrelated to the faults themselves. The
//! [`DeviceChannel`](crate::channel::DeviceChannel) consumes the verdicts
//! and decides what to retry; this module only decides *what goes wrong
//! and when*.
//!
//! Set `TOLEO_FAULT_PLAN` (e.g. `seed=7,rate=1e-3`) to arm every engine
//! constructed through the default constructors — the CI `fault-smoke` job
//! runs the whole test suite this way.

use crate::error::{Result, ToleoError};

/// The transient fault classes the device link can exhibit. All of them
/// are *link-layer* events: the request or response is delayed, lost or
/// repeated, but no verification state is wrong. Integrity failures (MAC
/// or version mismatch) are **not** faults — they are never injected here
/// and never retried by the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The request timed out before reaching the device; nothing executed.
    Timeout,
    /// The device answered "busy, retry later"; nothing executed.
    Busy,
    /// The device executed the request but the response was lost in
    /// transit. The link layer retransmits the buffered response on
    /// retry — the operation must **not** be re-issued (idempotency).
    DroppedResponse,
    /// The response arrived twice; the duplicate is discarded by the
    /// channel's sequence check.
    DuplicatedResponse,
}

/// Device operation classes a [`FaultPlan`] rates independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceOp {
    /// READ / READ-run version fetches.
    Read,
    /// UPDATE version increments.
    Update,
    /// OS RESET downgrades.
    Reset,
}

/// Per-kind injection probabilities for one [`DeviceOp`] class. Each field
/// is the probability that one operation of this class suffers that fault
/// on a given delivery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// Probability of [`FaultKind::Timeout`].
    pub timeout: f64,
    /// Probability of [`FaultKind::Busy`].
    pub busy: f64,
    /// Probability of [`FaultKind::DroppedResponse`].
    pub dropped: f64,
    /// Probability of [`FaultKind::DuplicatedResponse`].
    pub duplicated: f64,
}

impl FaultRates {
    /// Spreads `rate` evenly across the four fault kinds.
    pub fn uniform(rate: f64) -> Self {
        let each = rate / 4.0;
        FaultRates {
            timeout: each,
            busy: each,
            dropped: each,
            duplicated: each,
        }
    }

    /// Sum of all kind probabilities.
    pub fn total(&self) -> f64 {
        self.timeout + self.busy + self.dropped + self.duplicated
    }

    fn scaled(&self, factor: f64) -> Self {
        FaultRates {
            timeout: self.timeout * factor,
            busy: self.busy * factor,
            dropped: self.dropped * factor,
            duplicated: self.duplicated * factor,
        }
    }

    fn validate(&self, op: &str) -> Result<()> {
        for (name, p) in [
            ("timeout", self.timeout),
            ("busy", self.busy),
            ("dropped", self.dropped),
            ("duplicated", self.duplicated),
        ] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(ToleoError::InvalidConfig {
                    detail: format!("fault rate {op}.{name} = {p} outside 0..=1"),
                });
            }
        }
        if self.total() > 1.0 {
            return Err(ToleoError::InvalidConfig {
                detail: format!("fault rates for {op} sum to {} > 1", self.total()),
            });
        }
        Ok(())
    }
}

/// A periodic burst window during which all rates are multiplied: every
/// `period_ops` operations, the next `len_ops` operations see their fault
/// probabilities scaled by `multiplier` (clamped so the per-op total never
/// exceeds 1). Models correlated link noise — a flapping retimer, a
/// congested switch interval — rather than independent per-op faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstWindow {
    /// Window period in operations (must be non-zero).
    pub period_ops: u64,
    /// Burst length in operations at the start of each period.
    pub len_ops: u64,
    /// Rate multiplier inside the burst.
    pub multiplier: f64,
}

/// Full configuration of a fault plan: the stream seed, one
/// [`FaultRates`] per operation class, and an optional burst window.
// audit: allow(secret, seed is the fault-injection stream seed for reproducible campaigns, not key material)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlanConfig {
    /// Seed of the plan's private splitmix64 stream.
    pub seed: u64,
    /// Rates for READ-class operations.
    pub read: FaultRates,
    /// Rates for UPDATE-class operations.
    pub update: FaultRates,
    /// Rates for RESET-class operations.
    pub reset: FaultRates,
    /// Optional burst window applied on top of the base rates.
    pub burst: Option<BurstWindow>,
}

impl FaultPlanConfig {
    /// A plan injecting each fault kind with probability `rate / 4` on
    /// every operation class — the shape the acceptance campaigns use.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        let rates = FaultRates::uniform(rate);
        FaultPlanConfig {
            seed,
            read: rates,
            update: rates,
            reset: rates,
            burst: None,
        }
    }

    /// Validates rates and the burst window.
    ///
    /// # Errors
    ///
    /// [`ToleoError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        self.read.validate("read")?;
        self.update.validate("update")?;
        self.reset.validate("reset")?;
        if let Some(b) = self.burst {
            if b.period_ops == 0 {
                return Err(ToleoError::InvalidConfig {
                    detail: "burst period_ops must be non-zero".to_string(),
                });
            }
            if b.len_ops > b.period_ops {
                return Err(ToleoError::InvalidConfig {
                    detail: format!(
                        "burst len_ops {} exceeds period_ops {}",
                        b.len_ops, b.period_ops
                    ),
                });
            }
            if !b.multiplier.is_finite() || b.multiplier < 0.0 {
                return Err(ToleoError::InvalidConfig {
                    detail: format!("burst multiplier {} must be finite and >= 0", b.multiplier),
                });
            }
        }
        Ok(())
    }

    /// Parses the `TOLEO_FAULT_PLAN` environment variable, if set.
    /// Returns `Ok(None)` when unset or empty — the fault-free default.
    ///
    /// # Errors
    ///
    /// [`ToleoError::InvalidConfig`] on malformed input: an armed but
    /// unparseable fault campaign must fail construction loudly, not run
    /// silently fault-free.
    pub fn from_env() -> Result<Option<Self>> {
        match std::env::var("TOLEO_FAULT_PLAN") {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// Parses a plan spec of comma-separated `key=value` pairs:
    ///
    /// * `seed=N` — stream seed (default 0).
    /// * `rate=R` — total per-op fault probability, spread evenly over the
    ///   four kinds and applied to all operation classes.
    /// * `timeout=R`, `busy=R`, `dropped=R`, `duplicated=R` — per-kind
    ///   overrides (applied to all operation classes, after `rate`).
    /// * `burst=PERIOD:LEN:MULT` — burst window.
    ///
    /// Example: `seed=7,rate=1e-3` or `seed=9,dropped=0.01,burst=1000:50:10`.
    ///
    /// # Errors
    ///
    /// [`ToleoError::InvalidConfig`] describing the offending token.
    pub fn parse(spec: &str) -> Result<Self> {
        fn bad(detail: String) -> ToleoError {
            ToleoError::InvalidConfig { detail }
        }
        fn f64_of(field: &str, v: &str) -> Result<f64> {
            v.parse::<f64>()
                .map_err(|e| bad(format!("TOLEO_FAULT_PLAN {field}={v:?}: {e}")))
        }
        let mut cfg = FaultPlanConfig::uniform(0, 0.0);
        let mut set_all = |f: &mut dyn FnMut(&mut FaultRates)| {
            f(&mut cfg.read);
            f(&mut cfg.update);
            f(&mut cfg.reset);
        };
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (field, value) = token
                .split_once('=')
                .ok_or_else(|| bad(format!("TOLEO_FAULT_PLAN token {token:?} is not key=value")))?;
            match field.trim() {
                "seed" => {
                    cfg.seed = value
                        .trim()
                        .parse::<u64>()
                        .map_err(|e| bad(format!("TOLEO_FAULT_PLAN seed={value:?}: {e}")))?;
                }
                "rate" => {
                    let rates = FaultRates::uniform(f64_of("rate", value.trim())?);
                    set_all(&mut |r| *r = rates);
                }
                "timeout" => {
                    let p = f64_of("timeout", value.trim())?;
                    set_all(&mut |r| r.timeout = p);
                }
                "busy" => {
                    let p = f64_of("busy", value.trim())?;
                    set_all(&mut |r| r.busy = p);
                }
                "dropped" => {
                    let p = f64_of("dropped", value.trim())?;
                    set_all(&mut |r| r.dropped = p);
                }
                "duplicated" => {
                    let p = f64_of("duplicated", value.trim())?;
                    set_all(&mut |r| r.duplicated = p);
                }
                "burst" => {
                    let mut parts = value.trim().split(':');
                    let mut next = |name: &str| -> Result<&str> {
                        parts.next().ok_or_else(|| {
                            bad(format!("TOLEO_FAULT_PLAN burst={value:?} missing {name}"))
                        })
                    };
                    let period = next("period")?;
                    let len = next("len")?;
                    let mult = next("multiplier")?;
                    cfg.burst = Some(BurstWindow {
                        period_ops: period
                            .parse::<u64>()
                            .map_err(|e| bad(format!("burst period {period:?}: {e}")))?,
                        len_ops: len
                            .parse::<u64>()
                            .map_err(|e| bad(format!("burst len {len:?}: {e}")))?,
                        multiplier: f64_of("burst multiplier", mult)?,
                    });
                }
                other => {
                    return Err(bad(format!("TOLEO_FAULT_PLAN unknown key {other:?}")));
                }
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

/// The armed fault injector: a validated [`FaultPlanConfig`] plus the
/// private splitmix64 stream and an operation counter for burst windows.
/// One plan belongs to one [`DeviceChannel`](crate::channel::DeviceChannel)
/// — per-shard channels derive distinct effective seeds so shards draw
/// independent fault streams.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultPlanConfig,
    state: u64,
    ops_seen: u64,
}

impl FaultPlan {
    /// Arms a plan after validating its configuration.
    ///
    /// # Errors
    ///
    /// [`ToleoError::InvalidConfig`] from [`FaultPlanConfig::validate`].
    pub fn new(cfg: FaultPlanConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(FaultPlan {
            cfg,
            state: cfg.seed,
            ops_seen: 0,
        })
    }

    /// Arms a plan whose stream is re-seeded by mixing `salt` into the
    /// configured seed — how a sharded engine gives every shard its own
    /// independent fault stream from one campaign spec.
    ///
    /// # Errors
    ///
    /// [`ToleoError::InvalidConfig`] from [`FaultPlanConfig::validate`].
    pub fn with_salt(cfg: FaultPlanConfig, salt: u64) -> Result<Self> {
        let mut plan = Self::new(cfg)?;
        plan.state = splitmix64(cfg.seed ^ splitmix64(salt));
        plan.cfg.seed = plan.state;
        Ok(plan)
    }

    /// The plan's configuration (with the effective, possibly salted seed).
    pub fn config(&self) -> &FaultPlanConfig {
        &self.cfg
    }

    /// Operations this plan has judged so far.
    pub fn ops_seen(&self) -> u64 {
        self.ops_seen
    }

    /// Judges one delivery attempt of an operation of class `op`: returns
    /// the fault to inject, or `None` for a clean delivery. Deterministic
    /// in (seed, call sequence).
    pub fn decide(&mut self, op: DeviceOp) -> Option<FaultKind> {
        let n = self.ops_seen;
        self.ops_seen += 1;
        let mut rates = match op {
            DeviceOp::Read => self.cfg.read,
            DeviceOp::Update => self.cfg.update,
            DeviceOp::Reset => self.cfg.reset,
        };
        if let Some(b) = self.cfg.burst {
            if n % b.period_ops < b.len_ops {
                rates = rates.scaled(b.multiplier);
                let total = rates.total();
                if total > 1.0 {
                    rates = rates.scaled(1.0 / total);
                }
            }
        }
        let draw = self.next_f64();
        let mut acc = rates.timeout;
        if draw < acc {
            return Some(FaultKind::Timeout);
        }
        acc += rates.busy;
        if draw < acc {
            return Some(FaultKind::Busy);
        }
        acc += rates.dropped;
        if draw < acc {
            return Some(FaultKind::DroppedResponse);
        }
        acc += rates.duplicated;
        if draw < acc {
            return Some(FaultKind::DuplicatedResponse);
        }
        None
    }

    fn next_f64(&mut self) -> f64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let z = splitmix64(self.state);
        // 53 uniform mantissa bits in [0, 1).
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The splitmix64 finalizer (same constants as the shard-seed derivation).
/// Also used by [`RetryPolicy`](crate::channel::RetryPolicy) to derive
/// deterministic backoff jitter.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let cfg = FaultPlanConfig::uniform(42, 0.3);
        let mut a = FaultPlan::new(cfg).unwrap();
        let mut b = FaultPlan::new(cfg).unwrap();
        for _ in 0..10_000 {
            assert_eq!(a.decide(DeviceOp::Read), b.decide(DeviceOp::Read));
        }
    }

    #[test]
    fn different_seeds_diverge_and_salt_reseeds() {
        let mut a = FaultPlan::new(FaultPlanConfig::uniform(1, 0.5)).unwrap();
        let mut b = FaultPlan::new(FaultPlanConfig::uniform(2, 0.5)).unwrap();
        let va: Vec<_> = (0..256).map(|_| a.decide(DeviceOp::Update)).collect();
        let vb: Vec<_> = (0..256).map(|_| b.decide(DeviceOp::Update)).collect();
        assert_ne!(va, vb);
        let mut s1 = FaultPlan::with_salt(FaultPlanConfig::uniform(1, 0.5), 10).unwrap();
        let mut s2 = FaultPlan::with_salt(FaultPlanConfig::uniform(1, 0.5), 11).unwrap();
        let v1: Vec<_> = (0..256).map(|_| s1.decide(DeviceOp::Update)).collect();
        let v2: Vec<_> = (0..256).map(|_| s2.decide(DeviceOp::Update)).collect();
        assert_ne!(v1, v2, "different salts must give different streams");
    }

    #[test]
    fn injection_rate_tracks_configuration() {
        let mut plan = FaultPlan::new(FaultPlanConfig::uniform(7, 0.2)).unwrap();
        let n = 100_000u64;
        let faults = (0..n)
            .filter(|_| plan.decide(DeviceOp::Read).is_some())
            .count() as f64;
        let rate = faults / n as f64;
        assert!((rate - 0.2).abs() < 0.01, "observed rate {rate}");
    }

    #[test]
    fn zero_rate_never_faults() {
        let mut plan = FaultPlan::new(FaultPlanConfig::uniform(3, 0.0)).unwrap();
        for _ in 0..10_000 {
            assert_eq!(plan.decide(DeviceOp::Update), None);
        }
    }

    #[test]
    fn per_op_rates_are_independent() {
        let mut cfg = FaultPlanConfig::uniform(5, 0.0);
        cfg.update = FaultRates::uniform(0.8);
        let mut plan = FaultPlan::new(cfg).unwrap();
        let read_faults = (0..4_000)
            .filter(|_| plan.decide(DeviceOp::Read).is_some())
            .count();
        let update_faults = (0..4_000)
            .filter(|_| plan.decide(DeviceOp::Update).is_some())
            .count();
        assert_eq!(read_faults, 0);
        assert!(update_faults > 2_800, "update faults: {update_faults}");
    }

    #[test]
    fn burst_windows_concentrate_faults() {
        let mut cfg = FaultPlanConfig::uniform(9, 0.01);
        cfg.burst = Some(BurstWindow {
            period_ops: 1_000,
            len_ops: 100,
            multiplier: 50.0,
        });
        let mut plan = FaultPlan::new(cfg).unwrap();
        let mut in_burst = 0u64;
        let mut outside = 0u64;
        for i in 0..100_000u64 {
            let fault = plan.decide(DeviceOp::Read).is_some();
            if fault {
                if i % 1_000 < 100 {
                    in_burst += 1;
                } else {
                    outside += 1;
                }
            }
        }
        // 10% of ops sit in bursts at 50x the rate: bursts should dominate.
        assert!(
            in_burst > 5 * outside,
            "in_burst {in_burst} vs outside {outside}"
        );
    }

    #[test]
    fn parse_accepts_the_smoke_spec() {
        let cfg = FaultPlanConfig::parse("seed=7,rate=1e-3").unwrap();
        assert_eq!(cfg.seed, 7);
        assert!((cfg.read.total() - 1e-3).abs() < 1e-12);
        assert!((cfg.update.total() - 1e-3).abs() < 1e-12);
        assert_eq!(cfg.burst, None);
    }

    #[test]
    fn parse_accepts_overrides_and_bursts() {
        let cfg = FaultPlanConfig::parse("seed=9, dropped=0.01, burst=1000:50:10").unwrap();
        assert_eq!(cfg.read.dropped, 0.01);
        assert_eq!(cfg.read.timeout, 0.0);
        let b = cfg.burst.unwrap();
        assert_eq!((b.period_ops, b.len_ops), (1_000, 50));
        assert_eq!(b.multiplier, 10.0);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "seed",
            "seed=x",
            "rate=2.0",      // total > 1
            "rate=-0.1",     // negative
            "burst=10:20:1", // len > period
            "burst=0:0:1",   // zero period
            "burst=10:2",    // missing multiplier
            "unknown=1",
        ] {
            assert!(
                matches!(
                    FaultPlanConfig::parse(bad),
                    Err(ToleoError::InvalidConfig { .. })
                ),
                "spec {bad:?} must be rejected"
            );
        }
    }

    /// One fixture per malformed shape the `TOLEO_FAULT_PLAN` grammar can
    /// produce: each must yield a typed [`ToleoError::InvalidConfig`]
    /// whose detail names the offending token — never a panic, and never
    /// a silently fault-free plan.
    #[test]
    fn parse_reports_the_offending_token_per_malformed_shape() {
        let fixtures: [(&str, &str); 15] = [
            // key=value framing
            ("seed", "is not key=value"),
            ("seed=7,, burst", "is not key=value"),
            ("=3", "unknown key \"\""),
            ("frobnicate=1", "unknown key \"frobnicate\""),
            // seed shapes
            ("seed=x", "seed=\"x\""),
            ("seed=-1", "seed=\"-1\""),
            ("seed=1.5", "seed=\"1.5\""),
            // rate shapes
            ("rate=abc", "rate=\"abc\""),
            ("rate=1e", "rate=\"1e\""),
            ("rate=nan", "outside 0..=1"),
            ("dropped=2", "outside 0..=1"),
            ("timeout=0.6,busy=0.6", "sum to 1.2 > 1"),
            // burst shapes
            ("burst=10", "missing len"),
            ("burst=ten:2:1", "burst period \"ten\""),
            ("burst=10:2:x", "burst multiplier=\"x\""),
        ];
        for (spec, expected) in fixtures {
            match FaultPlanConfig::parse(spec) {
                Err(ToleoError::InvalidConfig { detail }) => assert!(
                    detail.contains(expected),
                    "spec {spec:?}: detail {detail:?} must mention {expected:?}"
                ),
                other => panic!("spec {spec:?} must fail typed, got {other:?}"),
            }
        }
        // The complement of "never silently fault-free": a well-formed
        // spec arms exactly what it says.
        let ok = FaultPlanConfig::parse("seed=3,timeout=0.2").unwrap();
        assert_eq!(ok.seed, 3);
        assert_eq!(ok.read.timeout, 0.2);
        assert!(ok.read.total() > 0.0);
    }

    #[test]
    fn validate_rejects_oversubscribed_rates() {
        let mut cfg = FaultPlanConfig::uniform(0, 0.9);
        cfg.read.timeout = 0.5; // total now > 1
        assert!(matches!(
            FaultPlan::new(cfg),
            Err(ToleoError::InvalidConfig { .. })
        ));
    }
}
