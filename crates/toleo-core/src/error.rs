//! Error types. A failed integrity or freshness check is fatal by design:
//! the platform "kill switch" (§2.1) destroys the enclave rather than let a
//! replay be retried. Transient device-link faults, by contrast, are
//! absorbed by the [`DeviceChannel`](crate::channel::DeviceChannel); only
//! when its retry budget is exhausted do they surface here, as
//! [`ToleoError::DeviceUnavailable`].

use crate::engine::KillSnapshot;

/// Errors raised by the Toleo device and the host protection engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToleoError {
    /// A MAC check failed on a memory read: the ciphertext, MAC, UV, or the
    /// replayed stealth version did not match. The platform must halt.
    IntegrityViolation {
        /// Physical address of the offending cache block.
        address: u64,
    },
    /// The shard owning this address has been quarantined after detecting
    /// tampering: the shard is frozen (its counters are carried in the
    /// snapshot) while healthy peer shards keep serving. Fail-closed for
    /// this address range, contained for everyone else.
    ShardQuarantined {
        /// Index of the quarantined shard.
        shard: usize,
        /// Physical address of the refused operation.
        address: u64,
        /// The shard's observable state, frozen at the instant its kill
        /// switch engaged.
        snapshot: Box<KillSnapshot>,
    },
    /// The freshness device did not deliver a response within the channel's
    /// retry budget. A host that cannot verify freshness must fail closed:
    /// this escalates to the engine (and, sharded, the world) kill.
    DeviceUnavailable {
        /// Page of the abandoned operation.
        page: u64,
        /// Delivery attempts made before giving up.
        attempts: u32,
    },
    /// The CXL IDE link detected tampering or replay of version traffic.
    LinkViolation {
        /// Description from the IDE layer.
        detail: String,
    },
    /// The Toleo device has no free dynamic blocks for an upgrade; the host
    /// OS must issue downgrade (RESET) requests to reclaim space. Update
    /// requests are rejected until then (§4.3 "Page free and remap").
    DeviceFull {
        /// Page whose upgrade was rejected.
        page: u64,
    },
    /// A request referenced a page outside the protected range.
    PageOutOfRange {
        /// The offending page number.
        page: u64,
        /// Number of protected pages.
        pages: u64,
    },
    /// A device or engine was constructed from a configuration that
    /// fails [`validate`](crate::config::ToleoConfig::validate).
    InvalidConfig {
        /// What the validation rejected.
        detail: String,
    },
    /// The block was unrecoverable when its shard was scrubbed after a
    /// quarantine: its ciphertext/MAC/version no longer verified, so the
    /// re-keyed shard refuses the address instead of serving silent
    /// zeroes. A fresh write to the address clears the marker.
    PageLost {
        /// Shard that lost the block during recovery.
        shard: usize,
        /// Physical address of the unrecoverable cache block.
        address: u64,
    },
}

impl std::fmt::Display for ToleoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ToleoError::IntegrityViolation { address } => {
                write!(
                    f,
                    "integrity/freshness check failed at {address:#x}: kill switch engaged"
                )
            }
            ToleoError::ShardQuarantined { shard, address, .. } => {
                write!(
                    f,
                    "shard {shard} quarantined after tamper detection; {address:#x} refused"
                )
            }
            ToleoError::DeviceUnavailable { page, attempts } => {
                write!(
                    f,
                    "freshness device unreachable for page {page:#x} after {attempts} attempts: \
                     failing closed"
                )
            }
            ToleoError::LinkViolation { detail } => {
                write!(f, "cxl ide violation: {detail}")
            }
            ToleoError::DeviceFull { page } => {
                write!(f, "toleo device full; cannot upgrade page {page:#x}")
            }
            ToleoError::PageOutOfRange { page, pages } => {
                write!(f, "page {page:#x} outside protected range of {pages} pages")
            }
            ToleoError::InvalidConfig { detail } => {
                write!(f, "invalid ToleoConfig: {detail}")
            }
            ToleoError::PageLost { shard, address } => {
                write!(
                    f,
                    "block {address:#x} lost during shard {shard} recovery: \
                     rewrite it before reading"
                )
            }
        }
    }
}

impl std::error::Error for ToleoError {}

/// Convenience alias for fallible Toleo operations.
pub type Result<T> = std::result::Result<T, ToleoError>;

/// Failure of one operation inside an engine-level batch
/// ([`read_batch`](crate::engine::ProtectionEngine::read_batch) /
/// [`write_batch`](crate::engine::ProtectionEngine::write_batch)): the
/// underlying error plus the batch index of the operation that raised it.
/// Operations before `index` completed; operations after it were not
/// attempted — exactly the semantics of an op-at-a-time loop that stops at
/// the first error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchError {
    /// Zero-based index of the failing operation within the batch.
    pub index: usize,
    /// What that operation failed with.
    pub error: ToleoError,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "batch op {}: {}", self.index, self.error)
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

impl From<BatchError> for ToleoError {
    fn from(e: BatchError) -> Self {
        e.error
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ToleoError::IntegrityViolation { address: 0x40 }
            .to_string()
            .contains("kill switch"));
        assert!(ToleoError::DeviceFull { page: 1 }
            .to_string()
            .contains("full"));
        assert!(ToleoError::PageOutOfRange { page: 9, pages: 4 }
            .to_string()
            .contains("outside"));
        assert!(ToleoError::LinkViolation {
            detail: "replay".into()
        }
        .to_string()
        .contains("replay"));
        assert!(ToleoError::InvalidConfig {
            detail: "stealth_bits 0".into()
        }
        .to_string()
        .contains("invalid ToleoConfig"));
        assert!(ToleoError::DeviceUnavailable {
            page: 2,
            attempts: 8
        }
        .to_string()
        .contains("failing closed"));
        assert!(ToleoError::ShardQuarantined {
            shard: 3,
            address: 0x40,
            snapshot: Box::new(KillSnapshot::default()),
        }
        .to_string()
        .contains("quarantined"));
        assert!(ToleoError::PageLost {
            shard: 5,
            address: 0x1040,
        }
        .to_string()
        .contains("lost during shard 5 recovery"));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<ToleoError>();
    }
}
