//! Rowhammer defense (§2.1): "we assume Toleo can easily track write
//! frequencies and perform rate limiting if it detects a Rowhammer
//! threat".
//!
//! The Toleo controller already sees every UPDATE, so it can implement a
//! BlockHammer-style [Yağlıkçı et al., HPCA'21] frequency tracker for
//! free: count per-page update rates in a sliding window and throttle
//! pages that exceed the safe activation budget.

use std::collections::HashMap;

/// Decision for one tracked update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateDecision {
    /// Under the budget: proceed at full speed.
    Allow,
    /// Over the budget: the controller inserts `delay_ns` before issuing
    /// the underlying DRAM activation.
    Throttle {
        /// Added delay in nanoseconds.
        delay_ns: u64,
    },
}

/// Sliding-window per-page update-rate limiter.
///
/// # Examples
///
/// ```
/// use toleo_core::rowhammer::{RateLimiter, RateDecision};
///
/// let mut rl = RateLimiter::new(64, 1_000_000, 100);
/// // A page hammered past the budget gets throttled.
/// let mut throttled = false;
/// for t in 0..100u64 {
///     if rl.record(7, t * 100) != RateDecision::Allow {
///         throttled = true;
///     }
/// }
/// assert!(throttled);
/// ```
#[derive(Debug, Clone)]
pub struct RateLimiter {
    /// Maximum updates per page per window before throttling.
    budget: u32,
    /// Window length in nanoseconds.
    window_ns: u64,
    /// Delay inserted per over-budget update.
    delay_ns: u64,
    /// Per-page (window_start_ns, count).
    counters: HashMap<u64, (u64, u32)>,
    /// Total throttles issued.
    throttles: u64,
}

impl RateLimiter {
    /// Creates a limiter: at most `budget` updates per page per
    /// `window_ns`, punishing excess with `delay_ns` stalls.
    pub fn new(budget: u32, window_ns: u64, delay_ns: u64) -> Self {
        RateLimiter {
            budget,
            window_ns,
            delay_ns,
            counters: HashMap::new(),
            throttles: 0,
        }
    }

    /// A limiter sized for the DDR4 Rowhammer threshold (~50k activations
    /// per 64 ms refresh window; budget set well below with margin).
    pub fn ddr4_default() -> Self {
        RateLimiter::new(25_000, 64_000_000, 320)
    }

    /// Records an update to `page` at time `now_ns` and decides whether to
    /// throttle it.
    pub fn record(&mut self, page: u64, now_ns: u64) -> RateDecision {
        let entry = self.counters.entry(page).or_insert((now_ns, 0));
        if now_ns.saturating_sub(entry.0) >= self.window_ns {
            *entry = (now_ns, 0);
        }
        entry.1 += 1;
        if entry.1 > self.budget {
            self.throttles += 1;
            RateDecision::Throttle {
                delay_ns: self.delay_ns,
            }
        } else {
            RateDecision::Allow
        }
    }

    /// Pages currently over half their budget — the "suspects" a platform
    /// monitor would surface.
    pub fn suspects(&self) -> Vec<u64> {
        self.counters
            .iter()
            .filter(|(_, (_, n))| *n * 2 > self.budget)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Total throttle decisions issued.
    pub fn throttles(&self) -> u64 {
        self.throttles
    }

    /// Drops expired windows to bound tracker memory (the hardware uses a
    /// counting-bloom-style structure; the model just garbage-collects).
    pub fn expire(&mut self, now_ns: u64) {
        let window = self.window_ns;
        self.counters
            .retain(|_, (start, _)| now_ns.saturating_sub(*start) < window);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_budget_is_allowed() {
        let mut rl = RateLimiter::new(10, 1000, 50);
        for i in 0..10u64 {
            assert_eq!(rl.record(1, i), RateDecision::Allow);
        }
        assert_eq!(rl.throttles(), 0);
    }

    #[test]
    fn over_budget_is_throttled() {
        let mut rl = RateLimiter::new(10, 1000, 50);
        for i in 0..10u64 {
            rl.record(1, i);
        }
        assert_eq!(rl.record(1, 10), RateDecision::Throttle { delay_ns: 50 });
        assert_eq!(rl.throttles(), 1);
    }

    #[test]
    fn window_expiry_resets_budget() {
        let mut rl = RateLimiter::new(2, 100, 50);
        rl.record(1, 0);
        rl.record(1, 1);
        assert_ne!(rl.record(1, 2), RateDecision::Allow);
        // A new window starts after window_ns.
        assert_eq!(rl.record(1, 150), RateDecision::Allow);
    }

    #[test]
    fn pages_tracked_independently() {
        let mut rl = RateLimiter::new(2, 1000, 50);
        rl.record(1, 0);
        rl.record(1, 1);
        rl.record(1, 2); // page 1 over budget
        assert_eq!(rl.record(2, 3), RateDecision::Allow, "page 2 unaffected");
    }

    #[test]
    fn suspects_surface_hot_pages() {
        let mut rl = RateLimiter::new(10, 1000, 50);
        for i in 0..8u64 {
            rl.record(42, i);
        }
        rl.record(7, 9);
        let s = rl.suspects();
        assert!(s.contains(&42));
        assert!(!s.contains(&7));
    }

    #[test]
    fn expire_bounds_memory() {
        let mut rl = RateLimiter::new(10, 100, 50);
        for p in 0..50u64 {
            rl.record(p, 0);
        }
        rl.expire(1000);
        assert!(rl.suspects().is_empty());
        assert_eq!(rl.record(0, 1000), RateDecision::Allow);
    }
}
