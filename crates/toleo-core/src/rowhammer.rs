//! Rowhammer defense (§2.1): "we assume Toleo can easily track write
//! frequencies and perform rate limiting if it detects a Rowhammer
//! threat".
//!
//! The Toleo controller already sees every UPDATE, so it can implement a
//! BlockHammer-style [Yağlıkçı et al., HPCA'21] frequency tracker for
//! free: count per-page update rates in a sliding window and throttle
//! pages that exceed the safe activation budget.
//!
//! The tracker is a fixed-size direct-indexed array (`page & mask`), not a
//! map: the controller consults it on *every* UPDATE, so the lookup must
//! be one masked index into a flat slot — no hashing, no allocation, and
//! memory is bounded at construction exactly as a hardware counter table
//! would be. Pages that alias to one slot **share its counter** (the
//! counting-bloom direction BlockHammer takes): aliasing can only
//! *over*-count and throttle a benign page early, never let a hammering
//! pattern under-count its way past the budget — an attacker alternating
//! two aliasing pages accrues their combined rate and throttles sooner,
//! not later. The slot remembers the most recent page for `suspects`
//! reporting only.

// audit: allow-file(indexing, slot indices are masked to the power-of-two slot count)

/// Decision for one tracked update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateDecision {
    /// Under the budget: proceed at full speed.
    Allow,
    /// Over the budget: the controller inserts `delay_ns` before issuing
    /// the underlying DRAM activation.
    Throttle {
        /// Added delay in nanoseconds.
        delay_ns: u64,
    },
}

/// Sliding-window per-page update-rate limiter.
///
/// # Examples
///
/// ```
/// use toleo_core::rowhammer::{RateLimiter, RateDecision};
///
/// let mut rl = RateLimiter::new(64, 1_000_000, 100);
/// // A page hammered past the budget gets throttled.
/// let mut throttled = false;
/// for t in 0..100u64 {
///     if rl.record(7, t * 100) != RateDecision::Allow {
///         throttled = true;
///     }
/// }
/// assert!(throttled);
/// ```
#[derive(Debug, Clone)]
pub struct RateLimiter {
    /// Maximum updates per page per window before throttling.
    budget: u32,
    /// Window length in nanoseconds.
    window_ns: u64,
    /// Delay inserted per over-budget update.
    delay_ns: u64,
    /// Direct-indexed counter table; slot = `page & mask`.
    slots: Box<[RowSlot]>,
    /// `slots.len() - 1` (slot count is a power of two).
    mask: u64,
    /// Total throttles issued.
    throttles: u64,
}

/// One direct-indexed tracker slot. `page == u64::MAX` marks an empty
/// slot (no real page can use it: it would sit beyond any protected pool).
#[derive(Debug, Clone, Copy)]
struct RowSlot {
    page: u64,
    window_start_ns: u64,
    count: u32,
}

const EMPTY_SLOT: RowSlot = RowSlot {
    page: u64::MAX,
    window_start_ns: 0,
    count: 0,
};

/// Tracker slots used by [`RateLimiter::new`]; pick explicitly with
/// [`RateLimiter::with_slots`] to match the deployment's working set.
pub const DEFAULT_TRACKER_SLOTS: usize = 4096;

impl RateLimiter {
    /// Creates a limiter: at most `budget` updates per page per
    /// `window_ns`, punishing excess with `delay_ns` stalls, tracking
    /// [`DEFAULT_TRACKER_SLOTS`] pages.
    pub fn new(budget: u32, window_ns: u64, delay_ns: u64) -> Self {
        Self::with_slots(budget, window_ns, delay_ns, DEFAULT_TRACKER_SLOTS)
    }

    /// Creates a limiter with an explicit counter-table size (rounded up
    /// to a power of two, minimum 1). The table is allocated once here —
    /// `record` never allocates, exactly like the hardware counter array
    /// this models.
    pub fn with_slots(budget: u32, window_ns: u64, delay_ns: u64, slots: usize) -> Self {
        let slots = slots.max(1).next_power_of_two();
        RateLimiter {
            budget,
            window_ns,
            delay_ns,
            slots: vec![EMPTY_SLOT; slots].into_boxed_slice(),
            mask: slots as u64 - 1,
            throttles: 0,
        }
    }

    /// A limiter sized for the DDR4 Rowhammer threshold (~50k activations
    /// per 64 ms refresh window; budget set well below with margin).
    pub fn ddr4_default() -> Self {
        RateLimiter::new(25_000, 64_000_000, 320)
    }

    /// Records an update to `page` at time `now_ns` and decides whether to
    /// throttle it. One masked array index; pages colliding on a slot
    /// share its counter (over-counting is the fail-safe direction — a
    /// shared budget can only throttle earlier, never let a hammer
    /// through), and the slot's page label tracks the latest writer for
    /// `suspects` reporting.
    pub fn record(&mut self, page: u64, now_ns: u64) -> RateDecision {
        let slot = &mut self.slots[(page & self.mask) as usize];
        if slot.page == u64::MAX || now_ns.saturating_sub(slot.window_start_ns) >= self.window_ns {
            *slot = RowSlot {
                page,
                window_start_ns: now_ns,
                count: 0,
            };
        } else {
            slot.page = page;
        }
        slot.count += 1;
        if slot.count > self.budget {
            self.throttles += 1;
            RateDecision::Throttle {
                delay_ns: self.delay_ns,
            }
        } else {
            RateDecision::Allow
        }
    }

    /// Pages currently over half their budget — the "suspects" a platform
    /// monitor would surface.
    pub fn suspects(&self) -> Vec<u64> {
        self.slots
            .iter()
            .filter(|s| s.page != u64::MAX && s.count * 2 > self.budget)
            .map(|s| s.page)
            .collect()
    }

    /// Total throttle decisions issued.
    pub fn throttles(&self) -> u64 {
        self.throttles
    }

    /// Clears expired windows (the table is fixed-size, so this bounds
    /// *staleness*, not memory: it stops `suspects` from reporting pages
    /// whose window has long lapsed).
    pub fn expire(&mut self, now_ns: u64) {
        let window = self.window_ns;
        for slot in self.slots.iter_mut() {
            if slot.page != u64::MAX && now_ns.saturating_sub(slot.window_start_ns) >= window {
                *slot = EMPTY_SLOT;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_budget_is_allowed() {
        let mut rl = RateLimiter::new(10, 1000, 50);
        for i in 0..10u64 {
            assert_eq!(rl.record(1, i), RateDecision::Allow);
        }
        assert_eq!(rl.throttles(), 0);
    }

    #[test]
    fn over_budget_is_throttled() {
        let mut rl = RateLimiter::new(10, 1000, 50);
        for i in 0..10u64 {
            rl.record(1, i);
        }
        assert_eq!(rl.record(1, 10), RateDecision::Throttle { delay_ns: 50 });
        assert_eq!(rl.throttles(), 1);
    }

    #[test]
    fn window_expiry_resets_budget() {
        let mut rl = RateLimiter::new(2, 100, 50);
        rl.record(1, 0);
        rl.record(1, 1);
        assert_ne!(rl.record(1, 2), RateDecision::Allow);
        // A new window starts after window_ns.
        assert_eq!(rl.record(1, 150), RateDecision::Allow);
    }

    #[test]
    fn pages_tracked_independently() {
        let mut rl = RateLimiter::new(2, 1000, 50);
        rl.record(1, 0);
        rl.record(1, 1);
        rl.record(1, 2); // page 1 over budget
        assert_eq!(rl.record(2, 3), RateDecision::Allow, "page 2 unaffected");
    }

    #[test]
    fn suspects_surface_hot_pages() {
        let mut rl = RateLimiter::new(10, 1000, 50);
        for i in 0..8u64 {
            rl.record(42, i);
        }
        rl.record(7, 9);
        let s = rl.suspects();
        assert!(s.contains(&42));
        assert!(!s.contains(&7));
    }

    #[test]
    fn expire_bounds_memory() {
        let mut rl = RateLimiter::new(10, 100, 50);
        for p in 0..50u64 {
            rl.record(p, 0);
        }
        rl.expire(1000);
        assert!(rl.suspects().is_empty());
        assert_eq!(rl.record(0, 1000), RateDecision::Allow);
    }

    #[test]
    fn slot_count_rounds_to_power_of_two_and_never_allocates_per_record() {
        let mut rl = RateLimiter::with_slots(2, 1000, 50, 5); // -> 8 slots
        for p in 0..10_000u64 {
            rl.record(p, 0);
        }
        // Only up to 8 distinct pages can ever be tracked at once.
        assert!(rl.suspects().len() <= 8);
    }

    #[test]
    fn colliding_pages_share_a_counter_and_overcount() {
        // 4 slots: pages 1 and 5 share slot 1. Their combined rate counts
        // against one budget — the fail-safe direction.
        let mut rl = RateLimiter::with_slots(2, 1000, 50, 4);
        rl.record(1, 0);
        assert_eq!(rl.record(5, 1), RateDecision::Allow, "shared count = 2");
        assert_ne!(
            rl.record(1, 2),
            RateDecision::Allow,
            "combined alias traffic exceeds the shared budget"
        );
        // The slot reports the most recent writer as the suspect.
        assert!(rl.suspects().contains(&1));
    }

    #[test]
    fn alternating_aliases_cannot_bypass_the_limiter() {
        // Regression: with evict-on-collision semantics, alternating two
        // pages that deterministically share a slot reset each other's
        // count and 200k hammering updates produced zero throttles. The
        // shared counter closes that bypass.
        let slots = 4096u64;
        let mut rl = RateLimiter::with_slots(10, 1_000_000, 50, slots as usize);
        let mut throttles = 0u64;
        for t in 0..10_000u64 {
            let page = 7 + (t % 2) * slots; // 7 and 7+4096 share slot 7
            if rl.record(page, t) != RateDecision::Allow {
                throttles += 1;
            }
        }
        assert!(
            throttles > 9_900,
            "alias alternation must stay throttled: {throttles}"
        );
    }

    #[test]
    fn hot_page_still_throttled_despite_cold_noise() {
        // The hammering pattern the tracker exists for: one hot page with
        // cold noise on *other* slots stays throttled, and the cold pages
        // (one touch per window each) are never throttled.
        let mut rl = RateLimiter::with_slots(10, 1_000_000, 50, 16);
        let mut throttled = 0u64;
        for t in 0..1_000u64 {
            if rl.record(7, t) != RateDecision::Allow {
                throttled += 1;
            }
        }
        assert!(throttled > 900, "hot page must stay throttled: {throttled}");
        assert_eq!(rl.throttles(), throttled);
        assert!(rl.suspects().contains(&7));
    }
}
