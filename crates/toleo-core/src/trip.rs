//! Trip (Tri-level Page) stealth-version compression (paper §4.3).
//!
//! Every protected 4 KB page is statically mapped to a 12-byte **flat**
//! entry. Depending on how much version locality the page's write stream
//! exhibits, the page is represented in one of three formats:
//!
//! * **Flat** — one shared 27-bit stealth base plus a 64-bit written-vector.
//!   A cache block's version is `base + bit`. When every block has been
//!   written once, the base increments and the vector clears. 12 B per 4 KB
//!   (341:1).
//! * **Uneven** — the flat entry gains a pointer to a 56-byte side entry
//!   holding a 7-bit private offset per block; a block's version is
//!   `base + offset`. Strides up to 127 are representable; offsets are
//!   renormalized (subtract MIN, fold into base) on overflow. 68 B per 4 KB
//!   (60:1).
//! * **Full** — an uncompressed 27-bit stealth per block (216 B logical,
//!   four 56-byte blocks allocated). 228 B per 4 KB (18:1).
//!
//! Pages upgrade flat → uneven → full as locality degrades and can be
//! downgraded back to flat (with a stealth reset + UV bump) by the OS or by
//! the probabilistic reset policy.

// audit: allow-file(indexing, line indices are bounded by LINES_PER_PAGE at every call site)

use crate::config::{ToleoConfig, LINES_PER_PAGE};
use crate::version::StealthVersion;
use serde::{Deserialize, Serialize};

/// Which Trip representation a page currently uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TripFormat {
    /// Shared base + written bit-vector (12 B).
    Flat,
    /// Base + 7-bit per-line offsets (12 + 56 B).
    Uneven,
    /// Full 27-bit stealth per line (12 + 216 B).
    Full,
}

impl std::fmt::Display for TripFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TripFormat::Flat => f.write_str("flat"),
            TripFormat::Uneven => f.write_str("uneven"),
            TripFormat::Full => f.write_str("full"),
        }
    }
}

/// Events a page update can raise; the device acts on these (allocation,
/// reset signalling to the host).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateEffect {
    /// Version incremented in place; no structural change.
    None,
    /// The page upgraded flat → uneven (device must allocate 1 block).
    UpgradedToUneven,
    /// The page upgraded uneven → full (device must allocate 4, free 1).
    UpgradedToFull,
    /// The probabilistic reset fired: page returned to flat with a fresh
    /// random base; the host must bump the UV and re-encrypt the page.
    StealthReset,
}

/// Per-page Trip state. This is the logical content of the flat entry and
/// its (optional) side entry.
#[derive(Debug, Clone, PartialEq)]
pub struct PageEntry {
    format: PageRepr,
    /// Shared stealth base (the "27b base" of the flat entry).
    base: StealthVersion,
}

#[derive(Debug, Clone, PartialEq)]
enum PageRepr {
    Flat {
        /// Bit i set <=> line i written since the last base increment.
        written: u64,
    },
    Uneven {
        /// 7-bit private offsets; version(i) = base + offsets[i].
        offsets: Box<[u8; LINES_PER_PAGE]>,
    },
    Full {
        /// Absolute stealth version per line.
        stealth: Box<[u32; LINES_PER_PAGE]>,
    },
}

impl PageEntry {
    /// Creates a fresh flat entry with the given random initial base.
    pub fn new_flat(base: StealthVersion) -> Self {
        PageEntry {
            format: PageRepr::Flat { written: 0 },
            base,
        }
    }

    /// Current representation format.
    pub fn format(&self) -> TripFormat {
        match self.format {
            PageRepr::Flat { .. } => TripFormat::Flat,
            PageRepr::Uneven { .. } => TripFormat::Uneven,
            PageRepr::Full { .. } => TripFormat::Full,
        }
    }

    /// The shared stealth base.
    pub fn base(&self) -> StealthVersion {
        self.base
    }

    /// Stealth version of line `line`.
    ///
    /// # Panics
    ///
    /// Panics if `line >= 64`.
    pub fn version_of(&self, line: usize, cfg: &ToleoConfig) -> StealthVersion {
        assert!(line < LINES_PER_PAGE, "line index {line} out of page");
        match &self.format {
            PageRepr::Flat { written } => {
                let bump = ((written >> line) & 1) as u32;
                self.base.offset_by(bump, cfg.stealth_bits)
            }
            PageRepr::Uneven { offsets } => {
                self.base.offset_by(offsets[line] as u32, cfg.stealth_bits)
            }
            PageRepr::Full { stealth } => {
                StealthVersion::new(stealth[line] as u64, cfg.stealth_bits)
            }
        }
    }

    /// The page's *leading* stealth version — the maximum across lines.
    /// Reset checks happen when the leading version is incremented (§4.3).
    pub fn leading_version(&self, cfg: &ToleoConfig) -> StealthVersion {
        match &self.format {
            PageRepr::Flat { written } => {
                let bump = if *written != 0 { 1 } else { 0 };
                self.base.offset_by(bump, cfg.stealth_bits)
            }
            PageRepr::Uneven { offsets } => {
                let max = offsets.iter().copied().max().unwrap_or(0) as u32;
                self.base.offset_by(max, cfg.stealth_bits)
            }
            PageRepr::Full { .. } => {
                // The flat entry's 27-bit base tracks the leading version in
                // full format (§4.3 "Stealth Reset").
                self.base
            }
        }
    }

    /// Predicts the structural effect [`record_write`](Self::record_write)
    /// would have, without mutating the entry. The device uses this to
    /// check dynamic-region headroom before committing an update, instead
    /// of cloning the entry and trial-running the write.
    ///
    /// # Panics
    ///
    /// Panics if `line >= 64`.
    pub fn predict_effect(&self, line: usize, cfg: &ToleoConfig) -> UpdateEffect {
        assert!(line < LINES_PER_PAGE, "line index {line} out of page");
        match &self.format {
            PageRepr::Flat { written } => {
                if *written & (1u64 << line) == 0 {
                    UpdateEffect::None
                } else {
                    UpdateEffect::UpgradedToUneven
                }
            }
            PageRepr::Uneven { offsets } => {
                if (offsets[line] as u32) < cfg.max_uneven_offset {
                    return UpdateEffect::None;
                }
                // Offset would overflow: renormalization absorbs it only if
                // folding MIN into the base brings the new offset back in
                // range (mirrors the record_write overflow arm).
                let min = offsets.iter().copied().min().unwrap_or(0) as u32;
                if min > 0 && offsets[line] as u32 + 1 - min <= cfg.max_uneven_offset {
                    UpdateEffect::None
                } else {
                    UpdateEffect::UpgradedToFull
                }
            }
            PageRepr::Full { .. } => UpdateEffect::None,
        }
    }

    /// Records a write to `line`, incrementing its version and upgrading the
    /// representation if the page's version locality no longer fits.
    ///
    /// Returns the structural effect, *excluding* resets — the caller (the
    /// device) performs the reset draw when [`UpdateEffect`] indicates the
    /// leading version advanced; see [`PageEntry::leading_advanced`].
    ///
    /// # Panics
    ///
    /// Panics if `line >= 64`.
    pub fn record_write(&mut self, line: usize, cfg: &ToleoConfig) -> UpdateEffect {
        assert!(line < LINES_PER_PAGE, "line index {line} out of page");
        match &mut self.format {
            PageRepr::Flat { written } => {
                let bit = 1u64 << line;
                if *written & bit == 0 {
                    *written |= bit;
                    if *written == u64::MAX {
                        // Whole page written uniformly: advance base, clear.
                        self.base = self.base.incremented(cfg.stealth_bits);
                        *written = 0;
                    }
                    UpdateEffect::None
                } else {
                    // Second write to the same line before the round
                    // completes: stride exceeds 1, upgrade to uneven.
                    let mut offsets = Box::new([0u8; LINES_PER_PAGE]);
                    for i in 0..LINES_PER_PAGE {
                        offsets[i] = ((*written >> i) & 1) as u8;
                    }
                    offsets[line] += 1; // the triggering write
                    self.format = PageRepr::Uneven { offsets };
                    UpdateEffect::UpgradedToUneven
                }
            }
            PageRepr::Uneven { offsets } => {
                let next = offsets[line] as u32 + 1;
                if next <= cfg.max_uneven_offset {
                    offsets[line] = next as u8;
                    return UpdateEffect::None;
                }
                // Offset overflow: renormalize by folding MIN into the base.
                let min = offsets.iter().copied().min().unwrap_or(0) as u32;
                if min > 0 {
                    for o in offsets.iter_mut() {
                        *o -= min as u8;
                    }
                    self.base = self.base.offset_by(min, cfg.stealth_bits);
                    offsets[line] += 1;
                    if (offsets[line] as u32) <= cfg.max_uneven_offset {
                        return UpdateEffect::None;
                    }
                    // Still overflowing after normalization (min was small):
                    // fall through to full upgrade with the increment already
                    // applied.
                    let mut stealth = Box::new([0u32; LINES_PER_PAGE]);
                    for i in 0..LINES_PER_PAGE {
                        stealth[i] = self
                            .base
                            .offset_by(offsets[i] as u32, cfg.stealth_bits)
                            .raw();
                    }
                    let leading = stealth.iter().copied().max().unwrap_or(0);
                    self.format = PageRepr::Full { stealth };
                    self.base = StealthVersion::new(leading as u64, cfg.stealth_bits);
                    return UpdateEffect::UpgradedToFull;
                }
                // MIN == 0: stride truly exceeds 127, upgrade to full.
                let mut stealth = Box::new([0u32; LINES_PER_PAGE]);
                for i in 0..LINES_PER_PAGE {
                    stealth[i] = self
                        .base
                        .offset_by(offsets[i] as u32, cfg.stealth_bits)
                        .raw();
                }
                stealth[line] = StealthVersion::new(stealth[line] as u64, cfg.stealth_bits)
                    .incremented(cfg.stealth_bits)
                    .raw();
                let leading = stealth.iter().copied().max().unwrap_or(0);
                self.format = PageRepr::Full { stealth };
                self.base = StealthVersion::new(leading as u64, cfg.stealth_bits);
                UpdateEffect::UpgradedToFull
            }
            PageRepr::Full { stealth } => {
                let v = StealthVersion::new(stealth[line] as u64, cfg.stealth_bits)
                    .incremented(cfg.stealth_bits);
                stealth[line] = v.raw();
                // Track the leading version in the flat entry's base field
                // (§4.3: full format uses the 27-bit base for reset checks).
                if v.raw() > self.base.raw() {
                    self.base = v;
                }
                UpdateEffect::None
            }
        }
    }

    /// Whether the most recent [`record_write`](Self::record_write) advanced
    /// the page's leading version to `after` from a strictly lower value.
    ///
    /// The device compares leading versions before/after an update and draws
    /// the probabilistic reset only when the leading version advanced.
    pub fn leading_advanced(before: StealthVersion, after: StealthVersion) -> bool {
        after != before
    }

    /// Resets the page to flat with a fresh random base. Used by the
    /// probabilistic reset policy and by OS-initiated downgrades (page free
    /// or remap). The caller must increment the page's UV.
    pub fn reset_to_flat(&mut self, new_base: StealthVersion) {
        self.base = new_base;
        self.format = PageRepr::Flat { written: 0 };
    }

    /// Serialized size of the side entry in Toleo dynamic memory, in
    /// 56-byte allocation blocks (0 for flat).
    pub fn dynamic_blocks(&self) -> usize {
        match self.format {
            PageRepr::Flat { .. } => 0,
            PageRepr::Uneven { .. } => 1,
            PageRepr::Full { .. } => crate::config::FULL_ENTRY_BLOCKS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ToleoConfig {
        ToleoConfig::small()
    }

    fn flat(base: u64) -> PageEntry {
        PageEntry::new_flat(StealthVersion::new(base, 27))
    }

    #[test]
    fn fresh_page_is_flat_with_base_versions() {
        let cfg = cfg();
        let p = flat(100);
        assert_eq!(p.format(), TripFormat::Flat);
        for line in 0..LINES_PER_PAGE {
            assert_eq!(p.version_of(line, &cfg).raw(), 100);
        }
    }

    #[test]
    fn uniform_write_round_stays_flat() {
        let cfg = cfg();
        let mut p = flat(5);
        for line in 0..LINES_PER_PAGE {
            assert_eq!(p.record_write(line, &cfg), UpdateEffect::None);
        }
        // All 64 written -> base advanced, vector cleared, still flat.
        assert_eq!(p.format(), TripFormat::Flat);
        for line in 0..LINES_PER_PAGE {
            assert_eq!(p.version_of(line, &cfg).raw(), 6);
        }
    }

    #[test]
    fn partial_round_gives_mixed_versions() {
        let cfg = cfg();
        let mut p = flat(5);
        p.record_write(0, &cfg);
        p.record_write(1, &cfg);
        assert_eq!(p.version_of(0, &cfg).raw(), 6);
        assert_eq!(p.version_of(1, &cfg).raw(), 6);
        assert_eq!(p.version_of(2, &cfg).raw(), 5);
        assert_eq!(p.leading_version(&cfg).raw(), 6);
    }

    #[test]
    fn rewrite_before_round_completes_upgrades_to_uneven() {
        let cfg = cfg();
        let mut p = flat(5);
        p.record_write(0, &cfg);
        assert_eq!(p.record_write(0, &cfg), UpdateEffect::UpgradedToUneven);
        assert_eq!(p.format(), TripFormat::Uneven);
        assert_eq!(p.version_of(0, &cfg).raw(), 7); // base 5 + offset 2
        assert_eq!(p.version_of(1, &cfg).raw(), 5);
        assert_eq!(p.dynamic_blocks(), 1);
    }

    #[test]
    fn uneven_preserves_flat_versions_at_upgrade() {
        let cfg = cfg();
        let mut p = flat(10);
        for line in 0..10 {
            p.record_write(line, &cfg);
        }
        let before: Vec<u32> = (0..LINES_PER_PAGE)
            .map(|l| p.version_of(l, &cfg).raw())
            .collect();
        p.record_write(3, &cfg); // upgrade
        for (l, b) in before.iter().enumerate() {
            let expect = if l == 3 { b + 1 } else { *b };
            assert_eq!(p.version_of(l, &cfg).raw(), expect, "line {l}");
        }
    }

    #[test]
    fn uneven_strides_accumulate() {
        let cfg = cfg();
        let mut p = flat(0);
        p.record_write(7, &cfg);
        p.record_write(7, &cfg); // -> uneven, offset 2
        for _ in 0..50 {
            assert_eq!(p.record_write(7, &cfg), UpdateEffect::None);
        }
        assert_eq!(p.version_of(7, &cfg).raw(), 52);
        assert_eq!(p.version_of(0, &cfg).raw(), 0);
        assert_eq!(p.leading_version(&cfg).raw(), 52);
    }

    #[test]
    fn offset_overflow_without_floor_upgrades_to_full() {
        let cfg = cfg();
        let mut p = flat(0);
        p.record_write(7, &cfg);
        p.record_write(7, &cfg); // uneven, offset 2
        let mut effect = UpdateEffect::None;
        for _ in 0..cfg.max_uneven_offset as usize + 2 {
            effect = p.record_write(7, &cfg);
            if effect != UpdateEffect::None {
                break;
            }
        }
        assert_eq!(effect, UpdateEffect::UpgradedToFull);
        assert_eq!(p.format(), TripFormat::Full);
        assert_eq!(p.dynamic_blocks(), crate::config::FULL_ENTRY_BLOCKS);
        assert_eq!(p.version_of(7, &cfg).raw(), cfg.max_uneven_offset + 1);
        assert_eq!(p.version_of(0, &cfg).raw(), 0);
    }

    #[test]
    fn offset_overflow_with_floor_renormalizes_and_stays_uneven() {
        let cfg = cfg();
        let mut p = flat(0);
        // Give every line offset >= 1 by writing each once, then once more
        // on line 0 (upgrade), then complete so MIN becomes 1.
        p.record_write(0, &cfg);
        p.record_write(0, &cfg); // uneven: line0 offset 2, others 0
        for l in 1..LINES_PER_PAGE {
            p.record_write(l, &cfg); // offsets 1
        }
        // Now MIN = 1. Drive line 0 to overflow.
        while p.version_of(0, &cfg).raw() < cfg.max_uneven_offset {
            assert_eq!(p.record_write(0, &cfg), UpdateEffect::None);
            assert_eq!(p.format(), TripFormat::Uneven);
        }
        // Next write overflows the 7-bit offset but MIN=1 can be folded.
        assert_eq!(p.record_write(0, &cfg), UpdateEffect::None);
        assert_eq!(
            p.format(),
            TripFormat::Uneven,
            "renormalization avoids full"
        );
        assert_eq!(p.base().raw(), 1, "MIN folded into base");
        assert_eq!(p.version_of(0, &cfg).raw(), cfg.max_uneven_offset + 1);
        assert_eq!(p.version_of(1, &cfg).raw(), 1);
    }

    #[test]
    fn full_format_tracks_leading_in_base() {
        let cfg = cfg();
        let mut p = flat(0);
        p.record_write(7, &cfg);
        p.record_write(7, &cfg);
        for _ in 0..200 {
            p.record_write(7, &cfg);
        }
        assert_eq!(p.format(), TripFormat::Full);
        assert_eq!(p.leading_version(&cfg).raw(), p.version_of(7, &cfg).raw());
    }

    #[test]
    fn reset_returns_to_flat() {
        let cfg = cfg();
        let mut p = flat(0);
        p.record_write(3, &cfg);
        p.record_write(3, &cfg);
        assert_eq!(p.format(), TripFormat::Uneven);
        p.reset_to_flat(StealthVersion::new(777, 27));
        assert_eq!(p.format(), TripFormat::Flat);
        for l in 0..LINES_PER_PAGE {
            assert_eq!(p.version_of(l, &cfg).raw(), 777);
        }
    }

    #[test]
    fn stealth_wraps_within_width() {
        let mut cfg = cfg();
        cfg.stealth_bits = 8; // tiny space to see the wrap
        let mut p = PageEntry::new_flat(StealthVersion::new(255, 8));
        for line in 0..LINES_PER_PAGE {
            p.record_write(line, &cfg);
        }
        assert_eq!(p.version_of(0, &cfg).raw(), 0, "base wrapped 255 -> 0");
    }

    #[test]
    #[should_panic(expected = "out of page")]
    fn out_of_range_line_panics() {
        let cfg = cfg();
        flat(0).version_of(64, &cfg);
    }

    /// `predict_effect` must agree with the effect `record_write` actually
    /// produces, across random write streams that visit all three formats.
    #[test]
    fn predicted_effect_matches_recorded_effect() {
        use rand::{Rng, SeedableRng};
        let cfg = cfg();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for trial in 0..20 {
            let mut p = flat(rng.gen_range(0..1u64 << 27));
            for step in 0..2_000 {
                let line = if rng.gen_bool(0.5) {
                    rng.gen_range(0..3)
                } else {
                    rng.gen_range(0..LINES_PER_PAGE)
                };
                let predicted = p.predict_effect(line, &cfg);
                let actual = p.record_write(line, &cfg);
                assert_eq!(predicted, actual, "trial {trial} step {step} line {line}");
                // Occasionally reset so flat is revisited.
                if rng.gen_bool(0.001) {
                    p.reset_to_flat(StealthVersion::new(rng.gen_range(0..1 << 27), 27));
                }
            }
        }
    }

    /// Versions computed via any representation must agree with a naive
    /// shadow array of per-line counters.
    #[test]
    fn versions_match_shadow_model_under_random_writes() {
        use rand::{Rng, SeedableRng};
        let cfg = cfg();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mask = (1u32 << 27) - 1;
        for trial in 0..20 {
            let base = rng.gen_range(0..1u64 << 27);
            let mut p = PageEntry::new_flat(StealthVersion::new(base, 27));
            let mut shadow = [base as u32; LINES_PER_PAGE];
            for step in 0..500 {
                // Mix of hot-line and uniform writes to exercise upgrades.
                let line = if rng.gen_bool(0.3) {
                    rng.gen_range(0..4)
                } else {
                    rng.gen_range(0..LINES_PER_PAGE)
                };
                p.record_write(line, &cfg);
                shadow[line] = shadow[line].wrapping_add(1) & mask;
                for (l, expect) in shadow.iter().enumerate() {
                    let got = p.version_of(l, &cfg).raw();
                    assert_eq!(
                        got, *expect,
                        "trial {trial} step {step}: line {l} got {got}, shadow {expect}"
                    );
                }
            }
        }
    }
}
