//! The Toleo device: trusted smart memory storing stealth versions.
//!
//! The device accepts the paper's three request types (§5):
//!
//! * **READ** — return the stealth version of a cache block.
//! * **UPDATE** — increment and return the stealth version of a cache block
//!   (issued on every LLC dirty-eviction / memory write).
//! * **RESET** — OS-initiated downgrade of a page to flat (page free or
//!   remap), which re-randomizes the stealth base.
//!
//! UPDATE may additionally signal **UV_UPDATE** back to the host when the
//! probabilistic stealth reset fires; the host then increments the page's
//! shared upper version and re-encrypts the page.
//!
//! The device owns a statically mapped flat-entry array (one 12-byte entry
//! per protected page) and a dynamic region from which uneven (1 block) and
//! full (4 block) side entries are allocated. When the dynamic region is
//! exhausted, upgrades are rejected with [`ToleoError::DeviceFull`] until
//! the host frees space via RESET.

// audit: allow-file(indexing, entry indices come from the page index that allocated them)

use crate::config::{ToleoConfig, DYNAMIC_BLOCK_BYTES, FLAT_ENTRY_BYTES};
use crate::error::{Result, ToleoError};
use crate::pagetable::PageIndex;
use crate::trip::{PageEntry, TripFormat, UpdateEffect};
use crate::version::StealthVersion;
use toleo_crypto::range::DRange;

/// Streamed to the host when a stealth reset fires: the page's pre-reset
/// versions, which the host needs to decrypt each block before
/// re-encrypting it under the incremented UV and the fresh stealth base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResetNotice {
    /// Per-line stealth versions immediately before the reset (after the
    /// triggering write's increment).
    pub old_stealth: Box<[StealthVersion; crate::config::LINES_PER_PAGE]>,
    /// The page's fresh shared stealth base after the reset, so the host
    /// can re-encrypt without a follow-up READ round trip.
    pub new_base: StealthVersion,
}

/// Outcome of an UPDATE request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateResponse {
    /// The cache block's new stealth version (post-reset if one fired).
    pub stealth: StealthVersion,
    /// The page's Trip format at the time the request arrived (pre-upgrade),
    /// which is what the host's stealth-cache lookup raced against.
    pub format: TripFormat,
    /// If set, the stealth versions of the page were reset: the host must
    /// increment the page's UV and re-encrypt all its cache blocks
    /// (UV_UPDATE in the paper's protocol, §5).
    pub reset: Option<ResetNotice>,
}

impl UpdateResponse {
    /// Whether this update fired a stealth reset (UV_UPDATE).
    pub fn uv_update(&self) -> bool {
        self.reset.is_some()
    }
}

/// Running usage statistics, sampled for Fig. 11/12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceUsage {
    /// Pages currently in flat format that have been touched.
    pub flat_pages: u64,
    /// Pages currently in uneven format.
    pub uneven_pages: u64,
    /// Pages currently in full format.
    pub full_pages: u64,
    /// Bytes of statically mapped flat entries for *touched* pages (the
    /// paper derives static usage from RSS).
    pub flat_bytes: u64,
    /// Bytes of dynamically allocated side entries.
    pub dynamic_bytes: u64,
}

impl DeviceUsage {
    /// Total Toleo bytes in use for the touched working set.
    pub fn total_bytes(&self) -> u64 {
        self.flat_bytes + self.dynamic_bytes
    }
}

/// Cumulative event counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceStats {
    /// READ requests served.
    pub reads: u64,
    /// UPDATE requests served.
    pub updates: u64,
    /// OS RESET (downgrade) requests served.
    pub resets: u64,
    /// Probabilistic stealth resets fired (each implies one UV_UPDATE).
    pub stealth_resets: u64,
    /// Flat -> uneven upgrades.
    pub upgrades_to_uneven: u64,
    /// Uneven -> full upgrades.
    pub upgrades_to_full: u64,
    /// Updates rejected because the dynamic region was exhausted.
    pub rejected_full: u64,
}

impl DeviceStats {
    /// Accumulates another device's counters into this one (used to
    /// aggregate per-shard devices in a sharded deployment).
    pub fn merge(&mut self, other: &DeviceStats) {
        self.reads += other.reads;
        self.updates += other.updates;
        self.resets += other.resets;
        self.stealth_resets += other.stealth_resets;
        self.upgrades_to_uneven += other.upgrades_to_uneven;
        self.upgrades_to_full += other.upgrades_to_full;
        self.rejected_full += other.rejected_full;
    }
}

/// The trusted Toleo smart-memory device.
///
/// # Examples
///
/// ```
/// use toleo_core::config::ToleoConfig;
/// use toleo_core::device::ToleoDevice;
///
/// let mut dev = ToleoDevice::new(ToleoConfig::small()).unwrap();
/// let v0 = dev.read(0, 0).unwrap();
/// let r = dev.update(0, 0).unwrap();
/// assert_eq!(r.stealth.raw(), v0.raw().wrapping_add(1) & ((1 << 27) - 1));
/// ```
#[derive(Debug)]
pub struct ToleoDevice {
    cfg: ToleoConfig,
    /// Flat open-addressed `page -> entry` index over `entries`. Pages are
    /// materialized on first touch with a random base (the full array is
    /// statically mapped in hardware; sparseness here is a simulation
    /// artifact), and the index probe is one multiply-shift hash plus a
    /// short linear scan — this runs on every READ and UPDATE.
    index: PageIndex,
    /// Dense storage for materialized page entries.
    entries: Vec<PageEntry>,
    /// Allocated dynamic blocks (56 B each).
    dynamic_blocks_used: u64,
    /// Capacity of the dynamic region in blocks.
    dynamic_blocks_cap: u64,
    rng: DRange,
    stats: DeviceStats,
}

impl ToleoDevice {
    /// Creates a device for the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ToleoError::InvalidConfig`] if `cfg` fails
    /// [`ToleoConfig::validate`].
    pub fn new(cfg: ToleoConfig) -> Result<Self> {
        cfg.validate()
            .map_err(|detail| ToleoError::InvalidConfig { detail })?;
        let dynamic_blocks_cap = cfg.dynamic_region_bytes() / DYNAMIC_BLOCK_BYTES as u64;
        let rng = DRange::from_seed(cfg.rng_seed);
        Ok(ToleoDevice {
            cfg,
            index: PageIndex::new(),
            entries: Vec::new(),
            dynamic_blocks_used: 0,
            dynamic_blocks_cap,
            rng,
            stats: DeviceStats::default(),
        })
    }

    /// The device configuration.
    pub fn config(&self) -> &ToleoConfig {
        &self.cfg
    }

    /// Cumulative event counters.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Current space usage snapshot.
    pub fn usage(&self) -> DeviceUsage {
        let mut u = DeviceUsage::default();
        for entry in &self.entries {
            match entry.format() {
                TripFormat::Flat => u.flat_pages += 1,
                TripFormat::Uneven => u.uneven_pages += 1,
                TripFormat::Full => u.full_pages += 1,
            }
        }
        u.flat_bytes = self.entries.len() as u64 * FLAT_ENTRY_BYTES as u64;
        u.dynamic_bytes = self.dynamic_blocks_used * DYNAMIC_BLOCK_BYTES as u64;
        u
    }

    /// Format of a page (for inspection; materializes the page).
    pub fn page_format(&mut self, page: u64) -> Result<TripFormat> {
        self.check_page(page)?;
        Ok(self.entry(page).format())
    }

    fn check_page(&self, page: u64) -> Result<()> {
        let pages = self.cfg.protected_pages();
        if page >= pages {
            return Err(ToleoError::PageOutOfRange { page, pages });
        }
        Ok(())
    }

    /// Materializes (first touch) and returns the entry for `page`.
    fn entry(&mut self, page: u64) -> &mut PageEntry {
        materialize(
            &mut self.index,
            &mut self.entries,
            &mut self.rng,
            self.cfg.stealth_bits,
            page,
        )
    }

    /// READ: the stealth version of cache block `line` in `page`.
    ///
    /// # Errors
    ///
    /// [`ToleoError::PageOutOfRange`] for addresses beyond the protected
    /// pool.
    pub fn read(&mut self, page: u64, line: usize) -> Result<StealthVersion> {
        self.read_versioned(page, line).map(|(stealth, _)| stealth)
    }

    /// READ plus the page's Trip format, from a single flat-array probe.
    /// The host needs both on every LLC miss (the format decides which
    /// stealth-cache structures the lookup raced against), so answering
    /// them together halves the device probes on the read hot path.
    ///
    /// # Errors
    ///
    /// [`ToleoError::PageOutOfRange`] for addresses beyond the protected
    /// pool.
    pub fn read_versioned(
        &mut self,
        page: u64,
        line: usize,
    ) -> Result<(StealthVersion, TripFormat)> {
        self.check_page(page)?;
        self.stats.reads += 1;
        let ToleoDevice {
            cfg,
            index,
            entries,
            rng,
            ..
        } = self;
        let entry = materialize(index, entries, rng, cfg.stealth_bits, page);
        Ok((entry.version_of(line, cfg), entry.format()))
    }

    /// Serves a whole run of READs against one page from a *single*
    /// flat-array probe: the engine's batched read path groups consecutive
    /// same-page operations and fetches all their versions (plus the
    /// page's Trip format) in one call, amortizing the index lookup that
    /// [`read_versioned`](Self::read_versioned) pays per line. Counts one
    /// READ per requested line, exactly as the per-op path would.
    ///
    /// # Errors
    ///
    /// [`ToleoError::PageOutOfRange`] for addresses beyond the protected
    /// pool (in which case no READ is counted and `out` is left empty).
    pub fn read_run(
        &mut self,
        page: u64,
        lines: &[usize],
        out: &mut Vec<(StealthVersion, TripFormat)>,
    ) -> Result<()> {
        out.clear();
        self.check_page(page)?;
        self.stats.reads += lines.len() as u64;
        let ToleoDevice {
            cfg,
            index,
            entries,
            rng,
            ..
        } = self;
        let entry = materialize(index, entries, rng, cfg.stealth_bits, page);
        let format = entry.format();
        out.extend(lines.iter().map(|&l| (entry.version_of(l, cfg), format)));
        Ok(())
    }

    /// UPDATE: increment and return the stealth version of a cache block,
    /// possibly firing the probabilistic stealth reset.
    ///
    /// # Errors
    ///
    /// [`ToleoError::DeviceFull`] if the update requires an uneven/full
    /// allocation and the dynamic region is exhausted;
    /// [`ToleoError::PageOutOfRange`] for bad addresses. On `DeviceFull`
    /// the version state is unchanged — the host may retry after freeing
    /// space.
    pub fn update(&mut self, page: u64, line: usize) -> Result<UpdateResponse> {
        self.check_page(page)?;
        let ToleoDevice {
            cfg,
            index,
            entries,
            dynamic_blocks_used,
            dynamic_blocks_cap,
            rng,
            stats,
        } = self;
        let bits = cfg.stealth_bits;
        let entry = materialize(index, entries, rng, bits, page);
        let format = entry.format();
        // Check allocation headroom against the predicted structural effect
        // before mutating anything (flat->uneven needs 1 block,
        // uneven->full needs +3 net).
        let effect = entry.predict_effect(line, cfg);
        let extra_blocks: u64 = match effect {
            UpdateEffect::UpgradedToUneven => 1,
            UpdateEffect::UpgradedToFull => crate::config::FULL_ENTRY_BLOCKS as u64 - 1,
            _ => 0,
        };
        if extra_blocks > 0 && *dynamic_blocks_used + extra_blocks > *dynamic_blocks_cap {
            stats.rejected_full += 1;
            return Err(ToleoError::DeviceFull { page });
        }
        stats.updates += 1;
        let leading_before = entry.leading_version(cfg);
        let recorded = entry.record_write(line, cfg);
        debug_assert_eq!(
            recorded, effect,
            "predict_effect diverged from record_write"
        );
        match recorded {
            UpdateEffect::UpgradedToUneven => {
                *dynamic_blocks_used += 1;
                stats.upgrades_to_uneven += 1;
            }
            UpdateEffect::UpgradedToFull => {
                *dynamic_blocks_used += extra_blocks;
                stats.upgrades_to_full += 1;
            }
            _ => {}
        }

        // Reset check (§4.3): only when the page's leading version advanced.
        let leading_after = entry.leading_version(cfg);
        let mut reset = None;
        if PageEntry::leading_advanced(leading_before, leading_after)
            && rng.one_in_pow2(cfg.reset_log2)
        {
            // Stream the pre-reset versions to the host for re-encryption,
            // then free any side entry and return to flat with a fresh base.
            let mut old_stealth =
                Box::new([StealthVersion::default(); crate::config::LINES_PER_PAGE]);
            for (l, slot) in old_stealth.iter_mut().enumerate() {
                *slot = entry.version_of(l, cfg);
            }
            *dynamic_blocks_used -= entry.dynamic_blocks() as u64;
            let base = random_base(rng, bits);
            entry.reset_to_flat(base);
            stats.stealth_resets += 1;
            reset = Some(ResetNotice {
                old_stealth,
                new_base: base,
            });
        }
        let stealth = entry.version_of(line, cfg);
        Ok(UpdateResponse {
            stealth,
            format,
            reset,
        })
    }

    /// RESET: OS-initiated downgrade of `page` to flat (free / remap). The
    /// stealth base re-randomizes; the host must also bump the UV, which
    /// scrambles the old contents (their MACs can no longer verify).
    ///
    /// Returns the page's new shared stealth version.
    ///
    /// # Errors
    ///
    /// [`ToleoError::PageOutOfRange`] for bad addresses.
    pub fn reset(&mut self, page: u64) -> Result<StealthVersion> {
        self.check_page(page)?;
        self.stats.resets += 1;
        let bits = self.cfg.stealth_bits;
        let base = random_base(&mut self.rng, bits);
        let entry = self.entry(page);
        let freed = entry.dynamic_blocks() as u64;
        entry.reset_to_flat(base);
        self.dynamic_blocks_used -= freed;
        Ok(base)
    }

    /// Remaining dynamic blocks (each 56 B).
    pub fn free_dynamic_blocks(&self) -> u64 {
        self.dynamic_blocks_cap - self.dynamic_blocks_used
    }

    /// Read-only peek at a page's shared stealth base, if the page has
    /// been touched. For analysis and tests; does not count as a READ and
    /// does not materialize the page.
    pub fn peek_base(&self, page: u64) -> Option<StealthVersion> {
        self.index
            .get(page)
            .map(|i| self.entries[i as usize].base())
    }
}

fn random_base(rng: &mut DRange, bits: u32) -> StealthVersion {
    StealthVersion::new(rng.below(1u64 << bits), bits)
}

/// First-touch materialization of a page's flat entry, shared by every
/// request path. A free function over the split borrows so callers holding
/// other `ToleoDevice` fields can still use it.
fn materialize<'a>(
    index: &mut PageIndex,
    entries: &'a mut Vec<PageEntry>,
    rng: &mut DRange,
    bits: u32,
    page: u64,
) -> &'a mut PageEntry {
    let slot = match index.get(page) {
        Some(i) => i as usize,
        None => {
            // audit: allow(panic, 2^32 page entries exhaust memory long before this overflows; a wrapped index would alias two pages)
            let i = u32::try_from(entries.len()).expect("device entry count fits u32");
            entries.push(PageEntry::new_flat(random_base(rng, bits)));
            index.insert(page, i);
            i as usize
        }
    };
    &mut entries[slot]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LINES_PER_PAGE;

    fn dev() -> ToleoDevice {
        ToleoDevice::new(ToleoConfig::small()).unwrap()
    }

    #[test]
    fn invalid_config_is_an_error_not_a_panic() {
        let mut cfg = ToleoConfig::small();
        cfg.stealth_bits = 0; // fails validate()
        match ToleoDevice::new(cfg) {
            Err(ToleoError::InvalidConfig { detail }) => {
                assert!(detail.contains("stealth_bits"), "detail: {detail}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }

        let mut cfg = ToleoConfig::small();
        cfg.device_capacity_bytes = cfg.flat_array_bytes() - 1; // too small
        assert!(matches!(
            ToleoDevice::new(cfg),
            Err(ToleoError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn update_increments_version() {
        let mut d = dev();
        let v0 = d.read(3, 5).unwrap();
        let r = d.update(3, 5).unwrap();
        assert_eq!(r.stealth.raw(), v0.incremented(27).raw());
        assert_eq!(d.read(3, 5).unwrap(), r.stealth);
    }

    #[test]
    fn fresh_pages_have_random_bases() {
        let mut d = dev();
        let a = d.read(0, 0).unwrap();
        let b = d.read(1, 0).unwrap();
        let c = d.read(2, 0).unwrap();
        // Three identical random 27-bit draws would be astronomically
        // unlikely; equality of all three means initialization is broken.
        assert!(!(a == b && b == c), "bases look non-random: {a:?}");
    }

    #[test]
    fn page_out_of_range_rejected() {
        let mut d = dev();
        let pages = d.config().protected_pages();
        assert!(matches!(
            d.read(pages, 0),
            Err(ToleoError::PageOutOfRange { .. })
        ));
        assert!(matches!(
            d.update(pages + 5, 0),
            Err(ToleoError::PageOutOfRange { .. })
        ));
        assert!(matches!(
            d.reset(u64::MAX),
            Err(ToleoError::PageOutOfRange { .. })
        ));
    }

    #[test]
    fn upgrade_allocates_and_reset_frees() {
        let mut d = dev();
        assert_eq!(d.usage().dynamic_bytes, 0);
        d.update(0, 7).unwrap();
        d.update(0, 7).unwrap(); // -> uneven
        assert_eq!(d.usage().dynamic_bytes, DYNAMIC_BLOCK_BYTES as u64);
        assert_eq!(d.page_format(0).unwrap(), TripFormat::Uneven);
        d.reset(0).unwrap();
        assert_eq!(d.usage().dynamic_bytes, 0);
        assert_eq!(d.page_format(0).unwrap(), TripFormat::Flat);
        let s = d.stats();
        assert_eq!(s.upgrades_to_uneven, 1);
        assert_eq!(s.resets, 1);
    }

    #[test]
    fn full_upgrade_uses_four_blocks() {
        let mut d = dev();
        for _ in 0..200 {
            d.update(0, 7).unwrap();
        }
        assert_eq!(d.page_format(0).unwrap(), TripFormat::Full);
        assert_eq!(d.usage().dynamic_bytes, 4 * DYNAMIC_BLOCK_BYTES as u64);
        assert_eq!(d.stats().upgrades_to_full, 1);
    }

    #[test]
    fn device_full_rejects_upgrades_but_not_flat_updates() {
        let mut cfg = ToleoConfig::small();
        // Dynamic region of exactly 1 block.
        cfg.device_capacity_bytes = cfg.flat_array_bytes() + DYNAMIC_BLOCK_BYTES as u64;
        let mut d = ToleoDevice::new(cfg).unwrap();
        // First upgrade succeeds and consumes the only block.
        d.update(0, 3).unwrap();
        d.update(0, 3).unwrap();
        assert_eq!(d.free_dynamic_blocks(), 0);
        // Second page cannot upgrade...
        d.update(1, 4).unwrap();
        assert!(matches!(
            d.update(1, 4),
            Err(ToleoError::DeviceFull { page: 1 })
        ));
        assert_eq!(d.stats().rejected_full, 1);
        // ...but uniform (flat) updates still work.
        d.update(1, 5).unwrap();
        // Freeing page 0 lets page 1 upgrade.
        d.reset(0).unwrap();
        d.update(1, 4).unwrap();
        assert_eq!(d.page_format(1).unwrap(), TripFormat::Uneven);
    }

    #[test]
    fn device_full_leaves_state_unchanged() {
        let mut cfg = ToleoConfig::small();
        cfg.device_capacity_bytes = cfg.flat_array_bytes(); // zero dynamic blocks
        let mut d = ToleoDevice::new(cfg).unwrap();
        d.update(0, 3).unwrap();
        let v_before = d.read(0, 3).unwrap();
        assert!(d.update(0, 3).is_err());
        assert_eq!(
            d.read(0, 3).unwrap(),
            v_before,
            "rejected update must not mutate"
        );
        assert_eq!(d.page_format(0).unwrap(), TripFormat::Flat);
    }

    #[test]
    fn uniform_writes_never_allocate() {
        let mut d = dev();
        for round in 0..3 {
            for line in 0..LINES_PER_PAGE {
                d.update(9, line).unwrap();
            }
            assert_eq!(d.usage().dynamic_bytes, 0, "round {round}");
        }
        assert_eq!(d.page_format(9).unwrap(), TripFormat::Flat);
    }

    #[test]
    fn stealth_reset_fires_at_expected_rate() {
        let mut cfg = ToleoConfig::small();
        cfg.reset_log2 = 6; // 1/64 for a fast statistical test
        let mut d = ToleoDevice::new(cfg).unwrap();
        let mut resets = 0u64;
        let mut leading_increments = 0u64;
        // Hot-line updates: every update advances the leading version once
        // the page is uneven/full.
        for i in 0..20_000u64 {
            let r = d.update(0, 0).unwrap();
            leading_increments += 1;
            if r.uv_update() {
                resets += 1;
            }
            let _ = i;
        }
        let rate = resets as f64 / leading_increments as f64;
        assert!(
            (rate - 1.0 / 64.0).abs() < 0.006,
            "reset rate {rate}, expected ~{}",
            1.0 / 64.0
        );
    }

    #[test]
    fn reset_downgrades_and_frees() {
        let mut cfg = ToleoConfig::small();
        cfg.reset_log2 = 4; // 1/16: resets happen fast
        let mut d = ToleoDevice::new(cfg).unwrap();
        let mut saw_reset_from_nonflat = false;
        for _ in 0..2_000 {
            let fmt_before = d.page_format(0).unwrap();
            let r = d.update(0, 1).unwrap();
            if r.uv_update() {
                assert_eq!(d.page_format(0).unwrap(), TripFormat::Flat);
                if fmt_before != TripFormat::Flat {
                    saw_reset_from_nonflat = true;
                    assert_eq!(d.usage().dynamic_bytes, 0, "side entry freed on reset");
                }
            }
        }
        assert!(
            saw_reset_from_nonflat,
            "test never exercised a non-flat reset"
        );
    }

    #[test]
    fn update_response_reflects_post_reset_version() {
        let mut cfg = ToleoConfig::small();
        cfg.reset_log2 = 3;
        let mut d = ToleoDevice::new(cfg).unwrap();
        for _ in 0..500 {
            let r = d.update(0, 2).unwrap();
            let now = d.read(0, 2).unwrap();
            assert_eq!(r.stealth, now, "UPDATE must return the live version");
        }
    }

    #[test]
    fn usage_counts_formats() {
        let mut d = dev();
        d.update(0, 0).unwrap(); // flat
        d.update(1, 0).unwrap();
        d.update(1, 0).unwrap(); // uneven
        for _ in 0..200 {
            d.update(2, 0).unwrap(); // full
        }
        let u = d.usage();
        assert_eq!(u.flat_pages, 1);
        assert_eq!(u.uneven_pages, 1);
        assert_eq!(u.full_pages, 1);
        assert_eq!(u.flat_bytes, 3 * FLAT_ENTRY_BYTES as u64);
        assert_eq!(u.total_bytes(), u.flat_bytes + u.dynamic_bytes);
    }
}
