//! The host-side memory protection engine.
//!
//! Sits between the LLC and the memory system, like client SGX's memory
//! encryption engine, but sources freshness from the Toleo device instead
//! of a Merkle tree:
//!
//! * **write** (dirty LLC eviction): UPDATE the block's stealth version in
//!   Toleo, encrypt the plaintext with AES-XTS under the
//!   `(full version, address)` tweak, compute the 56-bit MAC over
//!   `(version, address, ciphertext)`, store ciphertext + MAC (+ shared UV)
//!   in untrusted conventional memory.
//! * **read** (LLC miss): fetch ciphertext, MAC and UV from untrusted
//!   memory and the stealth version from Toleo (or the on-chip stealth
//!   cache), recompute the MAC, and *only if it verifies* decrypt and
//!   return plaintext. A mismatch means tampering or replay: the kill
//!   switch engages and the engine refuses all further service.
//!
//! The [`UntrustedDram`] it writes to is fully exposed to the adversary —
//! integration tests replay old (ciphertext, MAC, UV) triples through it
//! to demonstrate detection.

// audit: allow-file(indexing, sector/line offsets derive from the fixed page and cache-block layout constants)

use crate::arena::{PageSlot, SlotId};
use crate::cache::{CacheStats, MacCache, StealthCache};
use crate::channel::{ChannelStats, DeviceChannel, RetryPolicy};
use crate::config::{ToleoConfig, CACHE_BLOCK_BYTES, LINES_PER_PAGE, PAGE_BYTES};
use crate::device::{DeviceStats, ToleoDevice, UpdateResponse};
use crate::error::{BatchError, Result, ToleoError};
use crate::fault::{FaultPlan, FaultPlanConfig};
use crate::layout;
use crate::version::FullVersion;
use toleo_crypto::mac::MacKey;
use toleo_crypto::modes::{AesXts, Tweak};

pub use crate::arena::{Block, ReplayCapsule, UntrustedDram};

/// Engine event counters (feeds Figs. 7–9 via the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Blocks written (dirty evictions processed).
    pub writes: u64,
    /// Blocks read (LLC miss fills).
    pub reads: u64,
    /// UPDATE requests that reached the Toleo device.
    pub device_updates: u64,
    /// READ requests that reached the Toleo device (stealth-cache misses).
    pub device_reads: u64,
    /// MAC-block fetches from conventional DRAM (MAC-cache misses).
    pub mac_fetches: u64,
    /// Stealth resets processed (pages re-encrypted).
    pub pages_reencrypted: u64,
    /// Pages freed/downgraded at OS request.
    pub pages_freed: u64,
}

impl EngineStats {
    /// Accumulates another engine's counters into this one (used by
    /// [`ShardedEngine`](crate::sharded::ShardedEngine) to aggregate
    /// per-shard statistics).
    pub fn merge(&mut self, other: &EngineStats) {
        self.writes += other.writes;
        self.reads += other.reads;
        self.device_updates += other.device_updates;
        self.device_reads += other.device_reads;
        self.mac_fetches += other.mac_fetches;
        self.pages_reencrypted += other.pages_reencrypted;
        self.pages_freed += other.pages_freed;
    }
}

/// Snapshot of every observable counter at the instant the kill switch
/// engaged. After a kill the engine is fully inert: operations fail
/// without touching the device, the caches, or untrusted memory, and the
/// stats getters report exactly this frozen state (the detecting access
/// itself is included — it physically happened).
///
/// Public because a sharded deployment carries it out in
/// [`ToleoError::ShardQuarantined`]: the forensic record of a quarantined
/// shard travels with the refusal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KillSnapshot {
    /// Engine counters at the kill instant.
    pub stats: EngineStats,
    /// Stealth-cache counters at the kill instant.
    pub stealth_cache: CacheStats,
    /// MAC-cache counters at the kill instant.
    pub mac_cache: CacheStats,
    /// Device counters at the kill instant.
    pub device: DeviceStats,
    /// Device-channel (fault plane) counters at the kill instant.
    pub channel: ChannelStats,
}

/// The memory protection engine in the Toleo configuration (CIF:
/// confidentiality + integrity + freshness).
///
/// # Examples
///
/// ```
/// use toleo_core::engine::ProtectionEngine;
/// use toleo_core::config::ToleoConfig;
///
/// let mut engine = ProtectionEngine::try_new(ToleoConfig::small(), [7u8; 48]).unwrap();
/// engine.write(0x1000, &[42u8; 64]).unwrap();
/// assert_eq!(engine.read(0x1000).unwrap(), [42u8; 64]);
/// ```
#[derive(Debug)]
pub struct ProtectionEngine {
    cfg: ToleoConfig,
    xts: AesXts,
    mac: MacKey,
    channel: DeviceChannel,
    dram: UntrustedDram,
    /// Last-page fast path: the most recently touched page and its arena
    /// slot, so consecutive accesses to one page skip the index probe.
    last_slot: Option<(u64, SlotId)>,
    stealth_cache: StealthCache,
    mac_cache: MacCache,
    stats: EngineStats,
    /// `Some` once the kill switch has engaged; carries the frozen
    /// statistics every getter serves from then on.
    killed: Option<Box<KillSnapshot>>,
}

/// Splits 48 bytes of key material into its three 16-byte subkeys (XTS
/// data, XTS tweak, MAC) without a fallible slice-to-array conversion.
pub(crate) fn split_key_material(key_material: &[u8; 48]) -> [[u8; 16]; 3] {
    let mut keys = [[0u8; 16]; 3];
    for (i, byte) in key_material.iter().enumerate() {
        keys[i / 16][i % 16] = *byte;
    }
    keys
}

impl ProtectionEngine {
    /// Creates an engine. `key_material` supplies the XTS data key, XTS
    /// tweak key and MAC key (16 bytes each).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`ToleoConfig::validate`]) — which
    /// is why this path is deprecated: a malformed host configuration is
    /// an operational error, not a programming bug, and must surface as
    /// [`ToleoError::InvalidConfig`] instead of tearing the process down.
    #[deprecated(note = "use try_new: a bad ToleoConfig is a recoverable error, not a panic")]
    pub fn new(cfg: ToleoConfig, key_material: [u8; 48]) -> Self {
        Self::try_new(cfg, key_material)
            // audit: allow(panic, deprecated shim documented to panic; try_new is the error path)
            .unwrap_or_else(|e| panic!("ProtectionEngine construction failed: {e}"))
    }

    /// Creates an engine, reporting a bad configuration as an error
    /// instead of panicking. If the `TOLEO_FAULT_PLAN` environment
    /// variable is set (see [`FaultPlanConfig::parse`]), the device
    /// channel is armed with that fault campaign — how the CI
    /// `fault-smoke` job runs the whole suite under injected link faults.
    ///
    /// # Errors
    ///
    /// [`ToleoError::InvalidConfig`] if `cfg` fails
    /// [`ToleoConfig::validate`] or `TOLEO_FAULT_PLAN` is malformed.
    pub fn try_new(cfg: ToleoConfig, key_material: [u8; 48]) -> Result<Self> {
        let fault_plan = FaultPlanConfig::from_env()?;
        Self::try_new_with_robustness(cfg, key_material, fault_plan, RetryPolicy::default())
    }

    /// Creates an engine with an explicit robustness configuration: an
    /// optional fault-injection campaign for the device link and the
    /// retry policy that absorbs its transients. The plan's stream is
    /// salted with `cfg.rng_seed`, so per-shard engines (whose configs
    /// carry derived seeds) draw independent fault streams from one
    /// campaign spec.
    ///
    /// # Errors
    ///
    /// [`ToleoError::InvalidConfig`] if `cfg` or the fault plan is
    /// invalid.
    pub fn try_new_with_robustness(
        cfg: ToleoConfig,
        key_material: [u8; 48],
        fault_plan: Option<FaultPlanConfig>,
        policy: RetryPolicy,
    ) -> Result<Self> {
        let [data_key, tweak_key, mac_key] = split_key_material(&key_material);
        let plan = match fault_plan {
            Some(plan_cfg) => Some(FaultPlan::with_salt(plan_cfg, cfg.rng_seed)?),
            None => None,
        };
        let device = ToleoDevice::new(cfg.clone())?;
        Ok(ProtectionEngine {
            channel: DeviceChannel::new(device, plan, policy),
            cfg,
            xts: AesXts::new(&data_key, &tweak_key),
            mac: MacKey::new(mac_key),
            dram: UntrustedDram::default(),
            last_slot: None,
            stealth_cache: StealthCache::paper_default(),
            mac_cache: MacCache::paper_default(),
            stats: EngineStats::default(),
            killed: None,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ToleoConfig {
        &self.cfg
    }

    /// Engine event counters. After a kill this is frozen at the state
    /// observed when the kill switch engaged.
    pub fn stats(&self) -> EngineStats {
        match &self.killed {
            Some(snap) => snap.stats,
            None => self.stats,
        }
    }

    /// Stealth-cache statistics (Fig. 7); frozen after a kill.
    pub fn stealth_cache_stats(&self) -> CacheStats {
        match &self.killed {
            Some(snap) => snap.stealth_cache,
            None => self.stealth_cache.stats(),
        }
    }

    /// MAC-cache statistics (Fig. 7); frozen after a kill.
    pub fn mac_cache_stats(&self) -> CacheStats {
        match &self.killed {
            Some(snap) => snap.mac_cache,
            None => self.mac_cache.stats(),
        }
    }

    /// Device event counters; frozen after a kill (a dead platform stops
    /// issuing requests, so its last observed device state is final).
    pub fn device_stats(&self) -> DeviceStats {
        match &self.killed {
            Some(snap) => snap.device,
            None => self.channel.device().stats(),
        }
    }

    /// Device-channel (fault plane) counters: faults injected and
    /// absorbed, retries, backoff budget spent. Frozen after a kill.
    pub fn channel_stats(&self) -> ChannelStats {
        match &self.killed {
            Some(snap) => snap.channel,
            None => self.channel.stats(),
        }
    }

    /// The frozen kill-switch snapshot, if the engine is killed. A
    /// sharded deployment clones this into
    /// [`ToleoError::ShardQuarantined`] so the forensic record travels
    /// with the refusal.
    pub fn kill_snapshot(&self) -> Option<KillSnapshot> {
        self.killed.as_deref().copied()
    }

    /// Whether a fault-injection plan is armed on the device channel.
    pub fn fault_plan_armed(&self) -> bool {
        self.channel.fault_plan_armed()
    }

    /// The trusted device (for usage/format statistics).
    pub fn device(&self) -> &ToleoDevice {
        self.channel.device()
    }

    /// Adversary access to untrusted memory. Anything reachable from here
    /// is outside the trust boundary by construction.
    pub fn adversary(&mut self) -> &mut UntrustedDram {
        &mut self.dram
    }

    /// Whether the kill switch has engaged.
    pub fn is_killed(&self) -> bool {
        self.killed.is_some()
    }

    /// Engages the kill switch from outside the engine's own detection
    /// paths — the platform-wide kill signal. A sharded deployment uses
    /// this to halt every peer engine the moment any one shard detects
    /// tampering; idempotent.
    pub fn force_kill(&mut self) {
        self.kill();
    }

    /// Engages the kill switch, freezing every observable counter at its
    /// current value. All subsequent operations fail without mutating the
    /// device, the caches, or untrusted memory.
    fn kill(&mut self) {
        if self.killed.is_none() {
            self.killed = Some(Box::new(KillSnapshot {
                stats: self.stats,
                stealth_cache: self.stealth_cache.stats(),
                mac_cache: self.mac_cache.stats(),
                device: self.channel.device().stats(),
                channel: self.channel.stats(),
            }));
        }
    }

    /// Escalation hook for device-channel failures: a host that cannot
    /// reach its freshness device within the retry budget can no longer
    /// verify freshness and must fail closed — engage the kill switch.
    /// Protocol errors ([`ToleoError::DeviceFull`],
    /// [`ToleoError::PageOutOfRange`]) are the device *answering*, so
    /// they pass through without killing.
    fn note_device_err(&mut self, e: ToleoError) -> ToleoError {
        if matches!(e, ToleoError::DeviceUnavailable { .. }) {
            self.kill();
        }
        e
    }

    fn check_alive(&self, address: u64) -> Result<()> {
        if self.killed.is_some() {
            return Err(ToleoError::IntegrityViolation { address });
        }
        Ok(())
    }

    /// Arena slot for `page`, materializing it and refreshing the
    /// last-page cache.
    #[inline]
    fn slot_id(&mut self, page: u64) -> SlotId {
        if let Some((p, id)) = self.last_slot {
            if p == page {
                return id;
            }
        }
        let id = self.dram.ensure_slot(page);
        self.last_slot = Some((page, id));
        id
    }

    /// Arena slot for `page` without materializing untouched pages (reads
    /// of never-written memory must not allocate).
    #[inline]
    fn slot_id_if_resident(&mut self, page: u64) -> Option<SlotId> {
        if let Some((p, id)) = self.last_slot {
            if p == page {
                return Some(id);
            }
        }
        let id = self.dram.slot_id(page)?;
        self.last_slot = Some((page, id));
        Some(id)
    }

    /// Writes a 64-byte block at `addr` (must be block-aligned).
    ///
    /// # Errors
    ///
    /// Propagates [`ToleoError::DeviceFull`] (retryable after the OS frees
    /// pages) and address-range errors; fails permanently after a kill.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 64-byte aligned.
    pub fn write(&mut self, addr: u64, plaintext: &Block) -> Result<()> {
        assert_eq!(addr % CACHE_BLOCK_BYTES as u64, 0, "unaligned block write");
        self.check_alive(addr)?;
        let page = layout::page_of(addr);
        let line = layout::line_of(addr);

        let resp: UpdateResponse = self
            .channel
            .update(page, line)
            .map_err(|e| self.note_device_err(e))?;
        // Version-cache access for stats; the UPDATE went through to the
        // device regardless (write-through), but a hit means the host knew
        // the current version and did not stall on the CXL round trip.
        self.stealth_cache.access(page, resp.format);
        self.stats.device_updates += 1;
        self.stats.writes += 1;

        // MAC block access (it must be fetched to update the block's slot).
        if !self.mac_cache.access(addr) {
            self.stats.mac_fetches += 1;
        }

        let stealth_bits = self.cfg.stealth_bits;
        let id = self.slot_id(page);
        let mut uv = self.dram.slot(id).uv();
        if let Some(notice) = resp.reset {
            // UV_UPDATE: bump the shared UV and re-encrypt every resident
            // block of the page under the fresh stealth base — one slab
            // walk over the page's slot, no per-line map probes. All old
            // and new XTS tweak bundles for the walk are encrypted up
            // front through the pipelined multi-block API, so the tweak
            // cost is amortized across the whole page instead of paid as
            // 2 serial block encryptions per line.
            let new_uv = uv.incremented();
            let new_fv = FullVersion::compose(new_uv, notice.new_base, stealth_bits);
            let page_base = page * PAGE_BYTES as u64;
            let mut failure: Option<(u64, UnsealFail)> = None;
            {
                let slot = self.dram.slot_mut(id);
                let mut resident = [0usize; LINES_PER_PAGE];
                let mut n = 0usize;
                for l in 0..LINES_PER_PAGE {
                    if l != line && slot.has_block(l) {
                        resident[n] = l;
                        n += 1;
                    }
                }
                let mut tweaks = [Tweak {
                    version: 0,
                    address: 0,
                }; LINES_PER_PAGE];
                for (slot_idx, &l) in resident[..n].iter().enumerate() {
                    tweaks[slot_idx] = Tweak {
                        version: FullVersion::compose(uv, notice.old_stealth[l], stealth_bits)
                            .raw(),
                        address: page_base + (l * CACHE_BLOCK_BYTES) as u64,
                    };
                }
                let mut old_t = [[0u8; 16]; LINES_PER_PAGE];
                self.xts.tweak_blocks(&tweaks[..n], &mut old_t[..n]);
                for tw in tweaks[..n].iter_mut() {
                    tw.version = new_fv.raw();
                }
                let mut new_t = [[0u8; 16]; LINES_PER_PAGE];
                self.xts.tweak_blocks(&tweaks[..n], &mut new_t[..n]);
                for (k, &l) in resident[..n].iter().enumerate() {
                    let lbase = page_base + (l * CACHE_BLOCK_BYTES) as u64;
                    let old_fv = FullVersion::compose(uv, notice.old_stealth[l], stealth_bits);
                    match unseal_line_with(&self.xts, &self.mac, slot, l, lbase, old_fv, old_t[k]) {
                        Ok(pt) => seal_line_with(
                            &self.xts, &self.mac, slot, l, lbase, new_fv, new_t[k], &pt,
                        ),
                        Err(fail) => {
                            failure = Some((lbase, fail));
                            break;
                        }
                    }
                }
                if failure.is_none() {
                    slot.set_uv(new_uv);
                }
            }
            if let Some((lbase, fail)) = failure {
                if fail == UnsealFail::BadTag {
                    self.kill();
                }
                return Err(ToleoError::IntegrityViolation { address: lbase });
            }
            self.stealth_cache.invalidate_page(page);
            self.stats.pages_reencrypted += 1;
            uv = new_uv;
        }

        let fv = FullVersion::compose(uv, resp.stealth, stealth_bits);
        seal_line(
            &self.xts,
            &self.mac,
            self.dram.slot_mut(id),
            line,
            addr,
            fv,
            plaintext,
        );
        Ok(())
    }

    /// Reads the 64-byte block at `addr` (must be block-aligned), verifying
    /// integrity and freshness.
    ///
    /// # Errors
    ///
    /// [`ToleoError::IntegrityViolation`] on any MAC mismatch — tampering
    /// or replay. This engages the kill switch: all subsequent operations
    /// fail.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 64-byte aligned.
    pub fn read(&mut self, addr: u64) -> Result<Block> {
        assert_eq!(addr % CACHE_BLOCK_BYTES as u64, 0, "unaligned block read");
        self.check_alive(addr)?;
        let page = layout::page_of(addr);
        let line = layout::line_of(addr);
        self.stats.reads += 1;

        let (stealth, fmt) = self
            .channel
            .read_versioned(page, line)
            .map_err(|e| self.note_device_err(e))?;
        if !self.stealth_cache.access(page, fmt) {
            self.stats.device_reads += 1;
        }
        if !self.mac_cache.access(addr) {
            self.stats.mac_fetches += 1;
        }

        let Some(id) = self.slot_id_if_resident(page) else {
            // Never-written page: treated as zero-filled (the OS scrubs
            // pages at allocation; no MAC exists yet).
            return Ok([0u8; CACHE_BLOCK_BYTES]);
        };
        let slot = self.dram.slot(id);
        let fv = FullVersion::compose(slot.uv(), stealth, self.cfg.stealth_bits);
        match unseal_line(&self.xts, &self.mac, slot, line, addr, fv) {
            Ok(pt) => Ok(pt),
            Err(fail) => {
                if fail == UnsealFail::BadTag {
                    self.kill();
                }
                Err(ToleoError::IntegrityViolation { address: addr })
            }
        }
    }

    /// OS page free / remap: downgrade the page's Toleo entry to flat and
    /// bump its UV *without* re-encrypting (§4.3 "Page free and remap").
    /// Old contents become unreadable — their MACs can no longer verify.
    ///
    /// # Errors
    ///
    /// Address-range errors only; freeing is always safe.
    pub fn free_page(&mut self, page: u64) -> Result<()> {
        self.check_alive(page * PAGE_BYTES as u64)?;
        self.channel
            .reset(page)
            .map_err(|e| self.note_device_err(e))?;
        // Bump the UV only when the page holds untrusted state: a
        // never-written page has no ciphertext to scramble, and
        // materializing a slot for it would waste a whole-page slab.
        //
        // `last_slot` coherence: `slot_id_if_resident` refreshes the
        // one-entry cache to this page, and the mapping it caches stays
        // valid forever — arena slots are never deallocated or moved
        // (`SlotId`s are stable for the arena's lifetime), and every
        // mutator of page state (`write`, `read_batch`, this function,
        // the adversary entry points) goes through `slot_id` /
        // `slot_id_if_resident` or touches slots by id, never by
        // re-binding a page to a different slot. The regression test
        // `free_write_read_interleaving_keeps_slot_cache_coherent` drives
        // exactly the interleavings that would expose a stale cache.
        if let Some(id) = self.slot_id_if_resident(page) {
            let slot = self.dram.slot_mut(id);
            slot.set_uv(slot.uv().incremented());
        }
        self.stealth_cache.invalidate_page(page);
        self.stats.pages_freed += 1;
        Ok(())
    }

    /// Reads a batch of block-aligned addresses, verifying integrity and
    /// freshness, observation-equivalent to calling [`read`](Self::read)
    /// per address but cheaper: consecutive same-page addresses form a
    /// *run* whose stealth-version fetch ([`ToleoDevice::read_run`]), arena
    /// slot lookup and XTS tweak encryptions (pipelined, up to eight in
    /// flight) are amortized across the run. Per-op cache probes and
    /// statistics are preserved exactly, so counters match the op-at-a-time
    /// loop on any untampered stream.
    ///
    /// # Errors
    ///
    /// [`BatchError`] carrying the eligible failing index and the error the
    /// per-op loop would have raised there. Ops past the failure are not
    /// attempted. One deliberate stats divergence on the *failure* path:
    /// a mid-run MAC failure freezes counters after the whole run's fetch
    /// and probe phase, so device READs, engine reads and stealth/MAC
    /// cache probe counts include every op of the offending run — those
    /// fetches physically happened before verification could fail (the
    /// per-op loop would have stopped at the failing op). Success-path
    /// statistics are exactly the loop's.
    ///
    /// # Panics
    ///
    /// Panics if any processed address is not 64-byte aligned.
    pub fn read_batch(&mut self, addrs: &[u64]) -> std::result::Result<Vec<Block>, BatchError> {
        let mut out = Vec::with_capacity(addrs.len());
        let mut lines: Vec<usize> = Vec::new();
        let mut versions: Vec<(crate::version::StealthVersion, crate::trip::TripFormat)> =
            Vec::new();
        let mut tweaks: Vec<Tweak> = Vec::new();
        let mut bundles: Vec<[u8; 16]> = Vec::new();
        let bits = self.cfg.stealth_bits;
        let mut i = 0usize;
        while i < addrs.len() {
            self.check_alive(addrs[i])
                .map_err(|error| BatchError { index: i, error })?;
            let page = layout::page_of(addrs[i]);
            let mut j = i;
            lines.clear();
            while j < addrs.len() && layout::page_of(addrs[j]) == page {
                assert_eq!(
                    addrs[j] % CACHE_BLOCK_BYTES as u64,
                    0,
                    "unaligned block read"
                );
                lines.push(layout::line_of(addrs[j]));
                j += 1;
            }
            if j == i + 1 {
                // Singleton run (page-hopping stream): the plain per-op
                // path is cheaper than run bookkeeping and by definition
                // observation-identical.
                match self.read(addrs[i]) {
                    Ok(block) => out.push(block),
                    Err(error) => return Err(BatchError { index: i, error }),
                }
                i = j;
                continue;
            }
            // One device probe for the whole run. On failure, account the
            // engine-level READ the per-op loop would have counted for the
            // (first) failing op before erroring out.
            if let Err(error) = self.channel.read_run(page, &lines, &mut versions) {
                self.stats.reads += 1;
                let error = self.note_device_err(error);
                return Err(BatchError { index: i, error });
            }
            self.stats.reads += (j - i) as u64;
            for (k, &(_, fmt)) in versions.iter().enumerate() {
                if !self.stealth_cache.access(page, fmt) {
                    self.stats.device_reads += 1;
                }
                if !self.mac_cache.access(addrs[i + k]) {
                    self.stats.mac_fetches += 1;
                }
            }
            let Some(id) = self.slot_id_if_resident(page) else {
                // Never-written page: zero-filled, no MACs to check.
                out.resize(out.len() + (j - i), [0u8; CACHE_BLOCK_BYTES]);
                i = j;
                continue;
            };
            let mut failure: Option<(usize, UnsealFail)> = None;
            {
                let slot = self.dram.slot(id);
                let uv = slot.uv();
                // Precompute the XTS tweak bundles of every resident line
                // in the run in one pipelined pass.
                tweaks.clear();
                for (k, &line) in lines.iter().enumerate() {
                    if slot.has_block(line) {
                        tweaks.push(Tweak {
                            version: FullVersion::compose(uv, versions[k].0, bits).raw(),
                            address: addrs[i + k],
                        });
                    }
                }
                bundles.resize(tweaks.len(), [0u8; 16]);
                self.xts.tweak_blocks(&tweaks, &mut bundles);
                let mut resident = 0usize;
                for (k, &line) in lines.iter().enumerate() {
                    if !slot.has_block(line) {
                        out.push([0u8; CACHE_BLOCK_BYTES]);
                        continue;
                    }
                    let fv = FullVersion::compose(uv, versions[k].0, bits);
                    match unseal_line_with(
                        &self.xts,
                        &self.mac,
                        slot,
                        line,
                        addrs[i + k],
                        fv,
                        bundles[resident],
                    ) {
                        Ok(pt) => {
                            out.push(pt);
                            resident += 1;
                        }
                        Err(fail) => {
                            failure = Some((i + k, fail));
                            break;
                        }
                    }
                }
            }
            if let Some((index, fail)) = failure {
                if fail == UnsealFail::BadTag {
                    self.kill();
                }
                return Err(BatchError {
                    index,
                    error: ToleoError::IntegrityViolation {
                        address: addrs[index],
                    },
                });
            }
            i = j;
        }
        Ok(out)
    }

    /// Recovery scrub over a quarantined (killed) engine: walk every
    /// resident block of untrusted memory, re-fetch its stealth version
    /// from the trusted device, and re-verify ciphertext + MAC + version.
    /// Blocks that still verify are decrypted and returned as intact
    /// plaintext; blocks that do not (the tampered block that tripped the
    /// quarantine, plus any collateral the adversary destroyed) are
    /// classified lost. The walk deliberately bypasses `check_alive` —
    /// scrubbing *is* the post-mortem — and reads the device directly
    /// rather than through the fault-injected channel: recovery is a
    /// maintenance path against the local trusted device, not victim
    /// traffic over the simulated link. Nothing is mutated; the frozen
    /// kill snapshot stays the forensic record.
    pub(crate) fn scrub_extract(&mut self) -> ScrubOutcome {
        let bits = self.cfg.stealth_bits;
        let pages: Vec<(u64, SlotId)> = self.dram.pages().collect();
        let mut out = ScrubOutcome {
            pages_scrubbed: 0,
            blocks_scrubbed: 0,
            intact: Vec::new(),
            lost: Vec::new(),
        };
        for (page, id) in pages {
            out.pages_scrubbed += 1;
            let page_base = page * PAGE_BYTES as u64;
            for line in 0..LINES_PER_PAGE {
                if !self.dram.slot(id).has_block(line) {
                    continue;
                }
                out.blocks_scrubbed += 1;
                let addr = page_base + (line * CACHE_BLOCK_BYTES) as u64;
                let stealth = match self.channel.device_mut().read(page, line) {
                    Ok(s) => s,
                    Err(_) => {
                        out.lost.push(addr);
                        continue;
                    }
                };
                let slot = self.dram.slot(id);
                let fv = FullVersion::compose(slot.uv(), stealth, bits);
                match unseal_line(&self.xts, &self.mac, slot, line, addr, fv) {
                    Ok(pt) => out.intact.push((addr, pt)),
                    Err(_) => out.lost.push(addr),
                }
            }
        }
        out
    }

    /// Writes a batch of `(address, plaintext)` pairs, observation-
    /// equivalent to calling [`write`](Self::write) per pair and stopping
    /// at the first error. Every write must still issue its own device
    /// UPDATE (each advances a distinct stealth version), so the per-run
    /// amortization here is the last-page slot cache plus the batched
    /// crypto inside each op (four-wide XTS sectors, pipelined reset
    /// walks).
    ///
    /// # Errors
    ///
    /// [`BatchError`] carrying the failing index and the underlying error;
    /// earlier ops have fully landed, later ops were not attempted.
    ///
    /// # Panics
    ///
    /// Panics if any processed address is not 64-byte aligned.
    pub fn write_batch(&mut self, ops: &[(u64, Block)]) -> std::result::Result<(), BatchError> {
        for (index, (addr, plaintext)) in ops.iter().enumerate() {
            self.write(*addr, plaintext)
                .map_err(|error| BatchError { index, error })?;
        }
        Ok(())
    }
}

/// What a recovery scrub recovered from one killed engine: every resident
/// block re-verified against the trusted device, split into intact
/// plaintext (re-encryptable under a fresh key) and lost addresses.
pub(crate) struct ScrubOutcome {
    /// Pages walked.
    pub pages_scrubbed: u64,
    /// Resident blocks re-verified.
    pub blocks_scrubbed: u64,
    /// `(address, plaintext)` of every block that still verified.
    pub intact: Vec<(u64, Block)>,
    /// Addresses whose ciphertext/MAC/version no longer verified.
    pub lost: Vec<u64>,
}

/// Why a block failed to unseal. `MissingTag` (data present, MAC absent)
/// is reported without engaging the kill switch, matching the seed
/// behavior; `BadTag` is tampering/replay and must kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnsealFail {
    /// Ciphertext is resident but carries no MAC tag.
    MissingTag,
    /// The recomputed MAC does not match the stored tag.
    BadTag,
}

/// Encrypts `plaintext` under the `(full version, address)` tweak, MACs
/// the ciphertext, and stores both in the page slot.
fn seal_line(
    xts: &AesXts,
    mac: &MacKey,
    slot: &mut PageSlot,
    line: usize,
    base: u64,
    fv: FullVersion,
    plaintext: &Block,
) {
    let tweak0 = xts.tweak_block(Tweak {
        version: fv.raw(),
        address: base,
    });
    seal_line_with(xts, mac, slot, line, base, fv, tweak0, plaintext);
}

/// [`seal_line`] with the encrypted XTS tweak bundle already in hand —
/// the batched paths (reset walk, `read_batch`) precompute bundles for a
/// whole run of lines through the pipelined multi-block API.
#[allow(clippy::too_many_arguments)]
fn seal_line_with(
    xts: &AesXts,
    mac: &MacKey,
    slot: &mut PageSlot,
    line: usize,
    base: u64,
    fv: FullVersion,
    tweak0: [u8; 16],
    plaintext: &Block,
) {
    let mut ct = *plaintext;
    xts.encrypt_with_tweak(tweak0, &mut ct);
    let tag = mac.mac(fv.raw(), base, &ct);
    slot.set_block(line, ct);
    slot.set_tag(line, tag);
}

/// Verifies and decrypts the block at `line`; absent blocks read as zeros.
fn unseal_line(
    xts: &AesXts,
    mac: &MacKey,
    slot: &PageSlot,
    line: usize,
    base: u64,
    fv: FullVersion,
) -> std::result::Result<Block, UnsealFail> {
    if slot.block(line).is_none() {
        return Ok([0u8; CACHE_BLOCK_BYTES]);
    }
    let tweak0 = xts.tweak_block(Tweak {
        version: fv.raw(),
        address: base,
    });
    unseal_line_with(xts, mac, slot, line, base, fv, tweak0)
}

/// [`unseal_line`] with the encrypted XTS tweak bundle already in hand.
/// MAC verification still gates decryption: the bundle is only used after
/// the stored tag checks out.
fn unseal_line_with(
    xts: &AesXts,
    mac: &MacKey,
    slot: &PageSlot,
    line: usize,
    base: u64,
    fv: FullVersion,
    tweak0: [u8; 16],
) -> std::result::Result<Block, UnsealFail> {
    let ct = match slot.block(line) {
        Some(c) => *c,
        None => return Ok([0u8; CACHE_BLOCK_BYTES]),
    };
    let stored_tag = slot.tag(line).ok_or(UnsealFail::MissingTag)?;
    let expect = mac.mac(fv.raw(), base, &ct);
    if !expect.verify(&stored_tag) {
        return Err(UnsealFail::BadTag);
    }
    let mut pt = ct;
    xts.decrypt_with_tweak(tweak0, &mut pt);
    Ok(pt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> ProtectionEngine {
        ProtectionEngine::try_new(ToleoConfig::small(), [0x5cu8; 48]).unwrap()
    }

    #[test]
    fn write_read_roundtrip() {
        let mut e = engine();
        let data = [0xabu8; 64];
        e.write(0x4_0000, &data).unwrap();
        assert_eq!(e.read(0x4_0000).unwrap(), data);
    }

    #[test]
    fn unwritten_reads_as_zero() {
        let mut e = engine();
        assert_eq!(e.read(0x8_0000).unwrap(), [0u8; 64]);
    }

    #[test]
    fn overwrite_returns_latest() {
        let mut e = engine();
        e.write(0, &[1u8; 64]).unwrap();
        e.write(0, &[2u8; 64]).unwrap();
        assert_eq!(e.read(0).unwrap(), [2u8; 64]);
    }

    #[test]
    fn ciphertext_differs_from_plaintext_and_across_versions() {
        let mut e = engine();
        e.write(0, &[9u8; 64]).unwrap();
        let ct1 = *e.adversary().ciphertext(0).unwrap();
        assert_ne!(ct1, [9u8; 64], "data must be encrypted at rest");
        e.write(0, &[9u8; 64]).unwrap();
        let ct2 = *e.adversary().ciphertext(0).unwrap();
        assert_ne!(
            ct1, ct2,
            "same plaintext re-encrypts differently (fresh version)"
        );
    }

    #[test]
    fn try_new_reports_invalid_config() {
        let mut cfg = ToleoConfig::small();
        cfg.stealth_bits = 0; // fails validate()
        match ProtectionEngine::try_new(cfg, [0u8; 48]) {
            Err(ToleoError::InvalidConfig { detail }) => {
                assert!(detail.contains("stealth_bits"), "detail: {detail}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "ProtectionEngine construction failed")]
    fn new_panics_on_invalid_config() {
        let mut cfg = ToleoConfig::small();
        cfg.stealth_bits = 0;
        #[allow(deprecated)]
        let _ = ProtectionEngine::new(cfg, [0u8; 48]);
    }

    /// Regression test for the de-panicked construction path: every
    /// non-deprecated constructor — engine and sharded — must report a
    /// bad configuration as `InvalidConfig`, never panic. Each mutation
    /// here fails `ToleoConfig::validate` a different way.
    #[test]
    fn no_constructor_panics_on_bad_config() {
        let bad_configs: Vec<ToleoConfig> = vec![
            {
                let mut c = ToleoConfig::small();
                c.stealth_bits = 0;
                c
            },
            {
                let mut c = ToleoConfig::small();
                c.stealth_bits = 64;
                c
            },
            {
                let mut c = ToleoConfig::small();
                c.uv_bits = 64; // stealth_bits + uv_bits > 64
                c
            },
            {
                let mut c = ToleoConfig::small();
                c.device_capacity_bytes = 0; // smaller than the flat array
                c
            },
            {
                let mut c = ToleoConfig::small();
                c.reset_log2 = c.stealth_bits + 8; // rarer than wraparound
                c
            },
            {
                let mut c = ToleoConfig::small();
                c.max_uneven_offset = 0; // must fit a non-zero 7-bit field
                c
            },
        ];
        for (i, cfg) in bad_configs.into_iter().enumerate() {
            assert!(
                matches!(
                    ProtectionEngine::try_new(cfg.clone(), [1u8; 48]),
                    Err(ToleoError::InvalidConfig { .. })
                ),
                "config {i} must be rejected as InvalidConfig"
            );
            assert!(
                matches!(
                    crate::sharded::ShardedEngine::new(cfg, 4, [1u8; 48]),
                    Err(ToleoError::InvalidConfig { .. })
                ),
                "sharded config {i} must be rejected as InvalidConfig"
            );
        }
    }

    #[test]
    fn tampered_ciphertext_detected_and_kills() {
        let mut e = engine();
        e.write(0x40, &[7u8; 64]).unwrap();
        e.adversary().corrupt_data(0x40, 0, 0x01);
        assert!(matches!(
            e.read(0x40),
            Err(ToleoError::IntegrityViolation { .. })
        ));
        assert!(e.is_killed());
        // Kill switch: even untampered addresses now refuse service.
        assert!(e.read(0x80).is_err());
        assert!(e.write(0x80, &[0u8; 64]).is_err());
    }

    #[test]
    fn replay_attack_detected() {
        let mut e = engine();
        e.write(0x1000, &[1u8; 64]).unwrap();
        let stale = e.adversary().capture(0x1000);
        e.write(0x1000, &[2u8; 64]).unwrap();
        e.adversary().replay(&stale);
        // The stealth version advanced, so the stale MAC cannot verify.
        assert!(matches!(
            e.read(0x1000),
            Err(ToleoError::IntegrityViolation { .. })
        ));
        assert!(e.is_killed());
    }

    #[test]
    fn forged_mac_detected() {
        let mut e = engine();
        e.write(0, &[5u8; 64]).unwrap();
        e.adversary()
            .forge_mac(0, toleo_crypto::mac::Tag56::from_raw(0xdead));
        assert!(e.read(0).is_err());
    }

    #[test]
    fn freed_page_contents_unreadable() {
        let mut e = engine();
        e.write(0x2000, &[3u8; 64]).unwrap();
        e.free_page(layout::page_of(0x2000)).unwrap();
        // UV bumped + stealth re-randomized without re-encryption: the old
        // MAC can no longer verify, so a malicious OS cannot read the page.
        assert!(matches!(
            e.read(0x2000),
            Err(ToleoError::IntegrityViolation { .. })
        ));
    }

    #[test]
    fn survives_stealth_resets() {
        let mut cfg = ToleoConfig::small();
        cfg.reset_log2 = 4; // force frequent resets
        let mut e = ProtectionEngine::try_new(cfg, [1u8; 48]).unwrap();
        // Hot-line writes so every update advances the leading version.
        for i in 0..500u64 {
            let val = [(i % 251) as u8; 64];
            e.write(0x3000, &val).unwrap();
            assert_eq!(e.read(0x3000).unwrap(), val, "iteration {i}");
        }
        assert!(e.stats().pages_reencrypted > 0, "test must exercise resets");
    }

    #[test]
    fn reset_reencryption_preserves_other_lines() {
        let mut cfg = ToleoConfig::small();
        cfg.reset_log2 = 4;
        let mut e = ProtectionEngine::try_new(cfg, [2u8; 48]).unwrap();
        // Populate several lines of page 1.
        for l in 0..8u64 {
            e.write(0x1000 + l * 64, &[l as u8 + 1; 64]).unwrap();
        }
        // Hammer line 9 until resets have certainly fired.
        for _ in 0..300 {
            e.write(0x1000 + 9 * 64, &[0xee; 64]).unwrap();
        }
        assert!(e.stats().pages_reencrypted > 0);
        for l in 0..8u64 {
            assert_eq!(
                e.read(0x1000 + l * 64).unwrap(),
                [l as u8 + 1; 64],
                "line {l}"
            );
        }
    }

    #[test]
    fn free_of_untouched_page_allocates_no_dram() {
        let mut e = engine();
        e.free_page(3).unwrap();
        assert!(
            e.dram.slot_id(3).is_none(),
            "freeing a never-written page must not materialize a slab"
        );
        assert_eq!(e.stats().pages_freed, 1);
        // The page is still usable afterwards.
        e.write(3 * 4096, &[1u8; 64]).unwrap();
        assert_eq!(e.read(3 * 4096).unwrap(), [1u8; 64]);
    }

    #[test]
    fn write_after_free_starts_cleanly() {
        let mut e = engine();
        e.write(0x5000, &[1u8; 64]).unwrap();
        e.free_page(layout::page_of(0x5000)).unwrap();
        e.write(0x5000, &[9u8; 64]).unwrap();
        assert_eq!(e.read(0x5000).unwrap(), [9u8; 64]);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_write_panics() {
        engine().write(3, &[0u8; 64]).unwrap();
    }

    #[test]
    fn stats_accumulate() {
        let mut e = engine();
        e.write(0, &[1u8; 64]).unwrap();
        e.read(0).unwrap();
        e.read(0).unwrap();
        let s = e.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 2);
        assert_eq!(s.device_updates, 1);
        // Second read hits the stealth cache.
        assert!(e.stealth_cache_stats().hits >= 1);
    }

    #[test]
    fn killed_engine_is_fully_inert() {
        let mut e = engine();
        for line in 0..4u64 {
            e.write(0x1000 + line * 64, &[line as u8; 64]).unwrap();
        }
        e.read(0x1000).unwrap();
        e.adversary().corrupt_data(0x1040, 5, 0xff);
        assert!(e.read(0x1040).is_err());
        assert!(e.is_killed());

        // Snapshot every observable the instant after the kill...
        let stats = e.stats();
        let stealth = e.stealth_cache_stats();
        let mac = e.mac_cache_stats();
        let device = e.device_stats();
        let resident = e.adversary().resident_blocks();

        // ...then hammer the dead engine with every operation kind.
        for i in 0..32u64 {
            assert!(e.read(i * 64).is_err(), "read {i} must fail after kill");
            assert!(e.write(i * 64, &[1u8; 64]).is_err());
            assert!(e.free_page(i).is_err());
        }

        // Nothing moved: stats, cache probes, device traffic and untrusted
        // memory are all frozen at the kill point.
        assert_eq!(e.stats(), stats);
        assert_eq!(e.stealth_cache_stats(), stealth);
        assert_eq!(e.mac_cache_stats(), mac);
        assert_eq!(e.device_stats(), device);
        assert_eq!(e.adversary().resident_blocks(), resident);
    }

    #[test]
    fn force_kill_is_sticky_and_freezes_stats() {
        let mut e = engine();
        e.write(0x40, &[1u8; 64]).unwrap();
        let stats = e.stats();
        e.force_kill();
        assert!(e.is_killed());
        assert!(e.read(0x40).is_err());
        assert!(e.write(0x40, &[2u8; 64]).is_err());
        assert_eq!(e.stats(), stats, "force_kill must freeze counters");
        e.force_kill(); // idempotent
        assert_eq!(e.stats(), stats);
    }

    /// Regression test for the `last_slot` one-entry cache: interleave
    /// free/write/read on the same page (and on competing pages that
    /// repopulate the cache in between) so every operation runs both with
    /// the cache hot on the target page and hot on a different page. A
    /// stale or wrongly-refreshed cache would read another page's slot —
    /// surfacing as wrong data or a spurious MAC failure.
    #[test]
    fn free_write_read_interleaving_keeps_slot_cache_coherent() {
        let mut e = engine();
        let page_a = 3u64;
        let page_b = 9u64;
        let addr_a = page_a * PAGE_BYTES as u64;
        let addr_b = page_b * PAGE_BYTES as u64;
        for round in 0..20u8 {
            // Hot on A, then free A through the cached slot. (Reading a
            // freed page before rewriting would be a freshness violation
            // by design, so the next access must be the write.)
            e.write(addr_a, &[round; 64]).unwrap();
            assert_eq!(e.read(addr_a).unwrap(), [round; 64]);
            e.free_page(page_a).unwrap();
            // Repopulate the cache with B, then come back to A cold.
            e.write(addr_b, &[0xB0 ^ round; 64]).unwrap();
            e.write(addr_a, &[round ^ 0xFF; 64]).unwrap();
            assert_eq!(e.read(addr_a).unwrap(), [round ^ 0xFF; 64], "round {round}");
            assert_eq!(e.read(addr_b).unwrap(), [0xB0 ^ round; 64]);
            // Free B while the cache points at B, then immediately write
            // through the still-cached slot.
            e.free_page(page_b).unwrap();
            e.write(addr_b, &[round; 64]).unwrap();
            assert_eq!(e.read(addr_b).unwrap(), [round; 64]);
            assert!(!e.is_killed(), "round {round} must not kill");
        }
        assert_eq!(e.stats().pages_freed, 40);
    }

    #[test]
    fn batch_read_write_roundtrip_and_zeros() {
        let mut e = engine();
        let ops: Vec<(u64, Block)> = (0..200u64)
            .map(|i| ((i % 50) * 64 + (i / 50) * PAGE_BYTES as u64, [i as u8; 64]))
            .collect();
        e.write_batch(&ops).unwrap();
        let addrs: Vec<u64> = ops.iter().map(|(a, _)| *a).collect();
        let blocks = e.read_batch(&addrs).unwrap();
        for (k, block) in blocks.iter().enumerate() {
            assert_eq!(*block, [k as u8; 64], "op {k}");
        }
        // Unwritten pages read as zeros through the batch path too.
        let far = vec![100 * PAGE_BYTES as u64, 100 * PAGE_BYTES as u64 + 64];
        assert_eq!(e.read_batch(&far).unwrap(), vec![[0u8; 64]; 2]);
    }

    #[test]
    fn batch_read_reports_failing_index_and_kills_on_tamper() {
        let mut e = engine();
        for i in 0..8u64 {
            e.write(i * 64, &[i as u8 + 1; 64]).unwrap();
        }
        e.adversary().corrupt_data(5 * 64, 9, 0x80);
        let addrs: Vec<u64> = (0..8u64).map(|i| i * 64).collect();
        let err = e.read_batch(&addrs).unwrap_err();
        assert_eq!(err.index, 5);
        assert!(matches!(
            err.error,
            ToleoError::IntegrityViolation { address } if address == 5 * 64
        ));
        assert!(e.is_killed());
        // Dead engine: batches fail at index 0 without touching state.
        let err = e.read_batch(&addrs).unwrap_err();
        assert_eq!(err.index, 0);
        assert_eq!(e.write_batch(&[(0, [0u8; 64])]).unwrap_err().index, 0);
    }

    #[test]
    fn uv_advances_on_reset_never_repeats_full_version() {
        let mut cfg = ToleoConfig::small();
        cfg.reset_log2 = 3;
        let mut e = ProtectionEngine::try_new(cfg.clone(), [3u8; 48]).unwrap();
        let mut seen = std::collections::HashSet::new();
        for i in 0..400u64 {
            e.write(0x7000, &[i as u8; 64]).unwrap();
            let page = layout::page_of(0x7000);
            let line = layout::line_of(0x7000);
            let stealth = e.channel.device_mut().read(page, line).unwrap();
            let uv = e.dram.uv(page);
            let fv = FullVersion::compose(uv, stealth, cfg.stealth_bits);
            assert!(seen.insert(fv.raw()), "full version repeated at write {i}");
        }
    }
}
