//! The host-side memory protection engine.
//!
//! Sits between the LLC and the memory system, like client SGX's memory
//! encryption engine, but sources freshness from the Toleo device instead
//! of a Merkle tree:
//!
//! * **write** (dirty LLC eviction): UPDATE the block's stealth version in
//!   Toleo, encrypt the plaintext with AES-XTS under the
//!   `(full version, address)` tweak, compute the 56-bit MAC over
//!   `(version, address, ciphertext)`, store ciphertext + MAC (+ shared UV)
//!   in untrusted conventional memory.
//! * **read** (LLC miss): fetch ciphertext, MAC and UV from untrusted
//!   memory and the stealth version from Toleo (or the on-chip stealth
//!   cache), recompute the MAC, and *only if it verifies* decrypt and
//!   return plaintext. A mismatch means tampering or replay: the kill
//!   switch engages and the engine refuses all further service.
//!
//! The [`UntrustedDram`] it writes to is fully exposed to the adversary —
//! integration tests replay old (ciphertext, MAC, UV) triples through it
//! to demonstrate detection.

use crate::arena::{PageSlot, SlotId};
use crate::cache::{CacheStats, MacCache, StealthCache};
use crate::config::{ToleoConfig, CACHE_BLOCK_BYTES, LINES_PER_PAGE, PAGE_BYTES};
use crate::device::{DeviceStats, ToleoDevice, UpdateResponse};
use crate::error::{Result, ToleoError};
use crate::layout;
use crate::version::FullVersion;
use toleo_crypto::mac::MacKey;
use toleo_crypto::modes::{AesXts, Tweak};

pub use crate::arena::{Block, ReplayCapsule, UntrustedDram};

/// Engine event counters (feeds Figs. 7–9 via the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Blocks written (dirty evictions processed).
    pub writes: u64,
    /// Blocks read (LLC miss fills).
    pub reads: u64,
    /// UPDATE requests that reached the Toleo device.
    pub device_updates: u64,
    /// READ requests that reached the Toleo device (stealth-cache misses).
    pub device_reads: u64,
    /// MAC-block fetches from conventional DRAM (MAC-cache misses).
    pub mac_fetches: u64,
    /// Stealth resets processed (pages re-encrypted).
    pub pages_reencrypted: u64,
    /// Pages freed/downgraded at OS request.
    pub pages_freed: u64,
}

impl EngineStats {
    /// Accumulates another engine's counters into this one (used by
    /// [`ShardedEngine`](crate::sharded::ShardedEngine) to aggregate
    /// per-shard statistics).
    pub fn merge(&mut self, other: &EngineStats) {
        self.writes += other.writes;
        self.reads += other.reads;
        self.device_updates += other.device_updates;
        self.device_reads += other.device_reads;
        self.mac_fetches += other.mac_fetches;
        self.pages_reencrypted += other.pages_reencrypted;
        self.pages_freed += other.pages_freed;
    }
}

/// Snapshot of every observable counter at the instant the kill switch
/// engaged. After a kill the engine is fully inert: operations fail
/// without touching the device, the caches, or untrusted memory, and the
/// stats getters report exactly this frozen state (the detecting access
/// itself is included — it physically happened).
#[derive(Debug, Clone, Copy)]
struct KillSnapshot {
    stats: EngineStats,
    stealth_cache: CacheStats,
    mac_cache: CacheStats,
    device: DeviceStats,
}

/// The memory protection engine in the Toleo configuration (CIF:
/// confidentiality + integrity + freshness).
///
/// # Examples
///
/// ```
/// use toleo_core::engine::ProtectionEngine;
/// use toleo_core::config::ToleoConfig;
///
/// let mut engine = ProtectionEngine::new(ToleoConfig::small(), [7u8; 48]);
/// engine.write(0x1000, &[42u8; 64]).unwrap();
/// assert_eq!(engine.read(0x1000).unwrap(), [42u8; 64]);
/// ```
#[derive(Debug)]
pub struct ProtectionEngine {
    cfg: ToleoConfig,
    xts: AesXts,
    mac: MacKey,
    device: ToleoDevice,
    dram: UntrustedDram,
    /// Last-page fast path: the most recently touched page and its arena
    /// slot, so consecutive accesses to one page skip the index probe.
    last_slot: Option<(u64, SlotId)>,
    stealth_cache: StealthCache,
    mac_cache: MacCache,
    stats: EngineStats,
    /// `Some` once the kill switch has engaged; carries the frozen
    /// statistics every getter serves from then on.
    killed: Option<Box<KillSnapshot>>,
}

impl ProtectionEngine {
    /// Creates an engine. `key_material` supplies the XTS data key, XTS
    /// tweak key and MAC key (16 bytes each).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`ToleoConfig::validate`]).
    pub fn new(cfg: ToleoConfig, key_material: [u8; 48]) -> Self {
        Self::try_new(cfg, key_material)
            .unwrap_or_else(|e| panic!("ProtectionEngine construction failed: {e}"))
    }

    /// Creates an engine, reporting a bad configuration as an error
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// [`ToleoError::InvalidConfig`] if `cfg` fails
    /// [`ToleoConfig::validate`].
    pub fn try_new(cfg: ToleoConfig, key_material: [u8; 48]) -> Result<Self> {
        let data_key: [u8; 16] = key_material[..16].try_into().expect("16 bytes");
        let tweak_key: [u8; 16] = key_material[16..32].try_into().expect("16 bytes");
        let mac_key: [u8; 16] = key_material[32..].try_into().expect("16 bytes");
        Ok(ProtectionEngine {
            device: ToleoDevice::new(cfg.clone())?,
            cfg,
            xts: AesXts::new(&data_key, &tweak_key),
            mac: MacKey::new(mac_key),
            dram: UntrustedDram::default(),
            last_slot: None,
            stealth_cache: StealthCache::paper_default(),
            mac_cache: MacCache::paper_default(),
            stats: EngineStats::default(),
            killed: None,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ToleoConfig {
        &self.cfg
    }

    /// Engine event counters. After a kill this is frozen at the state
    /// observed when the kill switch engaged.
    pub fn stats(&self) -> EngineStats {
        match &self.killed {
            Some(snap) => snap.stats,
            None => self.stats,
        }
    }

    /// Stealth-cache statistics (Fig. 7); frozen after a kill.
    pub fn stealth_cache_stats(&self) -> CacheStats {
        match &self.killed {
            Some(snap) => snap.stealth_cache,
            None => self.stealth_cache.stats(),
        }
    }

    /// MAC-cache statistics (Fig. 7); frozen after a kill.
    pub fn mac_cache_stats(&self) -> CacheStats {
        match &self.killed {
            Some(snap) => snap.mac_cache,
            None => self.mac_cache.stats(),
        }
    }

    /// Device event counters; frozen after a kill (a dead platform stops
    /// issuing requests, so its last observed device state is final).
    pub fn device_stats(&self) -> DeviceStats {
        match &self.killed {
            Some(snap) => snap.device,
            None => self.device.stats(),
        }
    }

    /// The trusted device (for usage/format statistics).
    pub fn device(&self) -> &ToleoDevice {
        &self.device
    }

    /// Adversary access to untrusted memory. Anything reachable from here
    /// is outside the trust boundary by construction.
    pub fn adversary(&mut self) -> &mut UntrustedDram {
        &mut self.dram
    }

    /// Whether the kill switch has engaged.
    pub fn is_killed(&self) -> bool {
        self.killed.is_some()
    }

    /// Engages the kill switch from outside the engine's own detection
    /// paths — the platform-wide kill signal. A sharded deployment uses
    /// this to halt every peer engine the moment any one shard detects
    /// tampering; idempotent.
    pub fn force_kill(&mut self) {
        self.kill();
    }

    /// Engages the kill switch, freezing every observable counter at its
    /// current value. All subsequent operations fail without mutating the
    /// device, the caches, or untrusted memory.
    fn kill(&mut self) {
        if self.killed.is_none() {
            self.killed = Some(Box::new(KillSnapshot {
                stats: self.stats,
                stealth_cache: self.stealth_cache.stats(),
                mac_cache: self.mac_cache.stats(),
                device: self.device.stats(),
            }));
        }
    }

    fn check_alive(&self, address: u64) -> Result<()> {
        if self.killed.is_some() {
            return Err(ToleoError::IntegrityViolation { address });
        }
        Ok(())
    }

    /// Arena slot for `page`, materializing it and refreshing the
    /// last-page cache.
    #[inline]
    fn slot_id(&mut self, page: u64) -> SlotId {
        if let Some((p, id)) = self.last_slot {
            if p == page {
                return id;
            }
        }
        let id = self.dram.ensure_slot(page);
        self.last_slot = Some((page, id));
        id
    }

    /// Arena slot for `page` without materializing untouched pages (reads
    /// of never-written memory must not allocate).
    #[inline]
    fn slot_id_if_resident(&mut self, page: u64) -> Option<SlotId> {
        if let Some((p, id)) = self.last_slot {
            if p == page {
                return Some(id);
            }
        }
        let id = self.dram.slot_id(page)?;
        self.last_slot = Some((page, id));
        Some(id)
    }

    /// Writes a 64-byte block at `addr` (must be block-aligned).
    ///
    /// # Errors
    ///
    /// Propagates [`ToleoError::DeviceFull`] (retryable after the OS frees
    /// pages) and address-range errors; fails permanently after a kill.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 64-byte aligned.
    pub fn write(&mut self, addr: u64, plaintext: &Block) -> Result<()> {
        assert_eq!(addr % CACHE_BLOCK_BYTES as u64, 0, "unaligned block write");
        self.check_alive(addr)?;
        let page = layout::page_of(addr);
        let line = layout::line_of(addr);

        let resp: UpdateResponse = self.device.update(page, line)?;
        // Version-cache access for stats; the UPDATE went through to the
        // device regardless (write-through), but a hit means the host knew
        // the current version and did not stall on the CXL round trip.
        self.stealth_cache.access(page, resp.format);
        self.stats.device_updates += 1;
        self.stats.writes += 1;

        // MAC block access (it must be fetched to update the block's slot).
        if !self.mac_cache.access(addr) {
            self.stats.mac_fetches += 1;
        }

        let stealth_bits = self.cfg.stealth_bits;
        let id = self.slot_id(page);
        let mut uv = self.dram.slot(id).uv();
        if let Some(notice) = resp.reset {
            // UV_UPDATE: bump the shared UV and re-encrypt every resident
            // block of the page under the fresh stealth base — one slab
            // walk over the page's slot, no per-line map probes.
            let new_uv = uv.incremented();
            let new_fv = FullVersion::compose(new_uv, notice.new_base, stealth_bits);
            let page_base = page * PAGE_BYTES as u64;
            let mut failure: Option<(u64, UnsealFail)> = None;
            {
                let slot = self.dram.slot_mut(id);
                for l in 0..LINES_PER_PAGE {
                    if l == line || !slot.has_block(l) {
                        continue;
                    }
                    let lbase = page_base + (l * CACHE_BLOCK_BYTES) as u64;
                    let old_fv = FullVersion::compose(uv, notice.old_stealth[l], stealth_bits);
                    match unseal_line(&self.xts, &self.mac, slot, l, lbase, old_fv) {
                        Ok(pt) => seal_line(&self.xts, &self.mac, slot, l, lbase, new_fv, &pt),
                        Err(fail) => {
                            failure = Some((lbase, fail));
                            break;
                        }
                    }
                }
                if failure.is_none() {
                    slot.set_uv(new_uv);
                }
            }
            if let Some((lbase, fail)) = failure {
                if fail == UnsealFail::BadTag {
                    self.kill();
                }
                return Err(ToleoError::IntegrityViolation { address: lbase });
            }
            self.stealth_cache.invalidate_page(page);
            self.stats.pages_reencrypted += 1;
            uv = new_uv;
        }

        let fv = FullVersion::compose(uv, resp.stealth, stealth_bits);
        seal_line(
            &self.xts,
            &self.mac,
            self.dram.slot_mut(id),
            line,
            addr,
            fv,
            plaintext,
        );
        Ok(())
    }

    /// Reads the 64-byte block at `addr` (must be block-aligned), verifying
    /// integrity and freshness.
    ///
    /// # Errors
    ///
    /// [`ToleoError::IntegrityViolation`] on any MAC mismatch — tampering
    /// or replay. This engages the kill switch: all subsequent operations
    /// fail.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 64-byte aligned.
    pub fn read(&mut self, addr: u64) -> Result<Block> {
        assert_eq!(addr % CACHE_BLOCK_BYTES as u64, 0, "unaligned block read");
        self.check_alive(addr)?;
        let page = layout::page_of(addr);
        let line = layout::line_of(addr);
        self.stats.reads += 1;

        let (stealth, fmt) = self.device.read_versioned(page, line)?;
        if !self.stealth_cache.access(page, fmt) {
            self.stats.device_reads += 1;
        }
        if !self.mac_cache.access(addr) {
            self.stats.mac_fetches += 1;
        }

        let Some(id) = self.slot_id_if_resident(page) else {
            // Never-written page: treated as zero-filled (the OS scrubs
            // pages at allocation; no MAC exists yet).
            return Ok([0u8; CACHE_BLOCK_BYTES]);
        };
        let slot = self.dram.slot(id);
        let fv = FullVersion::compose(slot.uv(), stealth, self.cfg.stealth_bits);
        match unseal_line(&self.xts, &self.mac, slot, line, addr, fv) {
            Ok(pt) => Ok(pt),
            Err(fail) => {
                if fail == UnsealFail::BadTag {
                    self.kill();
                }
                Err(ToleoError::IntegrityViolation { address: addr })
            }
        }
    }

    /// OS page free / remap: downgrade the page's Toleo entry to flat and
    /// bump its UV *without* re-encrypting (§4.3 "Page free and remap").
    /// Old contents become unreadable — their MACs can no longer verify.
    ///
    /// # Errors
    ///
    /// Address-range errors only; freeing is always safe.
    pub fn free_page(&mut self, page: u64) -> Result<()> {
        self.check_alive(page * PAGE_BYTES as u64)?;
        self.device.reset(page)?;
        // Bump the UV only when the page holds untrusted state: a
        // never-written page has no ciphertext to scramble, and
        // materializing a slot for it would waste a whole-page slab.
        if let Some(id) = self.slot_id_if_resident(page) {
            let slot = self.dram.slot_mut(id);
            slot.set_uv(slot.uv().incremented());
        }
        self.stealth_cache.invalidate_page(page);
        self.stats.pages_freed += 1;
        Ok(())
    }
}

/// Why a block failed to unseal. `MissingTag` (data present, MAC absent)
/// is reported without engaging the kill switch, matching the seed
/// behavior; `BadTag` is tampering/replay and must kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnsealFail {
    /// Ciphertext is resident but carries no MAC tag.
    MissingTag,
    /// The recomputed MAC does not match the stored tag.
    BadTag,
}

/// Encrypts `plaintext` under the `(full version, address)` tweak, MACs
/// the ciphertext, and stores both in the page slot.
fn seal_line(
    xts: &AesXts,
    mac: &MacKey,
    slot: &mut PageSlot,
    line: usize,
    base: u64,
    fv: FullVersion,
    plaintext: &Block,
) {
    let mut ct = *plaintext;
    xts.encrypt(
        Tweak {
            version: fv.raw(),
            address: base,
        },
        &mut ct,
    );
    let tag = mac.mac(fv.raw(), base, &ct);
    slot.set_block(line, ct);
    slot.set_tag(line, tag);
}

/// Verifies and decrypts the block at `line`; absent blocks read as zeros.
fn unseal_line(
    xts: &AesXts,
    mac: &MacKey,
    slot: &PageSlot,
    line: usize,
    base: u64,
    fv: FullVersion,
) -> std::result::Result<Block, UnsealFail> {
    let ct = match slot.block(line) {
        Some(c) => *c,
        None => return Ok([0u8; CACHE_BLOCK_BYTES]),
    };
    let stored_tag = slot.tag(line).ok_or(UnsealFail::MissingTag)?;
    let expect = mac.mac(fv.raw(), base, &ct);
    if !expect.verify(&stored_tag) {
        return Err(UnsealFail::BadTag);
    }
    let mut pt = ct;
    xts.decrypt(
        Tweak {
            version: fv.raw(),
            address: base,
        },
        &mut pt,
    );
    Ok(pt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> ProtectionEngine {
        ProtectionEngine::new(ToleoConfig::small(), [0x5cu8; 48])
    }

    #[test]
    fn write_read_roundtrip() {
        let mut e = engine();
        let data = [0xabu8; 64];
        e.write(0x4_0000, &data).unwrap();
        assert_eq!(e.read(0x4_0000).unwrap(), data);
    }

    #[test]
    fn unwritten_reads_as_zero() {
        let mut e = engine();
        assert_eq!(e.read(0x8_0000).unwrap(), [0u8; 64]);
    }

    #[test]
    fn overwrite_returns_latest() {
        let mut e = engine();
        e.write(0, &[1u8; 64]).unwrap();
        e.write(0, &[2u8; 64]).unwrap();
        assert_eq!(e.read(0).unwrap(), [2u8; 64]);
    }

    #[test]
    fn ciphertext_differs_from_plaintext_and_across_versions() {
        let mut e = engine();
        e.write(0, &[9u8; 64]).unwrap();
        let ct1 = *e.adversary().ciphertext(0).unwrap();
        assert_ne!(ct1, [9u8; 64], "data must be encrypted at rest");
        e.write(0, &[9u8; 64]).unwrap();
        let ct2 = *e.adversary().ciphertext(0).unwrap();
        assert_ne!(
            ct1, ct2,
            "same plaintext re-encrypts differently (fresh version)"
        );
    }

    #[test]
    fn try_new_reports_invalid_config() {
        let mut cfg = ToleoConfig::small();
        cfg.stealth_bits = 0; // fails validate()
        match ProtectionEngine::try_new(cfg, [0u8; 48]) {
            Err(ToleoError::InvalidConfig { detail }) => {
                assert!(detail.contains("stealth_bits"), "detail: {detail}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "ProtectionEngine construction failed")]
    fn new_panics_on_invalid_config() {
        let mut cfg = ToleoConfig::small();
        cfg.stealth_bits = 0;
        let _ = ProtectionEngine::new(cfg, [0u8; 48]);
    }

    #[test]
    fn tampered_ciphertext_detected_and_kills() {
        let mut e = engine();
        e.write(0x40, &[7u8; 64]).unwrap();
        e.adversary().corrupt_data(0x40, 0, 0x01);
        assert!(matches!(
            e.read(0x40),
            Err(ToleoError::IntegrityViolation { .. })
        ));
        assert!(e.is_killed());
        // Kill switch: even untampered addresses now refuse service.
        assert!(e.read(0x80).is_err());
        assert!(e.write(0x80, &[0u8; 64]).is_err());
    }

    #[test]
    fn replay_attack_detected() {
        let mut e = engine();
        e.write(0x1000, &[1u8; 64]).unwrap();
        let stale = e.adversary().capture(0x1000);
        e.write(0x1000, &[2u8; 64]).unwrap();
        e.adversary().replay(&stale);
        // The stealth version advanced, so the stale MAC cannot verify.
        assert!(matches!(
            e.read(0x1000),
            Err(ToleoError::IntegrityViolation { .. })
        ));
        assert!(e.is_killed());
    }

    #[test]
    fn forged_mac_detected() {
        let mut e = engine();
        e.write(0, &[5u8; 64]).unwrap();
        e.adversary()
            .forge_mac(0, toleo_crypto::mac::Tag56::from_raw(0xdead));
        assert!(e.read(0).is_err());
    }

    #[test]
    fn freed_page_contents_unreadable() {
        let mut e = engine();
        e.write(0x2000, &[3u8; 64]).unwrap();
        e.free_page(layout::page_of(0x2000)).unwrap();
        // UV bumped + stealth re-randomized without re-encryption: the old
        // MAC can no longer verify, so a malicious OS cannot read the page.
        assert!(matches!(
            e.read(0x2000),
            Err(ToleoError::IntegrityViolation { .. })
        ));
    }

    #[test]
    fn survives_stealth_resets() {
        let mut cfg = ToleoConfig::small();
        cfg.reset_log2 = 4; // force frequent resets
        let mut e = ProtectionEngine::new(cfg, [1u8; 48]);
        // Hot-line writes so every update advances the leading version.
        for i in 0..500u64 {
            let val = [(i % 251) as u8; 64];
            e.write(0x3000, &val).unwrap();
            assert_eq!(e.read(0x3000).unwrap(), val, "iteration {i}");
        }
        assert!(e.stats().pages_reencrypted > 0, "test must exercise resets");
    }

    #[test]
    fn reset_reencryption_preserves_other_lines() {
        let mut cfg = ToleoConfig::small();
        cfg.reset_log2 = 4;
        let mut e = ProtectionEngine::new(cfg, [2u8; 48]);
        // Populate several lines of page 1.
        for l in 0..8u64 {
            e.write(0x1000 + l * 64, &[l as u8 + 1; 64]).unwrap();
        }
        // Hammer line 9 until resets have certainly fired.
        for _ in 0..300 {
            e.write(0x1000 + 9 * 64, &[0xee; 64]).unwrap();
        }
        assert!(e.stats().pages_reencrypted > 0);
        for l in 0..8u64 {
            assert_eq!(
                e.read(0x1000 + l * 64).unwrap(),
                [l as u8 + 1; 64],
                "line {l}"
            );
        }
    }

    #[test]
    fn free_of_untouched_page_allocates_no_dram() {
        let mut e = engine();
        e.free_page(3).unwrap();
        assert!(
            e.dram.slot_id(3).is_none(),
            "freeing a never-written page must not materialize a slab"
        );
        assert_eq!(e.stats().pages_freed, 1);
        // The page is still usable afterwards.
        e.write(3 * 4096, &[1u8; 64]).unwrap();
        assert_eq!(e.read(3 * 4096).unwrap(), [1u8; 64]);
    }

    #[test]
    fn write_after_free_starts_cleanly() {
        let mut e = engine();
        e.write(0x5000, &[1u8; 64]).unwrap();
        e.free_page(layout::page_of(0x5000)).unwrap();
        e.write(0x5000, &[9u8; 64]).unwrap();
        assert_eq!(e.read(0x5000).unwrap(), [9u8; 64]);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_write_panics() {
        engine().write(3, &[0u8; 64]).unwrap();
    }

    #[test]
    fn stats_accumulate() {
        let mut e = engine();
        e.write(0, &[1u8; 64]).unwrap();
        e.read(0).unwrap();
        e.read(0).unwrap();
        let s = e.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 2);
        assert_eq!(s.device_updates, 1);
        // Second read hits the stealth cache.
        assert!(e.stealth_cache_stats().hits >= 1);
    }

    #[test]
    fn killed_engine_is_fully_inert() {
        let mut e = engine();
        for line in 0..4u64 {
            e.write(0x1000 + line * 64, &[line as u8; 64]).unwrap();
        }
        e.read(0x1000).unwrap();
        e.adversary().corrupt_data(0x1040, 5, 0xff);
        assert!(e.read(0x1040).is_err());
        assert!(e.is_killed());

        // Snapshot every observable the instant after the kill...
        let stats = e.stats();
        let stealth = e.stealth_cache_stats();
        let mac = e.mac_cache_stats();
        let device = e.device_stats();
        let resident = e.adversary().resident_blocks();

        // ...then hammer the dead engine with every operation kind.
        for i in 0..32u64 {
            assert!(e.read(i * 64).is_err(), "read {i} must fail after kill");
            assert!(e.write(i * 64, &[1u8; 64]).is_err());
            assert!(e.free_page(i).is_err());
        }

        // Nothing moved: stats, cache probes, device traffic and untrusted
        // memory are all frozen at the kill point.
        assert_eq!(e.stats(), stats);
        assert_eq!(e.stealth_cache_stats(), stealth);
        assert_eq!(e.mac_cache_stats(), mac);
        assert_eq!(e.device_stats(), device);
        assert_eq!(e.adversary().resident_blocks(), resident);
    }

    #[test]
    fn force_kill_is_sticky_and_freezes_stats() {
        let mut e = engine();
        e.write(0x40, &[1u8; 64]).unwrap();
        let stats = e.stats();
        e.force_kill();
        assert!(e.is_killed());
        assert!(e.read(0x40).is_err());
        assert!(e.write(0x40, &[2u8; 64]).is_err());
        assert_eq!(e.stats(), stats, "force_kill must freeze counters");
        e.force_kill(); // idempotent
        assert_eq!(e.stats(), stats);
    }

    #[test]
    fn uv_advances_on_reset_never_repeats_full_version() {
        let mut cfg = ToleoConfig::small();
        cfg.reset_log2 = 3;
        let mut e = ProtectionEngine::new(cfg.clone(), [3u8; 48]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..400u64 {
            e.write(0x7000, &[i as u8; 64]).unwrap();
            let page = layout::page_of(0x7000);
            let line = layout::line_of(0x7000);
            let stealth = e.device.read(page, line).unwrap();
            let uv = e.dram.uv(page);
            let fv = FullVersion::compose(uv, stealth, cfg.stealth_bits);
            assert!(seen.insert(fv.raw()), "full version repeated at write {i}");
        }
    }
}
