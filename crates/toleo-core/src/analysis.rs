//! Security-margin analysis for partial stealth versions (§6.2).
//!
//! The paper's argument: split 2^56 continuous updates to one address into
//! 2^30 stealth intervals of 2^26 updates each. With reset probability
//! p = 2^-20 per update, the chance a given interval sees *no* reset is
//! `(1 - 2^-20)^(2^26) ≈ 1.6e-26`; the chance that *any* of the 2^30
//! intervals sees none is `≈ 1.7e-19`. If every interval resets at least
//! once, no run of 2^27 consecutive updates can exhaust the stealth space,
//! so the full version never repeats.
//!
//! This module provides the closed-form computation (for arbitrary
//! parameters, used by the Table/§6.2 bench) and a Monte-Carlo harness on
//! scaled-down parameters (used by property tests) to validate the model.

use toleo_crypto::range::DRange;

/// Parameters of the §6.2 analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StealthAnalysis {
    /// Stealth version width in bits (paper: 27).
    pub stealth_bits: u32,
    /// Reset probability exponent (paper: 20 → p = 2^-20).
    pub reset_log2: u32,
    /// log2 of the total updates considered (paper: 56).
    pub total_updates_log2: u32,
}

impl Default for StealthAnalysis {
    fn default() -> Self {
        StealthAnalysis {
            stealth_bits: 27,
            reset_log2: 20,
            total_updates_log2: 56,
        }
    }
}

impl StealthAnalysis {
    /// log2 of the per-interval update count (half the stealth space, as
    /// in the paper's derivation: intervals of 2^26 for a 2^27 space).
    pub fn interval_log2(&self) -> u32 {
        self.stealth_bits - 1
    }

    /// Probability that one stealth interval of `2^interval_log2` updates
    /// sees no reset: `(1 - 2^-reset_log2)^(2^interval_log2)`.
    pub fn p_no_reset_in_interval(&self) -> f64 {
        // ln(1-p) * n, computed in log space for numeric stability.
        let p = (2.0f64).powi(-(self.reset_log2 as i32));
        let n = (2.0f64).powi(self.interval_log2() as i32);
        (n * (1.0 - p).ln()).exp()
    }

    /// Probability that *any* interval in the whole update budget sees no
    /// reset — the paper's bound on stealth-space exhaustion
    /// (`1.7e-19` at the design point).
    pub fn p_exhaustion(&self) -> f64 {
        let intervals = (2.0f64).powi((self.total_updates_log2 - self.interval_log2()) as i32);
        let q = self.p_no_reset_in_interval();
        // 1 - (1-q)^intervals, computed as -expm1(n*ln1p(-q)) so that
        // results far below f64 epsilon (the answer is ~1e-19) survive.
        -(intervals * (-q).ln_1p()).exp_m1()
    }

    /// Probability that a single blind replay attempt guesses the stealth
    /// version (`2^-27` at the design point; one attempt only, then the
    /// kill switch fires).
    pub fn p_replay_success(&self) -> f64 {
        (2.0f64).powi(-(self.stealth_bits as i32))
    }
}

/// Result of one Monte-Carlo run of the reset process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MonteCarlo {
    /// Updates simulated.
    pub updates: u64,
    /// Resets observed.
    pub resets: u64,
    /// Longest run of updates between resets.
    pub longest_run: u64,
    /// Whether the stealth space (2^stealth_bits) was ever exhausted —
    /// i.e. a run reached the full space size without a reset, which would
    /// let the full version repeat.
    pub exhausted: bool,
}

/// Simulates `updates` continuous updates to one address with reset
/// probability `2^-reset_log2` and a stealth space of `2^stealth_bits`,
/// reporting whether any run exhausted the space.
///
/// # Examples
///
/// ```
/// use toleo_core::analysis::monte_carlo_resets;
///
/// // Tiny space, frequent resets: never exhausts.
/// let mc = monte_carlo_resets(10, 4, 100_000, 1);
/// assert!(!mc.exhausted);
/// ```
pub fn monte_carlo_resets(
    stealth_bits: u32,
    reset_log2: u32,
    updates: u64,
    seed: u64,
) -> MonteCarlo {
    let mut rng = DRange::from_seed(seed);
    let space = 1u64 << stealth_bits;
    let mut run = 0u64;
    let mut out = MonteCarlo {
        updates,
        ..MonteCarlo::default()
    };
    for _ in 0..updates {
        run += 1;
        if run >= space {
            out.exhausted = true;
        }
        if rng.one_in_pow2(reset_log2) {
            out.resets += 1;
            out.longest_run = out.longest_run.max(run);
            run = 0;
        }
    }
    out.longest_run = out.longest_run.max(run);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_point_bounds() {
        let a = StealthAnalysis::default();
        // Per-interval no-reset probability: (1-2^-20)^(2^26) = e^-64
        // ≈ 1.6e-28. (The paper's §6.2 prints 1.6e-26, but its final bound
        // of 1.7e-19 is only consistent with the e^-64 value: 2^30 * 1.6e-28
        // ≈ 1.7e-19, so we pin the mathematically consistent number.)
        let q = a.p_no_reset_in_interval();
        assert!(q > 1.0e-29 && q < 1.0e-27, "q = {q}");
        // Paper: overall exhaustion probability ~1.7e-19.
        let p = a.p_exhaustion();
        assert!(p > 1.0e-20 && p < 1.0e-18, "p = {p}");
        // Replay success 2^-27.
        assert!((a.p_replay_success() - 7.45e-9).abs() < 1e-9);
    }

    #[test]
    fn weaker_reset_increases_exhaustion_risk() {
        let strong = StealthAnalysis {
            reset_log2: 18,
            ..Default::default()
        };
        let weak = StealthAnalysis {
            reset_log2: 24,
            ..Default::default()
        };
        assert!(weak.p_exhaustion() > strong.p_exhaustion());
    }

    #[test]
    fn wider_stealth_reduces_replay_odds() {
        let narrow = StealthAnalysis {
            stealth_bits: 20,
            ..Default::default()
        };
        let wide = StealthAnalysis {
            stealth_bits: 30,
            ..Default::default()
        };
        assert!(wide.p_replay_success() < narrow.p_replay_success());
    }

    #[test]
    fn monte_carlo_reset_rate_matches_probability() {
        let mc = monte_carlo_resets(27, 8, 500_000, 42);
        let rate = mc.resets as f64 / mc.updates as f64;
        let expect = 1.0 / 256.0;
        assert!(
            (rate - expect).abs() < expect * 0.2,
            "rate {rate} vs {expect}"
        );
    }

    #[test]
    fn monte_carlo_detects_exhaustion_when_resets_too_rare() {
        // Space of 2^4 = 16, resets ~1/2^12: runs will blow through 16.
        let mc = monte_carlo_resets(4, 12, 100_000, 7);
        assert!(mc.exhausted);
        assert!(mc.longest_run >= 16);
    }

    #[test]
    fn monte_carlo_no_exhaustion_at_scaled_design_ratio() {
        // Scale the paper's ratio (space 2^27, reset 2^-20 → space/reset
        // headroom 2^7) down to space 2^12, reset 2^-5.
        let mc = monte_carlo_resets(12, 5, 2_000_000, 3);
        assert!(!mc.exhausted, "longest run {}", mc.longest_run);
    }
}
