//! Page-granular storage arena for untrusted conventional memory.
//!
//! The seed implementation kept three `HashMap<u64, …>` keyed by block
//! address (ciphertext, MACs) and page (UVs), so every engine operation
//! paid 3–4 hash probes and the stealth-reset re-encryption loop hashed 64
//! block addresses per page. This module replaces them with one slot per
//! *page*: a single probe of the flat open-addressed
//! [`PageIndex`] (or none, via the engine's
//! last-page cache) yields a contiguous [`PageSlot`] holding all 64
//! ciphertext blocks, their MAC tags and the page's shared UV, so per-line
//! work is plain array indexing and the re-encryption loop walks a slab.
//!
//! Slots live in a `Vec` and are addressed by stable [`SlotId`]s — pages
//! are never deallocated (freeing a page scrambles its *versions*, not the
//! simulated DRAM), so ids handed to the engine's last-page cache stay
//! valid for the arena's lifetime.
//!
//! Everything here is adversary-accessible by construction: the public
//! methods are tampering entry points for security testing.

// audit: allow-file(indexing, slot ids are handed out by this arena and index its own slots Vec)

use crate::config::{CACHE_BLOCK_BYTES, LINES_PER_PAGE};
use crate::layout;
use crate::pagetable::PageIndex;
use crate::version::UpperVersion;
use toleo_crypto::mac::Tag56;

/// A 64-byte cache block of plaintext or ciphertext.
pub type Block = [u8; CACHE_BLOCK_BYTES];

/// Stable handle to a page's slot in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotId(u32);

/// All untrusted state of one 4 KB page: 64 ciphertext blocks, 64 MAC
/// tags, and the shared upper version stored in the MAC blocks' slack
/// space (Fig. 4).
#[derive(Debug, Clone)]
pub struct PageSlot {
    blocks: Box<[Block; LINES_PER_PAGE]>,
    tags: [Tag56; LINES_PER_PAGE],
    /// Bit `l` set <=> ciphertext block `l` is resident.
    present: u64,
    /// Bit `l` set <=> a MAC tag is stored for block `l`.
    tag_present: u64,
    uv: UpperVersion,
}

impl PageSlot {
    fn new() -> Self {
        PageSlot {
            blocks: Box::new([[0u8; CACHE_BLOCK_BYTES]; LINES_PER_PAGE]),
            tags: [Tag56::from_raw(0); LINES_PER_PAGE],
            present: 0,
            tag_present: 0,
            uv: UpperVersion::default(),
        }
    }

    /// Whether ciphertext is resident for `line`.
    #[inline]
    pub fn has_block(&self, line: usize) -> bool {
        self.present & (1u64 << line) != 0
    }

    /// The resident ciphertext block, if any.
    #[inline]
    pub fn block(&self, line: usize) -> Option<&Block> {
        if self.has_block(line) {
            Some(&self.blocks[line])
        } else {
            None
        }
    }

    /// Stores ciphertext for `line`.
    #[inline]
    pub fn set_block(&mut self, line: usize, block: Block) {
        self.blocks[line] = block;
        self.present |= 1u64 << line;
    }

    /// Drops the ciphertext for `line` (models an unwritten block).
    #[inline]
    pub fn clear_block(&mut self, line: usize) {
        self.present &= !(1u64 << line);
    }

    /// The stored MAC tag for `line`, if any.
    #[inline]
    pub fn tag(&self, line: usize) -> Option<Tag56> {
        if self.tag_present & (1u64 << line) != 0 {
            Some(self.tags[line])
        } else {
            None
        }
    }

    /// Stores the MAC tag for `line`.
    #[inline]
    pub fn set_tag(&mut self, line: usize, tag: Tag56) {
        self.tags[line] = tag;
        self.tag_present |= 1u64 << line;
    }

    /// Drops the MAC tag for `line`.
    #[inline]
    pub fn clear_tag(&mut self, line: usize) {
        self.tag_present &= !(1u64 << line);
    }

    /// The page's shared upper version.
    #[inline]
    pub fn uv(&self) -> UpperVersion {
        self.uv
    }

    /// Overwrites the page's shared upper version.
    #[inline]
    pub fn set_uv(&mut self, uv: UpperVersion) {
        self.uv = uv;
    }

    /// Number of resident ciphertext blocks.
    pub fn resident(&self) -> usize {
        self.present.count_ones() as usize
    }

    /// XORs `mask` into byte `offset` of the resident ciphertext at `line`
    /// (no-op when the block is absent).
    ///
    /// # Panics
    ///
    /// Panics if `offset >= 64`: a tampering test asking for an
    /// out-of-range byte is a bug in the test, not an attack to remap.
    pub fn corrupt(&mut self, line: usize, offset: usize, mask: u8) {
        assert!(
            offset < CACHE_BLOCK_BYTES,
            "corrupt offset {offset} outside the 64-byte block"
        );
        if self.has_block(line) {
            self.blocks[line][offset] ^= mask;
        }
    }
}

/// Untrusted conventional memory: one [`PageSlot`] per touched page.
///
/// Everything in here is adversary-accessible: the struct deliberately
/// exposes tampering entry points for security testing.
#[derive(Debug, Default, Clone)]
pub struct UntrustedDram {
    /// Flat open-addressed `page -> slot` map: one multiply-shift hash and
    /// a short linear probe on the hot path instead of a `HashMap` lookup.
    index: PageIndex,
    slots: Vec<PageSlot>,
}

/// Everything an adversary can capture about one cache block at an instant:
/// the ciphertext, its MAC, and the co-located UV. Replaying a stale
/// capsule is the attack freshness must defeat.
#[derive(Debug, Clone)]
pub struct ReplayCapsule {
    address: u64,
    data: Option<Block>,
    tag: Option<Tag56>,
    uv: UpperVersion,
}

impl UntrustedDram {
    /// The slot id for `page`, if the page has ever been touched.
    #[inline]
    pub fn slot_id(&self, page: u64) -> Option<SlotId> {
        self.index.get(page).map(SlotId)
    }

    /// The slot id for `page`, materializing an empty slot on first touch.
    pub fn ensure_slot(&mut self, page: u64) -> SlotId {
        if let Some(id) = self.index.get(page) {
            return SlotId(id);
        }
        // audit: allow(panic, 2^32 page slots exhaust memory long before this overflows; a wrapped id would alias two pages)
        let id = u32::try_from(self.slots.len()).expect("arena slot count fits u32");
        self.slots.push(PageSlot::new());
        self.index.insert(page, id);
        SlotId(id)
    }

    /// Direct slot access. Ids are stable for the arena's lifetime.
    #[inline]
    pub fn slot(&self, id: SlotId) -> &PageSlot {
        &self.slots[id.0 as usize]
    }

    /// Direct mutable slot access.
    #[inline]
    pub fn slot_mut(&mut self, id: SlotId) -> &mut PageSlot {
        &mut self.slots[id.0 as usize]
    }

    /// Captures the current (ciphertext, MAC, UV) for the block at `addr`.
    pub fn capture(&self, addr: u64) -> ReplayCapsule {
        let base = layout::block_base(addr);
        let line = layout::line_of(base);
        match self.slot_id(layout::page_of(base)).map(|id| self.slot(id)) {
            Some(slot) => ReplayCapsule {
                address: base,
                data: slot.block(line).copied(),
                tag: slot.tag(line),
                uv: slot.uv(),
            },
            None => ReplayCapsule {
                address: base,
                data: None,
                tag: None,
                uv: UpperVersion::default(),
            },
        }
    }

    /// Replays a previously captured capsule — the classic replay attack.
    pub fn replay(&mut self, capsule: &ReplayCapsule) {
        let base = capsule.address;
        let line = layout::line_of(base);
        let id = self.ensure_slot(layout::page_of(base));
        let slot = self.slot_mut(id);
        match capsule.data {
            Some(d) => slot.set_block(line, d),
            None => slot.clear_block(line),
        }
        match capsule.tag {
            Some(t) => slot.set_tag(line, t),
            None => slot.clear_tag(line),
        }
        slot.set_uv(capsule.uv);
    }

    /// Flips bits in byte `offset` of the stored ciphertext at `addr`
    /// (integrity attack at an arbitrary position within the block).
    ///
    /// # Panics
    ///
    /// Panics if `offset >= 64`.
    pub fn corrupt_data(&mut self, addr: u64, offset: usize, xor_mask: u8) {
        let base = layout::block_base(addr);
        if let Some(id) = self.slot_id(layout::page_of(base)) {
            self.slot_mut(id)
                .corrupt(layout::line_of(base), offset, xor_mask);
        }
    }

    /// Overwrites the stored MAC at `addr` (forgery attempt).
    pub fn forge_mac(&mut self, addr: u64, tag: Tag56) {
        let base = layout::block_base(addr);
        let id = self.ensure_slot(layout::page_of(base));
        self.slot_mut(id).set_tag(layout::line_of(base), tag);
    }

    /// Raw ciphertext view (for traffic-analysis experiments).
    pub fn ciphertext(&self, addr: u64) -> Option<&Block> {
        let base = layout::block_base(addr);
        self.slot_id(layout::page_of(base))
            .and_then(|id| self.slot(id).block(layout::line_of(base)))
    }

    /// The page's shared UV (0 if never written).
    pub fn uv(&self, page: u64) -> UpperVersion {
        self.slot_id(page)
            .map(|id| self.slot(id).uv())
            .unwrap_or_default()
    }

    /// Number of resident data blocks.
    pub fn resident_blocks(&self) -> usize {
        self.slots.iter().map(PageSlot::resident).sum()
    }

    /// Iterates over every touched page and its slot id in unspecified
    /// order — the walk a recovery scrub uses to re-verify a quarantined
    /// shard's entire untrusted state.
    pub fn pages(&self) -> impl Iterator<Item = (u64, SlotId)> + '_ {
        self.index.iter().map(|(page, id)| (page, SlotId(id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    /// The seed implementation's storage layout, as a model: three maps
    /// keyed by block address / page.
    #[derive(Default)]
    struct ModelDram {
        data: HashMap<u64, Block>,
        macs: HashMap<u64, Tag56>,
        uvs: HashMap<u64, UpperVersion>,
    }

    impl ModelDram {
        fn store(&mut self, addr: u64, block: Block, tag: Tag56) {
            self.data.insert(addr, block);
            self.macs.insert(addr, tag);
        }
        fn uv(&self, page: u64) -> UpperVersion {
            self.uvs.get(&page).copied().unwrap_or_default()
        }
    }

    fn store(dram: &mut UntrustedDram, addr: u64, block: Block, tag: Tag56) {
        let id = dram.ensure_slot(layout::page_of(addr));
        let slot = dram.slot_mut(id);
        slot.set_block(layout::line_of(addr), block);
        slot.set_tag(layout::line_of(addr), tag);
    }

    /// Drive the arena and the seed's map-per-kind model with the same
    /// random operation stream; every observable must agree.
    #[test]
    fn arena_matches_model_maps_under_random_ops() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xA2E4A);
        let mut arena = UntrustedDram::default();
        let mut model = ModelDram::default();
        let addrs: Vec<u64> = (0..256).map(|i| i * 64).collect();
        for step in 0..20_000 {
            let addr = addrs[rng.gen_range(0..addrs.len())];
            let page = layout::page_of(addr);
            match rng.gen_range(0..5) {
                0 => {
                    let block = [rng.gen::<u8>(); 64];
                    let tag = Tag56::from_raw(rng.gen::<u64>() & ((1 << 56) - 1));
                    store(&mut arena, addr, block, tag);
                    model.store(addr, block, tag);
                }
                1 => {
                    let offset = rng.gen_range(0..64);
                    let mask = rng.gen::<u8>();
                    arena.corrupt_data(addr, offset, mask);
                    if let Some(b) = model.data.get_mut(&addr) {
                        b[offset] ^= mask;
                    }
                }
                2 => {
                    let tag = Tag56::from_raw(rng.gen::<u64>() & ((1 << 56) - 1));
                    arena.forge_mac(addr, tag);
                    model.macs.insert(addr, tag);
                }
                3 => {
                    let uv = UpperVersion::new(rng.gen_range(0..1 << 20));
                    let id = arena.ensure_slot(page);
                    arena.slot_mut(id).set_uv(uv);
                    model.uvs.insert(page, uv);
                }
                _ => {
                    // Capture here, mutate, replay: both worlds must agree
                    // after the round trip.
                    let capsule = arena.capture(addr);
                    let model_snapshot = (
                        model.data.get(&addr).copied(),
                        model.macs.get(&addr).copied(),
                        model.uv(page),
                    );
                    let block = [rng.gen::<u8>(); 64];
                    let tag = Tag56::from_raw(step as u64);
                    store(&mut arena, addr, block, tag);
                    model.store(addr, block, tag);
                    arena.replay(&capsule);
                    match model_snapshot.0 {
                        Some(d) => {
                            model.data.insert(addr, d);
                        }
                        None => {
                            model.data.remove(&addr);
                        }
                    }
                    match model_snapshot.1 {
                        Some(t) => {
                            model.macs.insert(addr, t);
                        }
                        None => {
                            model.macs.remove(&addr);
                        }
                    }
                    model.uvs.insert(page, model_snapshot.2);
                }
            }
            // Observables agree at every step.
            assert_eq!(
                arena.ciphertext(addr),
                model.data.get(&addr),
                "step {step} data at {addr:#x}"
            );
            let id = arena.slot_id(page);
            assert_eq!(
                id.and_then(|id| arena.slot(id).tag(layout::line_of(addr))),
                model.macs.get(&addr).copied(),
                "step {step} tag at {addr:#x}"
            );
            assert_eq!(arena.uv(page), model.uv(page), "step {step} uv of {page}");
        }
        assert_eq!(arena.resident_blocks(), model.data.len());
    }

    #[test]
    fn slot_ids_are_stable_across_later_inserts() {
        let mut arena = UntrustedDram::default();
        let first = arena.ensure_slot(7);
        for page in 100..200 {
            arena.ensure_slot(page);
        }
        assert_eq!(arena.ensure_slot(7), first);
        arena.slot_mut(first).set_block(3, [9u8; 64]);
        assert_eq!(arena.ciphertext(7 * 4096 + 3 * 64), Some(&[9u8; 64]));
    }

    #[test]
    fn capture_of_untouched_address_replays_to_empty() {
        let mut arena = UntrustedDram::default();
        let capsule = arena.capture(0x4000);
        store(&mut arena, 0x4000, [1u8; 64], Tag56::from_raw(5));
        arena.replay(&capsule);
        assert_eq!(arena.ciphertext(0x4000), None);
        assert_eq!(arena.resident_blocks(), 0);
    }

    #[test]
    fn corrupt_data_targets_the_requested_byte() {
        let mut arena = UntrustedDram::default();
        store(&mut arena, 0, [0u8; 64], Tag56::from_raw(1));
        arena.corrupt_data(0, 17, 0xff);
        let ct = arena.ciphertext(0).unwrap();
        assert_eq!(ct[17], 0xff);
        assert!(ct.iter().enumerate().all(|(i, &b)| i == 17 || b == 0));
    }

    #[test]
    fn pages_walk_visits_every_touched_page_once() {
        let mut arena = UntrustedDram::default();
        for page in [3u64, 9, 1000, 7] {
            let id = arena.ensure_slot(page);
            arena.slot_mut(id).set_block(1, [page as u8; 64]);
        }
        let mut seen: Vec<u64> = arena.pages().map(|(page, _)| page).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![3, 7, 9, 1000]);
        for (page, id) in arena.pages() {
            assert_eq!(arena.slot(id).block(1), Some(&[page as u8; 64]));
        }
    }

    #[test]
    #[should_panic(expected = "outside the 64-byte block")]
    fn corrupt_data_rejects_out_of_range_offset() {
        let mut arena = UntrustedDram::default();
        store(&mut arena, 0, [0u8; 64], Tag56::from_raw(1));
        arena.corrupt_data(0, 64, 0xff);
    }
}
