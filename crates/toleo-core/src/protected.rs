//! The scheme-agnostic protected-memory interface — one trait, every
//! scheme, one evaluation arena.
//!
//! The paper's core claim is *comparative*: Toleo's flat stealth-version
//! store keeps scaling where the Merkle-tree freshness schemes (client
//! SGX, VAULT, Morphable Counters) collapse. Grounding that claim needs
//! every scheme behind the same harness: the same workloads, the same
//! batch entry points, and the same adversary corpus. [`ProtectedMemory`]
//! is that interface. `toleo-core` implements it for
//! [`ProtectionEngine`] and
//! [`ShardedEngine`]; `toleo-baselines`
//! implements it for its SGX-style, VAULT and Morphable-Counters engines.
//!
//! The trait is deliberately object-safe: the throughput harness sweeps
//! `Box<dyn ProtectedMemory>` values through identical replay loops, and
//! the security suite drives one tamper/replay corpus through every
//! scheme.
//!
//! # Example
//!
//! ```
//! use toleo_core::config::ToleoConfig;
//! use toleo_core::engine::ProtectionEngine;
//! use toleo_core::protected::ProtectedMemory;
//!
//! fn tamper_is_detected(mem: &mut dyn ProtectedMemory) {
//!     mem.write(0x40, &[7u8; 64]).unwrap();
//!     assert!(mem.corrupt(0x40, 13, 0x80), "block must be resident");
//!     assert!(mem.read(0x40).is_err(), "{} missed the tamper", mem.scheme());
//! }
//!
//! let mut engine = ProtectionEngine::try_new(ToleoConfig::small(), [1u8; 48]).unwrap();
//! tamper_is_detected(&mut engine);
//! ```

use std::any::Any;

use crate::arena::Block;
use crate::engine::ProtectionEngine;
use crate::error::{BatchError, ToleoError};
use crate::sharded::ShardedEngine;

/// Scheme-agnostic failure of a protected-memory operation.
///
/// Each implementation maps its native error type onto these variants so
/// the shared harness and security suite can assert on outcomes without
/// knowing which scheme produced them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoryError {
    /// An integrity or freshness check failed — tampering or replay. For
    /// schemes with a kill switch the engine is dead from here on.
    IntegrityViolation {
        /// Physical address of the offending block.
        address: u64,
    },
    /// The address lies outside the scheme's protected range (Toleo's
    /// protected pages, SGX's EPC, a tree's covered blocks).
    OutOfRange {
        /// The offending address.
        address: u64,
    },
    /// A retryable resource failure (e.g. the Toleo device is full until
    /// the OS frees pages). Not a security event.
    Resource {
        /// Human-readable description from the scheme.
        detail: String,
    },
}

impl std::fmt::Display for MemoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryError::IntegrityViolation { address } => {
                write!(f, "integrity/freshness violation at {address:#x}")
            }
            MemoryError::OutOfRange { address } => {
                write!(f, "address {address:#x} outside the protected range")
            }
            MemoryError::Resource { detail } => write!(f, "resource failure: {detail}"),
        }
    }
}

impl std::error::Error for MemoryError {}

impl From<ToleoError> for MemoryError {
    fn from(e: ToleoError) -> Self {
        match e {
            ToleoError::IntegrityViolation { address } => {
                MemoryError::IntegrityViolation { address }
            }
            // A quarantined shard is a detected-tamper refusal: to the
            // scheme-agnostic harness it is the integrity failure itself.
            ToleoError::ShardQuarantined { address, .. } => {
                MemoryError::IntegrityViolation { address }
            }
            ToleoError::PageOutOfRange { page, .. } => MemoryError::OutOfRange {
                address: page * crate::config::PAGE_BYTES as u64,
            },
            // A block the scrub could not re-verify is data the adversary
            // destroyed: the harness must see the integrity failure, not a
            // retryable resource hiccup.
            ToleoError::PageLost { address, .. } => MemoryError::IntegrityViolation { address },
            other => MemoryError::Resource {
                detail: other.to_string(),
            },
        }
    }
}

/// Failure of one operation inside a [`ProtectedMemory`] batch: the
/// scheme-agnostic error plus the batch index that raised it.
///
/// For sequential schemes, operations before `index` completed and
/// operations after it were not attempted. Schemes that execute a batch
/// concurrently (e.g. the sharded Toleo engine's per-shard workers)
/// still report the smallest failing index by severity, but operations
/// *after* it that landed on other workers may have completed — treat
/// `index` as identifying the failing op, not as a safe resume point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryBatchError {
    /// Zero-based index of the failing operation within the batch.
    pub index: usize,
    /// What that operation failed with.
    pub error: MemoryError,
}

impl std::fmt::Display for MemoryBatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "batch op {}: {}", self.index, self.error)
    }
}

impl std::error::Error for MemoryBatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

impl From<BatchError> for MemoryBatchError {
    fn from(e: BatchError) -> Self {
        MemoryBatchError {
            index: e.index,
            error: e.error.into(),
        }
    }
}

/// The counters every scheme can report on the same axes, so the
/// head-to-head harness can print freshness-traffic and re-encryption
/// costs side by side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// Blocks read through the protected path.
    pub reads: u64,
    /// Blocks written through the protected path.
    pub writes: u64,
    /// Version/freshness-metadata accesses that went to backing storage:
    /// Toleo device READs + UPDATEs, or Merkle tree-node fetches that
    /// missed the on-chip node cache.
    pub version_fetches: u64,
    /// Version-management events that forced bulk re-encryption: Toleo
    /// stealth resets (page walks), VAULT counter-overflow group resets,
    /// Morphable-Counters leaf re-bases.
    pub reencryption_events: u64,
}

/// Opaque captured untrusted state for a replay attack: whatever the
/// adversary could copy out of the scheme's untrusted storage for one
/// block at one instant, replayable later via
/// [`ProtectedMemory::replay`].
///
/// The payload type is scheme-private; replaying a capsule into a
/// different scheme (or a different engine of the same scheme) is a no-op
/// that returns `false`.
#[derive(Debug)]
pub struct Capsule {
    address: u64,
    state: Box<dyn Any + Send>,
}

impl Capsule {
    /// Wraps a scheme-private captured state for the block at `address`.
    pub fn new(address: u64, state: impl Any + Send) -> Self {
        Capsule {
            address,
            state: Box::new(state),
        }
    }

    /// The block address the capsule was captured at.
    pub fn address(&self) -> u64 {
        self.address
    }

    /// Downcasts the captured state back to the scheme's capsule type.
    pub fn state<T: Any>(&self) -> Option<&T> {
        self.state.downcast_ref::<T>()
    }
}

/// A memory protection scheme under evaluation: confidentiality +
/// integrity (+ freshness) over 64-byte blocks, with batch entry points
/// and the adversary hooks the shared tamper/replay corpus drives.
///
/// Implementations must uphold:
///
/// * **Round-trip** — absent tampering, a read returns the latest written
///   plaintext; never-written blocks read as zeros.
/// * **Detection** — after [`corrupt`](Self::corrupt) of a resident block
///   or [`replay`](Self::replay) of a stale capsule over newer data, the
///   next read of that address fails with
///   [`MemoryError::IntegrityViolation`].
/// * **Batch equivalence** — the batch entry points are observation-
///   equivalent to op-at-a-time loops that stop at the first error
///   (amortization may only change *performance*).
pub trait ProtectedMemory {
    /// Stable scheme name used in reports and `BENCH_*.json`.
    fn scheme(&self) -> &'static str;

    /// Reads the 64-byte block at `addr` (block-aligned), verifying
    /// whatever the scheme protects (integrity, freshness).
    ///
    /// # Errors
    ///
    /// [`MemoryError::IntegrityViolation`] on tamper/replay detection;
    /// [`MemoryError::OutOfRange`] outside the protected range.
    fn read(&mut self, addr: u64) -> Result<Block, MemoryError>;

    /// Writes the 64-byte block at `addr` (block-aligned), advancing the
    /// block's version.
    ///
    /// # Errors
    ///
    /// As [`read`](Self::read), plus [`MemoryError::Resource`] for
    /// retryable capacity failures.
    fn write(&mut self, addr: u64, data: &Block) -> Result<(), MemoryError>;

    /// Reads a batch of block-aligned addresses, observation-equivalent
    /// to per-address [`read`](Self::read) calls stopping at the first
    /// error. Schemes override this to amortize shared metadata fetches
    /// across a run.
    ///
    /// # Errors
    ///
    /// [`MemoryBatchError`] carrying the failing index.
    fn read_batch(&mut self, addrs: &[u64]) -> Result<Vec<Block>, MemoryBatchError> {
        let mut out = Vec::with_capacity(addrs.len());
        for (index, &addr) in addrs.iter().enumerate() {
            out.push(
                self.read(addr)
                    .map_err(|error| MemoryBatchError { index, error })?,
            );
        }
        Ok(out)
    }

    /// Writes a batch of `(address, plaintext)` pairs, observation-
    /// equivalent to per-pair [`write`](Self::write) calls stopping at
    /// the first error.
    ///
    /// # Errors
    ///
    /// [`MemoryBatchError`] carrying the failing index.
    fn write_batch(&mut self, ops: &[(u64, Block)]) -> Result<(), MemoryBatchError> {
        for (index, (addr, data)) in ops.iter().enumerate() {
            self.write(*addr, data)
                .map_err(|error| MemoryBatchError { index, error })?;
        }
        Ok(())
    }

    /// Scheme-agnostic event counters (reads, writes, version-store
    /// traffic, re-encryption events).
    fn stats(&self) -> MemoryStats;

    /// Adversary hook: XOR `xor` into byte `offset` of the stored
    /// ciphertext at `addr`. Returns `false` (and does nothing) if no
    /// ciphertext is resident there — never-written blocks have nothing
    /// to corrupt.
    fn corrupt(&mut self, addr: u64, offset: usize, xor: u8) -> bool;

    /// Adversary hook: capture everything the adversary can copy out of
    /// untrusted storage for the block at `addr` (ciphertext, MAC,
    /// co-located metadata).
    fn capture(&mut self, addr: u64) -> Capsule;

    /// Adversary hook: restore a previously captured capsule — the
    /// classic replay attack. Returns `false` if the capsule came from a
    /// different scheme (wrong payload type).
    fn replay(&mut self, capsule: &Capsule) -> bool;
}

impl ProtectedMemory for ProtectionEngine {
    fn scheme(&self) -> &'static str {
        "toleo"
    }

    fn read(&mut self, addr: u64) -> Result<Block, MemoryError> {
        ProtectionEngine::read(self, addr).map_err(MemoryError::from)
    }

    fn write(&mut self, addr: u64, data: &Block) -> Result<(), MemoryError> {
        ProtectionEngine::write(self, addr, data).map_err(MemoryError::from)
    }

    fn read_batch(&mut self, addrs: &[u64]) -> Result<Vec<Block>, MemoryBatchError> {
        ProtectionEngine::read_batch(self, addrs).map_err(MemoryBatchError::from)
    }

    fn write_batch(&mut self, ops: &[(u64, Block)]) -> Result<(), MemoryBatchError> {
        ProtectionEngine::write_batch(self, ops).map_err(MemoryBatchError::from)
    }

    fn stats(&self) -> MemoryStats {
        let s = ProtectionEngine::stats(self);
        MemoryStats {
            reads: s.reads,
            writes: s.writes,
            version_fetches: s.device_reads + s.device_updates,
            reencryption_events: s.pages_reencrypted,
        }
    }

    fn corrupt(&mut self, addr: u64, offset: usize, xor: u8) -> bool {
        let dram = self.adversary();
        if dram.ciphertext(addr).is_none() {
            return false;
        }
        dram.corrupt_data(addr, offset, xor);
        true
    }

    fn capture(&mut self, addr: u64) -> Capsule {
        Capsule::new(addr, self.adversary().capture(addr))
    }

    fn replay(&mut self, capsule: &Capsule) -> bool {
        match capsule.state::<crate::arena::ReplayCapsule>() {
            Some(c) => {
                self.adversary().replay(c);
                true
            }
            None => false,
        }
    }
}

impl ProtectedMemory for ShardedEngine {
    fn scheme(&self) -> &'static str {
        "toleo-sharded"
    }

    fn read(&mut self, addr: u64) -> Result<Block, MemoryError> {
        ShardedEngine::read(self, addr).map_err(MemoryError::from)
    }

    fn write(&mut self, addr: u64, data: &Block) -> Result<(), MemoryError> {
        ShardedEngine::write(self, addr, data).map_err(MemoryError::from)
    }

    fn read_batch(&mut self, addrs: &[u64]) -> Result<Vec<Block>, MemoryBatchError> {
        ShardedEngine::read_batch_indexed(self, addrs).map_err(MemoryBatchError::from)
    }

    fn write_batch(&mut self, ops: &[(u64, Block)]) -> Result<(), MemoryBatchError> {
        ShardedEngine::write_batch_indexed(self, ops).map_err(MemoryBatchError::from)
    }

    fn stats(&self) -> MemoryStats {
        let s = ShardedEngine::stats(self);
        MemoryStats {
            reads: s.reads,
            writes: s.writes,
            version_fetches: s.device_reads + s.device_updates,
            reencryption_events: s.pages_reencrypted,
        }
    }

    fn corrupt(&mut self, addr: u64, offset: usize, xor: u8) -> bool {
        self.with_adversary(addr, |dram| {
            if dram.ciphertext(addr).is_none() {
                return false;
            }
            dram.corrupt_data(addr, offset, xor);
            true
        })
    }

    fn capture(&mut self, addr: u64) -> Capsule {
        let state = self.with_adversary(addr, |dram| dram.capture(addr));
        Capsule::new(addr, state)
    }

    fn replay(&mut self, capsule: &Capsule) -> bool {
        match capsule.state::<crate::arena::ReplayCapsule>() {
            Some(c) => {
                self.with_adversary(capsule.address(), |dram| dram.replay(c));
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ToleoConfig;

    fn schemes() -> Vec<Box<dyn ProtectedMemory>> {
        vec![
            Box::new(ProtectionEngine::try_new(ToleoConfig::small(), [0x21u8; 48]).unwrap()),
            Box::new(ShardedEngine::new(ToleoConfig::small(), 4, [0x22u8; 48]).unwrap()),
        ]
    }

    #[test]
    fn trait_roundtrip_and_zero_fill() {
        for mut m in schemes() {
            m.write(0x1000, &[9u8; 64]).unwrap();
            assert_eq!(m.read(0x1000).unwrap(), [9u8; 64], "{}", m.scheme());
            assert_eq!(m.read(0x8000).unwrap(), [0u8; 64], "{}", m.scheme());
            let s = m.stats();
            assert_eq!((s.writes, s.reads), (1, 2), "{}", m.scheme());
            assert!(s.version_fetches > 0, "{}", m.scheme());
        }
    }

    #[test]
    fn trait_batch_paths_roundtrip() {
        for mut m in schemes() {
            let ops: Vec<(u64, Block)> = (0..40u64).map(|i| (i * 4096, [i as u8; 64])).collect();
            m.write_batch(&ops).unwrap();
            let addrs: Vec<u64> = ops.iter().map(|(a, _)| *a).collect();
            let blocks = m.read_batch(&addrs).unwrap();
            for (i, b) in blocks.iter().enumerate() {
                assert_eq!(*b, [i as u8; 64], "{} op {i}", m.scheme());
            }
        }
    }

    #[test]
    fn trait_corrupt_detected_and_absent_corrupt_refused() {
        for mut m in schemes() {
            assert!(
                !m.corrupt(0x40, 0, 1),
                "{}: nothing resident yet",
                m.scheme()
            );
            m.write(0x40, &[1u8; 64]).unwrap();
            assert!(m.corrupt(0x40, 33, 0x40), "{}", m.scheme());
            assert!(
                matches!(
                    m.read(0x40),
                    Err(MemoryError::IntegrityViolation { address: 0x40 })
                ),
                "{}",
                m.scheme()
            );
        }
    }

    #[test]
    fn trait_replay_detected() {
        for mut m in schemes() {
            m.write(0x40, &[1u8; 64]).unwrap();
            let stale = m.capture(0x40);
            assert_eq!(stale.address(), 0x40);
            m.write(0x40, &[2u8; 64]).unwrap();
            assert!(m.replay(&stale), "{}", m.scheme());
            assert!(
                matches!(m.read(0x40), Err(MemoryError::IntegrityViolation { .. })),
                "{}",
                m.scheme()
            );
        }
    }

    #[test]
    fn foreign_capsule_is_rejected() {
        let mut a = ProtectionEngine::try_new(ToleoConfig::small(), [1u8; 48]).unwrap();
        let foreign = Capsule::new(0x40, "not a toleo capsule");
        assert!(!ProtectedMemory::replay(&mut a, &foreign));
    }

    #[test]
    fn error_display_and_mapping() {
        assert!(MemoryError::from(ToleoError::DeviceFull { page: 3 })
            .to_string()
            .contains("resource"));
        assert!(matches!(
            MemoryError::from(ToleoError::PageOutOfRange { page: 9, pages: 4 }),
            MemoryError::OutOfRange { .. }
        ));
        assert!(matches!(
            MemoryError::from(ToleoError::PageLost {
                shard: 1,
                address: 0x40
            }),
            MemoryError::IntegrityViolation { address: 0x40 }
        ));
        let be = MemoryBatchError {
            index: 4,
            error: MemoryError::IntegrityViolation { address: 0x80 },
        };
        assert!(be.to_string().contains("batch op 4"));
    }
}
