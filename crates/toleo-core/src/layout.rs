//! Conventional-memory layout for ciphertext data, MAC tags and UVs
//! (paper §4.4, Fig. 4).
//!
//! The physical pool is partitioned into a data region and a MAC region
//! with ratio 8:1 — eight 56-bit MACs pack into one 64-byte MAC block, and
//! the spare 8 bytes of each MAC block hold the shared upper version (UV)
//! of the page its data blocks belong to. Storing UV in the MAC block's
//! slack means fetching a MAC also fetches the UV for free, eliminating a
//! third memory access per read.

use crate::config::{CACHE_BLOCK_BYTES, LINES_PER_PAGE, PAGE_BYTES};

/// MACs packed per 64-byte MAC block.
pub const MACS_PER_BLOCK: u64 = 8;

/// Static partition of a physical memory pool into data and MAC+UV regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryLayout {
    /// Bytes of the whole pool.
    pub pool_bytes: u64,
    /// Bytes usable for ciphertext data.
    pub data_bytes: u64,
    /// Bytes reserved for MAC blocks (and co-located UVs).
    pub mac_bytes: u64,
}

impl MemoryLayout {
    /// Splits `pool_bytes` into data and MAC regions in the 8:1 packing
    /// ratio (data gets 8/9 of the pool, MACs 1/9), rounded down to whole
    /// pages.
    ///
    /// # Examples
    ///
    /// ```
    /// use toleo_core::layout::MemoryLayout;
    ///
    /// // The paper's 28 TB pool -> ~24.8 TB data + ~3.2 TB MACs.
    /// let l = MemoryLayout::split(28 * (1u64 << 40));
    /// let data_tb = l.data_bytes as f64 / (1u64 << 40) as f64;
    /// assert!((data_tb - 24.8).abs() < 0.2);
    /// ```
    pub fn split(pool_bytes: u64) -> Self {
        let data_bytes = (pool_bytes / 9 * 8) / PAGE_BYTES as u64 * PAGE_BYTES as u64;
        let mac_bytes = pool_bytes - data_bytes;
        MemoryLayout {
            pool_bytes,
            data_bytes,
            mac_bytes,
        }
    }

    /// Number of protected data pages.
    pub fn data_pages(&self) -> u64 {
        self.data_bytes / PAGE_BYTES as u64
    }
}

/// Index of the MAC block covering a 64-byte data block address.
pub fn mac_block_index(data_addr: u64) -> u64 {
    (data_addr / CACHE_BLOCK_BYTES as u64) / MACS_PER_BLOCK
}

/// Slot (0..8) of a data block's MAC within its MAC block.
pub fn mac_slot(data_addr: u64) -> u64 {
    (data_addr / CACHE_BLOCK_BYTES as u64) % MACS_PER_BLOCK
}

/// Page number of a physical address.
pub fn page_of(addr: u64) -> u64 {
    addr / PAGE_BYTES as u64
}

/// Cache-line index (0..64) of a physical address within its page.
pub fn line_of(addr: u64) -> usize {
    ((addr / CACHE_BLOCK_BYTES as u64) % LINES_PER_PAGE as u64) as usize
}

/// The 64-byte-aligned base of the cache block containing `addr`.
pub fn block_base(addr: u64) -> u64 {
    addr & !(CACHE_BLOCK_BYTES as u64 - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ratio_matches_paper() {
        let l = MemoryLayout::split(28 * (1u64 << 40));
        assert_eq!(l.data_bytes + l.mac_bytes, l.pool_bytes);
        let ratio = l.data_bytes as f64 / l.mac_bytes as f64;
        assert!((ratio - 8.0).abs() < 0.01, "data:mac = {ratio}");
    }

    #[test]
    fn mac_indexing() {
        assert_eq!(mac_block_index(0), 0);
        assert_eq!(mac_block_index(7 * 64), 0);
        assert_eq!(mac_block_index(8 * 64), 1);
        assert_eq!(mac_slot(0), 0);
        assert_eq!(mac_slot(64), 1);
        assert_eq!(mac_slot(9 * 64), 1);
    }

    #[test]
    fn page_and_line_of() {
        assert_eq!(page_of(0), 0);
        assert_eq!(page_of(4095), 0);
        assert_eq!(page_of(4096), 1);
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 1);
        assert_eq!(line_of(4096 + 130), 2);
        assert_eq!(block_base(130), 128);
    }

    #[test]
    fn one_page_spans_eight_mac_blocks() {
        let first = mac_block_index(0);
        let last = mac_block_index(4095);
        assert_eq!(last - first + 1, 8);
    }
}
