//! Version-number types: stealth versions, upper versions, full versions.
//!
//! The paper splits a 64-bit full version into a 37-bit **upper version
//! (UV)**, stored in conventional memory alongside the MACs, and a 27-bit
//! **stealth version**, stored only inside the trusted Toleo device
//! (§4.2). Freshness is guaranteed by the stealth half alone (a replay must
//! guess it, 2^-27), while uniqueness of the concatenated full version keeps
//! the AES tweak non-repeating.

use serde::{Deserialize, Serialize};

/// Width of the stealth version in the paper's design point.
pub const STEALTH_BITS: u32 = 27;
/// Width of the upper version in the paper's design point.
pub const UV_BITS: u32 = 37;

/// A stealth version: the low-order, confidential part of a full version.
///
/// Stored only in Toleo smart memory; may wrap and repeat across stealth
/// intervals, which is safe because it stays confidential.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct StealthVersion(u32);

impl StealthVersion {
    /// Creates a stealth version, masking to `bits` wide.
    pub fn new(raw: u64, bits: u32) -> Self {
        debug_assert!((1..=32).contains(&bits));
        StealthVersion((raw & ((1u64 << bits) - 1)) as u32)
    }

    /// Raw counter value.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The successor, wrapping within `bits`.
    #[must_use]
    pub fn incremented(self, bits: u32) -> Self {
        self.offset_by(1, bits)
    }

    /// Adds `delta`, wrapping within `bits`.
    #[must_use]
    pub fn offset_by(self, delta: u32, bits: u32) -> Self {
        let mask = if bits >= 32 {
            u32::MAX
        } else {
            (1u32 << bits) - 1
        };
        StealthVersion(self.0.wrapping_add(delta) & mask)
    }
}

/// An upper version (UV): the high-order part of a full version, shared by
/// all cache blocks of a page and stored in the spare space of MAC blocks
/// in conventional memory.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct UpperVersion(u64);

impl UpperVersion {
    /// Creates a UV from a raw counter.
    pub fn new(raw: u64) -> Self {
        UpperVersion(raw)
    }

    /// Raw counter value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The successor UV. Saturates rather than wraps: exhausting 2^37 UV
    /// increments is outside the platform lifetime by construction (§6.2).
    #[must_use]
    pub fn incremented(self) -> Self {
        UpperVersion(self.0.saturating_add(1))
    }
}

/// A full 64-bit version: `UV << stealth_bits | stealth`. This is the AES
/// tweak component and the MAC input; it must never repeat for a given
/// address during the platform lifetime.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct FullVersion(u64);

impl FullVersion {
    /// Composes a full version from its halves.
    ///
    /// # Examples
    ///
    /// ```
    /// use toleo_core::version::{FullVersion, StealthVersion, UpperVersion, STEALTH_BITS};
    ///
    /// let fv = FullVersion::compose(UpperVersion::new(2), StealthVersion::new(5, STEALTH_BITS), STEALTH_BITS);
    /// assert_eq!(fv.raw(), (2 << 27) | 5);
    /// assert_eq!(fv.stealth(STEALTH_BITS).raw(), 5);
    /// assert_eq!(fv.upper(STEALTH_BITS).raw(), 2);
    /// ```
    pub fn compose(uv: UpperVersion, stealth: StealthVersion, stealth_bits: u32) -> Self {
        FullVersion((uv.raw() << stealth_bits) | stealth.raw() as u64)
    }

    /// Raw 64-bit value (used as the AES tweak's version lane).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Extracts the stealth half.
    pub fn stealth(self, stealth_bits: u32) -> StealthVersion {
        StealthVersion::new(self.0, stealth_bits)
    }

    /// Extracts the UV half.
    pub fn upper(self, stealth_bits: u32) -> UpperVersion {
        UpperVersion::new(self.0 >> stealth_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stealth_masks_to_width() {
        let s = StealthVersion::new(u64::MAX, 27);
        assert_eq!(s.raw(), (1 << 27) - 1);
        let s = StealthVersion::new(0x1_0000_0001, 27);
        assert_eq!(s.raw(), 1);
    }

    #[test]
    fn stealth_offset_wraps() {
        let s = StealthVersion::new((1 << 27) - 1, 27);
        assert_eq!(s.offset_by(1, 27).raw(), 0);
        assert_eq!(s.offset_by(2, 27).raw(), 1);
    }

    #[test]
    fn uv_increment_saturates() {
        let uv = UpperVersion::new(u64::MAX);
        assert_eq!(uv.incremented().raw(), u64::MAX);
        assert_eq!(UpperVersion::new(4).incremented().raw(), 5);
    }

    #[test]
    fn full_version_round_trips() {
        for (uv, st) in [
            (0u64, 0u64),
            (1, 1),
            (123456, 98765),
            ((1 << 37) - 1, (1 << 27) - 1),
        ] {
            let fv = FullVersion::compose(
                UpperVersion::new(uv),
                StealthVersion::new(st, STEALTH_BITS),
                STEALTH_BITS,
            );
            assert_eq!(fv.upper(STEALTH_BITS).raw(), uv);
            assert_eq!(fv.stealth(STEALTH_BITS).raw(), st as u32);
        }
    }

    #[test]
    fn full_versions_are_ordered_lexicographically() {
        // (uv=1, s=0) > (uv=0, s=max): UV dominates, which is what makes
        // reset-increments-UV preserve monotonic uniqueness.
        let low = FullVersion::compose(
            UpperVersion::new(0),
            StealthVersion::new((1 << 27) - 1, 27),
            27,
        );
        let high = FullVersion::compose(UpperVersion::new(1), StealthVersion::new(0, 27), 27);
        assert!(high > low);
    }
}
