//! Open-addressed flat page index.
//!
//! `std::collections::HashMap` sat on every hot path of the engine: the
//! device probed it once per READ/UPDATE to find a page's Trip entry, and
//! the arena probed it on every last-page-cache miss to find a page's
//! slot. A `HashMap<u64, _>` probe pays SipHash over the key plus the
//! control-byte group scan of the general-purpose table — far more than
//! the lookup deserves for dense page numbers.
//!
//! [`PageIndex`] replaces it with the minimum machinery the access
//! pattern needs: a power-of-two flat array of `(page, value)` pairs,
//! Fibonacci multiplicative hashing (one multiply, one shift), linear
//! probing, and **no deletion** — pages are never unmapped (RESET
//! re-randomizes a page's versions; it does not forget the page), so
//! there are no tombstones and probe chains never rot. Values are `u32`
//! indices into a caller-owned dense `Vec`, which is exactly the shape
//! both consumers already had (arena slots, device entries).

// audit: allow-file(indexing, bucket indices are masked to the power-of-two table size)

/// Sentinel key marking an empty bucket. Page numbers live far below this
/// (a 2^64-page pool would be 2^76 bytes of protected memory).
const EMPTY: u64 = u64::MAX;

/// Initial bucket count (power of two).
const INITIAL_BUCKETS: usize = 16;

/// Fibonacci hashing constant (2^64 / φ, odd).
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// A flat open-addressed `page -> u32` index with linear probing.
///
/// # Examples
///
/// ```
/// use toleo_core::pagetable::PageIndex;
///
/// let mut idx = PageIndex::new();
/// idx.insert(7, 0);
/// idx.insert(4096, 1);
/// assert_eq!(idx.get(7), Some(0));
/// assert_eq!(idx.get(8), None);
/// assert_eq!(idx.len(), 2);
/// ```
// audit: allow(secret, keys here are hash-table bucket keys holding page numbers, not cryptographic keys)
#[derive(Debug, Clone)]
pub struct PageIndex {
    /// Bucket keys; [`EMPTY`] marks a free bucket.
    keys: Box<[u64]>,
    /// Bucket values, parallel to `keys`.
    vals: Box<[u32]>,
    /// Number of live entries.
    len: usize,
    /// `keys.len() - 1`; bucket count is always a power of two.
    mask: usize,
    /// Right-shift that maps the Fibonacci product to a bucket index.
    shift: u32,
}

impl Default for PageIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl PageIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        let buckets = INITIAL_BUCKETS;
        PageIndex {
            keys: vec![EMPTY; buckets].into_boxed_slice(),
            vals: vec![0u32; buckets].into_boxed_slice(),
            len: 0,
            mask: buckets - 1,
            shift: 64 - buckets.trailing_zeros(),
        }
    }

    /// Number of mapped pages.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no page is mapped.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Home bucket of `page`.
    #[inline]
    fn bucket(&self, page: u64) -> usize {
        (page.wrapping_mul(FIB) >> self.shift) as usize
    }

    /// The value mapped to `page`, if any. Querying the sentinel value
    /// `u64::MAX` (never insertable) is answered `None`, not matched
    /// against empty buckets.
    #[inline]
    pub fn get(&self, page: u64) -> Option<u32> {
        let mut i = self.bucket(page);
        loop {
            let k = self.keys[i];
            // EMPTY must be tested first: a `page == u64::MAX` query would
            // otherwise "match" the first free bucket's sentinel key and
            // return whatever stale value sits there.
            if k == EMPTY {
                return None;
            }
            if k == page {
                return Some(self.vals[i]);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Maps `page` to `val`, replacing any existing mapping.
    ///
    /// # Panics
    ///
    /// Panics if `page == u64::MAX` (the empty-bucket sentinel).
    pub fn insert(&mut self, page: u64, val: u32) {
        assert_ne!(page, EMPTY, "page number collides with the empty sentinel");
        // Grow at 7/8 load so probe chains stay short.
        if (self.len + 1) * 8 > self.keys.len() * 7 {
            self.grow();
        }
        let mut i = self.bucket(page);
        loop {
            let k = self.keys[i];
            if k == page {
                self.vals[i] = val;
                return;
            }
            if k == EMPTY {
                self.keys[i] = page;
                self.vals[i] = val;
                self.len += 1;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Doubles the bucket array and re-inserts every live entry.
    fn grow(&mut self) {
        let buckets = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; buckets].into_boxed_slice());
        let old_vals = std::mem::replace(&mut self.vals, vec![0u32; buckets].into_boxed_slice());
        self.mask = buckets - 1;
        self.shift = 64 - buckets.trailing_zeros();
        self.len = 0;
        for (k, v) in old_keys.iter().zip(old_vals.iter()) {
            if *k != EMPTY {
                self.insert(*k, *v);
            }
        }
    }

    /// Iterates over `(page, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.keys
            .iter()
            .zip(self.vals.iter())
            .filter(|(k, _)| **k != EMPTY)
            .map(|(k, v)| (*k, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    #[test]
    fn empty_index_finds_nothing() {
        let idx = PageIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
        for page in [0u64, 1, 42, u64::MAX - 1] {
            assert_eq!(idx.get(page), None);
        }
    }

    #[test]
    fn insert_get_replace() {
        let mut idx = PageIndex::new();
        idx.insert(5, 10);
        assert_eq!(idx.get(5), Some(10));
        idx.insert(5, 11);
        assert_eq!(idx.get(5), Some(11));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut idx = PageIndex::new();
        for page in 0..10_000u64 {
            idx.insert(page, page as u32);
        }
        assert_eq!(idx.len(), 10_000);
        for page in 0..10_000u64 {
            assert_eq!(idx.get(page), Some(page as u32), "page {page}");
        }
        assert_eq!(idx.get(10_000), None);
    }

    /// Random inserts/replacements/lookups against a `HashMap` model,
    /// including adversarially clustered keys (sequential pages, stride
    /// patterns, high-bit-only entropy).
    #[test]
    fn matches_hashmap_model_under_random_ops() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x9A6E);
        let mut idx = PageIndex::new();
        let mut model: HashMap<u64, u32> = HashMap::new();
        for step in 0..30_000u32 {
            let page: u64 = match step % 4 {
                0 => rng.gen_range(0..512u64),       // dense cluster
                1 => rng.gen_range(0..64u64) * 4096, // stride pattern
                2 => rng.gen::<u64>() >> 1,          // sparse
                // High-bit-only entropy (low 32 bits zero, so never the
                // EMPTY sentinel): the case that stresses the hash shift.
                _ => (rng.gen::<u32>() as u64) << 32,
            };
            if rng.gen_bool(0.7) {
                idx.insert(page, step);
                model.insert(page, step);
            }
            assert_eq!(idx.get(page), model.get(&page).copied(), "step {step}");
        }
        assert_eq!(idx.len(), model.len());
        // Full iteration agrees with the model.
        let mut seen: HashMap<u64, u32> = HashMap::new();
        for (k, v) in idx.iter() {
            assert!(seen.insert(k, v).is_none(), "duplicate key {k}");
        }
        assert_eq!(seen, model);
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn sentinel_page_rejected() {
        PageIndex::new().insert(u64::MAX, 0);
    }

    #[test]
    fn sentinel_page_lookup_is_none() {
        // Regression: `get(u64::MAX)` used to match an empty bucket's
        // sentinel key and report a phantom mapping to value 0.
        let mut idx = PageIndex::new();
        assert_eq!(idx.get(u64::MAX), None);
        for page in 0..100u64 {
            idx.insert(page, page as u32);
        }
        assert_eq!(idx.get(u64::MAX), None);
    }

    #[test]
    fn colliding_probe_chains_resolve() {
        // Force many keys into few buckets by exceeding initial capacity
        // with keys whose hashes land close together (sequential keys under
        // Fibonacci hashing spread, so use the model test above for spread;
        // here verify correctness right at the growth boundary).
        let mut idx = PageIndex::new();
        for page in 0..15u64 {
            idx.insert(page * 1_000_003, page as u32);
        }
        for page in 0..15u64 {
            assert_eq!(idx.get(page * 1_000_003), Some(page as u32));
        }
    }
}
