//! The fault plane between the protection engine and the Toleo device.
//!
//! [`DeviceChannel`] wraps every device operation the engine issues and
//! classifies each outcome:
//!
//! * **Transient** — link timeout, device busy, dropped or duplicated
//!   response (injected deterministically by a [`FaultPlan`]). The channel
//!   absorbs these with bounded exponential backoff under a per-op retry
//!   budget. A dropped response is retransmitted from the link buffer,
//!   **never** re-issued to the device — so a retried UPDATE can never
//!   double-apply a version increment, and the device's state and counters
//!   stay bit-identical to a fault-free run.
//! * **Integrity** — MAC or version mismatch. These are *not* channel
//!   events: they surface from the engine's verification, are never
//!   retried, and always fail closed. The channel also never retries the
//!   device's own protocol errors ([`DeviceFull`](crate::error::ToleoError::DeviceFull),
//!   [`PageOutOfRange`](crate::error::ToleoError::PageOutOfRange)) — those
//!   are well-formed responses, not link failures.
//!
//! Exhausting the retry budget means the freshness device is unreachable:
//! the channel reports [`ToleoError::DeviceUnavailable`] and the engine
//! fails closed (a host that cannot verify freshness must stop serving).
//!
//! Backoff is accounted in *virtual* nanoseconds ([`ChannelStats::backoff_nanos`])
//! rather than slept, keeping fault campaigns fast and deterministic.

use crate::config::ToleoConfig;
use crate::device::{ToleoDevice, UpdateResponse};
use crate::error::{Result, ToleoError};
use crate::fault::{DeviceOp, FaultKind, FaultPlan};
use crate::trip::TripFormat;
use crate::version::StealthVersion;

/// Retry policy for transient device-link faults: how many delivery
/// attempts one operation gets, and the exponential backoff between them.
/// A tunable policy surface, not a hardcoded constant — deployments trade
/// tail latency against fail-closed sensitivity here.
// audit: allow(secret, jitter_seed dithers virtual backoff accounting for reproducible campaigns, not key material)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum delivery attempts per operation (>= 1). Attempt
    /// `max_attempts` failing transiently reports
    /// [`ToleoError::DeviceUnavailable`].
    pub max_attempts: u32,
    /// Backoff before the first retry, in nanoseconds.
    pub base_backoff_nanos: u64,
    /// Upper bound on any single backoff, in nanoseconds.
    pub max_backoff_nanos: u64,
    /// Seed for deterministic backoff jitter, `None` for pure exponential
    /// backoff. With a seed set, each charged backoff is dithered into
    /// `[ceil(b/2), b]` of its exponential value `b` by a hash of
    /// `(seed, page, retry)` — so N shards that trip on the same link
    /// fault desynchronize their retry storms instead of hammering the
    /// device in lockstep, while every run stays bit-reproducible.
    /// Jitter only changes the *charged virtual nanoseconds*, never the
    /// retry control flow: responses, device state and every other
    /// counter are identical to the unjittered policy.
    pub jitter_seed: Option<u64>,
}

impl Default for RetryPolicy {
    /// CXL-flavored defaults: 8 attempts, 200 ns doubling to a 100 µs
    /// cap, no jitter.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_backoff_nanos: 200,
            max_backoff_nanos: 100_000,
            jitter_seed: None,
        }
    }
}

impl RetryPolicy {
    /// The exponential backoff envelope before retry number `retry`
    /// (1-based): `base * 2^(retry-1)`, capped at `max_backoff_nanos`.
    pub fn backoff_nanos(&self, retry: u32) -> u64 {
        let shift = retry.saturating_sub(1).min(63);
        self.base_backoff_nanos
            .checked_shl(shift)
            .unwrap_or(u64::MAX)
            .min(self.max_backoff_nanos)
    }

    /// The backoff actually charged before retry number `retry` of an
    /// operation on `page`: the [`backoff_nanos`](Self::backoff_nanos)
    /// envelope `b`, dithered deterministically into `[b - b/2, b]` when
    /// [`jitter_seed`](Self::jitter_seed) is set (identical to the
    /// envelope otherwise). The dither is a pure function of
    /// `(jitter_seed, page, retry)`, so accounting stays exact and
    /// replayable: the same run always charges the same nanoseconds.
    pub fn jittered_backoff_nanos(&self, retry: u32, page: u64) -> u64 {
        let backoff = self.backoff_nanos(retry);
        let Some(seed) = self.jitter_seed else {
            return backoff;
        };
        let span = backoff / 2;
        if span == 0 {
            return backoff;
        }
        let dither = crate::fault::splitmix64(
            seed ^ page.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (u64::from(retry) << 48),
        );
        backoff - dither % (span + 1)
    }
}

/// Channel event counters: everything the fault plane observed and did.
/// Thread through [`RobustnessStats`](crate::sharded::RobustnessStats) for
/// the sharded aggregate and the bench `availability` section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelStats {
    /// Operations that entered the channel while a fault plan was armed.
    pub ops: u64,
    /// Faults the plan injected.
    pub faults_injected: u64,
    /// Injected faults absorbed by an operation that ultimately succeeded.
    pub faults_absorbed: u64,
    /// Retries performed (delivery attempts beyond the first).
    pub retries: u64,
    /// Virtual nanoseconds of exponential backoff charged.
    pub backoff_nanos: u64,
    /// Responses replayed from the link buffer after a dropped response —
    /// each is an operation that was *not* re-issued to the device.
    pub replayed_responses: u64,
    /// Duplicate responses discarded by the sequence check.
    pub duplicates_discarded: u64,
    /// Operations that exhausted the retry budget
    /// ([`ToleoError::DeviceUnavailable`]).
    pub retry_exhaustions: u64,
}

impl ChannelStats {
    /// Accumulates another channel's counters into this one (sharded
    /// aggregation).
    pub fn merge(&mut self, other: &ChannelStats) {
        self.ops += other.ops;
        self.faults_injected += other.faults_injected;
        self.faults_absorbed += other.faults_absorbed;
        self.retries += other.retries;
        self.backoff_nanos += other.backoff_nanos;
        self.replayed_responses += other.replayed_responses;
        self.duplicates_discarded += other.duplicates_discarded;
        self.retry_exhaustions += other.retry_exhaustions;
    }
}

/// The device channel: owns the [`ToleoDevice`] and mediates every
/// request with fault classification, bounded retry, and idempotent
/// response replay. With no fault plan armed (the production default in
/// this simulation), every call is a direct pass-through plus one branch.
#[derive(Debug)]
pub struct DeviceChannel {
    device: ToleoDevice,
    plan: Option<FaultPlan>,
    policy: RetryPolicy,
    stats: ChannelStats,
}

impl DeviceChannel {
    /// Wraps `device` with a retry `policy` and an optional fault plan.
    pub fn new(device: ToleoDevice, plan: Option<FaultPlan>, policy: RetryPolicy) -> Self {
        DeviceChannel {
            device,
            plan,
            policy,
            stats: ChannelStats::default(),
        }
    }

    /// The wrapped device (telemetry: usage, stats, config).
    pub fn device(&self) -> &ToleoDevice {
        &self.device
    }

    /// Mutable access to the wrapped device, bypassing the fault plane
    /// (in-crate tests and tooling only).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn device_mut(&mut self) -> &mut ToleoDevice {
        &mut self.device
    }

    /// The device configuration.
    pub fn config(&self) -> &ToleoConfig {
        self.device.config()
    }

    /// Channel event counters.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// The retry policy in force.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Whether a fault plan is armed.
    pub fn fault_plan_armed(&self) -> bool {
        self.plan.is_some()
    }

    /// UPDATE through the fault plane (see [`ToleoDevice::update`]).
    ///
    /// # Errors
    ///
    /// The device's own errors pass through unretried;
    /// [`ToleoError::DeviceUnavailable`] if transient faults exhaust the
    /// retry budget.
    pub fn update(&mut self, page: u64, line: usize) -> Result<UpdateResponse> {
        self.run_op(DeviceOp::Update, page, |dev| dev.update(page, line))
    }

    /// READ-with-format through the fault plane (see
    /// [`ToleoDevice::read_versioned`]).
    ///
    /// # Errors
    ///
    /// As [`update`](Self::update).
    pub fn read_versioned(
        &mut self,
        page: u64,
        line: usize,
    ) -> Result<(StealthVersion, TripFormat)> {
        self.run_op(DeviceOp::Read, page, |dev| dev.read_versioned(page, line))
    }

    /// Run READ through the fault plane (see [`ToleoDevice::read_run`]).
    /// The whole run is one link transaction: one fault verdict, one
    /// response buffer.
    ///
    /// # Errors
    ///
    /// As [`update`](Self::update).
    pub fn read_run(
        &mut self,
        page: u64,
        lines: &[usize],
        out: &mut Vec<(StealthVersion, TripFormat)>,
    ) -> Result<()> {
        if self.plan.is_none() {
            return self.device.read_run(page, lines, out);
        }
        let run = self.run_op(DeviceOp::Read, page, |dev| {
            let mut v = Vec::new();
            dev.read_run(page, lines, &mut v)?;
            Ok(v)
        })?;
        *out = run;
        Ok(())
    }

    /// RESET through the fault plane (see [`ToleoDevice::reset`]).
    ///
    /// # Errors
    ///
    /// As [`update`](Self::update).
    pub fn reset(&mut self, page: u64) -> Result<StealthVersion> {
        self.run_op(DeviceOp::Reset, page, |dev| dev.reset(page))
    }

    /// The retry loop: judges each delivery attempt against the fault
    /// plan, absorbs transients with backoff, and enforces the idempotency
    /// guard — an operation whose response was dropped is replayed from
    /// the link buffer (`pending`), never re-issued to the device.
    fn run_op<T>(
        &mut self,
        op: DeviceOp,
        page: u64,
        mut issue: impl FnMut(&mut ToleoDevice) -> Result<T>,
    ) -> Result<T> {
        let Some(plan) = self.plan.as_mut() else {
            return issue(&mut self.device);
        };
        self.stats.ops += 1;
        let mut attempts: u32 = 1;
        let mut injected_this_op: u64 = 0;
        // Link buffer for a response whose delivery was dropped: the op
        // executed exactly once; the retry consumes this instead of
        // re-issuing.
        let mut pending: Option<T> = None;
        loop {
            if let Some(response) = pending.take() {
                self.stats.replayed_responses += 1;
                self.stats.faults_absorbed += injected_this_op;
                return Ok(response);
            }
            match plan.decide(op) {
                None => {
                    let result = issue(&mut self.device);
                    if result.is_ok() {
                        self.stats.faults_absorbed += injected_this_op;
                    }
                    return result;
                }
                Some(FaultKind::DuplicatedResponse) => {
                    self.stats.faults_injected += 1;
                    injected_this_op += 1;
                    let response = issue(&mut self.device)?;
                    self.stats.duplicates_discarded += 1;
                    self.stats.faults_absorbed += injected_this_op;
                    return Ok(response);
                }
                Some(FaultKind::DroppedResponse) => {
                    self.stats.faults_injected += 1;
                    injected_this_op += 1;
                    // The device executes the op; only the response is
                    // lost. Buffer it for the retry.
                    pending = Some(issue(&mut self.device)?);
                }
                Some(FaultKind::Timeout) | Some(FaultKind::Busy) => {
                    // The request never executed; a plain re-issue is safe.
                    self.stats.faults_injected += 1;
                    injected_this_op += 1;
                }
            }
            if attempts >= self.policy.max_attempts {
                self.stats.retry_exhaustions += 1;
                return Err(ToleoError::DeviceUnavailable { page, attempts });
            }
            self.stats.retries += 1;
            self.stats.backoff_nanos += self.policy.jittered_backoff_nanos(attempts, page);
            attempts += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlanConfig;

    fn device() -> ToleoDevice {
        ToleoDevice::new(ToleoConfig::small()).unwrap()
    }

    fn channel(rate: f64, seed: u64) -> DeviceChannel {
        let plan = FaultPlan::new(FaultPlanConfig::uniform(seed, rate)).unwrap();
        DeviceChannel::new(device(), Some(plan), RetryPolicy::default())
    }

    /// The core idempotency theorem, exhaustively: under any mix of
    /// transient faults, a faulted channel and a fault-free device that
    /// execute the same operation sequence end in bit-identical device
    /// state (versions AND counters) and return identical responses.
    #[test]
    fn faulted_channel_matches_fault_free_device_exactly() {
        for seed in 0..8u64 {
            let mut faulted = channel(0.45, seed);
            let mut clean = device();
            for i in 0..2_000u64 {
                let page = i % 7;
                let line = (i % 64) as usize;
                match i % 5 {
                    0 | 1 => {
                        let a = faulted.update(page, line).unwrap();
                        let b = clean.update(page, line).unwrap();
                        assert_eq!(a.stealth, b.stealth, "seed {seed} op {i}");
                        assert_eq!(a.format, b.format);
                        assert_eq!(a.reset.is_some(), b.reset.is_some());
                    }
                    2 | 3 => {
                        let a = faulted.read_versioned(page, line).unwrap();
                        let b = clean.read_versioned(page, line).unwrap();
                        assert_eq!(a, b, "seed {seed} op {i}");
                    }
                    _ => {
                        let lines: Vec<usize> = (0..8).map(|k| (line + k) % 64).collect();
                        let mut a = Vec::new();
                        let mut b = Vec::new();
                        faulted.read_run(page, &lines, &mut a).unwrap();
                        clean.read_run(page, &lines, &mut b).unwrap();
                        assert_eq!(a, b, "seed {seed} op {i}");
                    }
                }
            }
            assert_eq!(
                faulted.device().stats(),
                clean.stats(),
                "seed {seed}: retries must never re-issue to the device"
            );
            let s = faulted.stats();
            assert!(s.faults_injected > 0, "seed {seed} must exercise faults");
            assert_eq!(s.retry_exhaustions, 0);
            assert!(s.retries > 0 && s.backoff_nanos > 0);
        }
    }

    #[test]
    fn dropped_response_is_replayed_not_reissued() {
        let mut cfg = FaultPlanConfig::uniform(11, 0.0);
        // Every op drops its first response, then delivers the replay.
        cfg.update.dropped = 0.9999;
        let mut ch = DeviceChannel::new(
            device(),
            Some(FaultPlan::new(cfg).unwrap()),
            RetryPolicy::default(),
        );
        let r1 = ch.update(0, 0).unwrap();
        let before = ch.device().stats().updates;
        assert_eq!(before, 1, "exactly one device UPDATE despite the retry");
        // The version advanced exactly once.
        let v = ch.read_versioned(0, 0).map(|(s, _)| s);
        assert_eq!(v.unwrap(), r1.stealth);
        assert!(ch.stats().replayed_responses >= 1);
    }

    #[test]
    fn duplicate_responses_are_discarded() {
        let mut cfg = FaultPlanConfig::uniform(3, 0.0);
        cfg.update.duplicated = 0.9999;
        let mut ch = DeviceChannel::new(
            device(),
            Some(FaultPlan::new(cfg).unwrap()),
            RetryPolicy::default(),
        );
        for _ in 0..50 {
            ch.update(1, 2).unwrap();
        }
        assert_eq!(ch.device().stats().updates, 50);
        assert_eq!(ch.stats().duplicates_discarded, 50);
        assert_eq!(ch.stats().retries, 0, "duplicates need no retry");
    }

    #[test]
    fn budget_exhaustion_reports_device_unavailable() {
        let mut cfg = FaultPlanConfig::uniform(5, 0.0);
        cfg.read.timeout = 1.0;
        let policy = RetryPolicy {
            max_attempts: 4,
            ..RetryPolicy::default()
        };
        let mut ch = DeviceChannel::new(device(), Some(FaultPlan::new(cfg).unwrap()), policy);
        match ch.read_versioned(3, 0) {
            Err(ToleoError::DeviceUnavailable {
                page: 3,
                attempts: 4,
            }) => {}
            other => panic!("expected DeviceUnavailable after 4 attempts, got {other:?}"),
        }
        let s = ch.stats();
        assert_eq!(s.retry_exhaustions, 1);
        assert_eq!(s.retries, 3, "4 attempts = 3 retries");
        assert_eq!(
            ch.device().stats().reads,
            0,
            "timed-out requests never reach the device"
        );
    }

    #[test]
    fn backoff_is_bounded_exponential() {
        let policy = RetryPolicy {
            max_attempts: 16,
            base_backoff_nanos: 100,
            max_backoff_nanos: 1_000,
            jitter_seed: None,
        };
        assert_eq!(policy.backoff_nanos(1), 100);
        assert_eq!(policy.backoff_nanos(2), 200);
        assert_eq!(policy.backoff_nanos(3), 400);
        assert_eq!(policy.backoff_nanos(4), 800);
        assert_eq!(policy.backoff_nanos(5), 1_000, "capped");
        assert_eq!(policy.backoff_nanos(60), 1_000, "still capped");
        // With no jitter seed the charged backoff IS the envelope.
        for retry in 1..8 {
            assert_eq!(
                policy.jittered_backoff_nanos(retry, 42),
                policy.backoff_nanos(retry)
            );
        }
    }

    #[test]
    fn jittered_backoff_is_deterministic_and_stays_in_the_envelope() {
        let policy = RetryPolicy {
            jitter_seed: Some(0xD17E),
            ..RetryPolicy::default()
        };
        let mut saw_dither = false;
        for retry in 1..10u32 {
            let envelope = policy.backoff_nanos(retry);
            for page in 0..32u64 {
                let charged = policy.jittered_backoff_nanos(retry, page);
                assert!(
                    charged <= envelope && charged >= envelope - envelope / 2,
                    "retry {retry} page {page}: {charged} outside [{}, {envelope}]",
                    envelope - envelope / 2
                );
                assert_eq!(
                    charged,
                    policy.jittered_backoff_nanos(retry, page),
                    "jitter must be a pure function of (seed, page, retry)"
                );
                saw_dither |= charged != envelope;
            }
        }
        assert!(saw_dither, "the dither must actually move some backoffs");
        // Different pages must not share one jitter stream: that is the
        // whole point (shards route by page and must desynchronize).
        let distinct: std::collections::HashSet<u64> = (0..32u64)
            .map(|page| policy.jittered_backoff_nanos(8, page))
            .collect();
        assert!(distinct.len() > 8, "pages must spread across the envelope");
    }

    /// Satellite theorem for the jitter knob: against the same fault
    /// stream, a jittered and an unjittered channel return identical
    /// responses, leave bit-identical device state, and agree on every
    /// counter except `backoff_nanos` — which the jittered run keeps
    /// within `[unjittered/2, unjittered]`, and accounts exactly (two
    /// jittered runs charge the same nanoseconds to the last digit).
    #[test]
    fn jitter_is_observation_equivalent_to_pure_exponential_backoff() {
        let drive = |jitter_seed: Option<u64>| {
            let plan = FaultPlan::new(FaultPlanConfig::uniform(13, 0.45)).unwrap();
            let policy = RetryPolicy {
                jitter_seed,
                ..RetryPolicy::default()
            };
            let mut ch = DeviceChannel::new(device(), Some(plan), policy);
            let mut responses = Vec::new();
            for i in 0..2_000u64 {
                let page = i % 7;
                let line = (i % 64) as usize;
                match i % 3 {
                    0 => responses.push(ch.update(page, line).unwrap().stealth),
                    1 => responses.push(ch.read_versioned(page, line).unwrap().0),
                    _ => {
                        let _ = ch.reset(page).unwrap();
                    }
                }
            }
            let device_stats = ch.device().stats();
            (responses, device_stats, ch.stats())
        };
        let (plain_resp, plain_dev, plain) = drive(None);
        let (jit_resp, jit_dev, jit) = drive(Some(0xACE1));
        let (jit_resp2, _, jit2) = drive(Some(0xACE1));
        assert_eq!(plain_resp, jit_resp, "responses must be identical");
        assert_eq!(plain_dev, jit_dev, "device state must be bit-identical");
        assert_eq!(jit_resp, jit_resp2);
        assert_eq!(jit, jit2, "jittered accounting must replay exactly");
        assert_eq!(plain.ops, jit.ops);
        assert_eq!(plain.faults_injected, jit.faults_injected);
        assert_eq!(plain.faults_absorbed, jit.faults_absorbed);
        assert_eq!(plain.retries, jit.retries);
        assert_eq!(plain.replayed_responses, jit.replayed_responses);
        assert_eq!(plain.duplicates_discarded, jit.duplicates_discarded);
        assert_eq!(plain.retry_exhaustions, jit.retry_exhaustions);
        assert!(plain.retries > 0, "the campaign must exercise retries");
        assert!(
            jit.backoff_nanos <= plain.backoff_nanos
                && jit.backoff_nanos >= plain.backoff_nanos / 2,
            "jittered total {} outside [{}, {}]",
            jit.backoff_nanos,
            plain.backoff_nanos / 2,
            plain.backoff_nanos
        );
        assert_ne!(
            jit.backoff_nanos, plain.backoff_nanos,
            "a 2000-op campaign at rate 0.45 must see at least one dither"
        );
    }

    #[test]
    fn device_protocol_errors_pass_through_unretried() {
        let mut cfg = ToleoConfig::small();
        cfg.device_capacity_bytes = cfg.flat_array_bytes(); // zero dynamic blocks
        let dev = ToleoDevice::new(cfg).unwrap();
        let plan = FaultPlan::new(FaultPlanConfig::uniform(1, 0.0)).unwrap();
        let mut ch = DeviceChannel::new(dev, Some(plan), RetryPolicy::default());
        ch.update(0, 3).unwrap();
        assert!(matches!(
            ch.update(0, 3),
            Err(ToleoError::DeviceFull { page: 0 })
        ));
        assert_eq!(
            ch.stats().retries,
            0,
            "DeviceFull is a response, not a fault"
        );
        let pages = ch.config().protected_pages();
        assert!(matches!(
            ch.read_versioned(pages, 0),
            Err(ToleoError::PageOutOfRange { .. })
        ));
    }

    #[test]
    fn unarmed_channel_is_transparent() {
        let mut ch = DeviceChannel::new(device(), None, RetryPolicy::default());
        ch.update(0, 0).unwrap();
        ch.read_versioned(0, 0).unwrap();
        ch.reset(0).unwrap();
        assert_eq!(ch.stats(), ChannelStats::default());
        assert!(!ch.fault_plan_armed());
    }
}
