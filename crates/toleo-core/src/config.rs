//! Configuration for the Toleo device and protection engine.

use serde::{Deserialize, Serialize};

/// Bytes per cache block (paper: 64 B).
pub const CACHE_BLOCK_BYTES: usize = 64;
/// Cache blocks per page (paper: 4 KB pages / 64 B lines).
pub const LINES_PER_PAGE: usize = 64;
/// Bytes per page.
pub const PAGE_BYTES: usize = CACHE_BLOCK_BYTES * LINES_PER_PAGE;

/// Size of a flat Trip entry in Toleo memory (2-bit type + 27-bit base +
/// 64-bit vector, padded to 12 bytes; paper Fig. 3).
pub const FLAT_ENTRY_BYTES: usize = 12;
/// Size of an uneven Trip entry (64 x 7-bit private offsets = 56 bytes).
pub const UNEVEN_ENTRY_BYTES: usize = 56;
/// Logical size of a full Trip entry (64 x 27-bit stealth = 216 bytes).
pub const FULL_ENTRY_BYTES: usize = 216;
/// Allocation granule in Toleo's dynamic region (one uneven entry). A full
/// entry consumes four granules (paper Fig. 5: "1 full entry takes 4 56B
/// blocks").
pub const DYNAMIC_BLOCK_BYTES: usize = 56;
/// Dynamic blocks consumed by one full entry.
pub const FULL_ENTRY_BLOCKS: usize = 4;

/// Configuration of the Toleo freshness system.
///
/// Defaults are the paper's design point: 27-bit stealth versions, 37-bit
/// upper versions, probabilistic reset with p = 2^-20, 4 KB pages of 64-byte
/// cache blocks, and a 168 GB device.
// audit: allow(secret, rng_seed is a simulation reproducibility knob serialized with bench configs, not key material)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ToleoConfig {
    /// Width of the stealth (lower) version in bits. Paper: 27.
    pub stealth_bits: u32,
    /// Width of the upper version (UV) in bits. Paper: 37.
    pub uv_bits: u32,
    /// Reset probability exponent: on each leading-version increment the
    /// stealth version resets with probability `2^-reset_log2`. Paper: 20.
    pub reset_log2: u32,
    /// Maximum uneven-entry offset before upgrade to full. With 7-bit
    /// offsets this is 127 (paper: strides up to 128).
    pub max_uneven_offset: u32,
    /// Total Toleo device capacity in bytes (version storage). Paper:
    /// 168 GB shared across the rack.
    pub device_capacity_bytes: u64,
    /// Bytes of protected conventional memory (data region). Paper:
    /// 24.8 TB of a 28 TB pool (the rest holds MACs + UVs).
    pub protected_bytes: u64,
    /// Seed for the device's D-RaNGe generator (reproducible simulation).
    pub rng_seed: u64,
}

impl Default for ToleoConfig {
    fn default() -> Self {
        ToleoConfig {
            stealth_bits: 27,
            uv_bits: 37,
            reset_log2: 20,
            max_uneven_offset: 127,
            device_capacity_bytes: 168 * (1u64 << 30),
            protected_bytes: 24_800 * (1u64 << 30), // 24.8 TB
            rng_seed: 0xF01E0,
        }
    }
}

impl ToleoConfig {
    /// A small configuration for unit tests and examples: 64 MB protected,
    /// 1 MB device.
    pub fn small() -> Self {
        ToleoConfig {
            device_capacity_bytes: 1 << 20,
            protected_bytes: 64 << 20,
            ..Self::default()
        }
    }

    /// Number of protected pages.
    pub fn protected_pages(&self) -> u64 {
        self.protected_bytes / PAGE_BYTES as u64
    }

    /// Bytes of Toleo memory statically consumed by the flat-entry array
    /// (one flat entry per protected page; paper: 74.6 GB for 24.8 TB).
    pub fn flat_array_bytes(&self) -> u64 {
        self.protected_pages() * FLAT_ENTRY_BYTES as u64
    }

    /// Bytes of Toleo memory available for dynamically allocated uneven and
    /// full entries (paper: 93.4 GB).
    ///
    /// # Panics
    ///
    /// Panics if the device is smaller than the flat array it must host.
    pub fn dynamic_region_bytes(&self) -> u64 {
        let flat = self.flat_array_bytes();
        assert!(
            self.device_capacity_bytes >= flat,
            "device capacity {} B cannot hold flat array {} B",
            self.device_capacity_bytes,
            flat
        );
        self.device_capacity_bytes - flat
    }

    /// Exclusive upper bound of the stealth version space (`2^stealth_bits`).
    pub fn stealth_space(&self) -> u64 {
        1u64 << self.stealth_bits
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.stealth_bits == 0 || self.stealth_bits > 32 {
            return Err(format!(
                "stealth_bits {} out of range 1..=32",
                self.stealth_bits
            ));
        }
        if self.stealth_bits + self.uv_bits > 64 {
            return Err(format!(
                "stealth_bits + uv_bits = {} exceeds 64",
                self.stealth_bits + self.uv_bits
            ));
        }
        if self.reset_log2 >= self.stealth_bits + 8 {
            return Err(format!(
                "reset_log2 {} too large relative to stealth space (resets would be \
                 rarer than wraparound)",
                self.reset_log2
            ));
        }
        if self.max_uneven_offset == 0 || self.max_uneven_offset > 127 {
            return Err(format!(
                "max_uneven_offset {} must fit a 7-bit field",
                self.max_uneven_offset
            ));
        }
        if self.device_capacity_bytes < self.flat_array_bytes() {
            return Err(format!(
                "device capacity {} B smaller than flat array {} B",
                self.device_capacity_bytes,
                self.flat_array_bytes()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_design_point() {
        let cfg = ToleoConfig::default();
        cfg.validate().unwrap();
        assert_eq!(cfg.stealth_bits, 27);
        assert_eq!(cfg.uv_bits, 37);
        assert_eq!(cfg.reset_log2, 20);
        // 24.8 TB protected -> ~74.6 GB of flat entries (paper §4.4; the
        // paper's GB arithmetic is approximate, so allow a few GB of slack:
        // 24.8 TB / 4 KB * 12 B = 72.7 GiB).
        let flat_gb = cfg.flat_array_bytes() as f64 / (1u64 << 30) as f64;
        assert!((flat_gb - 74.6).abs() < 4.0, "flat array = {flat_gb} GB");
        // Remaining dynamic region ~93.4 GB.
        let dyn_gb = cfg.dynamic_region_bytes() as f64 / (1u64 << 30) as f64;
        assert!((dyn_gb - 93.4).abs() < 4.0, "dynamic region = {dyn_gb} GB");
    }

    #[test]
    fn flat_ratio_is_341_to_1() {
        // Paper Table 4: flat protects 4 KB with 12 B -> 341:1.
        let ratio = PAGE_BYTES as f64 / FLAT_ENTRY_BYTES as f64;
        assert!((ratio - 341.0).abs() < 1.0);
    }

    #[test]
    fn uneven_ratio_is_60_to_1() {
        // Uneven pages use flat + uneven entries: 68 B per 4 KB -> 60:1.
        let ratio = PAGE_BYTES as f64 / (FLAT_ENTRY_BYTES + UNEVEN_ENTRY_BYTES) as f64;
        assert!((ratio - 60.0).abs() < 0.5);
    }

    #[test]
    fn full_ratio_is_18_to_1() {
        // Full pages: flat + full = 228 B per 4 KB -> 18:1.
        let ratio = PAGE_BYTES as f64 / (FLAT_ENTRY_BYTES + FULL_ENTRY_BYTES) as f64;
        assert!((ratio - 18.0).abs() < 0.5);
    }

    #[test]
    fn validate_rejects_bad_widths() {
        let mut cfg = ToleoConfig::small();
        cfg.stealth_bits = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = ToleoConfig::small();
        cfg.stealth_bits = 40;
        cfg.uv_bits = 37;
        assert!(cfg.validate().is_err());
        let mut cfg = ToleoConfig::small();
        cfg.max_uneven_offset = 500;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_undersized_device() {
        let mut cfg = ToleoConfig::small();
        cfg.device_capacity_bytes = 16;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn small_config_is_valid() {
        ToleoConfig::small().validate().unwrap();
    }
}
