//! # toleo-core
//!
//! A from-scratch reproduction of **Toleo** (*Scaling Freshness to
//! Tera-scale Memory using CXL and PIM*, ASPLOS 2024): freshness
//! protection for tera-scale memory pools using a small trusted smart
//! memory device, instead of an unscalable Merkle tree.
//!
//! ## Architecture
//!
//! * [`version`] — 64-bit full versions split into a 37-bit upper version
//!   (UV, stored with the MACs in conventional memory) and a 27-bit
//!   *stealth version* (stored only in trusted Toleo memory).
//! * [`trip`] — the Trip (Tri-level Page) compression: flat (12 B / 4 KB
//!   page, 341:1), uneven (+56 B, 60:1) and full (+216 B, 18:1) formats,
//!   upgraded on demand as version locality degrades.
//! * [`device`] — the Toleo device: READ / UPDATE / RESET requests, the
//!   probabilistic stealth reset (p = 2^-20) with random re-initialization,
//!   and dynamic space management.
//! * [`engine`] — the host-side protection engine: AES-XTS with a
//!   `(version, address)` tweak, 56-bit MACs, UV management, page
//!   re-encryption on reset, and the kill switch.
//! * [`sharded`] — the concurrent scale-out layer: page-wise sharding
//!   across N independent engines behind a thread-safe handle, with
//!   batched reads/writes fanned out on scoped workers, per-shard
//!   quarantine on tamper detection (healthy shards keep serving), and
//!   a world-kill escalation for device-level failures.
//! * [`channel`] / [`fault`] — the device fault plane: a [`channel`]
//!   layer that absorbs transient link faults with bounded exponential
//!   backoff and an idempotency guard, driven by a deterministic seeded
//!   [`fault`] injection plan (per-op-type rates, burst windows).
//! * [`cache`] — the L2-TLB stealth extension, the 28 KB overflow buffer,
//!   and the per-core MAC cache.
//! * [`layout`] — data / MAC+UV partitioning of conventional memory.
//! * [`pagetable`] — the open-addressed flat page index backing the
//!   device's Trip-entry array and the arena's page->slot map (one
//!   multiply-shift hash + linear probe instead of a `HashMap` probe on
//!   every memory operation).
//! * [`protected`] — the scheme-agnostic [`ProtectedMemory`] evaluation
//!   interface (single + batch ops, stats, tamper/replay adversary hooks)
//!   that `toleo-baselines` also implements, so every scheme runs the same
//!   harness and the same attack corpus.
//! * [`analysis`] — closed-form and Monte-Carlo §6.2 security margins.
//! * [`rowhammer`] — the §2.1 write-frequency rate limiter the Toleo
//!   controller runs against Rowhammer-style abuse.
//!
//! ## Quickstart
//!
//! ```
//! use toleo_core::config::ToleoConfig;
//! use toleo_core::engine::ProtectionEngine;
//!
//! let mut engine = ProtectionEngine::try_new(ToleoConfig::small(), [0u8; 48])?;
//!
//! // Ordinary protected accesses.
//! engine.write(0x1000, &[1u8; 64])?;
//! assert_eq!(engine.read(0x1000)?, [1u8; 64]);
//!
//! // A replay attack: capture stale ciphertext+MAC, write new data,
//! // replay the stale capsule — the read is detected and killed.
//! let stale = engine.adversary().capture(0x1000);
//! engine.write(0x1000, &[2u8; 64])?;
//! engine.adversary().replay(&stale);
//! assert!(engine.read(0x1000).is_err());
//! # Ok::<(), toleo_core::error::ToleoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod arena;
pub mod cache;
pub mod channel;
pub mod config;
pub mod device;
pub mod engine;
pub mod error;
pub mod fault;
pub mod layout;
pub mod pagetable;
pub mod protected;
pub mod rowhammer;
pub mod sharded;
pub mod trip;
pub mod version;

pub use channel::{ChannelStats, DeviceChannel, RetryPolicy};
pub use config::ToleoConfig;
pub use device::ToleoDevice;
pub use engine::{KillSnapshot, ProtectionEngine};
pub use error::{Result, ToleoError};
pub use fault::{FaultPlan, FaultPlanConfig};
pub use protected::ProtectedMemory;
pub use sharded::ShardedEngine;
