//! Criterion micro-benchmarks for Trip entry operations — the Toleo
//! controller's per-request work.

use criterion::{criterion_group, criterion_main, Criterion};
use toleo_core::config::ToleoConfig;
use toleo_core::trip::PageEntry;
use toleo_core::version::StealthVersion;

fn flat_page() -> PageEntry {
    PageEntry::new_flat(StealthVersion::new(1000, 27))
}

fn uneven_page(cfg: &ToleoConfig) -> PageEntry {
    let mut p = flat_page();
    p.record_write(0, cfg);
    p.record_write(0, cfg);
    p
}

fn full_page(cfg: &ToleoConfig) -> PageEntry {
    let mut p = flat_page();
    for _ in 0..200 {
        p.record_write(0, cfg);
    }
    p
}

fn bench_record_write(c: &mut Criterion) {
    let cfg = ToleoConfig::small();
    let mut g = c.benchmark_group("trip/record_write");
    g.bench_function("flat_round", |b| {
        b.iter_batched(
            flat_page,
            |mut p| {
                for line in 0..64 {
                    p.record_write(line, &cfg);
                }
                p
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("uneven_increment", |b| {
        b.iter_batched(
            || uneven_page(&cfg),
            |mut p| {
                p.record_write(1, &cfg);
                p
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("full_increment", |b| {
        b.iter_batched(
            || full_page(&cfg),
            |mut p| {
                p.record_write(1, &cfg);
                p
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_version_of(c: &mut Criterion) {
    let cfg = ToleoConfig::small();
    let flat = flat_page();
    let uneven = uneven_page(&cfg);
    let full = full_page(&cfg);
    let mut g = c.benchmark_group("trip/version_of");
    g.bench_function("flat", |b| {
        b.iter(|| flat.version_of(std::hint::black_box(17), &cfg))
    });
    g.bench_function("uneven", |b| {
        b.iter(|| uneven.version_of(std::hint::black_box(17), &cfg))
    });
    g.bench_function("full", |b| {
        b.iter(|| full.version_of(std::hint::black_box(17), &cfg))
    });
    g.finish();
}

fn bench_upgrade_paths(c: &mut Criterion) {
    let cfg = ToleoConfig::small();
    let mut g = c.benchmark_group("trip/upgrade");
    g.bench_function("flat_to_uneven", |b| {
        b.iter_batched(
            || {
                let mut p = flat_page();
                p.record_write(0, &cfg);
                p
            },
            |mut p| {
                p.record_write(0, &cfg); // triggers the upgrade
                p
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_record_write,
    bench_version_of,
    bench_upgrade_paths
);
criterion_main!(benches);
