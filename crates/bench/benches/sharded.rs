//! Criterion benchmarks for the sharded engine's batch paths:
//! `write_batch`/`read_batch` fan a batch out across the 8 shards' op
//! queues on scoped worker threads, versus the same ops routed one at a
//! time through the thread-safe handle.

// audit: allow-file(panic, bench setup: aborting on a broken harness is the right failure mode)

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use toleo_core::config::ToleoConfig;
use toleo_core::engine::Block;
use toleo_core::sharded::ShardedEngine;

/// Blocks per batch (one per page across 256 pages, 32 pages per shard).
const BATCH: usize = 256;
/// Shards in the engine under test.
const SHARDS: usize = 8;

fn bench_sharded(c: &mut Criterion) {
    let mut g = c.benchmark_group("sharded");
    g.throughput(Throughput::Elements(BATCH as u64));

    let writes: Vec<(u64, Block)> = (0..BATCH as u64)
        .map(|i| (i * 4096, [i as u8; 64]))
        .collect();
    let addrs: Vec<u64> = writes.iter().map(|(a, _)| *a).collect();

    // Long-lived engines so version state and caches stay warm across
    // iterations, as they would in a real deployment.
    let engine = ShardedEngine::new(ToleoConfig::small(), SHARDS, [0x42u8; 48]).unwrap();
    g.bench_function("write_batch_256", |b| {
        b.iter(|| {
            engine
                .write_batch(std::hint::black_box(&writes))
                .expect("protected write batch")
        })
    });
    engine.read_batch(&addrs).expect("warm");
    g.bench_function("read_batch_256", |b| {
        b.iter(|| {
            engine
                .read_batch(std::hint::black_box(&addrs))
                .expect("protected read batch")
        })
    });

    let engine = ShardedEngine::new(ToleoConfig::small(), SHARDS, [0x42u8; 48]).unwrap();
    g.bench_function("single_op_routing_256", |b| {
        b.iter(|| {
            for (addr, block) in std::hint::black_box(&writes) {
                engine.write(*addr, block).expect("protected write");
            }
            for addr in std::hint::black_box(&addrs) {
                std::hint::black_box(engine.read(*addr).expect("protected read"));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
