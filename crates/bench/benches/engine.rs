//! Criterion end-to-end benchmarks for the functional protection engine:
//! blocks/second for the sequential, random and hot-line-reset-heavy
//! workloads from `toleo_workloads::pattern`, replayed through
//! `ProtectionEngine::{read,write}`. The `throughput` binary emits the
//! same workloads into `BENCH_2.json`; this bench tracks them under
//! `cargo bench`.

// audit: allow-file(panic, bench setup: aborting on a broken harness is the right failure mode)

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use toleo_core::config::ToleoConfig;
use toleo_core::engine::ProtectionEngine;
use toleo_workloads::pattern::{engine_pattern, EnginePattern};
use toleo_workloads::{Op, Trace};

/// Memory ops replayed per iteration.
const OPS: u64 = 10_000;
/// Footprint each pattern is confined to.
const FOOTPRINT_BYTES: u64 = 4 << 20;

fn replay(engine: &mut ProtectionEngine, trace: &Trace) -> u64 {
    let mut checksum = 0u64;
    for op in &trace.ops {
        match op {
            Op::Write(addr) => {
                let fill = (addr >> 6) as u8;
                engine.write(*addr, &[fill; 64]).expect("protected write");
            }
            Op::Read(addr) => {
                let block = engine.read(*addr).expect("protected read");
                checksum = checksum.wrapping_add(block[0] as u64);
            }
            Op::Compute(_) => {}
        }
    }
    checksum
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(OPS));
    for (i, pattern) in EnginePattern::all().into_iter().enumerate() {
        let trace = engine_pattern(pattern, OPS, FOOTPRINT_BYTES, 0xBE2C + i as u64);
        let mut cfg = ToleoConfig::small();
        if pattern == EnginePattern::HotReset {
            cfg.reset_log2 = 8;
        }
        // One long-lived engine per pattern: version state and caches stay
        // warm across iterations, as they would in a real run.
        let mut engine = ProtectionEngine::try_new(cfg, [0x42u8; 48]).unwrap();
        g.bench_function(pattern.name(), |b| {
            b.iter(|| replay(&mut engine, std::hint::black_box(&trace)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
