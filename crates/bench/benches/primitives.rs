//! Criterion micro-benchmarks for the cryptographic primitives on the
//! protection engine's hot path: AES block, XTS cache-block encryption,
//! 56-bit MAC, and IDE flit processing.

// audit: allow-file(panic, bench setup: aborting on a broken harness is the right failure mode)

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use toleo_crypto::aes::Aes128;
use toleo_crypto::backend::available_backends;
use toleo_crypto::ide::establish_session;
use toleo_crypto::mac::MacKey;
use toleo_crypto::modes::{AesCtr, AesXts, Tweak};

fn bench_aes_block(c: &mut Criterion) {
    let aes = Aes128::new(b"0123456789abcdef");
    let block = [0x5au8; 16];
    let mut g = c.benchmark_group("aes128");
    g.throughput(Throughput::Bytes(16));
    g.bench_function("encrypt_block", |b| {
        b.iter(|| aes.encrypt_block(std::hint::black_box(&block)))
    });
    g.bench_function("decrypt_block", |b| {
        b.iter(|| aes.decrypt_block(std::hint::black_box(&block)))
    });
    g.finish();
}

/// Single-block and pipelined 8-wide AES for every backend this host can
/// construct (software T-table everywhere, AES-NI / ARMv8-CE where
/// detected).
fn bench_aes_backends(c: &mut Criterion) {
    for kind in available_backends() {
        let aes = Aes128::with_backend(b"0123456789abcdef", kind);
        let block = [0x5au8; 16];
        let mut lanes = [[0x5au8; 16]; 8];
        let mut g = c.benchmark_group(format!("aes128/{}", kind.name()));
        g.throughput(Throughput::Bytes(16));
        g.bench_function("encrypt_block", |b| {
            b.iter(|| aes.encrypt_block(std::hint::black_box(&block)))
        });
        g.throughput(Throughput::Bytes(128));
        g.bench_function("encrypt_blocks8", |b| {
            b.iter(|| aes.encrypt_blocks8(std::hint::black_box(&mut lanes)))
        });
        g.finish();
    }
}

fn bench_xts_cache_block(c: &mut Criterion) {
    let xts = AesXts::new(b"0123456789abcdef", b"fedcba9876543210");
    let tweak = Tweak {
        version: 77,
        address: 0x4000,
    };
    let mut g = c.benchmark_group("xts");
    g.throughput(Throughput::Bytes(64));
    g.bench_function("encrypt_64B_cache_block", |b| {
        b.iter(|| {
            let mut blk = [0xabu8; 64];
            xts.encrypt(std::hint::black_box(tweak), &mut blk);
            blk
        })
    });
    g.finish();
}

fn bench_ctr_cache_block(c: &mut Criterion) {
    let ctr = AesCtr::new(b"0123456789abcdef");
    let mut g = c.benchmark_group("ctr");
    g.throughput(Throughput::Bytes(64));
    g.bench_function("apply_64B_cache_block", |b| {
        b.iter(|| {
            let mut blk = [0xabu8; 64];
            ctr.apply(9, 0x4000, &mut blk);
            blk
        })
    });
    g.finish();
}

fn bench_mac(c: &mut Criterion) {
    let key = MacKey::new([7u8; 16]);
    let ct = [0x11u8; 64];
    let mut g = c.benchmark_group("mac");
    g.throughput(Throughput::Bytes(64));
    g.bench_function("tag56_over_cache_block", |b| {
        b.iter(|| key.mac(std::hint::black_box(42), 0x4000, &ct))
    });
    g.finish();
}

fn bench_ide(c: &mut Criterion) {
    let mut g = c.benchmark_group("ide");
    g.throughput(Throughput::Bytes(16));
    g.bench_function("send_receive_version_flit", |b| {
        let (mut tx, mut rx) = establish_session([0x33u8; 32]);
        b.iter(|| {
            let flit = tx.send(b"stealth-version!");
            rx.receive(&flit).expect("in-order flit")
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_aes_block,
    bench_aes_backends,
    bench_xts_cache_block,
    bench_ctr_cache_block,
    bench_mac,
    bench_ide
);
criterion_main!(benches);
