//! The headline comparison: freshness metadata cost per memory write for
//! the Merkle counter tree (client SGX) vs the Toleo device, plus the full
//! protected read/write path of each engine.

// audit: allow-file(panic, bench setup: aborting on a broken harness is the right failure mode)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use toleo_baselines::sgx::SgxEngine;
use toleo_baselines::tree::CounterTree;
use toleo_core::config::ToleoConfig;
use toleo_core::device::ToleoDevice;
use toleo_core::engine::ProtectionEngine;

/// Version maintenance alone: tree update (walk + re-MAC each level) vs a
/// single Toleo UPDATE, across protected-memory sizes.
fn bench_version_update(c: &mut Criterion) {
    let mut g = c.benchmark_group("freshness/version_update");
    for log2_blocks in [14u32, 18, 22] {
        g.bench_with_input(
            BenchmarkId::new("merkle_tree", 1u64 << log2_blocks),
            &log2_blocks,
            |b, &l| {
                let mut tree = CounterTree::new(8, 1 << l, 512);
                let mut i = 0u64;
                b.iter(|| {
                    i = (i + 4097) % (1 << l);
                    tree.update(i).expect("untampered tree")
                })
            },
        );
    }
    g.bench_function("toleo_device", |b| {
        let mut cfg = ToleoConfig::small();
        cfg.protected_bytes = 1 << 30;
        cfg.device_capacity_bytes = cfg.flat_array_bytes() + (8 << 20);
        let mut dev = ToleoDevice::new(cfg).expect("valid ToleoConfig");
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 4097) % (1 << 18);
            dev.update(i % 1024, (i % 64) as usize).expect("in range")
        })
    });
    g.finish();
}

/// Full protected write+read round trip of the two functional engines.
fn bench_engine_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("freshness/engine_roundtrip");
    g.bench_function("toleo_engine", |b| {
        let mut e = ProtectionEngine::try_new(ToleoConfig::small(), [9u8; 48]).unwrap();
        let data = [0x42u8; 64];
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 64) % (1 << 20);
            e.write(addr, &data).expect("write ok");
            e.read(addr).expect("read ok")
        })
    });
    g.bench_function("sgx_engine", |b| {
        let mut e = SgxEngine::new(1 << 20);
        let data = [0x42u8; 64];
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 64) % (1 << 20);
            e.write(addr, &data).expect("write ok");
            e.read(addr).expect("read ok")
        })
    });
    g.finish();
}

/// Stealth cache lookup cost (the 98%-hit fast path).
fn bench_stealth_cache(c: &mut Criterion) {
    use toleo_core::cache::StealthCache;
    use toleo_core::trip::TripFormat;
    let mut g = c.benchmark_group("freshness/stealth_cache");
    g.bench_function("hit", |b| {
        let mut sc = StealthCache::paper_default();
        sc.access(7, TripFormat::Flat);
        b.iter(|| sc.access(7, TripFormat::Flat))
    });
    g.bench_function("miss_stream", |b| {
        let mut sc = StealthCache::paper_default();
        let mut p = 0u64;
        b.iter(|| {
            p += 1;
            sc.access(p, TripFormat::Flat)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_version_update,
    bench_engine_roundtrip,
    bench_stealth_cache
);
criterion_main!(benches);
