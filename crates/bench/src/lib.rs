//! # toleo-bench
//!
//! Harness regenerating every table and figure of the Toleo paper's
//! evaluation (Section 6), plus two wall-clock harnesses over the
//! functional engine. The single entry point is the `reproduce` binary:
//!
//! ```sh
//! cargo run --release -p toleo-bench --bin reproduce
//! ```
//!
//! which runs every experiment in [`experiments::REGISTRY`], writes a
//! `results/` tree (JSON + Markdown per experiment), diffs it against
//! the committed `expected/` references and `BENCH_*.json` perf floors,
//! and exits nonzero on any divergence. Each `src/bin/tableN.rs` /
//! `src/bin/figN.rs` binary is a thin wrapper over the same registry
//! entry via [`experiments::cli_main`], so a scoped single-figure run
//! and the full reproduction can never disagree.
//!
//! Module map:
//!
//! - [`experiments`] — the registry: every table/figure/harness as a
//!   named [`experiments::Experiment`] returning a [`report::Report`],
//!   with a shared memoizing [`experiments::RunCtx`].
//! - [`report`] — the experiment output model (`toleo-experiment/v1`
//!   schema): metrics + tables, deterministic 9-significant-digit JSON,
//!   Markdown/text renderers.
//! - [`repro`] — delta machinery: exact or structural comparison vs
//!   `expected/`, perf-floor checks vs a `BENCH_*.json` baseline,
//!   availability invariants, and the `EXPERIMENTS.md` generated-block
//!   splicer.
//! - [`perf`] — the wall-clock throughput and availability harnesses
//!   (engine workloads, AES backends, sharded scaling, scheme arena,
//!   fault injection, quarantine).
//! - [`trajectory`] — renders the committed `BENCH_2 → BENCH_6`
//!   performance lineage.
//! - [`harness`] — shared trace machinery: generate all 12 workload
//!   traces once, run them under any protection configuration (in
//!   parallel across workloads).
//! - [`json`] / [`gate`] — minimal JSON reader (the workspace vendors no
//!   `serde_json`) and the baseline readers built on it: `BENCH_*.json`
//!   is parsed *structurally* and keyed by workload/scheme/backend name,
//!   so reordered rows or adjacent `batch_blocks_per_sec` /
//!   `wall_blocks_per_sec` keys can never mis-pair a floor with the
//!   wrong measurement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod gate;
pub mod json;
pub mod perf;
pub mod report;
pub mod repro;
pub mod trajectory;

pub mod harness {
    //! Shared run-everything machinery for the per-figure binaries.

    use toleo_sim::config::{Protection, SimConfig};
    use toleo_sim::system::{RunStats, System};
    use toleo_workloads::{generate, Benchmark, GenConfig};

    /// Standard generation config for the figures (bigger than unit-test
    /// traces, still seconds to run). The `TOLEO_BENCH_OPS` environment
    /// variable overrides the per-trace op count — the CI smoke job uses
    /// it to drive every fig/table binary end-to-end in seconds, so the
    /// binaries cannot bit-rot without a paper-scale run.
    pub fn gen_config() -> GenConfig {
        let mut cfg = GenConfig::default();
        if let Some(ops) = std::env::var("TOLEO_BENCH_OPS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            assert!(ops > 0, "TOLEO_BENCH_OPS must be positive");
            cfg.mem_ops = ops;
        }
        cfg
    }

    /// Generates all 12 traces.
    pub fn all_traces(cfg: &GenConfig) -> Vec<toleo_workloads::Trace> {
        Benchmark::all().iter().map(|b| generate(*b, cfg)).collect()
    }

    /// Runs every benchmark under `protection`, in parallel, preserving
    /// Table 2 order.
    pub fn run_all(protection: Protection) -> Vec<RunStats> {
        run_all_with(protection, &gen_config())
    }

    /// Runs every benchmark under `protection` with a custom generation
    /// config.
    pub fn run_all_with(protection: Protection, gen: &GenConfig) -> Vec<RunStats> {
        let traces = all_traces(gen);
        let mut out: Vec<Option<RunStats>> = vec![None; traces.len()];
        std::thread::scope(|s| {
            for (slot, trace) in out.iter_mut().zip(&traces) {
                s.spawn(move || {
                    let mut sys = System::new(SimConfig::scaled(protection));
                    *slot = Some(sys.run(trace));
                });
            }
        });
        // audit: allow(panic, scoped threads fill every slot before the scope exits)
        out.into_iter().map(|o| o.expect("run completed")).collect()
    }

    /// Geometric mean of a slice (the paper's preferred average for
    /// overhead ratios).
    pub fn geomean(xs: &[f64]) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
    }

    /// Arithmetic mean.
    pub fn mean(xs: &[f64]) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    /// Formats a row of cells with the given column widths.
    pub fn row(cells: &[String], widths: &[usize]) -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn geomean_of_ones_is_one() {
            assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
            assert_eq!(geomean(&[]), 0.0);
        }

        #[test]
        fn geomean_known_value() {
            assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        }

        #[test]
        fn mean_known_value() {
            assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        }

        #[test]
        fn run_all_produces_twelve() {
            let gen = toleo_workloads::GenConfig {
                mem_ops: 1_000,
                ..Default::default()
            };
            let stats = run_all_with(toleo_sim::config::Protection::NoProtect, &gen);
            assert_eq!(stats.len(), 12);
            assert_eq!(stats[0].name, "bsw");
            assert_eq!(stats[11].name, "hyrise");
        }
    }
}
