//! §6.2 security analysis: closed-form and Monte-Carlo bounds on stealth
//! space exhaustion and replay success.

// audit: allow-file(secret, reports Monte Carlo RNG seeds for reproducibility, not key material)

use super::RunCtx;
use crate::report::{Cell, Report, Table};
use toleo_core::analysis::{monte_carlo_resets, StealthAnalysis};

/// Computes the §6.2 bounds (scale-independent: the Monte-Carlo update
/// counts are fixed, not trace-derived).
pub fn run(_ctx: &RunCtx) -> Report {
    let a = StealthAnalysis::default();
    let mut report = Report::new("sec62", "Section 6.2: Full Version Is Non-Repeating", 0);
    let mut closed = Table::new("closed-form bounds", &["quantity", "value"]);
    closed.row(vec![
        Cell::text("stealth bits"),
        Cell::int(a.stealth_bits as u64),
    ]);
    closed.row(vec![
        Cell::text("reset probability"),
        Cell::text(format!("2^-{}", a.reset_log2)),
    ]);
    closed.row(vec![
        Cell::text("P(no reset in one interval)"),
        Cell::sci(a.p_no_reset_in_interval()),
    ]);
    closed.row(vec![
        Cell::text("P(stealth space exhaustion)"),
        Cell::sci(a.p_exhaustion()),
    ]);
    closed.row(vec![
        Cell::text("P(single replay success)"),
        Cell::sci(a.p_replay_success()),
    ]);
    report.tables.push(closed);
    report.metric("p_no_reset_in_interval", a.p_no_reset_in_interval());
    report.metric("p_exhaustion", a.p_exhaustion());
    report.metric("p_replay_success", a.p_replay_success());

    let mut mc = Table::new(
        "Monte-Carlo validation (space 2^12, reset 2^-5, same headroom ratio as 2^27 / 2^-20)",
        &["seed", "resets", "updates", "longest run", "exhausted"],
    );
    for seed in [1u64, 2, 3] {
        let r = monte_carlo_resets(12, 5, 2_000_000, seed);
        report.metric(format!("mc.seed{seed}.longest_run"), r.longest_run as f64);
        report.metric(
            format!("mc.seed{seed}.exhausted"),
            u64::from(r.exhausted) as f64,
        );
        mc.row(vec![
            Cell::int(seed),
            Cell::int(r.resets),
            Cell::int(r.updates),
            Cell::int(r.longest_run),
            Cell::bool(r.exhausted),
        ]);
    }
    report.tables.push(mc);

    let bad = monte_carlo_resets(4, 12, 100_000, 1);
    let mut neg = Table::new(
        "negative control (space 2^4, reset 2^-12 — resets too rare)",
        &["resets", "longest run", "exhausted (expected: true)"],
    );
    neg.row(vec![
        Cell::int(bad.resets),
        Cell::int(bad.longest_run),
        Cell::bool(bad.exhausted),
    ]);
    report.tables.push(neg);
    report.metric(
        "negative_control.exhausted",
        u64::from(bad.exhausted) as f64,
    );
    report.note("paper derivation: P(no reset) = e^-64 = 1.6e-28; P(exhaustion) = 1.7e-19; P(replay) = 2^-27");
    report
}
