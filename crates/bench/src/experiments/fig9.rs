//! Figure 9: average memory read latency, decomposed into DRAM access,
//! decryption (C), integrity (I) and freshness (Toleo) components.

use super::RunCtx;
use crate::harness::mean;
use crate::report::{Cell, Report, Table};
use toleo_sim::config::{Protection, SimConfig};

/// Measures the latency decomposition for every protection.
pub fn run(ctx: &RunCtx) -> Report {
    let mut report = Report::new(
        "fig9",
        "Figure 9. Average Memory Read Latency (ns)",
        ctx.gen.mem_ops as u64,
    );
    for p in Protection::all() {
        let mut table = Table::new(
            format!("{p}"),
            &["bench", "dram", "aes", "mac", "fresh", "total"],
        );
        let mut totals = Vec::new();
        for s in ctx.run_all(p).iter() {
            totals.push(s.avg_read_latency_ns());
            table.row(vec![
                Cell::text(&s.name),
                Cell::num(s.avg_dram_ns, 0),
                Cell::num(s.avg_aes_ns, 0),
                Cell::num(s.avg_mac_ns, 0),
                Cell::num(s.avg_fresh_ns, 0),
                Cell::num(s.avg_read_latency_ns(), 0),
            ]);
        }
        report.metric(format!("read_latency_ns.{p}.avg"), mean(&totals));
        report.tables.push(table);
    }
    let cfg = SimConfig::scaled(Protection::NoProtect);
    let zero_load = cfg.dram.zero_load_ns() + cfg.dram.t_rcd_ns;
    report.metric("zero_load_dram_ns", zero_load);
    report.note(format!("Zero-load DRAM reference: {zero_load:.0} ns"));
    report.note("paper: AES +18.6%, integrity +36.9%, Toleo <5% except redis/memcached");
    report
}
