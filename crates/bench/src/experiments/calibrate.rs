//! Calibration dashboard: per-benchmark measured vs paper targets.

// audit: allow-file(panic, figure experiment: abort on degenerate runs rather than emit bad data)

use super::RunCtx;
use crate::report::{Cell, Report, Table};
use toleo_sim::config::Protection;
use toleo_workloads::Benchmark;

/// Builds the calibration dashboard.
pub fn run(ctx: &RunCtx) -> Report {
    let base = ctx.run_all(Protection::NoProtect);
    let ci = ctx.run_all(Protection::Ci);
    let toleo = ctx.run_all(Protection::Toleo);
    let mut report = Report::new(
        "calibrate",
        "Calibration dashboard: measured vs paper targets",
        ctx.gen.mem_ops as u64,
    );
    let mut table = Table::new(
        "",
        &[
            "bench", "mpki", "target", "st-hit", "mac-hit", "CI-ovh", "T-ovh", "T-CI", "flat%",
            "unev%", "full%",
        ],
    );
    let mut mpki_err = Vec::new();
    for (i, b) in Benchmark::all().iter().enumerate() {
        let (f, u, fl) = toleo[i].trip_pages;
        let tot = (f + u + fl).max(1) as f64;
        // Typed-error overhead math: degenerate (zero-cycle) runs abort
        // with a message instead of printing NaN rows.
        let overhead = |run: &toleo_sim::system::RunStats, base: &toleo_sim::system::RunStats| {
            run.overhead_vs(base)
                .unwrap_or_else(|e| panic!("calibrate {}: {e}", b.name()))
        };
        mpki_err.push((base[i].llc_mpki - b.paper_mpki()).abs());
        table.row(vec![
            Cell::text(b.name()),
            Cell::num(base[i].llc_mpki, 2),
            Cell::num(b.paper_mpki(), 2),
            Cell::pct(toleo[i].stealth_hit_rate, 1),
            Cell::pct(toleo[i].mac_hit_rate, 1),
            Cell::pct(overhead(&ci[i], &base[i]), 1),
            Cell::pct(overhead(&toleo[i], &base[i]), 1),
            Cell::pct(overhead(&toleo[i], &ci[i]), 1),
            Cell::pct(f as f64 / tot, 1),
            Cell::pct(u as f64 / tot, 1),
            Cell::pct(fl as f64 / tot, 2),
        ]);
    }
    report.tables.push(table);
    report.metric(
        "mpki.mean_abs_error",
        mpki_err.iter().sum::<f64>() / mpki_err.len() as f64,
    );
    report
}
