//! Table 2: benchmark characteristics — measured LLC MPKI and RSS of the
//! synthetic traces, next to the paper's values for the real
//! applications.

use super::RunCtx;
use crate::report::{Cell, Report, Table};
use toleo_sim::config::Protection;
use toleo_workloads::Benchmark;

/// Measures the NoProtect characteristics of every trace.
pub fn run(ctx: &RunCtx) -> Report {
    let stats = ctx.run_all(Protection::NoProtect);
    let mut report = Report::new(
        "table2",
        "Table 2. Benchmarks (measured on the scaled simulator; paper values for reference)",
        ctx.gen.mem_ops as u64,
    );
    let mut table = Table::new(
        "",
        &[
            "bench",
            "LLC mpki",
            "RSS (MB)",
            "paper mpki",
            "paper RSS (GB)",
        ],
    );
    for (b, s) in Benchmark::all().iter().zip(stats.iter()) {
        let rss_mb = s.rss_bytes as f64 / (1 << 20) as f64;
        report.metric(format!("{}.llc_mpki", s.name), s.llc_mpki);
        report.metric(format!("{}.rss_mb", s.name), rss_mb);
        table.row(vec![
            Cell::text(&s.name),
            Cell::num(s.llc_mpki, 2),
            Cell::num(rss_mb, 1),
            Cell::num(b.paper_mpki(), 2),
            Cell::num(b.paper_rss_gb(), 1),
        ]);
    }
    report.tables.push(table);
    report
}
