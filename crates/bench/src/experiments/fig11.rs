//! Figure 11: peak Toleo usage per TB of protected data.

use super::RunCtx;
use crate::harness::mean;
use crate::report::{Cell, Report, Table};
use toleo_sim::config::Protection;

/// Measures the GB-per-TB accounting.
pub fn run(ctx: &RunCtx) -> Report {
    let stats = ctx.run_all(Protection::Toleo);
    let mut report = Report::new(
        "fig11",
        "Figure 11. Peak Toleo Usage (GB per TB of protected data)",
        ctx.gen.mem_ops as u64,
    );
    let mut table = Table::new("", &["bench", "flat", "uneven", "full", "total"]);
    let mut totals = Vec::new();
    for s in stats.iter() {
        // bytes/byte -> GB/TB
        let scale = 1000.0 / s.rss_bytes as f64;
        // Paper accounting: the flat array is statically mapped over the
        // whole RSS; uneven/full side entries are dynamic.
        let flat = (s.rss_bytes / 4096 * 12) as f64 * scale;
        let dynamic = s.peak_toleo.dynamic_bytes as f64 * scale;
        let (_, un, fu) = s.trip_pages;
        let uneven_gb =
            dynamic * (un as f64 * 56.0) / (un as f64 * 56.0 + fu as f64 * 224.0).max(1.0);
        let full_gb = dynamic - uneven_gb;
        let total = s.toleo_gb_per_tb();
        totals.push(total);
        report.metric(format!("{}.gb_per_tb", s.name), total);
        table.row(vec![
            Cell::text(&s.name),
            Cell::num(flat, 2),
            Cell::num(uneven_gb, 2),
            Cell::num(full_gb, 2),
            Cell::num(total, 2),
        ]);
    }
    table.row(vec![
        Cell::text("average"),
        Cell::text(""),
        Cell::text(""),
        Cell::text(""),
        Cell::num(mean(&totals), 2),
    ]);
    report.tables.push(table);
    report.metric("gb_per_tb.avg", mean(&totals));
    report.note("paper: 4.27 GB/TB average; fmi worst at 7.6; 168 GB protects ~37 TB");
    report
}
