//! Table 1: memory-protection guarantee comparison.

use super::RunCtx;
use crate::report::{Cell, Report, Table};
use toleo_baselines::schemes::Scheme;

/// Builds the guarantee matrix (scale-independent).
pub fn run(_ctx: &RunCtx) -> Report {
    let mut report = Report::new("table1", "Table 1. Memory Protection Comparison", 0);
    let schemes = Scheme::table1();
    let mut table = Table::new("", &["Protects", "Client SGX", "Scalable SGX", "Toleo"]);
    type GetCell = fn(&toleo_baselines::Guarantees) -> String;
    let rows: [(&str, GetCell); 4] = [
        ("Full Physical Memory Space", |g| g.full_space.to_string()),
        ("Confidentiality", |g| g.confidentiality.to_string()),
        ("Integrity", |g| g.integrity.to_string()),
        ("Freshness", |g| g.freshness.to_string()),
    ];
    for (label, get) in rows {
        let mut cells = vec![Cell::text(label)];
        cells.extend(schemes.iter().map(|s| Cell::text(get(&s.guarantees()))));
        table.row(cells);
    }
    report.tables.push(table);
    report
}
