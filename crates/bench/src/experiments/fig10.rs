//! Figure 10: pages classified by their final Trip format.

use super::RunCtx;
use crate::report::{Cell, Report, Table};
use toleo_sim::config::Protection;

/// Measures the Trip-format page mix.
pub fn run(ctx: &RunCtx) -> Report {
    let stats = ctx.run_all(Protection::Toleo);
    let mut report = Report::new(
        "fig10",
        "Figure 10. Pages classified by their Trip format (%)",
        ctx.gen.mem_ops as u64,
    );
    let mut table = Table::new("", &["bench", "flat", "uneven", "full"]);
    let (mut tf, mut tu, mut tfu) = (0u64, 0u64, 0u64);
    for s in stats.iter() {
        let (f, u, fl) = s.trip_pages;
        let total = (f + u + fl).max(1) as f64;
        tf += f;
        tu += u;
        tfu += fl;
        table.row(vec![
            Cell::text(&s.name),
            Cell::pct(f as f64 / total, 1),
            Cell::pct(u as f64 / total, 1),
            Cell::pct(fl as f64 / total, 2),
        ]);
    }
    let total = (tf + tu + tfu) as f64;
    table.row(vec![
        Cell::text("overall"),
        Cell::pct(tf as f64 / total, 1),
        Cell::pct(tu as f64 / total, 1),
        Cell::pct(tfu as f64 / total, 2),
    ]);
    report.tables.push(table);
    report.metric("overall.flat_fraction", tf as f64 / total);
    report.metric("overall.uneven_fraction", tu as f64 / total);
    report.metric("overall.full_fraction", tfu as f64 / total);
    report.note("paper: 92% flat, 7.5% uneven, 0.32% full; fmi most uneven at 33%");
    report
}
