//! Table 4: freshness-protected version size comparison. Static rows
//! from the entry layouts; Toleo's average row measured from the 12
//! workloads' Trip-format mix.

use super::RunCtx;
use crate::report::{Cell, Report, Table};
use toleo_baselines::schemes::VersionScheme;
use toleo_sim::config::Protection;

/// Static layout rows plus the measured Trip-mix average.
pub fn run(ctx: &RunCtx) -> Report {
    let mut report = Report::new(
        "table4",
        "Table 4. Freshness Protected Version Size Comparison",
        ctx.gen.mem_ops as u64,
    );
    let mut table = Table::new(
        "",
        &[
            "Representation",
            "Version Size (B)",
            "Data Protected (B)",
            "Data:Version",
        ],
    );
    for r in VersionScheme::table4_static() {
        table.row(vec![
            Cell::text(r.name),
            Cell::num(r.version_bytes, 1),
            Cell::int(r.data_bytes),
            Cell::num(r.ratio(), 1),
        ]);
    }
    // Measured average across the 12 workloads: weight each page's entry
    // size by the final Trip-format mix.
    let stats = ctx.run_all(Protection::Toleo);
    let (mut flat, mut uneven, mut full) = (0u64, 0u64, 0u64);
    for s in stats.iter() {
        flat += s.trip_pages.0;
        uneven += s.trip_pages.1;
        full += s.trip_pages.2;
    }
    let pages = (flat + uneven + full) as f64;
    let avg_bytes = (flat as f64 * 12.0 + uneven as f64 * 68.0 + full as f64 * 228.0) / pages;
    let avg = VersionScheme {
        name: "Toleo Stealth Avg. (measured)",
        version_bytes: avg_bytes,
        data_bytes: 4096,
    };
    table.row(vec![
        Cell::text(avg.name),
        Cell::num(avg.version_bytes, 2),
        Cell::int(avg.data_bytes),
        Cell::num(avg.ratio(), 1),
    ]);
    report.tables.push(table);
    report.metric("measured.avg_version_bytes", avg_bytes);
    report.metric("measured.data_to_version_ratio", avg.ratio());
    report.metric("mix.flat_fraction", flat as f64 / pages);
    report.metric("mix.uneven_fraction", uneven as f64 / pages);
    report.metric("mix.full_fraction", full as f64 / pages);
    report.note(format!(
        "paper: avg 17.08 B -> 240:1; page mix here: {:.1}% flat, {:.1}% uneven, {:.2}% full",
        flat as f64 / pages * 100.0,
        uneven as f64 / pages * 100.0,
        full as f64 / pages * 100.0
    ));
    report
}
