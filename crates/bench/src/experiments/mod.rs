//! The experiment registry: every paper figure/table plus the wall-clock
//! harnesses as library entry points.
//!
//! Each `src/bin/*.rs` figure binary used to own its experiment logic;
//! the logic now lives here as a module returning a structured
//! [`Report`], and the binaries are thin wrappers over [`cli_main`].
//! That gives the `reproduce` harness (and the test suite) the same
//! entry points the binaries use: run one experiment, get back machine-
//! comparable tables and metrics instead of stdout text.
//!
//! A [`RunCtx`] carries the scale knobs and memoizes the expensive
//! simulator sweeps: several experiments need "all 12 workloads under
//! protection P", and the cache means each (protection, scale) pair is
//! simulated once per process instead of once per experiment.
//!
//! # Example
//!
//! Run one experiment at a tiny scale and inspect its output:
//!
//! ```
//! use toleo_bench::experiments;
//!
//! let ctx = experiments::RunCtx::with_ops(2_000, 2_000);
//! let exp = experiments::find("fig10").expect("registered");
//! let report = (exp.run)(&ctx);
//! assert_eq!(report.name, "fig10");
//! assert!(report.get_metric("overall.flat_fraction").is_some());
//! // Machine-readable form parses under the workspace JSON reader.
//! assert!(toleo_bench::json::parse(&report.to_json()).is_ok());
//! ```

pub mod ablations;
pub mod availability;
pub mod calibrate;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod recovery;
pub mod sec62;
pub mod sim_summary;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod throughput;

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::perf;
use crate::report::Report;
use toleo_sim::config::Protection;
use toleo_sim::system::RunStats;
use toleo_workloads::GenConfig;

/// One registered experiment.
pub struct Experiment {
    /// Registry name; also the binary name and the `results/<name>.*`
    /// stem.
    pub name: &'static str,
    /// Which paper element it reproduces ("Figure 6", "Table 2", …).
    pub paper_ref: &'static str,
    /// One-line description for `reproduce --list` and the summary.
    pub about: &'static str,
    /// `true` for wall-clock measurements (throughput, availability):
    /// their numbers vary run-to-run, so the delta report checks them
    /// structurally and gates them with tolerance floors instead of
    /// exact reference comparison.
    pub timing: bool,
    /// The entry point.
    pub run: fn(&RunCtx) -> Report,
}

/// Scale knobs plus the memoized simulator sweeps shared by every
/// experiment in one `reproduce` run.
pub struct RunCtx {
    /// Trace-generation config for the modeled-cycles experiments.
    pub gen: GenConfig,
    /// Ops per workload for the wall-clock harnesses.
    pub perf_ops: u64,
    /// Iterations per AES timing window (reduced in smoke mode).
    pub aes_iters: u32,
    cache: RefCell<HashMap<&'static str, Rc<Vec<RunStats>>>>,
}

fn protection_key(p: Protection) -> &'static str {
    match p {
        Protection::NoProtect => "NoProtect",
        Protection::C => "C",
        Protection::Ci => "CI",
        Protection::Toleo => "Toleo",
        Protection::InvisiMem => "InvisiMem",
    }
}

impl RunCtx {
    /// The standard context: paper-scale defaults, overridden by the
    /// `TOLEO_BENCH_OPS` environment variable (which scales the modeled
    /// traces and the wall-clock replay together — the CI smoke job sets
    /// it to drive the whole registry in seconds).
    pub fn from_env() -> RunCtx {
        let gen = crate::harness::gen_config();
        let perf_ops = std::env::var("TOLEO_BENCH_OPS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(perf::DEFAULT_OPS);
        RunCtx::with_gen(gen, perf_ops)
    }

    /// A context at explicit scales (used by tests and `--ops`).
    pub fn with_ops(mem_ops: usize, perf_ops: u64) -> RunCtx {
        let gen = GenConfig {
            mem_ops,
            ..Default::default()
        };
        RunCtx::with_gen(gen, perf_ops)
    }

    fn with_gen(gen: GenConfig, perf_ops: u64) -> RunCtx {
        RunCtx {
            gen,
            perf_ops,
            // Full AES windows take ~seconds; smoke runs shrink them.
            aes_iters: if perf_ops < 50_000 {
                2_000
            } else {
                perf::AES_ITERS
            },
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// All 12 workloads under `protection`, memoized per protection for
    /// the lifetime of this context.
    pub fn run_all(&self, protection: Protection) -> Rc<Vec<RunStats>> {
        let key = protection_key(protection);
        if let Some(hit) = self.cache.borrow().get(key) {
            return Rc::clone(hit);
        }
        let stats = Rc::new(crate::harness::run_all_with(protection, &self.gen));
        self.cache.borrow_mut().insert(key, Rc::clone(&stats));
        stats
    }
}

/// Every experiment, in reporting order: the paper's tables, its
/// figures, the security analysis and ablations, the raw simulator
/// summary, then the wall-clock harnesses.
pub static REGISTRY: [Experiment; 18] = [
    Experiment {
        name: "table1",
        paper_ref: "Table 1",
        about: "memory-protection guarantee comparison",
        timing: false,
        run: table1::run,
    },
    Experiment {
        name: "table2",
        paper_ref: "Table 2",
        about: "benchmark characteristics: measured LLC MPKI and RSS vs paper",
        timing: false,
        run: table2::run,
    },
    Experiment {
        name: "table3",
        paper_ref: "Table 3",
        about: "simulation configuration (paper preset and scaled preset)",
        timing: false,
        run: table3::run,
    },
    Experiment {
        name: "table4",
        paper_ref: "Table 4",
        about: "freshness-protected version size comparison",
        timing: false,
        run: table4::run,
    },
    Experiment {
        name: "fig6",
        paper_ref: "Figure 6",
        about: "execution-time overhead of CI/Toleo/InvisiMem vs NoProtect",
        timing: false,
        run: fig6::run,
    },
    Experiment {
        name: "fig7",
        paper_ref: "Figure 7",
        about: "stealth-cache and MAC-cache hit rates",
        timing: false,
        run: fig7::run,
    },
    Experiment {
        name: "fig8",
        paper_ref: "Figure 8",
        about: "memory bandwidth overhead: bytes per instruction by traffic class",
        timing: false,
        run: fig8::run,
    },
    Experiment {
        name: "fig9",
        paper_ref: "Figure 9",
        about: "average memory read latency decomposition",
        timing: false,
        run: fig9::run,
    },
    Experiment {
        name: "fig10",
        paper_ref: "Figure 10",
        about: "pages classified by final Trip format",
        timing: false,
        run: fig10::run,
    },
    Experiment {
        name: "fig11",
        paper_ref: "Figure 11",
        about: "peak Toleo usage per TB of protected data",
        timing: false,
        run: fig11::run,
    },
    Experiment {
        name: "fig12",
        paper_ref: "Figure 12",
        about: "Toleo usage by Trip format over time",
        timing: false,
        run: fig12::run,
    },
    Experiment {
        name: "sec62",
        paper_ref: "Section 6.2",
        about: "stealth exhaustion / replay probability bounds + Monte-Carlo",
        timing: false,
        run: sec62::run,
    },
    Experiment {
        name: "ablations",
        paper_ref: "Section 7 (design choices)",
        about: "reset policy, Trip dynamism, stealth width, tree walks, hot writes",
        timing: false,
        run: ablations::run,
    },
    Experiment {
        name: "calibrate",
        paper_ref: "Table 2 + Figures 6/7/10",
        about: "calibration dashboard: measured vs paper targets",
        timing: false,
        run: calibrate::run,
    },
    Experiment {
        name: "sim-summary",
        paper_ref: "Section 5 (methodology)",
        about: "raw modeled cycles/traffic for all 12 workloads x 5 protections",
        timing: false,
        run: sim_summary::run,
    },
    Experiment {
        name: "throughput",
        paper_ref: "BENCH_* lineage",
        about: "wall-clock engine/AES/sharded/scheme throughput harness",
        timing: true,
        run: throughput::run,
    },
    Experiment {
        name: "availability",
        paper_ref: "BENCH_6 availability section",
        about: "goodput under injected faults + one-shard quarantine containment",
        timing: true,
        run: availability::run,
    },
    Experiment {
        name: "recovery",
        paper_ref: "BENCH_7 availability section",
        about: "adversary campaign: detection latency, MTTR, goodput during recovery",
        timing: true,
        run: recovery::run,
    },
];

/// The full registry.
pub fn registry() -> &'static [Experiment] {
    &REGISTRY
}

/// Looks up one experiment by name.
pub fn find(name: &str) -> Option<&'static Experiment> {
    REGISTRY.iter().find(|e| e.name == name)
}

/// Entry point for the thin figure binaries: run `name` at the
/// environment-controlled scale and print the text rendering.
pub fn cli_main(name: &str) {
    // audit: allow(panic, figure binaries abort on a registry mismatch rather than print nothing)
    let exp = find(name).unwrap_or_else(|| panic!("experiment {name:?} is not registered"));
    let ctx = RunCtx::from_env();
    let report = (exp.run)(&ctx);
    print!("{}", report.render_text());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        for e in registry() {
            assert!(std::ptr::eq(find(e.name).unwrap(), e));
        }
        let mut names: Vec<_> = registry().iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), registry().len());
    }

    #[test]
    fn run_all_memoizes_per_protection() {
        let ctx = RunCtx::with_ops(500, 500);
        let a = ctx.run_all(Protection::NoProtect);
        let b = ctx.run_all(Protection::NoProtect);
        assert!(Rc::ptr_eq(&a, &b), "second call must hit the cache");
        assert_eq!(a.len(), 12);
    }
}
