//! Table 3: simulation configuration dump (paper preset + scaled
//! preset).

use super::RunCtx;
use crate::report::{Cell, Report, Table};
use toleo_sim::config::{Protection, SimConfig};

fn cfg_table(label: &str, c: &SimConfig) -> Table {
    let mut t = Table::new(label, &["component", "configuration"]);
    let mut row = |k: &str, v: String| t.row(vec![Cell::text(k), Cell::text(v)]);
    row(
        "Processor",
        format!("{} GHz, {}-wide dispatch", c.freq_ghz, c.dispatch_width),
    );
    row(
        "L1-D cache",
        format!(
            "{} KB, {}-way, {} cycles",
            c.l1.capacity >> 10,
            c.l1.ways,
            c.l1.latency_cycles
        ),
    );
    row(
        "L2 cache",
        format!(
            "{} KB, {}-way, {} cycles",
            c.l2.capacity >> 10,
            c.l2.ways,
            c.l2.latency_cycles
        ),
    );
    row(
        "L3 cache",
        format!(
            "{} KB, {}-way, {} cycles",
            c.l3.capacity >> 10,
            c.l3.ways,
            c.l3.latency_cycles
        ),
    );
    row(
        "Local DRAM",
        format!("DDR4-3200, {} channels", c.dram.channels),
    );
    row(
        "CXL mem pool",
        format!(
            "{} GB/s, {} ns (PCIe5 x8 w/ re-timer), DDR4 x{}",
            c.pool_link.bytes_per_ns, c.pool_link.latency_ns, c.pool_dram.channels
        ),
    );
    row(
        "Toleo link",
        format!(
            "{} GB/s, {} ns (CXL2.0 IDE x2)",
            c.toleo_link.bytes_per_ns, c.toleo_link.latency_ns
        ),
    );
    row("Toleo DRAM", format!("HMC-style, {} ns", c.toleo_dram_ns));
    row("AES engine", format!("{} cycles", c.aes_cycles));
    row("MAC cache", format!("{} KB/core, 16-way", c.mac_cache_kib));
    row(
        "Remote pages",
        format!("{:.1}%", c.remote_page_fraction * 100.0),
    );
    row(
        "Stealth caches",
        "L2-TLB ext 256 entries + 28 KB overflow buffer".to_string(),
    );
    t
}

/// Dumps both presets (scale-independent).
pub fn run(_ctx: &RunCtx) -> Report {
    let mut report = Report::new("table3", "Table 3. Simulation Configuration", 0);
    let paper = SimConfig::paper(Protection::Toleo);
    let scaled = SimConfig::scaled(Protection::Toleo);
    report
        .tables
        .push(cfg_table("paper preset (Table 3)", &paper));
    report.tables.push(cfg_table(
        "scaled preset (used for figures; caches 1:16)",
        &scaled,
    ));
    report.metric("paper.aes_cycles", paper.aes_cycles as f64);
    report.metric("scaled.aes_cycles", scaled.aes_cycles as f64);
    report.metric("scaled.l3_kib", (scaled.l3.capacity >> 10) as f64);
    report
}
