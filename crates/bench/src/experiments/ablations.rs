//! Ablation studies for the design choices DESIGN.md §6 calls out:
//!
//! 1. probabilistic reset vs naive stored-initial-value reset (storage);
//! 2. Trip's three-format dynamism vs flat-only / full-only;
//! 3. stealth width sweep (security margin vs space);
//! 4. TLB-extension version cache vs Merkle-tree caching (accesses per
//!    miss);
//! 5. hot-write cost across VAULT / MorphCtr / Toleo.

// audit: allow-file(panic, figure experiment: abort on setup failure rather than emit bad data)

use super::RunCtx;
use crate::report::{Cell, Report, Table};
use toleo_baselines::morph::MorphLeaf;
use toleo_baselines::tree::CounterTree;
use toleo_baselines::vault::VaultTree;
use toleo_core::analysis::StealthAnalysis;
use toleo_core::config::{ToleoConfig, FLAT_ENTRY_BYTES, FULL_ENTRY_BYTES, UNEVEN_ENTRY_BYTES};
use toleo_core::device::ToleoDevice;
use toleo_sim::config::Protection;

/// Runs all five ablations.
pub fn run(ctx: &RunCtx) -> Report {
    let mut report = Report::new(
        "ablations",
        "Ablation studies: reset policy, Trip dynamism, stealth width, tree walks, hot writes",
        ctx.gen.mem_ops as u64,
    );
    reset_policy(&mut report);
    trip_formats(ctx, &mut report);
    stealth_width(&mut report);
    tree_walks(&mut report);
    hot_write_cost(&mut report);
    report
}

/// 1\. Naive reset needs the initial value stored next to the current
/// value (2x stealth bits); probabilistic reset needs none.
fn reset_policy(report: &mut Report) {
    let bits = 27.0;
    let naive_flat = (2.0 * bits + 64.0 + 2.0) / 8.0; // two stealth copies
    let prob_flat = (bits + 64.0 + 2.0) / 8.0;
    let mut t = Table::new(
        "Ablation 1: reset policy storage cost",
        &["policy", "flat entry (B/page)"],
    );
    t.row(vec![
        Cell::text("probabilistic reset"),
        Cell::num(prob_flat, 1),
    ]);
    t.row(vec![
        Cell::text("naive stored-initial"),
        Cell::num(naive_flat, 1),
    ]);
    report.tables.push(t);
    let a = StealthAnalysis::default();
    report.metric("reset.naive_overhead", naive_flat / prob_flat - 1.0);
    report.metric("reset.probabilistic_residual_risk", a.p_exhaustion());
    report.note(format!(
        "naive stored-initial is {:.0}% larger; probabilistic residual risk {:.1e} (acceptable)",
        (naive_flat / prob_flat - 1.0) * 100.0,
        a.p_exhaustion()
    ));
}

/// 2\. Fixed-format alternatives: flat-only cannot represent strided
/// pages (forced resets/re-encryptions), full-only pays 19x space.
fn trip_formats(ctx: &RunCtx, report: &mut Report) {
    let stats = ctx.run_all(Protection::Toleo);
    let (mut flat, mut uneven, mut full) = (0u64, 0u64, 0u64);
    for s in stats.iter() {
        flat += s.trip_pages.0;
        uneven += s.trip_pages.1;
        full += s.trip_pages.2;
    }
    let pages = flat + uneven + full;
    let trip_bytes = flat * FLAT_ENTRY_BYTES as u64
        + uneven * (FLAT_ENTRY_BYTES + UNEVEN_ENTRY_BYTES) as u64
        + full * (FLAT_ENTRY_BYTES + FULL_ENTRY_BYTES) as u64;
    let full_only = pages * (FLAT_ENTRY_BYTES + FULL_ENTRY_BYTES) as u64;
    let flat_only = pages * FLAT_ENTRY_BYTES as u64;
    let mut t = Table::new(
        "Ablation 2: Trip dynamism vs fixed formats",
        &["layout", "MB", "vs Trip"],
    );
    t.row(vec![
        Cell::text("Trip (dynamic)"),
        Cell::num(trip_bytes as f64 / 1e6, 2),
        Cell::num(1.0, 1),
    ]);
    t.row(vec![
        Cell::text("full-only"),
        Cell::num(full_only as f64 / 1e6, 2),
        Cell::num(full_only as f64 / trip_bytes as f64, 1),
    ]);
    t.row(vec![
        Cell::text("flat-only (cannot encode strides)"),
        Cell::num(flat_only as f64 / 1e6, 2),
        Cell::num(flat_only as f64 / trip_bytes as f64, 1),
    ]);
    report.tables.push(t);
    report.metric(
        "trip.full_only_blowup",
        full_only as f64 / trip_bytes as f64,
    );
    report.metric(
        "trip.unencodable_fraction",
        (uneven + full) as f64 / pages as f64,
    );
    report.note(format!(
        "pages: {pages} ({flat} flat / {uneven} uneven / {full} full); flat-only leaves {} pages \
         ({:.1}%) needing strides it cannot encode, each forcing a UV bump + full-page \
         re-encryption per write",
        uneven + full,
        (uneven + full) as f64 / pages as f64 * 100.0
    ));
}

/// 3\. Wider stealth = better replay odds, more space; the 27-bit point
/// balances a 2^-27 guess probability against 12 B flat entries.
fn stealth_width(report: &mut Report) {
    let mut t = Table::new(
        "Ablation 3: stealth width sweep",
        &["bits", "P(replay)", "P(exhaustion)", "flat B/page"],
    );
    for bits in [20u32, 24, 27, 30, 32] {
        let a = StealthAnalysis {
            stealth_bits: bits,
            ..Default::default()
        };
        let flat_bytes = (bits as f64 + 64.0 + 2.0) / 8.0;
        if bits == 27 {
            report.metric("stealth27.p_replay", a.p_replay_success());
            report.metric("stealth27.p_exhaustion", a.p_exhaustion());
        }
        t.row(vec![
            Cell::int(bits as u64),
            Cell::sci(a.p_replay_success()),
            Cell::sci(a.p_exhaustion()),
            Cell::num(flat_bytes, 1),
        ]);
    }
    report.tables.push(t);
}

/// 4\. Merkle walk accesses vs Toleo's single access, as memory grows.
fn tree_walks(report: &mut Report) {
    let mut t = Table::new(
        "Ablation 4: Merkle walk cost vs memory size (cold paths)",
        &["blocks", "levels", "accesses/miss (cold)"],
    );
    for log2_blocks in [14u32, 17, 20, 23] {
        let mut tree = CounterTree::new(8, 1 << log2_blocks, 64);
        // Sample cold walks across the space.
        let mut total = 0u32;
        let n = 64u64;
        for i in 0..n {
            let block = (i * ((1u64 << log2_blocks) / n)) % (1 << log2_blocks);
            total += tree.verify(block).unwrap().memory_accesses;
        }
        let per_miss = total as f64 / n as f64;
        report.metric(
            format!("merkle.accesses_per_miss.2pow{log2_blocks}"),
            per_miss,
        );
        t.row(vec![
            Cell::int(1u64 << log2_blocks),
            Cell::int(tree.depth() as u64),
            Cell::num(per_miss, 1),
        ]);
    }
    report.tables.push(t);
    // Exercise a device at the paper's design point for reference.
    let dev = ToleoDevice::new(ToleoConfig::small()).expect("valid ToleoConfig");
    report.note(format!(
        "Toleo: 1 stealth access per miss at any scale (98% filtered by the cache); device flat \
         array for this config: {} KB",
        dev.config().flat_array_bytes() / 1024
    ));
}

/// 5\. Hot-write handling: compressed Merkle leaves (VAULT, MorphCtr) pay
/// group re-encryptions when a small counter overflows; Toleo's uneven
/// format absorbs the same skew with one side-entry allocation.
fn hot_write_cost(report: &mut Report) {
    let mut t = Table::new(
        "Ablation 5: hot-write cost (10k writes to one block)",
        &["scheme", "blocks re-encrypted", "events"],
    );
    let mut vault = VaultTree::new(VaultTree::paper_geometry(), 4096);
    let mut vault_reenc = 0u64;
    for _ in 0..10_000 {
        vault_reenc += vault.update(0);
    }
    t.row(vec![
        Cell::text("VAULT"),
        Cell::int(vault_reenc),
        Cell::text(format!("{} overflow resets", vault.overflow_resets)),
    ]);

    let mut morph = MorphLeaf::new();
    let mut morph_reenc = 0u64;
    for _ in 0..10_000 {
        morph_reenc += morph.update(0);
    }
    t.row(vec![
        Cell::text("MorphCtr"),
        Cell::int(morph_reenc),
        Cell::text(format!(
            "{} rebases, {} morphs",
            morph.rebases, morph.morphs
        )),
    ]);

    let mut cfg = ToleoConfig::small();
    cfg.reset_log2 = 20;
    let mut dev = ToleoDevice::new(cfg).expect("valid ToleoConfig");
    let mut toleo_reenc = 0u64;
    for _ in 0..10_000 {
        if dev.update(0, 0).expect("in range").uv_update() {
            toleo_reenc += 64;
        }
    }
    let s = dev.stats();
    t.row(vec![
        Cell::text("Toleo"),
        Cell::int(toleo_reenc),
        Cell::text(format!(
            "{} probabilistic resets; {} uneven + {} full upgrades",
            s.stealth_resets, s.upgrades_to_uneven, s.upgrades_to_full
        )),
    ]);
    report.tables.push(t);
    report.metric("hot_write.vault_reenc", vault_reenc as f64);
    report.metric("hot_write.morph_reenc", morph_reenc as f64);
    report.metric("hot_write.toleo_reenc", toleo_reenc as f64);
}
