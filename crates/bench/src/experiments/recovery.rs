//! Recovery experiment: quarantine as a *bounded* outage. A same-shard
//! tamper campaign is mounted under live victim traffic; every step must
//! be detected within the kill-poll bound, scrubbed, re-keyed and
//! re-admitted while healthy shards keep serving. Detection latency
//! (ops-until-quarantine) and MTTR (ops-until-readmitted) are the
//! first-class outputs.
//!
//! The correctness invariants (zero false kills, no world-kill,
//! bit-identical observations on never-attacked addresses, lost blocks
//! surfacing only as typed `PageLost` errors) are asserted inside
//! [`crate::perf`] on every timing repeat; this report records them as
//! gateable metrics so a reproduce run fails loudly if they regress.

use super::RunCtx;
use crate::perf;
use crate::report::{Cell, Report, Table};

/// Runs the recovery campaign experiment.
pub fn run(ctx: &RunCtx) -> Report {
    let ops = ctx.perf_ops;
    let mut report = Report::new(
        "recovery",
        format!("Shard recovery under an adversary campaign ({ops} ops)"),
        ops,
    );

    let r = perf::run_recovery_experiment(ops);
    report.note(format!(
        "{} shards, recovery budget {}, detection bounded by the {}-op kill poll; \
         goodput ratio is best-of-{} repeats (spread {:.3})",
        r.shards,
        r.recovery_budget,
        r.kill_poll_ops,
        perf::GATE_TIMING_REPEATS,
        r.goodput_spread,
    ));
    report.note(
        "goodput basis: ratio of median per-op service latencies (fault-free / \
         inside recovery windows) — scheduler-neutral, so a single-core host's \
         CPU-sharing with the recovery thread shows up only in the informational \
         wall-clock row, not in the gated engine-interference ratio",
    );

    let mut steps = Table::new(
        "adversary campaign steps (tamper -> quarantine -> scrub -> re-key -> re-admit)",
        &[
            "step",
            "shard",
            "mounted at op",
            "detection latency (ops)",
            "MTTR (ops)",
            "blocks lost",
            "generation",
            "healthy blocks during recovery",
        ],
    );
    for s in &r.best.steps {
        steps.row(vec![
            Cell::int(s.step as u64),
            Cell::int(s.shard as u64),
            Cell::int(s.mounted_at_op),
            Cell::int(s.detection_latency_ops),
            Cell::int(s.mttr_ops),
            Cell::int(s.blocks_lost),
            Cell::int(s.generation),
            Cell::int(s.healthy_blocks_during_recovery),
        ]);
    }
    report.tables.push(steps);

    let mut totals = Table::new("recovery plane totals", &["quantity", "value"]);
    totals.row(vec![Cell::text("workload"), Cell::text(r.workload)]);
    totals.row(vec![
        Cell::text("recoveries completed"),
        Cell::int(r.best.recovery.recoveries),
    ]);
    totals.row(vec![
        Cell::text("pages scrubbed"),
        Cell::int(r.best.recovery.pages_scrubbed),
    ]);
    totals.row(vec![
        Cell::text("blocks scrubbed"),
        Cell::int(r.best.recovery.blocks_scrubbed),
    ]);
    totals.row(vec![
        Cell::text("blocks lost"),
        Cell::int(r.best.recovery.blocks_lost),
    ]);
    totals.row(vec![
        Cell::text("blocks still lost at end"),
        Cell::int(r.best.recovery.blocks_still_lost),
    ]);
    totals.row(vec![
        Cell::text("PageLost reads surfaced"),
        Cell::int(r.best.lost_reads_surfaced),
    ]);
    totals.row(vec![
        Cell::text("fault-free blocks/s (same serving loop)"),
        Cell::num(r.fault_free_blocks_per_sec, 0),
    ]);
    totals.row(vec![
        Cell::text("fault-free median op latency (ns)"),
        Cell::num(r.fault_free_median_op_ns, 1),
    ]);
    totals.row(vec![
        Cell::text("median op latency inside recovery windows (ns)"),
        Cell::num(r.recovery_median_op_ns, 1),
    ]);
    totals.row(vec![
        Cell::text("healthy goodput during recovery vs fault-free"),
        Cell::num(r.goodput_during_recovery_vs_fault_free, 3),
    ]);
    totals.row(vec![
        Cell::text("wall-clock goodput ratio (CPU-sharing bound, informational)"),
        Cell::num(r.wall_goodput_during_recovery_vs_fault_free, 3),
    ]);
    totals.row(vec![
        Cell::text("world killed"),
        Cell::bool(r.best.world_killed),
    ]);
    totals.row(vec![
        Cell::text("false kills"),
        Cell::int(r.best.false_kills),
    ]);
    report.tables.push(totals);

    let detection_max = r
        .best
        .steps
        .iter()
        .map(|s| s.detection_latency_ops)
        .max()
        .unwrap_or(0);
    let mttr_max = r.best.steps.iter().map(|s| s.mttr_ops).max().unwrap_or(0);
    report.metric("recoveries.completed", r.best.recovery.recoveries as f64);
    report.metric("detection_latency.max_ops", detection_max as f64);
    report.metric("mttr.max_ops", mttr_max as f64);
    report.metric("blocks_lost.total", r.best.recovery.blocks_lost as f64);
    report.metric(
        "blocks_lost.still_lost",
        r.best.recovery.blocks_still_lost as f64,
    );
    report.metric("false_kills.total", r.best.false_kills as f64);
    report.metric("world_killed", u64::from(r.best.world_killed) as f64);
    report.metric(
        "observations.mismatches",
        r.best.observation_mismatches as f64,
    );
    report.metric(
        "pages_lost.unaccounted",
        r.best.lost_reads_unaccounted as f64,
    );
    report.metric(
        "detection.within_poll_bound",
        u64::from(r.detection_within_poll_bound) as f64,
    );
    report.metric(
        "recovery.readmitted_all",
        u64::from(r.readmitted_all) as f64,
    );
    report.metric(
        "goodput.during_recovery_vs_fault_free",
        r.goodput_during_recovery_vs_fault_free,
    );
    report.note(
        "gate invariants: false_kills.total == 0, world_killed == 0, \
         observations.mismatches == 0, pages_lost.unaccounted == 0, \
         detection.within_poll_bound == 1, recovery.readmitted_all == 1, \
         recoveries.completed >= 2, goodput.during_recovery_vs_fault_free >= 0.9",
    );
    report
}
