//! Figure 8: memory bandwidth overhead — bytes fetched per instruction,
//! split into data / MAC+UV / stealth / dummy traffic.

use super::RunCtx;
use crate::harness::mean;
use crate::report::{Cell, Report, Table};
use toleo_sim::config::Protection;

/// Measures the per-protection traffic decomposition.
pub fn run(ctx: &RunCtx) -> Report {
    let mut report = Report::new(
        "fig8",
        "Figure 8. Memory bandwidth overhead (bytes per instruction)",
        ctx.gen.mem_ops as u64,
    );
    for p in [
        Protection::NoProtect,
        Protection::Ci,
        Protection::Toleo,
        Protection::InvisiMem,
    ] {
        let mut table = Table::new(
            format!("{p}"),
            &["bench", "data", "MAC+UV", "stealth", "dummy", "total"],
        );
        let mut totals = Vec::new();
        for s in ctx.run_all(p).iter() {
            let i = s.instructions.max(1) as f64;
            totals.push(s.bytes_per_instruction());
            table.row(vec![
                Cell::text(&s.name),
                Cell::num(s.bytes_data as f64 / i, 3),
                Cell::num(s.bytes_mac as f64 / i, 3),
                Cell::num(s.bytes_stealth as f64 / i, 3),
                Cell::num(s.bytes_dummy as f64 / i, 3),
                Cell::num(s.bytes_per_instruction(), 3),
            ]);
        }
        report.metric(format!("bytes_per_instruction.{p}.avg"), mean(&totals));
        report.tables.push(table);
    }
    report.note("paper: stealth traffic is ~1% of bytes; MAC dominates CI's overhead");
    report
}
