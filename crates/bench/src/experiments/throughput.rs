//! Wall-clock throughput experiment: per-backend AES microbenchmarks,
//! the three engine workloads, the sharded thread-scaling curves and
//! the five-scheme head-to-head arena — the same measurements the
//! `throughput` binary commits as `BENCH_*.json`, shaped as a [`Report`]
//! whose metric keys (`engine.<workload>.blocks_per_sec`,
//! `scheme.<scheme>.<workload>.blocks_per_sec`,
//! `aes.<backend>.encrypt8_ns_per_block`) are what the reproduce gate's
//! tolerance floors check against the committed baseline.

use super::RunCtx;
use crate::perf;
use crate::report::{Cell, Report, Table};
use toleo_crypto::backend::default_backend;

/// Runs the full wall-clock sweep at `ctx.perf_ops`.
pub fn run(ctx: &RunCtx) -> Report {
    let ops = ctx.perf_ops;
    let mut report = Report::new(
        "throughput",
        format!("Wall-clock throughput harness ({ops} ops/workload)"),
        ops,
    );

    let selected = default_backend();
    report.note(format!("selected AES backend: {}", selected.name()));
    let backends = perf::measure_backends(ctx.aes_iters);
    let mut aes = Table::new(
        "AES-128 backends (ns/block)",
        &[
            "backend",
            "encrypt",
            "decrypt",
            "encrypt 8-wide",
            "decrypt 8-wide",
            "selected",
        ],
    );
    for b in &backends {
        let name = b.kind.name();
        report.metric(format!("aes.{name}.encrypt_ns_per_block"), b.encrypt_ns);
        report.metric(format!("aes.{name}.encrypt8_ns_per_block"), b.encrypt8_ns);
        report.metric(format!("aes.{name}.decrypt8_ns_per_block"), b.decrypt8_ns);
        aes.row(vec![
            Cell::text(name),
            Cell::num(b.encrypt_ns, 1),
            Cell::num(b.decrypt_ns, 1),
            Cell::num(b.encrypt8_ns, 1),
            Cell::num(b.decrypt8_ns, 1),
            Cell::bool(b.kind == selected),
        ]);
    }
    report.tables.push(aes);

    let results = perf::run_engine_workloads(ops);
    let mut engine = Table::new(
        "engine workloads (selected backend)",
        &[
            "workload",
            "blocks",
            "blocks/s",
            "batch blocks/s",
            "software blocks/s",
            "vs seed",
        ],
    );
    for r in &results {
        report.metric(
            format!("engine.{}.blocks_per_sec", r.name),
            r.blocks_per_sec,
        );
        report.metric(
            format!("engine.{}.batch_blocks_per_sec", r.name),
            r.batch_blocks_per_sec,
        );
        report.metric(
            format!("engine.{}.software_blocks_per_sec", r.name),
            r.software_blocks_per_sec,
        );
        engine.row(vec![
            Cell::text(r.name),
            Cell::int(r.blocks),
            Cell::num(r.blocks_per_sec, 0),
            Cell::num(r.batch_blocks_per_sec, 0),
            Cell::num(r.software_blocks_per_sec, 0),
            Cell::num(r.speedup_vs_seed, 2),
        ]);
    }
    report.tables.push(engine);

    let curves = perf::run_scaling_curves(ops);
    let mut sharded = Table::new(
        "sharded thread-scaling (critical-path model; wall numbers time-slice on few cores)",
        &["workload", "threads", "blocks/s", "vs 1t", "wall blocks/s"],
    );
    for curve in &curves {
        report.metric(
            format!("sharded.{}.speedup_4t_vs_1t", curve.workload),
            curve.speedup_4t_vs_1t,
        );
        let one = curve
            .points
            .iter()
            .find(|p| p.threads == 1)
            .map_or(1.0, |p| p.blocks_per_sec);
        for p in &curve.points {
            sharded.row(vec![
                Cell::text(&curve.workload),
                Cell::int(p.threads as u64),
                Cell::num(p.blocks_per_sec, 0),
                Cell::num(p.blocks_per_sec / one, 2),
                Cell::num(p.wall_blocks_per_sec, 0),
            ]);
        }
    }
    report.tables.push(sharded);

    let schemes = perf::run_scheme_sweep(ops);
    let mut arena = Table::new(
        "scheme head-to-head (ProtectedMemory trait)",
        &[
            "scheme",
            "workload",
            "blocks/s",
            "batch blocks/s",
            "version fetches",
            "re-enc events",
        ],
    );
    for s in &schemes {
        for w in &s.workloads {
            report.metric(
                format!("scheme.{}.{}.blocks_per_sec", s.scheme, w.workload),
                w.blocks_per_sec,
            );
            report.metric(
                format!("scheme.{}.{}.batch_blocks_per_sec", s.scheme, w.workload),
                w.batch_blocks_per_sec,
            );
            arena.row(vec![
                Cell::text(s.scheme),
                Cell::text(w.workload),
                Cell::num(w.blocks_per_sec, 0),
                Cell::num(w.batch_blocks_per_sec, 0),
                Cell::int(w.version_fetches),
                Cell::int(w.reencryption_events),
            ]);
        }
    }
    report.tables.push(arena);
    report.note(
        "wall-clock measurement: numbers vary by host and run; the reproduce gate applies \
         tolerance floors vs the committed BENCH baseline instead of exact comparison",
    );
    report
}
