//! Figure 12: Toleo usage over time, by Trip format (per-benchmark
//! series).

use super::RunCtx;
use crate::report::{Cell, Report, Table};
use toleo_sim::config::Protection;

/// Emits each benchmark's usage timeline.
pub fn run(ctx: &RunCtx) -> Report {
    let stats = ctx.run_all(Protection::Toleo);
    let mut report = Report::new(
        "fig12",
        "Figure 12. Toleo Usage by Trip format w.r.t. Time",
        ctx.gen.mem_ops as u64,
    );
    for s in stats.iter() {
        let mut table = Table::new(
            s.name.clone(),
            &["instructions", "flat KB", "dyn KB", "total KB"],
        );
        for (instr, u) in &s.usage_timeline {
            table.row(vec![
                Cell::int(*instr),
                Cell::num(u.flat_bytes as f64 / 1024.0, 1),
                Cell::num(u.dynamic_bytes as f64 / 1024.0, 1),
                Cell::num(u.total_bytes() as f64 / 1024.0, 1),
            ]);
        }
        report.metric(
            format!("{}.peak_total_kb", s.name),
            s.peak_toleo.total_bytes() as f64 / 1024.0,
        );
        report.tables.push(table);
    }
    report.note("series: instructions, flat KB, uneven+full KB, total KB");
    report
}
