//! Figure 6: execution-time overhead of CI, Toleo and InvisiMem relative
//! to no memory protection, per benchmark.

// audit: allow-file(panic, figure experiment: abort on degenerate runs rather than emit bad data)

use super::RunCtx;
use crate::harness::mean;
use crate::report::{Cell, Report, Table};
use toleo_sim::config::Protection;

/// Measures the overhead table and per-protection averages.
pub fn run(ctx: &RunCtx) -> Report {
    let base = ctx.run_all(Protection::NoProtect);
    let ci = ctx.run_all(Protection::Ci);
    let toleo = ctx.run_all(Protection::Toleo);
    let invisimem = ctx.run_all(Protection::InvisiMem);

    let mut report = Report::new(
        "fig6",
        "Figure 6. CI and Toleo Performance Overhead (% over NoProtect)",
        ctx.gen.mem_ops as u64,
    );
    let mut table = Table::new("", &["bench", "CI", "Toleo", "InvisiMem", "Toleo-CI"]);
    let mut ci_all = Vec::new();
    let mut toleo_all = Vec::new();
    let mut inv_all = Vec::new();
    for i in 0..base.len() {
        // overhead_vs reports zero-cycle/empty-trace runs as typed errors
        // instead of letting NaN/inf poison the table averages.
        let overhead = |run: &toleo_sim::system::RunStats| {
            run.overhead_vs(&base[i])
                .unwrap_or_else(|e| panic!("fig6 {}: {e}", base[i].name))
        };
        let c = overhead(&ci[i]);
        let t = overhead(&toleo[i]);
        let v = overhead(&invisimem[i]);
        ci_all.push(c);
        toleo_all.push(t);
        inv_all.push(v);
        table.row(vec![
            Cell::text(&base[i].name),
            Cell::pct(c, 1),
            Cell::pct(t, 1),
            Cell::pct(v, 1),
            Cell::pct(t - c, 1),
        ]);
    }
    table.row(vec![
        Cell::text("average"),
        Cell::pct(mean(&ci_all), 1),
        Cell::pct(mean(&toleo_all), 1),
        Cell::pct(mean(&inv_all), 1),
        Cell::pct(mean(&toleo_all) - mean(&ci_all), 1),
    ]);
    report.tables.push(table);
    report.metric("overhead.ci.avg", mean(&ci_all));
    report.metric("overhead.toleo.avg", mean(&toleo_all));
    report.metric("overhead.invisimem.avg", mean(&inv_all));
    report.metric(
        "overhead.toleo_minus_ci.avg",
        mean(&toleo_all) - mean(&ci_all),
    );
    report.note("paper: CI avg 18%, Toleo adds 1-2% over CI, InvisiMem avg 29%");
    report
}
