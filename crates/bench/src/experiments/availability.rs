//! Availability experiment: goodput vs injected transient-fault rate
//! through the fault-injected device channel, plus the
//! one-shard-tampered quarantine containment run.
//!
//! The correctness invariants (zero false kills, bit-identical
//! observations at every fault rate, exactly one quarantined shard, no
//! world-kill) are asserted inside [`crate::perf`]; this report records
//! them as gateable metrics so a reproduce run fails loudly if they
//! regress.

use super::RunCtx;
use crate::perf;
use crate::report::{Cell, Report, Table};

/// Runs the availability sweep and the quarantine experiment.
pub fn run(ctx: &RunCtx) -> Report {
    let ops = ctx.perf_ops;
    let mut report = Report::new(
        "availability",
        format!("Availability under injected faults ({ops} ops/workload)"),
        ops,
    );

    let availability = perf::run_availability(ops);
    let mut sweep = Table::new(
        "goodput vs injected transient-fault rate (8 shards, retry/backoff channel)",
        &[
            "workload",
            "fault rate",
            "blocks/s",
            "goodput",
            "faults",
            "retries",
            "observations",
            "false kills",
        ],
    );
    let mut total_false_kills = 0u64;
    let mut all_match = true;
    for a in &availability {
        for p in &a.points {
            total_false_kills += p.false_kills;
            all_match &= p.observations_match;
            sweep.row(vec![
                Cell::text(a.workload),
                Cell::sci(p.fault_rate),
                Cell::num(p.blocks_per_sec, 0),
                Cell::num(p.goodput_vs_fault_free, 3),
                Cell::int(p.faults_injected),
                Cell::int(p.retries),
                Cell::text(if p.observations_match {
                    "match"
                } else {
                    "DIVERGE"
                }),
                Cell::int(p.false_kills),
            ]);
        }
        if let Some(worst) = a
            .points
            .iter()
            .map(|p| p.goodput_vs_fault_free)
            .min_by(|x, y| x.total_cmp(y))
        {
            report.metric(format!("goodput.{}.worst", a.workload), worst);
        }
    }
    report.tables.push(sweep);
    report.metric("false_kills.total", total_false_kills as f64);
    report.metric("observations_match.all", u64::from(all_match) as f64);

    let q = perf::run_quarantine_experiment(ops);
    let mut quarantine = Table::new(
        "one-shard tamper under traffic (quarantine containment)",
        &["quantity", "value"],
    );
    quarantine.row(vec![Cell::text("workload"), Cell::text(q.workload)]);
    quarantine.row(vec![Cell::text("tamper at op"), Cell::int(q.tamper_at_op)]);
    quarantine.row(vec![
        Cell::text("tampered shard"),
        Cell::int(q.tampered_shard as u64),
    ]);
    quarantine.row(vec![
        Cell::text("quarantined shards"),
        Cell::int(q.quarantined_shards),
    ]);
    quarantine.row(vec![Cell::text("world killed"), Cell::bool(q.world_killed)]);
    quarantine.row(vec![
        Cell::text("healthy blocks served after quarantine"),
        Cell::int(q.healthy_blocks),
    ]);
    quarantine.row(vec![
        Cell::text("healthy blocks/s"),
        Cell::num(q.healthy_blocks_per_sec, 0),
    ]);
    quarantine.row(vec![
        Cell::text("refused (ShardQuarantined)"),
        Cell::int(q.refused_blocks),
    ]);
    report.tables.push(quarantine);
    report.metric("quarantine.quarantined_shards", q.quarantined_shards as f64);
    report.metric("quarantine.world_killed", u64::from(q.world_killed) as f64);
    report.metric("quarantine.healthy_blocks", q.healthy_blocks as f64);
    report.note(
        "gate invariants: false_kills.total == 0, observations_match.all == 1, \
         quarantine.quarantined_shards == 1, quarantine.world_killed == 0",
    );
    report
}
