//! Raw simulator summary: the modeled-cycles run every figure derives
//! from, dumped directly so functional (wall-clock) and timing (modeled)
//! results land side by side in the `results/` tree.

use super::RunCtx;
use crate::report::{Cell, Report, Table};
use toleo_sim::config::Protection;

/// Dumps modeled cycles, misses and traffic for every workload under
/// every protection.
pub fn run(ctx: &RunCtx) -> Report {
    let mut report = Report::new(
        "sim-summary",
        "Simulator summary: modeled cycles and traffic, 12 workloads x 5 protections",
        ctx.gen.mem_ops as u64,
    );
    for p in Protection::all() {
        let mut table = Table::new(
            format!("{p}"),
            &[
                "bench",
                "instructions",
                "cycles",
                "LLC misses",
                "mpki",
                "bytes/instr",
                "read lat (ns)",
            ],
        );
        for s in ctx.run_all(p).iter() {
            report.metric(format!("cycles.{p}.{}", s.name), s.cycles);
            table.row(vec![
                Cell::text(&s.name),
                Cell::int(s.instructions),
                Cell::num(s.cycles, 0),
                Cell::int(s.llc_misses),
                Cell::num(s.llc_mpki, 2),
                Cell::num(s.bytes_per_instruction(), 3),
                Cell::num(s.avg_read_latency_ns(), 1),
            ]);
        }
        report.tables.push(table);
    }
    report.note(
        "modeled numbers are deterministic: same trace seeds + same simulator \
         config => bit-identical cycles on any host",
    );
    report
}
