//! Figure 7: stealth-cache and MAC-cache hit rates under the Toleo
//! configuration.

use super::RunCtx;
use crate::harness::mean;
use crate::report::{Cell, Report, Table};
use toleo_sim::config::Protection;

/// Measures per-benchmark hit rates and their averages.
pub fn run(ctx: &RunCtx) -> Report {
    let stats = ctx.run_all(Protection::Toleo);
    let mut report = Report::new(
        "fig7",
        "Figure 7. Cache Hit Rates (Toleo configuration)",
        ctx.gen.mem_ops as u64,
    );
    let mut table = Table::new("", &["bench", "Stealth Cache", "MAC Cache"]);
    let mut sh = Vec::new();
    let mut mh = Vec::new();
    for s in stats.iter() {
        sh.push(s.stealth_hit_rate);
        mh.push(s.mac_hit_rate);
        report.metric(format!("{}.stealth_hit_rate", s.name), s.stealth_hit_rate);
        table.row(vec![
            Cell::text(&s.name),
            Cell::pct(s.stealth_hit_rate, 1),
            Cell::pct(s.mac_hit_rate, 1),
        ]);
    }
    table.row(vec![
        Cell::text("average"),
        Cell::pct(mean(&sh), 1),
        Cell::pct(mean(&mh), 1),
    ]);
    report.tables.push(table);
    report.metric("stealth_hit_rate.avg", mean(&sh));
    report.metric("mac_hit_rate.avg", mean(&mh));
    report.note("paper: stealth 98% avg — redis 67%, memcached 85% outliers; MAC 67% avg");
    report
}
