//! The reproduce harness library: delta comparison of freshly generated
//! experiment [`Report`]s against committed `expected/` references, and
//! tolerance floors for the wall-clock experiments.
//!
//! Two comparison regimes, chosen per experiment:
//!
//! - **Functional experiments** (the figure/table reports) are
//!   deterministic: same trace seeds, same simulator config, bit-identical
//!   output on any host. When the run used the same `mem_ops` as the
//!   reference, every metric and every table cell must match exactly
//!   (after [`crate::report::sig9`] rounding). When the scales differ — a
//!   CI smoke run at `TOLEO_BENCH_OPS=2000 `against full-scale references
//!   — only the *shape* is checked: metric key set, table titles and
//!   column headers.
//! - **Timing experiments** (`throughput`, `availability`) measure wall
//!   clock and vary by host; they are exempt from reference comparison
//!   and instead gated by [`check_perf_floors`] tolerance floors against
//!   the committed `BENCH_*.json` baseline.
//!
//! # Examples
//!
//! ```
//! use toleo_bench::report::Report;
//! use toleo_bench::repro::{compare_reports, DeltaStatus};
//!
//! let mut expected = Report::new("fig0", "demo", 1000);
//! expected.metric("x", 1.25);
//! let mut measured = Report::new("fig0", "demo", 1000);
//! measured.metric("x", 1.25);
//! assert_eq!(compare_reports(&expected, &measured, false).status, DeltaStatus::Match);
//!
//! measured.metrics[0].1 = 9.0; // doctor the measurement
//! let delta = compare_reports(&expected, &measured, false);
//! assert_eq!(delta.status, DeltaStatus::Drift);
//! assert!(delta.details[0].contains("metric x"));
//! ```

// audit: allow-file(secret, `key` here is a metric name in a report, not key material)

use crate::gate::{self, FloorRow};
use crate::json::{self, Value};
use crate::report::{sig9, Report};

/// Verdict of one experiment's delta check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaStatus {
    /// Same scale, every metric and cell identical.
    Match,
    /// Different scale (smoke run); metric keys and table shapes agree.
    StructuralMatch,
    /// Values or shapes diverge from the committed reference.
    Drift,
    /// No committed reference for this experiment.
    MissingExpected,
    /// Timing experiment: exempt from reference comparison, gated by
    /// tolerance floors instead.
    TimingSkipped,
}

impl DeltaStatus {
    /// Whether this status should fail the reproduce run.
    pub fn is_failure(self) -> bool {
        matches!(self, DeltaStatus::Drift | DeltaStatus::MissingExpected)
    }

    /// Short label for the delta report.
    pub fn label(self) -> &'static str {
        match self {
            DeltaStatus::Match => "match",
            DeltaStatus::StructuralMatch => "structural match (scaled-down run)",
            DeltaStatus::Drift => "DRIFT",
            DeltaStatus::MissingExpected => "MISSING EXPECTED",
            DeltaStatus::TimingSkipped => "timing (floor-gated, not compared)",
        }
    }
}

/// One experiment's delta verdict with human-readable divergence details.
#[derive(Debug, Clone)]
pub struct DeltaOutcome {
    /// Experiment name.
    pub name: String,
    /// The verdict.
    pub status: DeltaStatus,
    /// First divergences found (capped so a wholesale drift stays
    /// readable).
    pub details: Vec<String>,
}

const MAX_DETAILS: usize = 8;

fn push_detail(details: &mut Vec<String>, msg: String) {
    if details.len() < MAX_DETAILS {
        details.push(msg);
    } else if details.len() == MAX_DETAILS {
        details.push("… further divergences elided".to_string());
    }
}

/// Compares a measured report against its committed reference.
///
/// `timing` marks wall-clock experiments, which return
/// [`DeltaStatus::TimingSkipped`] unconditionally.
pub fn compare_reports(expected: &Report, measured: &Report, timing: bool) -> DeltaOutcome {
    let mut details = Vec::new();
    if timing {
        return DeltaOutcome {
            name: measured.name.clone(),
            status: DeltaStatus::TimingSkipped,
            details,
        };
    }
    let exact = expected.mem_ops == measured.mem_ops;

    // Metric key sets must agree at any scale.
    let expected_keys: Vec<&str> = expected.metrics.iter().map(|(k, _)| k.as_str()).collect();
    let measured_keys: Vec<&str> = measured.metrics.iter().map(|(k, _)| k.as_str()).collect();
    for k in &expected_keys {
        if !measured_keys.contains(k) {
            push_detail(&mut details, format!("metric {k} missing from this run"));
        }
    }
    for k in &measured_keys {
        if !expected_keys.contains(k) {
            push_detail(
                &mut details,
                format!("metric {k} absent from the reference"),
            );
        }
    }

    // Table shapes must agree at any scale.
    if expected.tables.len() != measured.tables.len() {
        push_detail(
            &mut details,
            format!(
                "table count {} vs reference {}",
                measured.tables.len(),
                expected.tables.len()
            ),
        );
    }
    for (e, m) in expected.tables.iter().zip(&measured.tables) {
        if e.title != m.title {
            push_detail(
                &mut details,
                format!("table title {:?} vs reference {:?}", m.title, e.title),
            );
        }
        if e.columns != m.columns {
            push_detail(
                &mut details,
                format!("table {:?}: column headers diverge", e.title),
            );
        }
    }

    if exact {
        // Same scale: values must be bit-identical after sig9 rounding.
        for (k, ev) in &expected.metrics {
            if let Some(mv) = measured.get_metric(k) {
                if sig9(*ev).to_bits() != sig9(mv).to_bits() {
                    push_detail(
                        &mut details,
                        format!("metric {k}: {} vs reference {}", sig9(mv), sig9(*ev)),
                    );
                }
            }
        }
        for (e, m) in expected.tables.iter().zip(&measured.tables) {
            if e.rows.len() != m.rows.len() {
                push_detail(
                    &mut details,
                    format!(
                        "table {:?}: {} rows vs reference {}",
                        e.title,
                        m.rows.len(),
                        e.rows.len()
                    ),
                );
                continue;
            }
            for (i, (er, mr)) in e.rows.iter().zip(&m.rows).enumerate() {
                for (ec, mc) in er.iter().zip(mr) {
                    let nums_match = match (ec.num, mc.num) {
                        (Some(a), Some(b)) => sig9(a).to_bits() == sig9(b).to_bits(),
                        (None, None) => true,
                        _ => false,
                    };
                    if ec.text != mc.text || !nums_match {
                        push_detail(
                            &mut details,
                            format!(
                                "table {:?} row {i}: cell {:?} vs reference {:?}",
                                e.title, mc.text, ec.text
                            ),
                        );
                    }
                }
            }
        }
    }

    let status = if !details.is_empty() {
        DeltaStatus::Drift
    } else if exact {
        DeltaStatus::Match
    } else {
        DeltaStatus::StructuralMatch
    };
    DeltaOutcome {
        name: measured.name.clone(),
        status,
        details,
    }
}

/// The workloads every floor family covers.
const ENGINE_WORKLOADS: [&str; 3] = ["sequential", "random", "hot-reset"];
const SCHEME_WORKLOADS: [&str; 4] = ["sequential", "random", "hot-reset", "multi-tenant"];

/// Runs every tolerance floor the committed `BENCH_*.json` baseline
/// supports against the measured `throughput` report: engine workloads
/// (higher is better), the five-scheme arena (higher is better), and any
/// AES backend present in both baseline and measurement (8-wide encrypt
/// ns/block, lower is better).
///
/// # Errors
///
/// An unreadable baseline, or a measured report missing a metric the
/// baseline has a floor for — a gate that cannot pair its rows must fail
/// loudly, not pass vacuously.
///
/// # Examples
///
/// ```
/// use toleo_bench::report::Report;
/// use toleo_bench::repro::check_perf_floors;
///
/// let baseline = r#"{
///   "engine": [{"workload": "sequential", "blocks_per_sec": 1000000}]
/// }"#;
/// let mut measured = Report::new("throughput", "demo", 1000);
/// measured.metric("engine.sequential.blocks_per_sec", 900_000.0);
/// let rows = check_perf_floors(baseline, 0.85, &measured).unwrap();
/// assert_eq!(rows.len(), 1);
/// assert!(rows[0].pass, "0.9x baseline clears the 0.85 floor");
///
/// measured.metrics[0].1 = 100_000.0; // regress the measurement 10x
/// assert!(!check_perf_floors(baseline, 0.85, &measured).unwrap()[0].pass);
/// ```
pub fn check_perf_floors(
    baseline_text: &str,
    tolerance: f64,
    throughput: &Report,
) -> Result<Vec<FloorRow>, String> {
    let baseline = json::parse(baseline_text).map_err(|e| format!("baseline JSON: {e}"))?;
    let mut rows = Vec::new();
    let need = |key: &str| -> Result<f64, String> {
        throughput
            .get_metric(key)
            .ok_or_else(|| format!("throughput report has no metric {key}"))
    };

    for workload in ENGINE_WORKLOADS {
        if let Ok(base) = gate::engine_blocks_per_sec(&baseline, workload) {
            let key = format!("engine.{workload}.blocks_per_sec");
            rows.push(gate::floor_row(&key, need(&key)?, base, tolerance, true));
        }
    }
    if baseline.get("schemes").is_some() {
        for scheme in crate::perf::SCHEMES {
            for workload in SCHEME_WORKLOADS {
                let base = gate::scheme_blocks_per_sec(&baseline, scheme, workload)?;
                let key = format!("scheme.{scheme}.{workload}.blocks_per_sec");
                rows.push(gate::floor_row(&key, need(&key)?, base, tolerance, true));
            }
        }
    }
    if let Some(backends) = baseline.get("aes_backends").and_then(Value::as_array) {
        for b in backends {
            let Some(name) = b.get("name").and_then(Value::as_str) else {
                continue;
            };
            let key = format!("aes.{name}.encrypt8_ns_per_block");
            // A backend the baseline host had but this host lacks
            // (e.g. aes-ni under emulation) is not a regression.
            if let Some(measured) = throughput.get_metric(&key) {
                let base = gate::backend_encrypt8_ns(&baseline, name)?;
                rows.push(gate::floor_row(&key, measured, base, tolerance, false));
            }
        }
    }
    if rows.is_empty() {
        return Err("baseline supports no floors (no engine/schemes/aes_backends)".to_string());
    }
    Ok(rows)
}

/// One correctness invariant from the availability experiment: an exact
/// required value, independent of any baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantRow {
    /// Metric name.
    pub name: &'static str,
    /// The value the invariant requires.
    pub required: f64,
    /// The measured value.
    pub actual: f64,
    /// Whether the invariant holds.
    pub pass: bool,
}

/// Checks the availability report's correctness invariants: no false
/// kills, bit-identical observations at every fault rate, exactly one
/// quarantined shard, and no world-kill.
///
/// # Errors
///
/// The report is missing one of the invariant metrics.
pub fn check_availability_invariants(availability: &Report) -> Result<Vec<InvariantRow>, String> {
    const INVARIANTS: [(&str, f64); 4] = [
        ("false_kills.total", 0.0),
        ("observations_match.all", 1.0),
        ("quarantine.quarantined_shards", 1.0),
        ("quarantine.world_killed", 0.0),
    ];
    INVARIANTS
        .iter()
        .map(|&(name, required)| {
            let actual = availability
                .get_metric(name)
                .ok_or_else(|| format!("availability report has no metric {name}"))?;
            Ok(InvariantRow {
                name,
                required,
                actual,
                pass: actual == required,
            })
        })
        .collect()
}

/// Checks the recovery experiment's correctness invariants: the adversary
/// campaign never false-kills or world-kills, observations on
/// never-attacked addresses stay bit-identical across every
/// quarantine → recover → re-serve cycle, lost blocks surface only as
/// typed errors, every step is detected within the kill-poll bound and
/// ends re-admitted, and healthy shards keep at least 0.9× the
/// fault-free goodput while a recovery runs.
///
/// # Errors
///
/// The report is missing one of the invariant metrics.
pub fn check_recovery_invariants(recovery: &Report) -> Result<Vec<InvariantRow>, String> {
    /// Exact invariants: `actual == required`.
    const EXACT: [(&str, f64); 6] = [
        ("false_kills.total", 0.0),
        ("world_killed", 0.0),
        ("observations.mismatches", 0.0),
        ("pages_lost.unaccounted", 0.0),
        ("detection.within_poll_bound", 1.0),
        ("recovery.readmitted_all", 1.0),
    ];
    /// Floor invariants: `actual >= required`.
    const FLOORS: [(&str, f64); 2] = [
        ("recoveries.completed", 2.0),
        ("goodput.during_recovery_vs_fault_free", 0.9),
    ];
    let row = |name: &'static str, required: f64, exact: bool| {
        let actual = recovery
            .get_metric(name)
            .ok_or_else(|| format!("recovery report has no metric {name}"))?;
        Ok(InvariantRow {
            name,
            required,
            actual,
            pass: if exact {
                actual == required
            } else {
                actual >= required
            },
        })
    };
    EXACT
        .iter()
        .map(|&(name, required)| row(name, required, true))
        .chain(
            FLOORS
                .iter()
                .map(|&(name, required)| row(name, required, false)),
        )
        .collect()
}

/// The experiments whose reference tables `reproduce --render` inlines
/// into `EXPERIMENTS.md` (the headline paper-vs-measured results; the
/// rest live under `expected/` and `results/`).
pub const HEADLINE_EXPERIMENTS: [&str; 8] = [
    "table2",
    "table4",
    "fig6",
    "fig7",
    "fig10",
    "fig11",
    "sec62",
    "calibrate",
];

/// Marker opening a generated block in `EXPERIMENTS.md`.
pub fn begin_marker(tag: &str) -> String {
    format!("<!-- BEGIN GENERATED: {tag} (reproduce --render) -->")
}

/// Marker closing a generated block in `EXPERIMENTS.md`.
pub fn end_marker(tag: &str) -> String {
    format!("<!-- END GENERATED: {tag} -->")
}

/// Wraps `body` in its markers, exactly as it appears in the document.
pub fn generated_block(tag: &str, body: &str) -> String {
    format!(
        "{}\n\n{}\n{}",
        begin_marker(tag),
        body.trim_end(),
        end_marker(tag)
    )
}

/// Replaces the generated block `tag` inside `doc` with a freshly
/// rendered `body`, keeping everything outside the markers untouched.
///
/// # Errors
///
/// The document lacks the begin/end markers for `tag`.
pub fn splice_generated(doc: &str, tag: &str, body: &str) -> Result<String, String> {
    let begin = begin_marker(tag);
    let end = end_marker(tag);
    let start = doc
        .find(&begin)
        .ok_or_else(|| format!("document has no {begin:?} marker"))?;
    let stop = doc
        .find(&end)
        .ok_or_else(|| format!("document has no {end:?} marker"))?;
    if stop < start {
        return Err(format!("{tag}: end marker precedes begin marker"));
    }
    let mut out = String::with_capacity(doc.len());
    out.push_str(&doc[..start]);
    out.push_str(&generated_block(tag, body));
    out.push_str(&doc[stop + end.len()..]);
    Ok(out)
}

/// Renders the headline experiments' committed reference reports as the
/// `figures` block body. Reads `expected/<name>.json`, so the output is
/// deterministic — a test pins `EXPERIMENTS.md` to it.
///
/// # Errors
///
/// A missing or malformed reference file.
pub fn render_headline(expected_dir: &std::path::Path) -> Result<String, String> {
    let mut out = String::new();
    for name in HEADLINE_EXPERIMENTS {
        let path = expected_dir.join(format!("{name}.json"));
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = json::parse(&text).map_err(|e| format!("{name}: {e}"))?;
        let report = Report::from_json(&doc).map_err(|e| format!("{name}: {e}"))?;
        out.push_str(&report.render_markdown());
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Cell, Table};

    fn demo(mem_ops: u64, x: f64) -> Report {
        let mut r = Report::new("demo", "demo report", mem_ops);
        r.metric("x", x);
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec![Cell::text("r0"), Cell::num(x, 2)]);
        r.tables.push(t);
        r
    }

    #[test]
    fn same_scale_same_values_match() {
        let d = compare_reports(&demo(1000, 1.5), &demo(1000, 1.5), false);
        assert_eq!(d.status, DeltaStatus::Match);
        assert!(d.details.is_empty());
    }

    #[test]
    fn same_scale_value_drift_is_reported() {
        let d = compare_reports(&demo(1000, 1.5), &demo(1000, 1.6), false);
        assert_eq!(d.status, DeltaStatus::Drift);
        assert!(
            d.details.iter().any(|s| s.contains("metric x")),
            "{:?}",
            d.details
        );
        assert!(
            d.details.iter().any(|s| s.contains("row 0")),
            "{:?}",
            d.details
        );
    }

    #[test]
    fn scaled_run_checks_shape_only() {
        // Different mem_ops, different values: structural match.
        let d = compare_reports(&demo(200_000, 1.5), &demo(2_000, 9.9), false);
        assert_eq!(d.status, DeltaStatus::StructuralMatch);
        // …but a missing metric still drifts.
        let mut small = demo(2_000, 9.9);
        small.metrics.clear();
        small.metric("y", 1.0);
        let d = compare_reports(&demo(200_000, 1.5), &small, false);
        assert_eq!(d.status, DeltaStatus::Drift);
        assert!(d.details.iter().any(|s| s.contains("metric x missing")));
        assert!(d.details.iter().any(|s| s.contains("metric y absent")));
        // …and so does a renamed table or changed columns.
        let mut retitled = demo(2_000, 9.9);
        retitled.tables[0].title = "other".to_string();
        assert_eq!(
            compare_reports(&demo(200_000, 1.5), &retitled, false).status,
            DeltaStatus::Drift
        );
    }

    #[test]
    fn timing_reports_are_skipped() {
        let d = compare_reports(&demo(1000, 1.0), &demo(1000, 2.0), true);
        assert_eq!(d.status, DeltaStatus::TimingSkipped);
        assert!(!d.status.is_failure());
        assert!(DeltaStatus::Drift.is_failure());
        assert!(DeltaStatus::MissingExpected.is_failure());
        assert!(!DeltaStatus::StructuralMatch.is_failure());
    }

    #[test]
    fn detail_flood_is_capped() {
        let mut big_e = Report::new("demo", "d", 10);
        let mut big_m = Report::new("demo", "d", 10);
        for i in 0..40 {
            big_e.metric(format!("m{i}"), 1.0);
            big_m.metric(format!("m{i}"), 2.0);
        }
        let d = compare_reports(&big_e, &big_m, false);
        assert_eq!(d.status, DeltaStatus::Drift);
        assert_eq!(d.details.len(), MAX_DETAILS + 1);
        assert!(d.details.last().unwrap().contains("elided"));
    }

    const FULL_BASELINE: &str = r#"{
      "engine": [
        {"workload": "sequential", "blocks_per_sec": 1000000},
        {"workload": "random", "blocks_per_sec": 800000},
        {"workload": "hot-reset", "blocks_per_sec": 500000}
      ],
      "aes_backends": [
        {"name": "software", "encrypt8_ns_per_block": 50.0}
      ],
      "schemes": [
        {"scheme": "toleo", "workloads": [
          {"workload": "sequential", "blocks_per_sec": 100},
          {"workload": "random", "blocks_per_sec": 100},
          {"workload": "hot-reset", "blocks_per_sec": 100},
          {"workload": "multi-tenant", "blocks_per_sec": 100}
        ]},
        {"scheme": "toleo-sharded", "workloads": [
          {"workload": "sequential", "blocks_per_sec": 100},
          {"workload": "random", "blocks_per_sec": 100},
          {"workload": "hot-reset", "blocks_per_sec": 100},
          {"workload": "multi-tenant", "blocks_per_sec": 100}
        ]},
        {"scheme": "sgx-tree", "workloads": [
          {"workload": "sequential", "blocks_per_sec": 100},
          {"workload": "random", "blocks_per_sec": 100},
          {"workload": "hot-reset", "blocks_per_sec": 100},
          {"workload": "multi-tenant", "blocks_per_sec": 100}
        ]},
        {"scheme": "vault", "workloads": [
          {"workload": "sequential", "blocks_per_sec": 100},
          {"workload": "random", "blocks_per_sec": 100},
          {"workload": "hot-reset", "blocks_per_sec": 100},
          {"workload": "multi-tenant", "blocks_per_sec": 100}
        ]},
        {"scheme": "morph", "workloads": [
          {"workload": "sequential", "blocks_per_sec": 100},
          {"workload": "random", "blocks_per_sec": 100},
          {"workload": "hot-reset", "blocks_per_sec": 100},
          {"workload": "multi-tenant", "blocks_per_sec": 100}
        ]}
      ]
    }"#;

    fn full_measured() -> Report {
        let mut r = Report::new("throughput", "demo", 1000);
        r.metric("engine.sequential.blocks_per_sec", 950_000.0);
        r.metric("engine.random.blocks_per_sec", 790_000.0);
        r.metric("engine.hot-reset.blocks_per_sec", 490_000.0);
        r.metric("aes.software.encrypt8_ns_per_block", 52.0);
        for scheme in crate::perf::SCHEMES {
            for w in SCHEME_WORKLOADS {
                r.metric(format!("scheme.{scheme}.{w}.blocks_per_sec"), 99.0);
            }
        }
        r
    }

    #[test]
    fn floors_cover_engine_schemes_and_backends() {
        let rows = check_perf_floors(FULL_BASELINE, 0.85, &full_measured()).unwrap();
        // 3 engine + 5x4 scheme + 1 backend.
        assert_eq!(rows.len(), 3 + 20 + 1);
        assert!(rows.iter().all(|r| r.pass), "all floors clear at 0.85");
        let aes = rows.iter().find(|r| r.name.starts_with("aes.")).unwrap();
        assert!(!aes.higher_is_better);
    }

    #[test]
    fn doctored_baseline_fails_the_floor() {
        // Inflate the baseline 10x: every throughput row must fail.
        let doctored = FULL_BASELINE
            .replace("1000000", "10000000")
            .replace("800000", "8000000")
            .replace("500000", "5000000");
        let rows = check_perf_floors(&doctored, 0.85, &full_measured()).unwrap();
        assert!(rows
            .iter()
            .filter(|r| r.name.starts_with("engine."))
            .all(|r| !r.pass));
        // Slow AES 10x: the inverted floor fails too.
        let slow_aes = FULL_BASELINE.replace("50.0", "5.0");
        let rows = check_perf_floors(&slow_aes, 0.85, &full_measured()).unwrap();
        let aes = rows.iter().find(|r| r.name.starts_with("aes.")).unwrap();
        assert!(
            !aes.pass,
            "52ns vs 5ns baseline must fail the latency floor"
        );
    }

    #[test]
    fn missing_measurement_fails_loudly() {
        let mut incomplete = full_measured();
        incomplete
            .metrics
            .retain(|(k, _)| k != "engine.random.blocks_per_sec");
        let err = check_perf_floors(FULL_BASELINE, 0.85, &incomplete).unwrap_err();
        assert!(err.contains("engine.random.blocks_per_sec"));
        assert!(check_perf_floors("{}", 0.85, &full_measured())
            .unwrap_err()
            .contains("no floors"));
    }

    #[test]
    fn backend_absent_on_this_host_is_not_a_regression() {
        let mut no_ni = full_measured();
        no_ni.metrics.retain(|(k, _)| !k.starts_with("aes."));
        let baseline_with_ni = FULL_BASELINE.replace(
            r#"{"name": "software", "encrypt8_ns_per_block": 50.0}"#,
            r#"{"name": "aes-ni", "encrypt8_ns_per_block": 3.0}"#,
        );
        let rows = check_perf_floors(&baseline_with_ni, 0.85, &no_ni).unwrap();
        assert!(rows.iter().all(|r| !r.name.starts_with("aes.")));
    }

    #[test]
    fn splice_replaces_only_the_tagged_block() {
        let doc = format!(
            "intro\n\n{}\n\ntail\n\n{}\n",
            generated_block("figures", "OLD FIGURES"),
            generated_block("trajectory", "OLD TRAJECTORY"),
        );
        let spliced = splice_generated(&doc, "figures", "NEW FIGURES").unwrap();
        assert!(spliced.contains("NEW FIGURES"));
        assert!(!spliced.contains("OLD FIGURES"));
        assert!(spliced.contains("OLD TRAJECTORY"), "other block untouched");
        assert!(spliced.starts_with("intro\n"));
        assert!(spliced.contains("\ntail\n"));
        // Splicing the same body is idempotent.
        assert_eq!(
            splice_generated(&spliced, "figures", "NEW FIGURES").unwrap(),
            spliced
        );
        assert!(splice_generated("no markers here", "figures", "x")
            .unwrap_err()
            .contains("marker"));
    }

    #[test]
    fn availability_invariants_hold_and_fail() {
        let mut ok = Report::new("availability", "d", 10);
        ok.metric("false_kills.total", 0.0);
        ok.metric("observations_match.all", 1.0);
        ok.metric("quarantine.quarantined_shards", 1.0);
        ok.metric("quarantine.world_killed", 0.0);
        let rows = check_availability_invariants(&ok).unwrap();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.pass));

        let mut bad = ok.clone();
        bad.metrics[0].1 = 2.0; // two false kills
        let rows = check_availability_invariants(&bad).unwrap();
        assert!(!rows[0].pass);

        let empty = Report::new("availability", "d", 10);
        assert!(check_availability_invariants(&empty)
            .unwrap_err()
            .contains("false_kills.total"));
    }

    #[test]
    fn recovery_invariants_mix_exact_and_floor_checks() {
        let mut ok = Report::new("recovery", "d", 10);
        ok.metric("false_kills.total", 0.0);
        ok.metric("world_killed", 0.0);
        ok.metric("observations.mismatches", 0.0);
        ok.metric("pages_lost.unaccounted", 0.0);
        ok.metric("detection.within_poll_bound", 1.0);
        ok.metric("recovery.readmitted_all", 1.0);
        ok.metric("recoveries.completed", 2.0);
        ok.metric("goodput.during_recovery_vs_fault_free", 0.97);
        let rows = check_recovery_invariants(&ok).unwrap();
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().all(|r| r.pass));

        // Floors pass above their requirement but fail below it.
        let mut more = ok.clone();
        more.metrics.retain(|(k, _)| k != "recoveries.completed");
        more.metric("recoveries.completed", 3.0);
        assert!(check_recovery_invariants(&more)
            .unwrap()
            .iter()
            .all(|r| r.pass));
        let mut slow = ok.clone();
        slow.metrics
            .retain(|(k, _)| k != "goodput.during_recovery_vs_fault_free");
        slow.metric("goodput.during_recovery_vs_fault_free", 0.5);
        let rows = check_recovery_invariants(&slow).unwrap();
        let goodput = rows
            .iter()
            .find(|r| r.name == "goodput.during_recovery_vs_fault_free")
            .unwrap();
        assert!(!goodput.pass);

        // Exact invariants fail on ANY deviation, including "too big".
        let mut killed = ok.clone();
        killed.metrics.retain(|(k, _)| k != "false_kills.total");
        killed.metric("false_kills.total", 1.0);
        assert!(!check_recovery_invariants(&killed).unwrap()[0].pass);

        let empty = Report::new("recovery", "d", 10);
        assert!(check_recovery_invariants(&empty)
            .unwrap_err()
            .contains("false_kills.total"));
    }
}
