//! A minimal JSON reader for the bench tooling.
//!
//! The workspace vendors no `serde_json`, but the perf gate must parse
//! committed `BENCH_*.json` baselines *structurally* — text-scanning for
//! key substrings mis-pairs rows the moment a workload is reordered or a
//! `batch_blocks_per_sec` decoy precedes the `blocks_per_sec` it was
//! scanning for. This is a straightforward recursive-descent parser for
//! the JSON the harness emits (and any other well-formed document):
//! objects, arrays, strings with the standard escapes, f64 numbers,
//! booleans and null.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as f64 (the harness emits nothing wider).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order (keys may legally repeat in JSON;
    /// lookup returns the first).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` on non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// A human-readable description with a byte offset on malformed input or
/// trailing non-whitespace.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {pos}, found {:?}",
            c as char,
            bytes.get(*pos).map(|b| *b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        other => Err(format!(
            "unexpected {:?} at byte {pos}",
            other.map(|b| *b as char)
        )),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        *pos += 4;
                        // Surrogate pairs don't occur in harness output;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {:?}", *other as char)),
                }
            }
            Some(_) => {
                // Consume the whole run up to the next quote/escape in
                // one slice push. The input arrived as &str, so the run
                // is valid UTF-8 and both endpoints (ASCII delimiters)
                // are char boundaries.
                let start = *pos;
                while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
                    *pos += 1;
                }
                let run = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?;
                out.push_str(run);
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_harness_shaped_documents() {
        let doc = r#"
        {
          "schema": "toleo-bench-throughput/v4",
          "ok": true, "none": null, "neg": -2.5e1,
          "engine": [
            {"workload": "sequential", "blocks_per_sec": 123456.0},
            {"workload": "random", "blocks_per_sec": 7890}
          ]
        }"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some("toleo-bench-throughput/v4")
        );
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("none"), Some(&Value::Null));
        assert_eq!(v.get("neg").and_then(Value::as_f64), Some(-25.0));
        let engine = v.get("engine").and_then(Value::as_array).unwrap();
        assert_eq!(engine.len(), 2);
        assert_eq!(
            engine[1].get("blocks_per_sec").and_then(Value::as_f64),
            Some(7890.0)
        );
    }

    #[test]
    fn parses_string_escapes() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\": }",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn parses_committed_baselines() {
        // Every committed BENCH_*.json must stay parseable by the gate's
        // own reader.
        for name in ["BENCH_2.json", "BENCH_3.json", "BENCH_4.json"] {
            let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
            let v = parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(v.get("engine").is_some(), "{name} has an engine section");
        }
    }
}
