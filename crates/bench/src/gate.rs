//! The CI perf gate: structural comparison of measured throughput
//! against a committed `BENCH_*.json` baseline.
//!
//! Earlier revisions text-scanned the baseline for the first
//! `"blocks_per_sec"` substring after each workload tag, which could
//! match `batch_blocks_per_sec` / `wall_blocks_per_sec` decoys or
//! mis-pair rows if the baseline's workload order ever changed. The gate
//! now parses the baseline with [`json`] and keys the
//! `engine` array by workload *name*, so row order and adjacent keys are
//! irrelevant.

use crate::json::{self, Value};

/// Looks up the single-op `blocks_per_sec` of `workload` in a parsed
/// baseline document (any schema from v1 on: the `engine` array of
/// per-workload objects has been stable across schema versions).
///
/// # Errors
///
/// A description of what is missing or malformed.
pub fn engine_blocks_per_sec(baseline: &Value, workload: &str) -> Result<f64, String> {
    let engine = baseline
        .get("engine")
        .and_then(Value::as_array)
        .ok_or_else(|| "baseline has no engine array".to_string())?;
    let entry = engine
        .iter()
        .find(|e| e.get("workload").and_then(Value::as_str) == Some(workload))
        .ok_or_else(|| format!("baseline has no workload {workload:?}"))?;
    entry
        .get("blocks_per_sec")
        .and_then(Value::as_f64)
        .filter(|v| v.is_finite() && *v > 0.0)
        .ok_or_else(|| format!("baseline workload {workload:?} has no usable blocks_per_sec"))
}

/// Looks up a scheme's single-op `blocks_per_sec` on `workload` in a
/// v4+ baseline (the `schemes` array of per-scheme workload tables).
///
/// # Errors
///
/// A description of what is missing or malformed.
pub fn scheme_blocks_per_sec(
    baseline: &Value,
    scheme: &str,
    workload: &str,
) -> Result<f64, String> {
    let schemes = baseline
        .get("schemes")
        .and_then(Value::as_array)
        .ok_or_else(|| "baseline has no schemes array (needs schema v4+)".to_string())?;
    let entry = schemes
        .iter()
        .find(|s| s.get("scheme").and_then(Value::as_str) == Some(scheme))
        .ok_or_else(|| format!("baseline has no scheme {scheme:?}"))?;
    let row = entry
        .get("workloads")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("baseline scheme {scheme:?} has no workloads array"))?
        .iter()
        .find(|w| w.get("workload").and_then(Value::as_str) == Some(workload))
        .ok_or_else(|| format!("baseline scheme {scheme:?} has no workload {workload:?}"))?;
    row.get("blocks_per_sec")
        .and_then(Value::as_f64)
        .filter(|v| v.is_finite() && *v > 0.0)
        .ok_or_else(|| format!("baseline {scheme:?}/{workload:?} has no usable blocks_per_sec"))
}

/// Looks up a backend's 8-wide encrypt cost in ns/block in a v3+
/// baseline (the `aes_backends` array). Lower is better: the floor on
/// this metric is inverted.
///
/// # Errors
///
/// A description of what is missing or malformed.
pub fn backend_encrypt8_ns(baseline: &Value, backend: &str) -> Result<f64, String> {
    let backends = baseline
        .get("aes_backends")
        .and_then(Value::as_array)
        .ok_or_else(|| "baseline has no aes_backends array (needs schema v3+)".to_string())?;
    let entry = backends
        .iter()
        .find(|b| b.get("name").and_then(Value::as_str) == Some(backend))
        .ok_or_else(|| format!("baseline has no aes backend {backend:?}"))?;
    entry
        .get("encrypt8_ns_per_block")
        .and_then(Value::as_f64)
        .filter(|v| v.is_finite() && *v > 0.0)
        .ok_or_else(|| format!("baseline backend {backend:?} has no usable encrypt8_ns_per_block"))
}

/// One floor verdict, generalizing [`GateRow`] to both directions: a
/// throughput must clear `tolerance * baseline` from above, a latency
/// must stay under `baseline / tolerance` from below.
#[derive(Debug, Clone, PartialEq)]
pub struct FloorRow {
    /// Metric name (e.g. `engine.random.blocks_per_sec`).
    pub name: String,
    /// Measured value.
    pub measured: f64,
    /// Baseline value.
    pub baseline: f64,
    /// `measured / baseline`.
    pub ratio: f64,
    /// Whether bigger measurements are better (throughput) or worse
    /// (latency).
    pub higher_is_better: bool,
    /// Whether the row clears its floor at the given tolerance.
    pub pass: bool,
}

/// Builds one floor verdict. `tolerance` in `(0, 1]`: a throughput row
/// passes at `measured >= tolerance * baseline`, a latency row passes at
/// `measured <= baseline / tolerance`.
pub fn floor_row(
    name: impl Into<String>,
    measured: f64,
    baseline: f64,
    tolerance: f64,
    higher_is_better: bool,
) -> FloorRow {
    let pass = if higher_is_better {
        measured >= baseline * tolerance
    } else {
        measured <= baseline / tolerance
    };
    FloorRow {
        name: name.into(),
        measured,
        baseline,
        ratio: measured / baseline,
        higher_is_better,
        pass,
    }
}

/// One gate verdict: a workload's measured throughput against its
/// baseline floor.
#[derive(Debug, Clone, PartialEq)]
pub struct GateRow {
    /// Workload name.
    pub workload: String,
    /// Measured single-op blocks/s.
    pub measured: f64,
    /// Baseline single-op blocks/s.
    pub baseline: f64,
    /// `measured / baseline`.
    pub ratio: f64,
    /// Whether the row clears `tolerance * baseline`.
    pub pass: bool,
}

/// Runs the gate: every `(workload, measured blocks/s)` pair must hold at
/// least `tolerance` × its baseline throughput, with pairing done by
/// workload name. Returns one row per input pair, in input order.
///
/// # Errors
///
/// A parse/lookup failure on the baseline text (a gate that cannot read
/// its baseline must fail loudly, not pass vacuously).
pub fn compare(
    baseline_text: &str,
    tolerance: f64,
    measured: &[(&str, f64)],
) -> Result<Vec<GateRow>, String> {
    let baseline = json::parse(baseline_text).map_err(|e| format!("baseline JSON: {e}"))?;
    measured
        .iter()
        .map(|(workload, value)| {
            let base = engine_blocks_per_sec(&baseline, workload)?;
            Ok(GateRow {
                workload: (*workload).to_string(),
                measured: *value,
                baseline: base,
                ratio: value / base,
                pass: *value >= base * tolerance,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A baseline deliberately hostile to text-scanning: workloads in a
    /// different order than the harness emits (random before sequential),
    /// and every decoy key (`batch_`, `wall_`, `software_`,
    /// `seed_blocks_per_sec`) placed BEFORE the real `blocks_per_sec` in
    /// each object.
    const REORDERED_BASELINE: &str = r#"
    {
      "schema": "toleo-bench-throughput/v3",
      "engine": [
        {
          "workload": "random",
          "batch_blocks_per_sec": 111111,
          "wall_blocks_per_sec": 222222,
          "software_blocks_per_sec": 333333,
          "seed_blocks_per_sec": 444444,
          "blocks_per_sec": 2000000
        },
        {
          "workload": "sequential",
          "batch_blocks_per_sec": 555555,
          "blocks_per_sec": 1000000
        }
      ],
      "sharded": {
        "curves": [
          {"workload": "sequential", "points": [{"threads": 1, "blocks_per_sec": 999}]}
        ]
      }
    }"#;

    #[test]
    fn pairs_rows_by_name_not_order() {
        let base = json::parse(REORDERED_BASELINE).unwrap();
        assert_eq!(
            engine_blocks_per_sec(&base, "sequential").unwrap(),
            1_000_000.0
        );
        assert_eq!(engine_blocks_per_sec(&base, "random").unwrap(), 2_000_000.0);
        assert!(engine_blocks_per_sec(&base, "hot-reset")
            .unwrap_err()
            .contains("no workload"));
    }

    #[test]
    fn gate_passes_and_fails_per_row() {
        let rows = compare(
            REORDERED_BASELINE,
            0.85,
            &[("sequential", 900_000.0), ("random", 1_500_000.0)],
        )
        .unwrap();
        assert!(rows[0].pass, "sequential 0.9x clears the 0.85 floor");
        assert!(!rows[1].pass, "random 0.75x misses the floor");
        assert!((rows[1].ratio - 0.75).abs() < 1e-9);
        assert_eq!(rows[1].baseline, 2_000_000.0);
    }

    #[test]
    fn decoy_keys_cannot_feed_the_gate() {
        // The regression the structural parser fixes: a text scan from the
        // "random" tag would have found batch_blocks_per_sec's 111111
        // first and set a floor ~18x too low.
        let base = json::parse(REORDERED_BASELINE).unwrap();
        let v = engine_blocks_per_sec(&base, "random").unwrap();
        assert_ne!(v, 111_111.0);
        assert_ne!(v, 222_222.0);
        assert_ne!(v, 444_444.0);
    }

    #[test]
    fn unreadable_baseline_fails_loudly() {
        assert!(compare("{ not json", 0.85, &[("sequential", 1.0)]).is_err());
        let no_engine = r#"{"schema": "x"}"#;
        assert!(compare(no_engine, 0.85, &[("sequential", 1.0)])
            .unwrap_err()
            .contains("no engine array"));
    }

    #[test]
    fn scheme_and_backend_lookups_key_structurally() {
        let text = r#"
        {
          "schema": "toleo-bench-throughput/v5",
          "aes_backends": [
            {"name": "software", "encrypt8_ns_per_block": 54.3},
            {"name": "aes-ni", "encrypt8_ns_per_block": 3.4}
          ],
          "schemes": [
            {"scheme": "vault", "workloads": [
              {"workload": "random", "batch_blocks_per_sec": 7, "blocks_per_sec": 500}
            ]},
            {"scheme": "toleo", "workloads": [
              {"workload": "random", "blocks_per_sec": 900}
            ]}
          ]
        }"#;
        let base = json::parse(text).unwrap();
        assert_eq!(
            scheme_blocks_per_sec(&base, "toleo", "random").unwrap(),
            900.0
        );
        assert_eq!(
            scheme_blocks_per_sec(&base, "vault", "random").unwrap(),
            500.0
        );
        assert!(scheme_blocks_per_sec(&base, "morph", "random")
            .unwrap_err()
            .contains("no scheme"));
        assert!(scheme_blocks_per_sec(&base, "toleo", "sequential")
            .unwrap_err()
            .contains("no workload"));
        assert_eq!(backend_encrypt8_ns(&base, "aes-ni").unwrap(), 3.4);
        assert!(backend_encrypt8_ns(&base, "vaes")
            .unwrap_err()
            .contains("no aes backend"));
        // v1 baselines lack both sections and must say so, not pass.
        let v1 = json::parse(r#"{"engine": []}"#).unwrap();
        assert!(scheme_blocks_per_sec(&v1, "toleo", "random").is_err());
        assert!(backend_encrypt8_ns(&v1, "aes-ni").is_err());
    }

    #[test]
    fn floor_rows_invert_for_latency() {
        // Throughput: 0.9x baseline clears a 0.85 floor, 0.8x does not.
        assert!(floor_row("t", 90.0, 100.0, 0.85, true).pass);
        assert!(!floor_row("t", 80.0, 100.0, 0.85, true).pass);
        // Latency: 1.1x baseline is fine at 0.85 (limit ~1.176x), 1.3x is not.
        assert!(floor_row("l", 110.0, 100.0, 0.85, false).pass);
        assert!(!floor_row("l", 130.0, 100.0, 0.85, false).pass);
        let r = floor_row("l", 130.0, 100.0, 0.85, false);
        assert!((r.ratio - 1.3).abs() < 1e-9);
        assert!(!r.higher_is_better);
    }

    #[test]
    fn committed_baselines_satisfy_the_gate_reader() {
        for name in ["BENCH_2.json", "BENCH_3.json", "BENCH_4.json"] {
            let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
            let base = json::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            for workload in ["sequential", "random", "hot-reset"] {
                let v = engine_blocks_per_sec(&base, workload)
                    .unwrap_or_else(|e| panic!("{name}/{workload}: {e}"));
                assert!(v > 0.0, "{name}/{workload}");
            }
        }
        // The newer baselines also feed the scheme and backend floors.
        for name in ["BENCH_6.json", "BENCH_7.json"] {
            let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
            let base = json::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            for scheme in ["toleo", "toleo-sharded", "sgx-tree", "vault", "morph"] {
                for workload in ["sequential", "random", "hot-reset", "multi-tenant"] {
                    scheme_blocks_per_sec(&base, scheme, workload)
                        .unwrap_or_else(|e| panic!("{name} {scheme}/{workload}: {e}"));
                }
            }
            backend_encrypt8_ns(&base, "software")
                .unwrap_or_else(|e| panic!("{name} software backend: {e}"));
        }
        // BENCH_7 is the first baseline with the recovery subsection.
        let path = format!("{}/../../BENCH_7.json", env!("CARGO_MANIFEST_DIR"));
        let text = std::fs::read_to_string(&path).unwrap();
        let base = json::parse(&text).unwrap();
        let rec = base
            .get("availability")
            .and_then(|a| a.get("recovery"))
            .expect("BENCH_7 availability.recovery");
        for key in [
            "detection_latency_max_ops",
            "mttr_max_ops",
            "goodput_during_recovery_vs_fault_free",
        ] {
            assert!(rec.get(key).is_some(), "BENCH_7 recovery missing {key}");
        }
    }
}
