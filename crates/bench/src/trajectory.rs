//! The BENCH_2 → BENCH_7 lineage renderer: turns the committed
//! `BENCH_*.json` baselines into the Markdown trajectory tables that
//! `EXPERIMENTS.md` and `results/trajectory.md` carry.
//!
//! Every number in the rendered section comes from a committed baseline
//! file — nothing is hand-maintained. `reproduce --render` re-emits the
//! section, and a test asserts `EXPERIMENTS.md` contains it verbatim, so
//! the docs cannot drift from the data again.

// audit: allow-file(secret, `seed` here names the seed-commit perf column, not key material)

use crate::json::{self, Value};

/// The committed baseline files, oldest first, with the PR labels the
/// tables use. (BENCH_6 was emitted by PR 7 and BENCH_7 by PR 9; there
/// was no BENCH file for PR 6, the audit PR, or PR 8, the reproduce PR.)
pub const LINEAGE: [&str; 6] = [
    "BENCH_2.json",
    "BENCH_3.json",
    "BENCH_4.json",
    "BENCH_5.json",
    "BENCH_6.json",
    "BENCH_7.json",
];

/// One parsed baseline with its display label.
#[derive(Debug)]
pub struct BenchDoc {
    /// Display label (`PR 2`, `PR 3`, …) taken from the file's `pr`
    /// field.
    pub label: String,
    /// The parsed document.
    pub doc: Value,
}

/// Parses one baseline text into a labeled document.
///
/// # Errors
///
/// The text is not valid JSON or lacks the `pr` field.
pub fn parse_bench(text: &str) -> Result<BenchDoc, String> {
    let doc = json::parse(text).map_err(|e| format!("baseline JSON: {e}"))?;
    let pr = doc
        .get("pr")
        .and_then(Value::as_f64)
        .ok_or("baseline has no pr field")?;
    Ok(BenchDoc {
        label: format!("PR {pr}"),
        doc,
    })
}

/// Formats a throughput with thousands separators (`4_563_219` →
/// `4,563,219`).
pub fn thousands(v: f64) -> String {
    let n = v.round() as i64;
    let digits = n.abs().to_string();
    let mut out = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    if n < 0 {
        format!("-{out}")
    } else {
        out
    }
}

fn engine_field(doc: &Value, workload: &str, field: &str) -> Option<f64> {
    doc.get("engine")?
        .as_array()?
        .iter()
        .find(|e| e.get("workload").and_then(Value::as_str) == Some(workload))?
        .get(field)?
        .as_f64()
}

fn selected_aes(doc: &Value, field: &str) -> Option<f64> {
    doc.get("aes128")?.get(field)?.as_f64()
}

fn curve_speedup(doc: &Value, workload: &str) -> Option<f64> {
    doc.get("sharded")?
        .get("curves")?
        .as_array()?
        .iter()
        .find(|c| c.get("workload").and_then(Value::as_str) == Some(workload))?
        .get("speedup_4t_vs_1t")?
        .as_f64()
}

fn scheme_cell(doc: &Value, scheme: &str, workload: &str, field: &str) -> Option<f64> {
    doc.get("schemes")?
        .as_array()?
        .iter()
        .find(|s| s.get("scheme").and_then(Value::as_str) == Some(scheme))?
        .get("workloads")?
        .as_array()?
        .iter()
        .find(|w| w.get("workload").and_then(Value::as_str) == Some(workload))?
        .get(field)?
        .as_f64()
}

/// Renders the full trajectory section from parsed baselines (oldest
/// first). The output is deterministic for a fixed set of baseline
/// files, which is what lets a test pin `EXPERIMENTS.md` to it.
pub fn render(benches: &[BenchDoc]) -> String {
    let mut out = String::new();
    out.push_str(
        "Every number below is read from the committed `BENCH_*.json` lineage files \
         by `toleo_bench::trajectory` — regenerate with `reproduce --render`.\n",
    );

    // 1. Engine single-op throughput across PRs.
    out.push_str("\n### Engine throughput across PRs (blocks/s, single-op, selected backend)\n\n");
    out.push_str("| workload | seed |");
    for b in benches {
        out.push_str(&format!(" {} |", b.label));
    }
    out.push('\n');
    out.push_str("|---|---|");
    for _ in benches {
        out.push_str("---|");
    }
    out.push('\n');
    for workload in ["sequential", "random", "hot-reset"] {
        let seed = benches
            .first()
            .and_then(|b| engine_field(&b.doc, workload, "seed_blocks_per_sec"));
        out.push_str(&format!(
            "| {workload} | {} |",
            seed.map_or("—".to_string(), thousands)
        ));
        for b in benches {
            let v = engine_field(&b.doc, workload, "blocks_per_sec");
            out.push_str(&format!(" {} |", v.map_or("—".to_string(), thousands)));
        }
        out.push('\n');
    }

    // 2. AES selected-backend cost across PRs.
    out.push_str("\n### AES-128 cost across PRs (ns/block, selected backend)\n\n");
    out.push_str("| metric |");
    for b in benches {
        out.push_str(&format!(" {} |", b.label));
    }
    out.push_str("\n|---|");
    for _ in benches {
        out.push_str("---|");
    }
    out.push('\n');
    for (label, field) in [
        ("encrypt", "encrypt_ns_per_block"),
        ("decrypt", "decrypt_ns_per_block"),
    ] {
        out.push_str(&format!("| {label} |"));
        for b in benches {
            match selected_aes(&b.doc, field) {
                Some(v) => out.push_str(&format!(" {v:.1} |")),
                None => out.push_str(" — |"),
            }
        }
        out.push('\n');
    }

    // 3. Sharded scaling across PRs (v2+ files).
    out.push_str("\n### Sharded critical-path speedup, 4 threads vs 1 (8 shards)\n\n");
    out.push_str("| workload |");
    let with_sharded: Vec<&BenchDoc> = benches
        .iter()
        .filter(|b| b.doc.get("sharded").is_some())
        .collect();
    for b in &with_sharded {
        out.push_str(&format!(" {} |", b.label));
    }
    out.push_str("\n|---|");
    for _ in &with_sharded {
        out.push_str("---|");
    }
    out.push('\n');
    for workload in ["sequential", "random", "hot-reset", "multi-tenant"] {
        out.push_str(&format!("| {workload} |"));
        for b in &with_sharded {
            match curve_speedup(&b.doc, workload) {
                Some(v) => out.push_str(&format!(" {v:.2}x |")),
                None => out.push_str(" — |"),
            }
        }
        out.push('\n');
    }

    // 4. Scheme head-to-head from the newest baseline that has it.
    if let Some(latest) = benches
        .iter()
        .rev()
        .find(|b| b.doc.get("schemes").is_some())
    {
        out.push_str(&format!(
            "\n### Scheme head-to-head ({}; blocks/s, single-op / batched)\n\n",
            latest.label
        ));
        out.push_str("| scheme | sequential | random | hot-reset | multi-tenant |\n");
        out.push_str("|---|---|---|---|---|\n");
        for scheme in ["toleo", "toleo-sharded", "sgx-tree", "vault", "morph"] {
            out.push_str(&format!("| {scheme} |"));
            for workload in ["sequential", "random", "hot-reset", "multi-tenant"] {
                let single = scheme_cell(&latest.doc, scheme, workload, "blocks_per_sec");
                let batch = scheme_cell(&latest.doc, scheme, workload, "batch_blocks_per_sec");
                match (single, batch) {
                    (Some(s), Some(b)) => {
                        out.push_str(&format!(" {} / {} |", thousands(s), thousands(b)))
                    }
                    _ => out.push_str(" — |"),
                }
            }
            out.push('\n');
        }
    }

    // 5. Availability from the newest baseline that has it.
    if let Some(latest) = benches
        .iter()
        .rev()
        .find(|b| b.doc.get("availability").is_some())
    {
        out.push_str(&format!(
            "\n### Availability under injected faults ({})\n\n",
            latest.label
        ));
        out.push_str("| workload | goodput at worst rate | faults absorbed | false kills |\n");
        out.push_str("|---|---|---|---|\n");
        if let Some(rows) = latest
            .doc
            .get("availability")
            .and_then(|a| a.get("workloads"))
            .and_then(Value::as_array)
        {
            for row in rows {
                let workload = row.get("workload").and_then(Value::as_str).unwrap_or("?");
                let points = row.get("points").and_then(Value::as_array);
                let (mut worst, mut absorbed, mut kills) = (f64::INFINITY, 0u64, 0u64);
                for p in points.into_iter().flatten() {
                    if let Some(g) = p.get("goodput_vs_fault_free").and_then(Value::as_f64) {
                        worst = worst.min(g);
                    }
                    absorbed += p
                        .get("faults_absorbed")
                        .and_then(Value::as_f64)
                        .unwrap_or(0.0) as u64;
                    kills += p.get("false_kills").and_then(Value::as_f64).unwrap_or(0.0) as u64;
                }
                let worst = if worst.is_finite() { worst } else { 0.0 };
                out.push_str(&format!(
                    "| {workload} | {worst:.3} | {absorbed} | {kills} |\n"
                ));
            }
        }
        if let Some(q) = latest
            .doc
            .get("availability")
            .and_then(|a| a.get("quarantine"))
        {
            let shard = q
                .get("tampered_shard")
                .and_then(Value::as_f64)
                .unwrap_or(-1.0);
            let healthy = q
                .get("healthy_blocks")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            let refused = q
                .get("refused_blocks")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            out.push_str(&format!(
                "\nQuarantine containment: one tampered shard (shard {shard:.0}) frozen \
                 mid-traffic; healthy shards served {} more blocks while {} ops to the frozen \
                 shard were refused with `ShardQuarantined`; no world-kill.\n",
                thousands(healthy),
                thousands(refused)
            ));
        }
    }
    out
}

/// Reads and renders the committed lineage from a repo root directory.
///
/// # Errors
///
/// A missing or malformed baseline file.
pub fn render_from_dir(root: &std::path::Path) -> Result<String, String> {
    let mut benches = Vec::new();
    for name in LINEAGE {
        let path = root.join(name);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        benches.push(parse_bench(&text).map_err(|e| format!("{name}: {e}"))?);
    }
    Ok(render(&benches))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_formatting() {
        assert_eq!(thousands(0.0), "0");
        assert_eq!(thousands(999.0), "999");
        assert_eq!(thousands(1_000.0), "1,000");
        assert_eq!(thousands(4_563_219.4), "4,563,219");
        assert_eq!(thousands(-12_345.0), "-12,345");
    }

    #[test]
    fn renders_committed_lineage() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let section = render_from_dir(&root).expect("committed lineage renders");
        // Every PR label appears, every engine workload appears, and the
        // v4+ sections are present.
        for needle in [
            "PR 2",
            "PR 7",
            "| sequential |",
            "| hot-reset |",
            "Scheme head-to-head",
            "Availability under injected faults",
            "Quarantine containment",
        ] {
            assert!(section.contains(needle), "missing {needle:?}");
        }
        // Deterministic: rendering twice gives identical bytes.
        assert_eq!(section, render_from_dir(&root).unwrap());
    }

    #[test]
    fn parse_bench_requires_pr_field() {
        assert!(parse_bench(r#"{"schema": "x"}"#)
            .unwrap_err()
            .contains("pr"));
        let b = parse_bench(r#"{"pr": 4}"#).unwrap();
        assert_eq!(b.label, "PR 4");
    }
}
