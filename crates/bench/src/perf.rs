//! The wall-clock performance machinery behind the `throughput` binary
//! and the `reproduce` harness's timing experiments.
//!
//! Everything here used to live inside `src/bin/throughput.rs`; it is a
//! library module so the `reproduce` registry can drive the same
//! measurements (engine workloads, per-backend AES microbenchmarks, the
//! sharded scaling sweep, the five-scheme head-to-head arena, the
//! availability/quarantine experiments) without shelling out to the
//! binary, and so the emitted `BENCH_*.json` stays byte-compatible with
//! the committed lineage.
//!
//! Unlike the modeled-cycles experiments, every number here is a real
//! `Instant`-clocked measurement on the current host: results vary run
//! to run and host to host, which is why the reproduce harness gates
//! them with tolerance floors ([`crate::gate`]) instead of exact
//! reference comparison.

// audit: allow-file(panic, perf harness: abort on setup/serialization failure rather than emit bad data)
// audit: allow-file(secret, seed here names seed-commit perf baselines in the emitted JSON, not key material)

use std::collections::{HashMap, HashSet};
use std::time::Instant;
use toleo_baselines::{MorphEngine, SgxEngine, VaultEngine};
use toleo_core::channel::RetryPolicy;
use toleo_core::config::ToleoConfig;
use toleo_core::engine::ProtectionEngine;
use toleo_core::error::ToleoError;
use toleo_core::fault::FaultPlanConfig;
use toleo_core::protected::ProtectedMemory;
use toleo_core::sharded::ShardedEngine;
use toleo_crypto::aes::Aes128;
use toleo_crypto::backend::{
    available_backends, default_backend, set_default_backend, BackendKind,
};
use toleo_workloads::campaign::{
    same_shard_campaign, tamper_schedule, AdversaryStep, FAULT_RATE_SWEEP,
};
use toleo_workloads::concurrent::{multi_tenant, partition_by_page};
use toleo_workloads::pattern::{engine_pattern, homogeneous_runs, EnginePattern};
use toleo_workloads::{Op, Trace};

/// Engine blocks/sec measured on the seed (pre-T-table, pre-arena)
/// implementation at 200k ops, recorded when this harness was introduced.
/// Keys are `EnginePattern::name()` order: sequential, random, hot-reset.
pub const SEED_ENGINE_BLOCKS_PER_SEC: [f64; 3] = [606_917.0, 734_070.0, 355_539.0];
/// AES-128 per-block encrypt cost of the seed byte-oriented
/// implementation, measured by this harness's own 8-lane timing loop.
pub const SEED_AES_ENCRYPT_NS: f64 = 167.0;
/// AES-128 per-block decrypt cost of the seed implementation.
pub const SEED_AES_DECRYPT_NS: f64 = 318.9;

/// Default memory operations replayed per workload.
pub const DEFAULT_OPS: u64 = 200_000;
/// Footprint each pattern is confined to (1024 pages).
pub const FOOTPRINT_BYTES: u64 = 4 << 20;
/// Shard count for the sharded-engine sweep.
pub const SHARDS: usize = 8;
/// Worker-thread sweep for the scaling curve.
pub const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Tenants in the multi-tenant workload (each runs its pattern in its own
/// footprint window).
pub const TENANTS: usize = 8;
/// Max ops handed to one engine-batch call during batched replay.
pub const BATCH_OPS: usize = 256;
/// Timed iterations per AES measurement window at full scale.
pub const AES_ITERS: u32 = 50_000;

/// Every scheme in the head-to-head arena, in reporting order. Names are
/// the [`ProtectedMemory::scheme`] identifiers.
pub const SCHEMES: [&str; 5] = ["toleo", "toleo-sharded", "sgx-tree", "vault", "morph"];

/// Repeats for every wall-clock cell a tolerance floor gates (engine and
/// scheme single-op replays, the recovery goodput ratio). The fastest
/// repeat is reported — one scheduler hiccup on a shared CI host cannot
/// fail a 0.85 floor — and the relative spread across repeats is
/// recorded in the emitted JSON so flaky hosts are visible.
pub const GATE_TIMING_REPEATS: usize = 3;

/// Tamper steps the recovery campaign mounts against one shard: two
/// full quarantine → scrub → re-key → re-admit cycles, inside the
/// default per-shard recovery budget so the ladder never escalates.
pub const RECOVERY_CAMPAIGN_STEPS: usize = 2;

/// Repeats a timed replay, keeping the fastest run. Every repeat must
/// replay the same block count; returns `(blocks, best_seconds, spread)`
/// with `spread = (worst - best) / best`.
pub fn best_of_repeats(n: usize, mut f: impl FnMut() -> (u64, f64)) -> (u64, f64, f64) {
    assert!(n >= 1, "need at least one timing repeat");
    let (blocks, first) = f();
    let (mut best, mut worst) = (first, first);
    for _ in 1..n {
        let (b, seconds) = f();
        assert_eq!(b, blocks, "repeated replay lost ops");
        best = best.min(seconds);
        worst = worst.max(seconds);
    }
    (blocks, best, (worst - best) / best)
}

/// One engine workload's measured throughput, three ways.
pub struct WorkloadResult {
    /// `EnginePattern::name()` of the replayed pattern.
    pub name: &'static str,
    /// Blocks (reads + writes) replayed.
    pub blocks: u64,
    /// Single-op replay wall time.
    pub seconds: f64,
    /// Single-op replay throughput on the selected backend.
    pub blocks_per_sec: f64,
    /// `blocks_per_sec` over the seed implementation's number.
    pub speedup_vs_seed: f64,
    /// Same trace replayed through `read_batch`/`write_batch` in
    /// homogeneous runs of up to [`BATCH_OPS`] ops (selected backend).
    pub batch_blocks_per_sec: f64,
    /// Same trace, single ops, engine forced onto the software AES
    /// fallback — the portable floor every host is guaranteed.
    pub software_blocks_per_sec: f64,
    /// Relative spread of the gated single-op cell across its
    /// [`GATE_TIMING_REPEATS`] repeats: `(worst - best) / best`.
    pub timing_spread: f64,
}

/// Per-backend AES-128 microbenchmark numbers.
pub struct BackendAes {
    /// Which backend was measured.
    pub kind: BackendKind,
    /// Single-block encrypt, ns/block.
    pub encrypt_ns: f64,
    /// Single-block decrypt, ns/block.
    pub decrypt_ns: f64,
    /// ns/block through the 8-wide pipelined `encrypt_blocks8` API.
    pub encrypt8_ns: f64,
    /// ns/block through the 8-wide pipelined `decrypt_blocks8` API.
    pub decrypt8_ns: f64,
}

/// Runs `f` with the process-default AES backend pinned to `kind`,
/// restoring the prior default afterwards (the harness is single-threaded,
/// so this cannot race engine constructions).
pub fn with_default_backend<T>(kind: BackendKind, f: impl FnOnce() -> T) -> T {
    let prior = default_backend();
    set_default_backend(Some(kind));
    let out = f();
    set_default_backend(Some(prior));
    out
}

/// One thread count of a scaling curve.
pub struct ScalePoint {
    /// Worker-thread count.
    pub threads: usize,
    /// Blocks replayed across all workers.
    pub blocks: u64,
    /// Longest worker-group replay — the modeled wall-clock on >= threads
    /// cores.
    pub critical_path_seconds: f64,
    /// `blocks / critical_path_seconds`.
    pub blocks_per_sec: f64,
    /// Real `std::thread::scope` execution on this host.
    pub wall_seconds: f64,
    /// `blocks / wall_seconds`.
    pub wall_blocks_per_sec: f64,
}

/// One workload's thread-scaling curve over [`THREAD_SWEEP`].
pub struct ScalingCurve {
    /// Workload name.
    pub workload: String,
    /// One point per sweep thread count.
    pub points: Vec<ScalePoint>,
    /// Critical-path speedup of the 4-thread point over 1 thread.
    pub speedup_4t_vs_1t: f64,
}

/// One scheme × workload cell of the head-to-head table.
pub struct SchemeWorkload {
    /// Workload name.
    pub workload: &'static str,
    /// Blocks replayed.
    pub blocks: u64,
    /// Single-op replay through the `ProtectedMemory` trait.
    pub blocks_per_sec: f64,
    /// Same trace through the trait's batch entry points in homogeneous
    /// runs of up to [`BATCH_OPS`] ops.
    pub batch_blocks_per_sec: f64,
    /// Version-store traffic reported by the scheme for the single-op
    /// replay (device READ/UPDATEs for Toleo; uncached tree-node fetches
    /// for the Merkle schemes).
    pub version_fetches: u64,
    /// Bulk re-encryption events (stealth resets / overflow resets /
    /// leaf re-bases) during the single-op replay.
    pub reencryption_events: u64,
    /// Relative spread of the gated single-op cell across its
    /// [`GATE_TIMING_REPEATS`] repeats: `(worst - best) / best`.
    pub timing_spread: f64,
}

/// One scheme's full row of the head-to-head table.
pub struct SchemeResult {
    /// `ProtectedMemory::scheme` identifier.
    pub scheme: &'static str,
    /// One cell per workload, in [`availability_workloads`] order.
    pub workloads: Vec<SchemeWorkload>,
}

/// Constructs a fresh engine for `scheme`. Toleo engines take the
/// workload-tuned config; the baseline engines protect the same
/// footprint the traces are confined to.
pub fn build_scheme(scheme: &'static str, cfg: &ToleoConfig) -> Box<dyn ProtectedMemory> {
    match scheme {
        "toleo" => {
            Box::new(ProtectionEngine::try_new(cfg.clone(), [0x42u8; 48]).expect("valid config"))
        }
        "toleo-sharded" => {
            Box::new(ShardedEngine::new(cfg.clone(), SHARDS, [0x42u8; 48]).expect("valid config"))
        }
        "sgx-tree" => Box::new(SgxEngine::new(FOOTPRINT_BYTES)),
        "vault" => Box::new(VaultEngine::new(FOOTPRINT_BYTES)),
        "morph" => Box::new(MorphEngine::new(FOOTPRINT_BYTES)),
        other => unreachable!("unknown scheme {other}"),
    }
}

/// Replays `trace` op-at-a-time through any scheme; returns
/// (blocks, seconds).
pub fn replay_single_dyn(trace: &Trace, mem: &mut dyn ProtectedMemory) -> (u64, f64) {
    let start = Instant::now();
    let mut blocks = 0u64;
    let mut checksum = 0u64;
    for op in &trace.ops {
        match op {
            Op::Write(addr) => {
                let fill = (addr >> 6) as u8 ^ blocks as u8;
                mem.write(*addr, &[fill; 64]).expect("protected write");
                blocks += 1;
            }
            Op::Read(addr) => {
                let block = mem.read(*addr).expect("protected read");
                checksum = checksum.wrapping_add(block[0] as u64);
                blocks += 1;
            }
            Op::Compute(_) => {}
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    std::hint::black_box(checksum);
    (blocks, seconds)
}

/// Replays `trace` through any scheme's batch entry points in homogeneous
/// runs of up to [`BATCH_OPS`] ops; returns (blocks, seconds).
pub fn replay_batched_dyn(trace: &Trace, mem: &mut dyn ProtectedMemory) -> (u64, f64) {
    let runs = homogeneous_runs(trace, BATCH_OPS);
    let mut write_buf: Vec<(u64, [u8; 64])> = Vec::with_capacity(BATCH_OPS);
    let start = Instant::now();
    let mut blocks = 0u64;
    let mut checksum = 0u64;
    for (is_write, addrs) in &runs {
        if *is_write {
            write_buf.clear();
            write_buf.extend(addrs.iter().map(|addr| {
                let fill = (addr >> 6) as u8 ^ blocks as u8;
                blocks += 1;
                (*addr, [fill; 64])
            }));
            mem.write_batch(&write_buf).expect("protected write batch");
        } else {
            let out = mem.read_batch(addrs).expect("protected read batch");
            for block in &out {
                checksum = checksum.wrapping_add(block[0] as u64);
            }
            blocks += addrs.len() as u64;
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    std::hint::black_box(checksum);
    (blocks, seconds)
}

/// The head-to-head sweep: every scheme replays the same four traces
/// (same seeds, same footprint) through the shared trait, single-op and
/// batched.
pub fn run_scheme_sweep(ops: u64) -> Vec<SchemeResult> {
    // (name, trace, toleo config) — baselines ignore the config.
    let workloads = availability_workloads(ops);

    SCHEMES
        .iter()
        .map(|&scheme| {
            let rows = workloads
                .iter()
                .map(|(name, trace, cfg)| {
                    // The gated single-op cell is best-of-N; the replay is
                    // deterministic, so the stats of any repeat are the
                    // stats of all of them.
                    let mut stats = None;
                    let (blocks, seconds, timing_spread) =
                        best_of_repeats(GATE_TIMING_REPEATS, || {
                            let mut single = build_scheme(scheme, cfg);
                            let timed = replay_single_dyn(trace, single.as_mut());
                            stats = Some(single.stats());
                            timed
                        });
                    let stats = stats.expect("at least one repeat ran");
                    let mut batched = build_scheme(scheme, cfg);
                    let (batch_blocks, batch_seconds) = replay_batched_dyn(trace, batched.as_mut());
                    assert_eq!(
                        batch_blocks, blocks,
                        "{scheme}/{name}: batched replay lost ops"
                    );
                    SchemeWorkload {
                        workload: name,
                        blocks,
                        blocks_per_sec: blocks as f64 / seconds,
                        batch_blocks_per_sec: batch_blocks as f64 / batch_seconds,
                        version_fetches: stats.version_fetches,
                        reencryption_events: stats.reencryption_events,
                        timing_spread,
                    }
                })
                .collect();
            SchemeResult {
                scheme,
                workloads: rows,
            }
        })
        .collect()
}

/// One fault rate of a workload's availability curve.
pub struct AvailabilityPoint {
    /// Injected transient-fault rate.
    pub fault_rate: f64,
    /// Blocks replayed.
    pub blocks: u64,
    /// Throughput at this fault rate.
    pub blocks_per_sec: f64,
    /// Throughput relative to the fault-free (rate 0) run of the same
    /// workload — the goodput-vs-injected-fault-rate curve.
    pub goodput_vs_fault_free: f64,
    /// Faults the plan injected.
    pub faults_injected: u64,
    /// Faults absorbed by retry.
    pub faults_absorbed: u64,
    /// Channel retries issued.
    pub retries: u64,
    /// Cumulative modeled backoff.
    pub backoff_nanos: u64,
    /// Whether the run's observation checksum is bit-identical to the
    /// fault-free run's (retries must be invisible to the application).
    pub observations_match: bool,
    /// Shard quarantines + world-kills during the run; any non-zero value
    /// is a false kill, since injected transients are never integrity
    /// failures.
    pub false_kills: u64,
}

/// One workload's availability curve over [`FAULT_RATE_SWEEP`].
pub struct AvailabilityWorkload {
    /// Workload name.
    pub workload: &'static str,
    /// One point per fault rate.
    pub points: Vec<AvailabilityPoint>,
}

/// The one-shard-tampered-under-traffic experiment.
pub struct QuarantineExperiment {
    /// Workload name.
    pub workload: &'static str,
    /// Trace op index at which the tamper was mounted.
    pub tamper_at_op: u64,
    /// Shard owning the tampered address.
    pub tampered_shard: usize,
    /// Shards quarantined by the end of the run (must be 1).
    pub quarantined_shards: u64,
    /// Whether the engine world-killed (must be false).
    pub world_killed: bool,
    /// Ops served by healthy shards after the quarantine engaged.
    pub healthy_blocks: u64,
    /// Healthy-shard throughput after quarantine.
    pub healthy_blocks_per_sec: f64,
    /// Trace ops refused with `ShardQuarantined` after detection.
    pub refused_blocks: u64,
    /// Total ops the engine served.
    pub ops_served_total: u64,
    /// Ops served when the quarantine engaged.
    pub ops_at_quarantine: u64,
}

/// One faulted replay's raw outcome.
pub struct FaultedRun {
    /// Blocks replayed.
    pub blocks: u64,
    /// Wall time.
    pub seconds: f64,
    /// FNV fold of every read byte: two runs match iff the application
    /// observed bit-identical data.
    pub checksum: u64,
    /// Engine robustness counters after the run.
    pub stats: toleo_core::sharded::RobustnessStats,
}

/// Replays `trace` single-op through a sharded engine under `plan`. The
/// channel's fault plan is salted per shard from the engine seed, so one
/// campaign config fans out to [`SHARDS`] independent fault streams.
pub fn replay_sharded_faulted(
    trace: &Trace,
    cfg: &ToleoConfig,
    plan: Option<FaultPlanConfig>,
) -> FaultedRun {
    let engine = ShardedEngine::new_with_robustness(
        cfg.clone(),
        SHARDS,
        [0x42u8; 48],
        plan,
        RetryPolicy::default(),
    )
    .expect("sharded engine");
    let start = Instant::now();
    let mut blocks = 0u64;
    let mut checksum = 0xcbf2_9ce4_8422_2325u64;
    for op in &trace.ops {
        match op {
            Op::Write(addr) => {
                let fill = (addr >> 6) as u8 ^ blocks as u8;
                engine.write(*addr, &[fill; 64]).expect("protected write");
                blocks += 1;
            }
            Op::Read(addr) => {
                let block = engine.read(*addr).expect("protected read");
                for b in block {
                    checksum = (checksum ^ b as u64).wrapping_mul(0x100_0000_01b3);
                }
                blocks += 1;
            }
            Op::Compute(_) => {}
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    std::hint::black_box(checksum);
    FaultedRun {
        blocks,
        seconds,
        checksum,
        stats: engine.robustness_stats(),
    }
}

/// The four workload traces the availability sweep (and the scheme sweep)
/// replays, with their tuned configs.
pub fn availability_workloads(ops: u64) -> Vec<(&'static str, Trace, ToleoConfig)> {
    let mut workloads: Vec<(&'static str, Trace, ToleoConfig)> = EnginePattern::all()
        .iter()
        .enumerate()
        .map(|(i, p)| {
            (
                p.name(),
                engine_pattern(*p, ops, FOOTPRINT_BYTES, 0xBE2C + i as u64),
                engine_cfg(Some(*p)),
            )
        })
        .collect();
    workloads.push((
        "multi-tenant",
        multi_tenant(
            TENANTS,
            ops / TENANTS as u64,
            FOOTPRINT_BYTES / TENANTS as u64,
            0xBE2F,
        ),
        engine_cfg(None),
    ));
    workloads
}

/// The availability sweep: each workload replayed under every fault rate
/// of [`FAULT_RATE_SWEEP`] through the fault-injected device channel,
/// reporting goodput vs the fault-free run and proving the injected
/// transients were fully absorbed (identical observations, zero kills).
pub fn run_availability(ops: u64) -> Vec<AvailabilityWorkload> {
    availability_workloads(ops)
        .into_iter()
        .map(|(name, trace, cfg)| {
            let mut points: Vec<AvailabilityPoint> = Vec::with_capacity(FAULT_RATE_SWEEP.len());
            let mut reference: Option<(u64, f64, u64)> = None;
            for (i, &rate) in FAULT_RATE_SWEEP.iter().enumerate() {
                let plan = if rate > 0.0 {
                    // Per-point seeds so the curve's rates don't share one
                    // fault stream.
                    Some(FaultPlanConfig::uniform(0xFA01 + i as u64, rate))
                } else {
                    None
                };
                let run = replay_sharded_faulted(&trace, &cfg, plan);
                let blocks_per_sec = run.blocks as f64 / run.seconds;
                let (ref_blocks, ref_rate, ref_checksum) =
                    *reference.get_or_insert((run.blocks, blocks_per_sec, run.checksum));
                assert_eq!(run.blocks, ref_blocks, "{name}: faulted run lost ops");
                let false_kills = run.stats.quarantined_shards
                    + u64::from(run.stats.world_killed)
                    + run.stats.channel.retry_exhaustions;
                assert_eq!(false_kills, 0, "{name}: transients at rate {rate} killed");
                points.push(AvailabilityPoint {
                    fault_rate: rate,
                    blocks: run.blocks,
                    blocks_per_sec,
                    goodput_vs_fault_free: blocks_per_sec / ref_rate,
                    faults_injected: run.stats.channel.faults_injected,
                    faults_absorbed: run.stats.channel.faults_absorbed,
                    retries: run.stats.channel.retries,
                    backoff_nanos: run.stats.channel.backoff_nanos,
                    observations_match: run.checksum == ref_checksum,
                    false_kills,
                });
            }
            AvailabilityWorkload {
                workload: name,
                points,
            }
        })
        .collect()
}

/// Tamper one shard mid-traffic (at a `tamper_schedule` point) and measure
/// what the remaining shards still deliver: the quarantine containment
/// number the availability story rests on.
pub fn run_quarantine_experiment(ops: u64) -> QuarantineExperiment {
    let trace = engine_pattern(EnginePattern::Random, ops, FOOTPRINT_BYTES, 0xBE2D);
    let cfg = engine_cfg(Some(EnginePattern::Random));
    let engine = ShardedEngine::new(cfg, SHARDS, [0x42u8; 48]).expect("sharded engine");
    let event = tamper_schedule(&trace, 1, 0xFA17)
        .first()
        .copied()
        .expect("random trace has writes to tamper");
    let tampered_shard = engine.shard_of_addr(event.addr);

    let mut blocks = 0u64;
    let mut healthy_blocks = 0u64;
    let mut refused_blocks = 0u64;
    let mut tampered = false;
    let mut after_start = Instant::now();
    let mut checksum = 0u64;
    for op in &trace.ops {
        let addr = match op {
            Op::Write(addr) | Op::Read(addr) => *addr,
            Op::Compute(_) => continue,
        };
        if !tampered && blocks == event.at_op {
            // Mount the corruption, then act as the victim's next access
            // to the block: detection quarantines the owning shard.
            engine.with_adversary(event.addr, |dram| dram.corrupt_data(event.addr, 11, 0x5a));
            match engine.read(event.addr) {
                Err(ToleoError::IntegrityViolation { .. }) => {}
                other => panic!("tamper must be detected, got {other:?}"),
            }
            assert!(engine.is_shard_quarantined(tampered_shard));
            tampered = true;
            after_start = Instant::now();
        }
        let result = match op {
            Op::Write(_) => engine.write(addr, &[(addr >> 6) as u8 ^ blocks as u8; 64]),
            Op::Read(addr) => engine.read(*addr).map(|block| {
                checksum = checksum.wrapping_add(block[0] as u64);
            }),
            Op::Compute(_) => unreachable!(),
        };
        blocks += 1;
        match result {
            Ok(()) => {
                if tampered {
                    healthy_blocks += 1;
                }
            }
            Err(ToleoError::ShardQuarantined { shard, .. }) => {
                assert_eq!(shard, tampered_shard, "only the tampered shard refuses");
                assert!(tampered);
                refused_blocks += 1;
            }
            Err(e) => panic!("unexpected error under quarantine: {e}"),
        }
    }
    let after_seconds = after_start.elapsed().as_secs_f64();
    std::hint::black_box(checksum);
    assert!(!engine.is_killed(), "a tamper must never world-kill");
    assert_eq!(engine.quarantined_shard_count(), 1);
    let rs = engine.robustness_stats();
    QuarantineExperiment {
        workload: "random",
        tamper_at_op: event.at_op,
        tampered_shard,
        quarantined_shards: rs.quarantined_shards,
        world_killed: rs.world_killed,
        healthy_blocks,
        healthy_blocks_per_sec: healthy_blocks as f64 / after_seconds,
        refused_blocks,
        ops_served_total: rs.ops_served,
        ops_at_quarantine: rs.ops_at_last_quarantine,
    }
}

/// One mounted adversary step of the recovery campaign, measured under
/// live victim traffic: detection latency and MTTR in victim ops (the
/// deterministic unit) plus the healthy-shard goodput over the recovery
/// window (the wall-clock one).
pub struct RecoveryStepResult {
    /// Index of the step in the campaign.
    pub step: usize,
    /// The shard the step attacked.
    pub shard: usize,
    /// Block address the step corrupted.
    pub addr: u64,
    /// Victim ops executed when the corruption was mounted.
    pub mounted_at_op: u64,
    /// Victim ops between mounting and the quarantine verdict. Bounded
    /// by the engine's kill-poll interval: the victim's periodic
    /// integrity poll fires if its own traffic has not touched the
    /// tampered block by then.
    pub detection_latency_ops: u64,
    /// Victim ops attempted between the quarantine verdict and the
    /// shard's re-admission — the MTTR under live traffic.
    pub mttr_ops: u64,
    /// Blocks the scrub classified lost.
    pub blocks_lost: u64,
    /// The shard's new key generation after the re-key.
    pub generation: u64,
    /// Pages the scrub walked.
    pub pages_scrubbed: u64,
    /// Ops healthy shards served during the recovery window.
    pub healthy_blocks_during_recovery: u64,
    /// Wall-clock length of the recovery window.
    pub recovery_wall_seconds: f64,
}

/// One full run of the adversary campaign (possibly with zero steps —
/// the fault-free reference the goodput ratio divides by).
pub struct CampaignRun {
    /// Per-step measurements, in mount order.
    pub steps: Vec<RecoveryStepResult>,
    /// Victim ops attempted over the whole run.
    pub blocks: u64,
    /// Wall time of the whole run.
    pub seconds: f64,
    /// Reads that surfaced a lost block as `PageLost`.
    pub lost_reads_surfaced: u64,
    /// `PageLost` reads on addresses the campaign never attacked — any
    /// non-zero value means the lost-block ledger over-approximates.
    pub lost_reads_unaccounted: u64,
    /// Reads of never-attacked addresses that were not bit-identical to
    /// the victim's shadow model (including the post-run sweep).
    pub observation_mismatches: u64,
    /// Quarantines/kills beyond the mounted campaign: leftover
    /// quarantined shards, world-kill, retry exhaustions, budget kills
    /// and unexpected per-op errors.
    pub false_kills: u64,
    /// Whether the engine world-killed.
    pub world_killed: bool,
    /// Recovery-plane counters at the end of the run.
    pub recovery: toleo_core::sharded::RecoveryStats,
    /// Median per-op service latency across every served op, in ns.
    pub median_serve_ns: f64,
    /// Median per-op service latency of ops served *inside* recovery
    /// windows, in ns. Zero when the run had no recovery window (the
    /// fault-free reference) or recovery finished before a single op
    /// could be served.
    pub median_recovery_serve_ns: f64,
}

/// Median of a per-op latency sample; 0.0 for an empty sample.
fn median_nanos(mut sample: Vec<u64>) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    sample.sort_unstable();
    let mid = sample.len() / 2;
    if sample.len().is_multiple_of(2) {
        (sample[mid - 1] + sample[mid]) as f64 / 2.0
    } else {
        sample[mid] as f64
    }
}

impl CampaignRun {
    /// Healthy-shard goodput over the recovery windows, in blocks/s.
    /// Zero when the run had no recovery window (the fault-free
    /// reference).
    pub fn healthy_goodput(&self) -> f64 {
        let blocks: u64 = self
            .steps
            .iter()
            .map(|s| s.healthy_blocks_during_recovery)
            .sum();
        let seconds: f64 = self.steps.iter().map(|s| s.recovery_wall_seconds).sum();
        if seconds > 0.0 {
            blocks as f64 / seconds
        } else {
            0.0
        }
    }
}

/// The recovery experiment: a multi-step tamper campaign against one
/// shard under live victim traffic, each step driven through the full
/// quarantine → scrub → re-key → re-admit cycle, with goodput de-flaked
/// best-of-[`GATE_TIMING_REPEATS`].
pub struct RecoveryExperiment {
    /// Workload name.
    pub workload: &'static str,
    /// Shard count.
    pub shards: usize,
    /// Per-shard recovery budget in force.
    pub recovery_budget: u64,
    /// The victim's integrity-poll bound on detection latency, in ops.
    pub kill_poll_ops: u64,
    /// The best repeat's campaign run (correctness held on every repeat).
    pub best: CampaignRun,
    /// Fault-free reference throughput through the same serving loop.
    pub fault_free_blocks_per_sec: f64,
    /// Median fault-free per-op service latency (best of the reference
    /// repeats), in ns.
    pub fault_free_median_op_ns: f64,
    /// Best repeat's median per-op service latency inside recovery
    /// windows, in ns.
    pub recovery_median_op_ns: f64,
    /// Scheduler-neutral healthy-shard goodput ratio: median fault-free
    /// per-op service latency over the best repeat's median per-op
    /// latency inside recovery windows. A wall-clock blocks/s ratio
    /// would conflate OS CPU-sharing (on a single-core host the
    /// recovery thread timeshares with the serving loop) with engine
    /// interference; the median isolates what the scheme controls —
    /// lock contention and cache thrash on the healthy shards'
    /// critical path — because preemption shows up as rare large
    /// outliers the median ignores. 1.0 when recovery finished before
    /// a single in-window op could be served (no outage observed).
    pub goodput_during_recovery_vs_fault_free: f64,
    /// Raw wall-clock healthy goodput over fault-free blocks/s, for
    /// transparency (informational — CPU-sharing bound, not gated).
    pub wall_goodput_during_recovery_vs_fault_free: f64,
    /// Relative spread of the goodput ratio across repeats.
    pub goodput_spread: f64,
    /// Whether every step was detected within the poll bound.
    pub detection_within_poll_bound: bool,
    /// Whether every mounted step ended with the shard re-admitted.
    pub readmitted_all: bool,
}

/// The victim of a recovery campaign: serves trace ops against the
/// sharded engine while keeping a shadow model of every write, so
/// observations can be checked bit-identical across quarantine,
/// recovery and re-admission.
struct CampaignVictim {
    /// Expected plaintext per written address.
    shadow: HashMap<u64, [u8; 64]>,
    /// Addresses the campaign attacked whose blocks are (or may be)
    /// marked lost; a `PageLost` read outside this set is unaccounted.
    lost: HashSet<u64>,
    /// Victim memory ops attempted so far (drives the fill pattern).
    blocks: u64,
    /// Reads not bit-identical to the shadow model.
    mismatches: u64,
    /// Reads that surfaced `PageLost` on an attacked address.
    lost_reads: u64,
    /// Reads that surfaced `PageLost` on a never-attacked address.
    lost_reads_unaccounted: u64,
    /// Errors outside the quarantine/lost vocabulary.
    unexpected: u64,
}

impl CampaignVictim {
    fn new() -> Self {
        CampaignVictim {
            shadow: HashMap::new(),
            lost: HashSet::new(),
            blocks: 0,
            mismatches: 0,
            lost_reads: 0,
            lost_reads_unaccounted: 0,
            unexpected: 0,
        }
    }

    /// Executes one victim memory op; returns whether it was served.
    fn serve(&mut self, engine: &ShardedEngine, op: Op) -> bool {
        match op {
            Op::Write(addr) => {
                let fill = (addr >> 6) as u8 ^ self.blocks as u8;
                self.blocks += 1;
                match engine.write(addr, &[fill; 64]) {
                    Ok(()) => {
                        // A fresh write repopulates a lost block.
                        self.shadow.insert(addr, [fill; 64]);
                        self.lost.remove(&addr);
                        true
                    }
                    Err(ToleoError::ShardQuarantined { .. }) => false,
                    Err(_) => {
                        self.unexpected += 1;
                        false
                    }
                }
            }
            Op::Read(addr) => {
                self.blocks += 1;
                match engine.read(addr) {
                    Ok(block) => {
                        if let Some(expected) = self.shadow.get(&addr) {
                            if block != *expected {
                                self.mismatches += 1;
                            }
                        }
                        true
                    }
                    Err(ToleoError::PageLost { .. }) => {
                        if self.lost.contains(&addr) {
                            self.lost_reads += 1;
                        } else {
                            self.lost_reads_unaccounted += 1;
                        }
                        false
                    }
                    Err(ToleoError::ShardQuarantined { .. }) => false,
                    Err(_) => {
                        self.unexpected += 1;
                        false
                    }
                }
            }
            Op::Compute(_) => true,
        }
    }
}

/// Runs one adversary campaign over `trace`: victim traffic flows
/// (wrapping the trace if a recovery outlasts it) while every step is
/// mounted, detected, recovered on a parallel thread, and measured.
fn run_campaign(trace: &Trace, cfg: &ToleoConfig, campaign: &[AdversaryStep]) -> CampaignRun {
    let engine = ShardedEngine::new(cfg.clone(), SHARDS, [0x42u8; 48]).expect("sharded engine");
    let poll_bound = engine.kill_poll_ops() as u64;
    let mem_ops: Vec<Op> = trace
        .ops
        .iter()
        .filter(|op| matches!(op, Op::Read(_) | Op::Write(_)))
        .copied()
        .collect();
    assert!(!mem_ops.is_empty(), "campaign trace has no memory ops");
    let op_at = |i: usize| mem_ops[i % mem_ops.len()];

    let mut victim = CampaignVictim::new();
    let mut steps: Vec<RecoveryStepResult> = Vec::new();
    let mut queue = campaign.iter().copied().peekable();
    let mut cursor = 0usize;
    // Per-op service latencies: every served op, and the subset served
    // inside recovery windows. Both the fault-free reference and the
    // campaign run pay the same per-op timing cost, so it cancels in
    // the goodput ratio.
    let mut serve_ns: Vec<u64> = Vec::with_capacity(mem_ops.len());
    let mut window_ns: Vec<u64> = Vec::new();
    // Serve the whole trace at least once; wrap (bounded) if a recovery
    // window would otherwise outlast it.
    let stop_at = mem_ops.len() * 4;
    let start = Instant::now();
    while (cursor < mem_ops.len() || queue.peek().is_some()) && cursor < stop_at {
        if let Some(step) = queue.peek().copied() {
            if victim.blocks >= step.at_op() {
                queue.next();
                let addr = step.addr();
                let shard = engine.shard_of_addr(addr);
                let mounted_at_op = victim.blocks;
                engine.with_adversary(addr, |dram| dram.corrupt_data(addr, 11, 0x5a));
                // Victim traffic keeps flowing until the victim's own
                // traffic touches the tampered block or its periodic
                // integrity poll fires — whichever comes first bounds
                // the detection latency by the kill-poll interval.
                let mut since_mount = 0u64;
                while since_mount < poll_bound
                    && !matches!(op_at(cursor), Op::Read(a) | Op::Write(a) if a == addr)
                {
                    let t = Instant::now();
                    if victim.serve(&engine, op_at(cursor)) {
                        serve_ns.push(t.elapsed().as_nanos() as u64);
                    }
                    cursor += 1;
                    since_mount += 1;
                }
                // The detecting access: integrity violation, shard
                // quarantined, world alive.
                match engine.read(addr) {
                    Err(ToleoError::IntegrityViolation { .. }) => {}
                    other => panic!("recovery campaign: tamper must be detected, got {other:?}"),
                }
                assert!(
                    engine.is_shard_quarantined(shard),
                    "detection must quarantine"
                );
                victim.blocks += 1;
                victim.lost.insert(addr);
                // Recover on a parallel thread while the victim keeps
                // serving: ops attempted between the quarantine verdict
                // and re-admission are the MTTR; healthy-shard goodput
                // is measured over the same window.
                let window_start = Instant::now();
                let mut mttr_ops = 0u64;
                let mut healthy = 0u64;
                let outcome = std::thread::scope(|s| {
                    let handle = s.spawn(|| engine.recover_shard(shard));
                    while !handle.is_finished() {
                        if cursor < stop_at {
                            let t = Instant::now();
                            if victim.serve(&engine, op_at(cursor)) {
                                let ns = t.elapsed().as_nanos() as u64;
                                serve_ns.push(ns);
                                window_ns.push(ns);
                                healthy += 1;
                            }
                            cursor += 1;
                            mttr_ops += 1;
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    handle.join().expect("recovery thread")
                })
                .expect("recovery must re-admit the shard");
                let recovery_wall_seconds = window_start.elapsed().as_secs_f64();
                assert!(
                    !engine.is_shard_quarantined(shard),
                    "shard must be re-admitted"
                );
                steps.push(RecoveryStepResult {
                    step: steps.len(),
                    shard,
                    addr,
                    mounted_at_op,
                    detection_latency_ops: since_mount,
                    mttr_ops,
                    blocks_lost: outcome.blocks_lost,
                    generation: outcome.generation,
                    pages_scrubbed: outcome.pages_scrubbed,
                    healthy_blocks_during_recovery: healthy,
                    recovery_wall_seconds,
                });
                continue;
            }
        }
        let t = Instant::now();
        if victim.serve(&engine, op_at(cursor)) {
            serve_ns.push(t.elapsed().as_nanos() as u64);
        }
        cursor += 1;
    }
    let seconds = start.elapsed().as_secs_f64();
    assert!(queue.peek().is_none(), "campaign steps left unmounted");

    // Post-run sweep: every surviving write must read back bit-identical;
    // every lost block must surface as PageLost, never as silent data.
    for (addr, expected) in &victim.shadow {
        match engine.read(*addr) {
            Ok(block) => {
                if block != *expected {
                    victim.mismatches += 1;
                }
            }
            Err(ToleoError::PageLost { .. }) if victim.lost.contains(addr) => {
                victim.lost_reads += 1;
            }
            Err(_) => victim.mismatches += 1,
        }
    }

    let rs = engine.robustness_stats();
    let false_kills = engine.quarantined_shard_count()
        + u64::from(rs.world_killed)
        + rs.channel.retry_exhaustions
        + rs.recovery.budget_kills
        + victim.unexpected;
    CampaignRun {
        steps,
        blocks: victim.blocks,
        seconds,
        lost_reads_surfaced: victim.lost_reads,
        lost_reads_unaccounted: victim.lost_reads_unaccounted,
        observation_mismatches: victim.mismatches,
        false_kills,
        world_killed: rs.world_killed,
        recovery: rs.recovery,
        median_serve_ns: median_nanos(serve_ns),
        median_recovery_serve_ns: median_nanos(window_ns),
    }
}

/// Builds the recovery campaign for `trace`: the first shard that
/// supports [`RECOVERY_CAMPAIGN_STEPS`] tamper steps with pairwise
/// distinct target addresses (each mount must land on live, not
/// already-lost, ciphertext).
pub fn recovery_campaign(trace: &Trace) -> Vec<AdversaryStep> {
    (0..SHARDS)
        .find_map(|shard| {
            let mut seen = HashSet::new();
            let steps: Vec<AdversaryStep> =
                same_shard_campaign(trace, SHARDS, shard, RECOVERY_CAMPAIGN_STEPS * 3, 0xFA19)
                    .into_iter()
                    .filter(|s| seen.insert(s.addr()))
                    .take(RECOVERY_CAMPAIGN_STEPS)
                    .collect();
            (steps.len() == RECOVERY_CAMPAIGN_STEPS).then_some(steps)
        })
        .expect("some shard supports a full recovery campaign")
}

/// The recovery experiment: quarantine as a bounded outage, measured.
/// A same-shard tamper campaign is mounted under live traffic; every
/// step must be detected within the kill-poll bound, scrubbed, re-keyed
/// and re-admitted while healthy shards keep serving. Correctness
/// (zero false kills, bit-identical observations on never-attacked
/// addresses, lost blocks surfacing as typed errors) is asserted on
/// every repeat; the goodput ratio keeps the best of
/// [`GATE_TIMING_REPEATS`] repeats.
pub fn run_recovery_experiment(ops: u64) -> RecoveryExperiment {
    let trace = engine_pattern(EnginePattern::Random, ops, FOOTPRINT_BYTES, 0xBE2D);
    let cfg = engine_cfg(Some(EnginePattern::Random));
    let campaign = recovery_campaign(&trace);

    // Fault-free reference through the SAME serving loop (shadow-model
    // bookkeeping included), so the goodput ratio compares like with
    // like.
    let mut ff_median = f64::INFINITY;
    let (ff_blocks, ff_seconds, _) = best_of_repeats(GATE_TIMING_REPEATS, || {
        let run = run_campaign(&trace, &cfg, &[]);
        assert_eq!(run.false_kills, 0, "fault-free reference killed");
        assert_eq!(
            run.observation_mismatches, 0,
            "fault-free reference diverged"
        );
        // Best (lowest-noise) median across the reference repeats —
        // the *fastest* baseline, so the gated ratio is conservative.
        ff_median = ff_median.min(run.median_serve_ns);
        (run.blocks, run.seconds)
    });
    let fault_free_blocks_per_sec = ff_blocks as f64 / ff_seconds;
    assert!(
        ff_median.is_finite() && ff_median > 0.0,
        "fault-free reference produced no per-op latency sample"
    );

    let mut best: Option<CampaignRun> = None;
    let (mut best_ratio, mut worst_ratio) = (0.0f64, f64::INFINITY);
    for _ in 0..GATE_TIMING_REPEATS {
        let run = run_campaign(&trace, &cfg, &campaign);
        // Correctness invariants hold on EVERY repeat; only the timing
        // ratio is best-of-N.
        assert_eq!(run.false_kills, 0, "recovery campaign false-killed");
        assert!(!run.world_killed, "recovery campaign world-killed");
        assert_eq!(run.observation_mismatches, 0, "observations diverged");
        assert_eq!(
            run.lost_reads_unaccounted, 0,
            "lost ledger over-approximated"
        );
        assert_eq!(run.steps.len(), campaign.len(), "campaign steps dropped");
        // Scheduler-neutral goodput: ratio of median per-op service
        // latencies (see `RecoveryExperiment`). A window too short to
        // serve a single op is vacuously unimpaired.
        let ratio = if run.median_recovery_serve_ns > 0.0 {
            ff_median / run.median_recovery_serve_ns
        } else {
            1.0
        };
        worst_ratio = worst_ratio.min(ratio);
        if ratio > best_ratio || best.is_none() {
            best_ratio = ratio;
            best = Some(run);
        }
    }
    let best = best.expect("at least one campaign repeat ran");
    let wall_goodput = best.healthy_goodput() / fault_free_blocks_per_sec;
    let kill_poll = toleo_core::sharded::DEFAULT_KILL_POLL_OPS as u64;
    let detection_within_poll_bound = best
        .steps
        .iter()
        .all(|s| s.detection_latency_ops <= kill_poll);
    let readmitted_all = best
        .steps
        .iter()
        .all(|s| s.generation as usize == s.step + 1);
    RecoveryExperiment {
        workload: "random",
        shards: SHARDS,
        recovery_budget: toleo_core::sharded::DEFAULT_RECOVERY_BUDGET,
        kill_poll_ops: kill_poll,
        fault_free_blocks_per_sec,
        fault_free_median_op_ns: ff_median,
        recovery_median_op_ns: best.median_recovery_serve_ns,
        best,
        goodput_during_recovery_vs_fault_free: best_ratio,
        wall_goodput_during_recovery_vs_fault_free: wall_goodput,
        goodput_spread: (best_ratio - worst_ratio) / best_ratio,
        detection_within_poll_bound,
        readmitted_all,
    }
}

/// The Toleo config each engine pattern runs under (hot-reset gets a
/// fast-firing probabilistic reset so the re-encryption path dominates).
pub fn engine_cfg(pattern: Option<EnginePattern>) -> ToleoConfig {
    let mut cfg = ToleoConfig::small();
    if pattern == Some(EnginePattern::HotReset) {
        // Make the probabilistic stealth reset fire roughly every 256 hot
        // writes so the page re-encryption slab walk dominates.
        cfg.reset_log2 = 8;
    }
    cfg
}

/// Replays `trace` op-at-a-time through a fresh engine; returns
/// (blocks, seconds).
pub fn replay_single(trace: &Trace, cfg: &ToleoConfig) -> (u64, f64) {
    let mut engine = ProtectionEngine::try_new(cfg.clone(), [0x42u8; 48]).unwrap();
    replay_single_dyn(trace, &mut engine)
}

/// Replays `trace` through the engine's batched entry points in
/// homogeneous runs of up to [`BATCH_OPS`] ops; returns (blocks, seconds).
pub fn replay_batched(trace: &Trace, cfg: &ToleoConfig) -> (u64, f64) {
    let mut engine = ProtectionEngine::try_new(cfg.clone(), [0x42u8; 48]).unwrap();
    replay_batched_dyn(trace, &mut engine)
}

/// Measures one engine pattern three ways (single-op, batched, software
/// fallback).
pub fn run_workload(pattern: EnginePattern, idx: usize, ops: u64) -> WorkloadResult {
    let trace = engine_pattern(pattern, ops, FOOTPRINT_BYTES, 0xBE2C + idx as u64);
    let cfg = engine_cfg(Some(pattern));
    // The single-op cell feeds the CI tolerance floor: best-of-N with the
    // spread recorded, so one scheduler hiccup cannot fail the gate.
    let (blocks, seconds, timing_spread) =
        best_of_repeats(GATE_TIMING_REPEATS, || replay_single(&trace, &cfg));
    let blocks_per_sec = blocks as f64 / seconds;
    let (batch_blocks, batch_seconds) = replay_batched(&trace, &cfg);
    assert_eq!(batch_blocks, blocks, "batched replay lost ops");
    let (soft_blocks, soft_seconds) =
        with_default_backend(BackendKind::Software, || replay_single(&trace, &cfg));
    assert_eq!(soft_blocks, blocks, "software replay lost ops");
    WorkloadResult {
        name: pattern.name(),
        blocks,
        seconds,
        blocks_per_sec,
        speedup_vs_seed: blocks_per_sec / SEED_ENGINE_BLOCKS_PER_SEC[idx],
        batch_blocks_per_sec: batch_blocks as f64 / batch_seconds,
        software_blocks_per_sec: soft_blocks as f64 / soft_seconds,
        timing_spread,
    }
}

/// Measures every engine pattern.
pub fn run_engine_workloads(ops: u64) -> Vec<WorkloadResult> {
    EnginePattern::all()
        .iter()
        .enumerate()
        .map(|(i, p)| run_workload(*p, i, ops))
        .collect()
}

/// Replays a set of per-shard sub-traces through the sharded handle,
/// returning the block count.
fn replay_parts(engine: &ShardedEngine, parts: &[&Trace]) -> u64 {
    let mut blocks = 0u64;
    let mut checksum = 0u64;
    for part in parts {
        for op in &part.ops {
            match op {
                Op::Write(addr) => {
                    let fill = (addr >> 6) as u8;
                    engine.write(*addr, &[fill; 64]).expect("protected write");
                    blocks += 1;
                }
                Op::Read(addr) => {
                    let block = engine.read(*addr).expect("protected read");
                    checksum = checksum.wrapping_add(block[0] as u64);
                    blocks += 1;
                }
                Op::Compute(_) => {}
            }
        }
    }
    std::hint::black_box(checksum);
    blocks
}

/// Shards assigned to worker group `g` of `threads` (round-robin).
fn group(parts: &[Trace], g: usize, threads: usize) -> Vec<&Trace> {
    parts
        .iter()
        .enumerate()
        .filter(|(s, _)| s % threads == g)
        .map(|(_, t)| t)
        .collect()
}

/// Measures one thread count of the scaling curve for a pre-partitioned
/// trace: the per-group critical path (each group replayed in isolation on
/// a fresh engine) plus the real scoped-thread execution.
fn sweep_point(cfg: &ToleoConfig, parts: &[Trace], threads: usize) -> ScalePoint {
    // Critical path: time each worker group's stream by itself. Groups
    // touch disjoint shards, so their times compose as max() under true
    // parallelism.
    let engine = ShardedEngine::new(cfg.clone(), SHARDS, [0x42u8; 48]).expect("sharded engine");
    let mut blocks = 0u64;
    let mut critical = 0f64;
    for g in 0..threads {
        let members = group(parts, g, threads);
        let start = Instant::now();
        blocks += replay_parts(&engine, &members);
        critical = critical.max(start.elapsed().as_secs_f64());
    }

    // Validation run: the same decomposition on real scoped threads (on a
    // host with >= `threads` cores this is the headline number; on fewer
    // cores the workers time-slice).
    let engine = ShardedEngine::new(cfg.clone(), SHARDS, [0x42u8; 48]).expect("sharded engine");
    let start = Instant::now();
    let wall_blocks: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|g| {
                let engine = &engine;
                let members = group(parts, g, threads);
                s.spawn(move || replay_parts(engine, &members))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).sum()
    });
    let wall_seconds = start.elapsed().as_secs_f64();
    assert_eq!(wall_blocks, blocks, "threaded replay lost ops");

    ScalePoint {
        threads,
        blocks,
        critical_path_seconds: critical,
        blocks_per_sec: blocks as f64 / critical,
        wall_seconds,
        wall_blocks_per_sec: blocks as f64 / wall_seconds,
    }
}

/// Measures one workload's full thread-scaling curve.
pub fn sweep_curve(name: &str, cfg: &ToleoConfig, trace: &Trace) -> ScalingCurve {
    let parts = partition_by_page(trace, SHARDS);
    let points: Vec<ScalePoint> = THREAD_SWEEP
        .iter()
        .map(|&t| sweep_point(cfg, &parts, t))
        .collect();
    let at = |points: &[ScalePoint], threads: usize| {
        points
            .iter()
            .find(|p| p.threads == threads)
            .expect("sweep point")
            .blocks_per_sec
    };
    let one_thread = at(&points, 1);
    ScalingCurve {
        workload: name.to_string(),
        speedup_4t_vs_1t: at(&points, 4) / one_thread,
        points,
    }
}

/// Measures the thread-scaling curves for every workload (sequential,
/// random, hot-reset, multi-tenant).
pub fn run_scaling_curves(ops: u64) -> Vec<ScalingCurve> {
    let mut curves = Vec::new();
    for pattern in [EnginePattern::Sequential, EnginePattern::Random] {
        let trace = engine_pattern(pattern, ops, FOOTPRINT_BYTES, 0xBE2C);
        curves.push(sweep_curve(
            pattern.name(),
            &engine_cfg(Some(pattern)),
            &trace,
        ));
    }
    {
        let trace = engine_pattern(EnginePattern::HotReset, ops, FOOTPRINT_BYTES, 0xBE2E);
        curves.push(sweep_curve(
            EnginePattern::HotReset.name(),
            &engine_cfg(Some(EnginePattern::HotReset)),
            &trace,
        ));
    }
    {
        let trace = multi_tenant(
            TENANTS,
            ops / TENANTS as u64,
            FOOTPRINT_BYTES / TENANTS as u64,
            0xBE2F,
        );
        curves.push(sweep_curve("multi-tenant", &engine_cfg(None), &trace));
    }
    curves
}

/// Micro-measures one AES block operation in ns (median of 5 windows of
/// `iters` iterations). Eight independent lanes are processed per
/// iteration, mirroring how the engine's XTS mode feeds the cipher
/// independent sectors, so the number reflects achievable throughput
/// rather than serial-chain latency.
pub fn measure_aes_ns(aes: &Aes128, iters: u32, f: impl Fn(&Aes128, &[u8; 16]) -> [u8; 16]) -> f64 {
    const LANES: usize = 8;
    let mut lanes = [[0x5au8; 16]; LANES];
    for (i, lane) in lanes.iter_mut().enumerate() {
        lane[0] = i as u8;
    }
    let mut windows: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                for lane in lanes.iter_mut() {
                    *lane = f(aes, std::hint::black_box(lane));
                }
            }
            start.elapsed().as_secs_f64() * 1e9 / (iters as f64 * LANES as f64)
        })
        .collect();
    std::hint::black_box(lanes);
    windows.sort_by(|a, b| a.total_cmp(b));
    windows[windows.len() / 2]
}

/// Micro-measures the pipelined 8-wide multi-block API in ns/block
/// (median of 5 windows of `iters` iterations): one `*_blocks8` call per
/// iteration over eight independent lanes — the shape the XTS line path
/// and the batched tweak precompute actually issue.
pub fn measure_aes8_ns(aes: &Aes128, iters: u32, f: impl Fn(&Aes128, &mut [[u8; 16]; 8])) -> f64 {
    let mut lanes = [[0x5au8; 16]; 8];
    for (i, lane) in lanes.iter_mut().enumerate() {
        lane[0] = i as u8;
    }
    let mut windows: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f(aes, std::hint::black_box(&mut lanes));
            }
            start.elapsed().as_secs_f64() * 1e9 / (iters as f64 * 8.0)
        })
        .collect();
    std::hint::black_box(lanes);
    windows.sort_by(|a, b| a.total_cmp(b));
    windows[windows.len() / 2]
}

/// Measures every backend this host can construct, `iters` iterations per
/// timing window ([`AES_ITERS`] at full scale; smoke runs pass less).
pub fn measure_backends(iters: u32) -> Vec<BackendAes> {
    available_backends()
        .into_iter()
        .map(|kind| {
            let aes = Aes128::with_backend(b"throughput-key!!", kind);
            BackendAes {
                kind,
                encrypt_ns: measure_aes_ns(&aes, iters, |a, b| a.encrypt_block(b)),
                decrypt_ns: measure_aes_ns(&aes, iters, |a, b| a.decrypt_block(b)),
                encrypt8_ns: measure_aes8_ns(&aes, iters, |a, b| a.encrypt_blocks8(b)),
                decrypt8_ns: measure_aes8_ns(&aes, iters, |a, b| a.decrypt_blocks8(b)),
            }
        })
        .collect()
}

/// Serializes the full measurement set as the committed `BENCH_*.json`
/// schema (`toleo-bench-throughput/v6`).
// One parameter per emitted JSON section; bundling them into a struct
// would just move the same list behind a constructor.
#[allow(clippy::too_many_arguments)]
pub fn emit_json(
    ops: u64,
    results: &[WorkloadResult],
    curves: &[ScalingCurve],
    backends: &[BackendAes],
    selected: BackendKind,
    schemes: &[SchemeResult],
    availability: &[AvailabilityWorkload],
    quarantine: &QuarantineExperiment,
    recovery: &RecoveryExperiment,
) -> String {
    let sel = backends
        .iter()
        .find(|b| b.kind == selected)
        .expect("selected backend was measured");
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"toleo-bench-throughput/v6\",\n");
    out.push_str("  \"pr\": 9,\n");
    out.push_str(&format!("  \"ops_per_workload\": {ops},\n"));
    out.push_str(&format!(
        "  \"gate_timing_repeats\": {GATE_TIMING_REPEATS},\n"
    ));
    out.push_str(&format!(
        "  \"host_cores\": {},\n",
        std::thread::available_parallelism().map_or(1, usize::from)
    ));
    out.push_str(&format!(
        "  \"selected_backend\": \"{}\",\n",
        selected.name()
    ));
    out.push_str("  \"aes_backends\": [\n");
    for (i, b) in backends.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"selected\": {}, \"encrypt_ns_per_block\": {:.1}, \
             \"decrypt_ns_per_block\": {:.1}, \"encrypt8_ns_per_block\": {:.1}, \
             \"decrypt8_ns_per_block\": {:.1}}}{}\n",
            b.kind.name(),
            b.kind == selected,
            b.encrypt_ns,
            b.decrypt_ns,
            b.encrypt8_ns,
            b.decrypt8_ns,
            if i + 1 == backends.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    // v2-compatible block: the selected backend's single-block numbers.
    let (enc_ns, dec_ns) = (sel.encrypt_ns, sel.decrypt_ns);
    out.push_str("  \"aes128\": {\n");
    out.push_str(&format!("    \"backend\": \"{}\",\n", selected.name()));
    out.push_str(&format!("    \"encrypt_ns_per_block\": {enc_ns:.1},\n"));
    out.push_str(&format!("    \"decrypt_ns_per_block\": {dec_ns:.1},\n"));
    out.push_str(&format!(
        "    \"seed_encrypt_ns_per_block\": {SEED_AES_ENCRYPT_NS:.1},\n"
    ));
    out.push_str(&format!(
        "    \"seed_decrypt_ns_per_block\": {SEED_AES_DECRYPT_NS:.1},\n"
    ));
    out.push_str(&format!(
        "    \"encrypt_speedup_vs_seed\": {:.2},\n",
        SEED_AES_ENCRYPT_NS / enc_ns
    ));
    out.push_str(&format!(
        "    \"decrypt_speedup_vs_seed\": {:.2}\n",
        SEED_AES_DECRYPT_NS / dec_ns
    ));
    out.push_str("  },\n");
    out.push_str("  \"engine\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"workload\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"blocks\": {},\n", r.blocks));
        out.push_str(&format!("      \"seconds\": {:.4},\n", r.seconds));
        out.push_str(&format!(
            "      \"blocks_per_sec\": {:.0},\n",
            r.blocks_per_sec
        ));
        out.push_str(&format!(
            "      \"batch_blocks_per_sec\": {:.0},\n",
            r.batch_blocks_per_sec
        ));
        out.push_str(&format!(
            "      \"software_blocks_per_sec\": {:.0},\n",
            r.software_blocks_per_sec
        ));
        out.push_str(&format!(
            "      \"seed_blocks_per_sec\": {:.0},\n",
            SEED_ENGINE_BLOCKS_PER_SEC[i]
        ));
        out.push_str(&format!(
            "      \"timing_spread\": {:.3},\n",
            r.timing_spread
        ));
        out.push_str(&format!(
            "      \"speedup_vs_seed\": {:.2}\n",
            r.speedup_vs_seed
        ));
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"sharded\": {\n");
    out.push_str(&format!("    \"shards\": {SHARDS},\n"));
    out.push_str(&format!(
        "    \"thread_sweep\": [{}],\n",
        THREAD_SWEEP.map(|t| t.to_string()).join(", ")
    ));
    out.push_str(
        "    \"scaling_model\": \"critical-path: each worker group's disjoint shard stream \
         timed in isolation; blocks_per_sec = blocks / max(group seconds). Equals wall-clock \
         on a host with >= threads idle cores; wall_* fields are the real scoped-thread run \
         on this host.\",\n",
    );
    out.push_str("    \"curves\": [\n");
    for (ci, curve) in curves.iter().enumerate() {
        out.push_str("      {\n");
        out.push_str(&format!("        \"workload\": \"{}\",\n", curve.workload));
        out.push_str(&format!(
            "        \"speedup_4t_vs_1t\": {:.2},\n",
            curve.speedup_4t_vs_1t
        ));
        out.push_str("        \"points\": [\n");
        for (pi, p) in curve.points.iter().enumerate() {
            out.push_str(&format!(
                "          {{\"threads\": {}, \"blocks\": {}, \"critical_path_seconds\": {:.4}, \
                 \"blocks_per_sec\": {:.0}, \"wall_seconds\": {:.4}, \"wall_blocks_per_sec\": {:.0}}}{}\n",
                p.threads,
                p.blocks,
                p.critical_path_seconds,
                p.blocks_per_sec,
                p.wall_seconds,
                p.wall_blocks_per_sec,
                if pi + 1 == curve.points.len() { "" } else { "," }
            ));
        }
        out.push_str("        ]\n");
        out.push_str(if ci + 1 == curves.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    out.push_str("    ]\n");
    out.push_str("  },\n");
    // v4: the head-to-head scheme arena — every ProtectedMemory scheme
    // over every workload pattern, single-op and batched.
    out.push_str("  \"schemes\": [\n");
    for (si, s) in schemes.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"scheme\": \"{}\",\n", s.scheme));
        out.push_str("      \"workloads\": [\n");
        for (wi, w) in s.workloads.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"workload\": \"{}\", \"blocks\": {}, \"blocks_per_sec\": {:.0}, \
                 \"batch_blocks_per_sec\": {:.0}, \"version_fetches\": {}, \
                 \"reencryption_events\": {}, \"timing_spread\": {:.3}}}{}\n",
                w.workload,
                w.blocks,
                w.blocks_per_sec,
                w.batch_blocks_per_sec,
                w.version_fetches,
                w.reencryption_events,
                w.timing_spread,
                if wi + 1 == s.workloads.len() { "" } else { "," }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(if si + 1 == schemes.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    // v5: the availability section — goodput vs injected transient-fault
    // rate for every workload through the fault-injected device channel,
    // plus the one-shard-tampered quarantine containment experiment.
    let policy = RetryPolicy::default();
    out.push_str("  \"availability\": {\n");
    out.push_str(&format!(
        "    \"fault_rates\": [{}],\n",
        FAULT_RATE_SWEEP.map(|r| format!("{r}")).join(", ")
    ));
    out.push_str(&format!(
        "    \"retry_policy\": {{\"max_attempts\": {}, \"base_backoff_nanos\": {}, \
         \"max_backoff_nanos\": {}, \"jitter_seed\": {}}},\n",
        policy.max_attempts,
        policy.base_backoff_nanos,
        policy.max_backoff_nanos,
        policy
            .jitter_seed
            .map_or("null".to_string(), |s| s.to_string())
    ));
    out.push_str("    \"workloads\": [\n");
    for (ai, a) in availability.iter().enumerate() {
        out.push_str("      {\n");
        out.push_str(&format!("        \"workload\": \"{}\",\n", a.workload));
        out.push_str("        \"points\": [\n");
        for (pi, p) in a.points.iter().enumerate() {
            out.push_str(&format!(
                "          {{\"fault_rate\": {}, \"blocks\": {}, \"blocks_per_sec\": {:.0}, \
                 \"goodput_vs_fault_free\": {:.3}, \"faults_injected\": {}, \
                 \"faults_absorbed\": {}, \"retries\": {}, \"backoff_nanos\": {}, \
                 \"observations_match\": {}, \"false_kills\": {}}}{}\n",
                p.fault_rate,
                p.blocks,
                p.blocks_per_sec,
                p.goodput_vs_fault_free,
                p.faults_injected,
                p.faults_absorbed,
                p.retries,
                p.backoff_nanos,
                p.observations_match,
                p.false_kills,
                if pi + 1 == a.points.len() { "" } else { "," }
            ));
        }
        out.push_str("        ]\n");
        out.push_str(if ai + 1 == availability.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    out.push_str("    ],\n");
    out.push_str("    \"quarantine\": {\n");
    out.push_str(&format!(
        "      \"workload\": \"{}\",\n",
        quarantine.workload
    ));
    out.push_str(&format!(
        "      \"tamper_at_op\": {},\n",
        quarantine.tamper_at_op
    ));
    out.push_str(&format!(
        "      \"tampered_shard\": {},\n",
        quarantine.tampered_shard
    ));
    out.push_str(&format!(
        "      \"quarantined_shards\": {},\n",
        quarantine.quarantined_shards
    ));
    out.push_str(&format!(
        "      \"world_killed\": {},\n",
        quarantine.world_killed
    ));
    out.push_str(&format!(
        "      \"healthy_blocks\": {},\n",
        quarantine.healthy_blocks
    ));
    out.push_str(&format!(
        "      \"healthy_blocks_per_sec\": {:.0},\n",
        quarantine.healthy_blocks_per_sec
    ));
    out.push_str(&format!(
        "      \"refused_blocks\": {},\n",
        quarantine.refused_blocks
    ));
    out.push_str(&format!(
        "      \"ops_served_total\": {},\n",
        quarantine.ops_served_total
    ));
    out.push_str(&format!(
        "      \"ops_at_quarantine\": {}\n",
        quarantine.ops_at_quarantine
    ));
    out.push_str("    },\n");
    // v6: the recovery experiment — the same-shard adversary campaign
    // driven through the full quarantine -> scrub -> re-key -> re-admit
    // ladder under live traffic, with detection latency and MTTR as
    // first-class outputs.
    out.push_str("    \"recovery\": {\n");
    out.push_str(&format!("      \"workload\": \"{}\",\n", recovery.workload));
    out.push_str(&format!("      \"shards\": {},\n", recovery.shards));
    out.push_str(&format!(
        "      \"recovery_budget\": {},\n",
        recovery.recovery_budget
    ));
    out.push_str(&format!(
        "      \"kill_poll_ops\": {},\n",
        recovery.kill_poll_ops
    ));
    out.push_str("      \"steps\": [\n");
    for (si, s) in recovery.best.steps.iter().enumerate() {
        out.push_str(&format!(
            "        {{\"step\": {}, \"shard\": {}, \"mounted_at_op\": {}, \
             \"detection_latency_ops\": {}, \"mttr_ops\": {}, \"blocks_lost\": {}, \
             \"generation\": {}, \"pages_scrubbed\": {}, \
             \"healthy_blocks_during_recovery\": {}, \"recovery_wall_seconds\": {:.6}}}{}\n",
            s.step,
            s.shard,
            s.mounted_at_op,
            s.detection_latency_ops,
            s.mttr_ops,
            s.blocks_lost,
            s.generation,
            s.pages_scrubbed,
            s.healthy_blocks_during_recovery,
            s.recovery_wall_seconds,
            if si + 1 == recovery.best.steps.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("      ],\n");
    let detection_max = recovery
        .best
        .steps
        .iter()
        .map(|s| s.detection_latency_ops)
        .max()
        .unwrap_or(0);
    let mttr_max = recovery
        .best
        .steps
        .iter()
        .map(|s| s.mttr_ops)
        .max()
        .unwrap_or(0);
    out.push_str(&format!(
        "      \"detection_latency_max_ops\": {detection_max},\n"
    ));
    out.push_str(&format!("      \"mttr_max_ops\": {mttr_max},\n"));
    out.push_str(&format!(
        "      \"recoveries\": {},\n",
        recovery.best.recovery.recoveries
    ));
    out.push_str(&format!(
        "      \"pages_scrubbed\": {},\n",
        recovery.best.recovery.pages_scrubbed
    ));
    out.push_str(&format!(
        "      \"blocks_scrubbed\": {},\n",
        recovery.best.recovery.blocks_scrubbed
    ));
    out.push_str(&format!(
        "      \"blocks_lost\": {},\n",
        recovery.best.recovery.blocks_lost
    ));
    out.push_str(&format!(
        "      \"blocks_still_lost\": {},\n",
        recovery.best.recovery.blocks_still_lost
    ));
    out.push_str(&format!(
        "      \"lost_reads_surfaced\": {},\n",
        recovery.best.lost_reads_surfaced
    ));
    out.push_str(&format!(
        "      \"lost_reads_unaccounted\": {},\n",
        recovery.best.lost_reads_unaccounted
    ));
    out.push_str(&format!(
        "      \"observation_mismatches\": {},\n",
        recovery.best.observation_mismatches
    ));
    out.push_str(&format!(
        "      \"false_kills\": {},\n",
        recovery.best.false_kills
    ));
    out.push_str(&format!(
        "      \"world_killed\": {},\n",
        recovery.best.world_killed
    ));
    out.push_str(&format!(
        "      \"detection_within_poll_bound\": {},\n",
        recovery.detection_within_poll_bound
    ));
    out.push_str(&format!(
        "      \"readmitted_all\": {},\n",
        recovery.readmitted_all
    ));
    out.push_str(&format!(
        "      \"fault_free_blocks_per_sec\": {:.0},\n",
        recovery.fault_free_blocks_per_sec
    ));
    out.push_str(&format!(
        "      \"fault_free_median_op_ns\": {:.1},\n",
        recovery.fault_free_median_op_ns
    ));
    out.push_str(&format!(
        "      \"recovery_median_op_ns\": {:.1},\n",
        recovery.recovery_median_op_ns
    ));
    out.push_str(&format!(
        "      \"goodput_during_recovery_vs_fault_free\": {:.3},\n",
        recovery.goodput_during_recovery_vs_fault_free
    ));
    out.push_str(&format!(
        "      \"wall_goodput_during_recovery_vs_fault_free\": {:.3},\n",
        recovery.wall_goodput_during_recovery_vs_fault_free
    ));
    out.push_str(&format!(
        "      \"goodput_spread\": {:.3}\n",
        recovery.goodput_spread
    ));
    out.push_str("    }\n");
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// Well-formedness check: the emitted file must parse as JSON (with the
/// same reader the perf gate uses) and carry every section and key the
/// perf-trajectory tooling reads, including one scheme × workload row
/// per arena cell.
///
/// # Errors
///
/// What is missing or malformed in the file at `path`.
pub fn check_emitted(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let root = crate::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    for key in [
        "schema",
        "selected_backend",
        "aes_backends",
        "aes128",
        "engine",
        "sharded",
        "schemes",
        "availability",
    ] {
        if root.get(key).is_none() {
            return Err(format!("{path}: missing key {key:?}"));
        }
    }
    for key in [
        "\"encrypt8_ns_per_block\"",
        "\"encrypt_speedup_vs_seed\"",
        "\"batch_blocks_per_sec\"",
        "\"software_blocks_per_sec\"",
        "\"blocks_per_sec\"",
        "\"speedup_vs_seed\"",
        "\"thread_sweep\"",
        "\"critical_path_seconds\"",
        "\"speedup_4t_vs_1t\"",
        "\"version_fetches\"",
        "\"reencryption_events\"",
        "\"fault_rates\"",
        "\"retry_policy\"",
        "\"jitter_seed\"",
        "\"goodput_vs_fault_free\"",
        "\"faults_injected\"",
        "\"observations_match\"",
        "\"false_kills\"",
        "\"quarantine\"",
        "\"ops_at_quarantine\"",
        "\"timing_spread\"",
        "\"gate_timing_repeats\"",
        "\"recovery\"",
        "\"detection_latency_ops\"",
        "\"mttr_ops\"",
        "\"goodput_during_recovery_vs_fault_free\"",
    ] {
        if !text.contains(key) {
            return Err(format!("{path}: missing key {key}"));
        }
    }
    let schemes = root
        .get("schemes")
        .and_then(crate::json::Value::as_array)
        .ok_or_else(|| format!("{path}: schemes is not an array"))?;
    for scheme in SCHEMES {
        let entry = schemes
            .iter()
            .find(|s| s.get("scheme").and_then(crate::json::Value::as_str) == Some(scheme))
            .ok_or_else(|| format!("{path}: schemes missing {scheme:?}"))?;
        let rows = entry
            .get("workloads")
            .and_then(crate::json::Value::as_array)
            .ok_or_else(|| format!("{path}: {scheme} has no workloads array"))?;
        for workload in ["sequential", "random", "hot-reset", "multi-tenant"] {
            if !rows
                .iter()
                .any(|r| r.get("workload").and_then(crate::json::Value::as_str) == Some(workload))
            {
                return Err(format!("{path}: {scheme} missing workload {workload:?}"));
            }
        }
    }
    let avail_rows = root
        .get("availability")
        .and_then(|a| a.get("workloads"))
        .and_then(crate::json::Value::as_array)
        .ok_or_else(|| format!("{path}: availability.workloads is not an array"))?;
    for workload in ["sequential", "random", "hot-reset", "multi-tenant"] {
        let row = avail_rows
            .iter()
            .find(|r| r.get("workload").and_then(crate::json::Value::as_str) == Some(workload))
            .ok_or_else(|| format!("{path}: availability missing workload {workload:?}"))?;
        let points = row
            .get("points")
            .and_then(crate::json::Value::as_array)
            .ok_or_else(|| format!("{path}: availability/{workload} has no points array"))?;
        if points.len() != FAULT_RATE_SWEEP.len() {
            return Err(format!(
                "{path}: availability/{workload} has {} points, expected {}",
                points.len(),
                FAULT_RATE_SWEEP.len()
            ));
        }
    }
    let recovery = root
        .get("availability")
        .and_then(|a| a.get("recovery"))
        .ok_or_else(|| format!("{path}: availability has no recovery section (needs v6+)"))?;
    let steps = recovery
        .get("steps")
        .and_then(crate::json::Value::as_array)
        .ok_or_else(|| format!("{path}: recovery has no steps array"))?;
    if steps.len() != RECOVERY_CAMPAIGN_STEPS {
        return Err(format!(
            "{path}: recovery has {} steps, expected {}",
            steps.len(),
            RECOVERY_CAMPAIGN_STEPS
        ));
    }
    Ok(())
}

/// The CI perf gate: every single-thread workload must hold at least
/// `tolerance` × the committed baseline's blocks/s. The baseline is
/// parsed structurally and paired by workload *name*
/// ([`crate::gate::compare`]), so baseline row order and adjacent
/// `batch_`/`wall_blocks_per_sec` keys cannot mis-pair a floor.
///
/// # Errors
///
/// An unreadable baseline or a workload below its floor.
pub fn compare_against_baseline(
    baseline_path: &str,
    tolerance: f64,
    results: &[WorkloadResult],
) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("read baseline {baseline_path}: {e}"))?;
    let measured: Vec<(&str, f64)> = results.iter().map(|r| (r.name, r.blocks_per_sec)).collect();
    let rows = crate::gate::compare(&text, tolerance, &measured)
        .map_err(|e| format!("baseline {baseline_path}: {e}"))?;
    let mut failures = Vec::new();
    for row in &rows {
        println!(
            "gate engine/{:<10} {:>10.0} blocks/s vs baseline {:>10.0} ({:>5.2}x, floor {:.2})",
            row.workload, row.measured, row.baseline, row.ratio, tolerance
        );
        if !row.pass {
            failures.push(format!(
                "{}: {:.0} blocks/s < {tolerance} x baseline {:.0}",
                row.workload, row.measured, row.baseline
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!("perf regression: {}", failures.join("; ")))
    }
}
