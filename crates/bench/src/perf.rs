//! The wall-clock performance machinery behind the `throughput` binary
//! and the `reproduce` harness's timing experiments.
//!
//! Everything here used to live inside `src/bin/throughput.rs`; it is a
//! library module so the `reproduce` registry can drive the same
//! measurements (engine workloads, per-backend AES microbenchmarks, the
//! sharded scaling sweep, the five-scheme head-to-head arena, the
//! availability/quarantine experiments) without shelling out to the
//! binary, and so the emitted `BENCH_*.json` stays byte-compatible with
//! the committed lineage.
//!
//! Unlike the modeled-cycles experiments, every number here is a real
//! `Instant`-clocked measurement on the current host: results vary run
//! to run and host to host, which is why the reproduce harness gates
//! them with tolerance floors ([`crate::gate`]) instead of exact
//! reference comparison.

// audit: allow-file(panic, perf harness: abort on setup/serialization failure rather than emit bad data)
// audit: allow-file(secret, seed here names seed-commit perf baselines in the emitted JSON, not key material)

use std::time::Instant;
use toleo_baselines::{MorphEngine, SgxEngine, VaultEngine};
use toleo_core::channel::RetryPolicy;
use toleo_core::config::ToleoConfig;
use toleo_core::engine::ProtectionEngine;
use toleo_core::error::ToleoError;
use toleo_core::fault::FaultPlanConfig;
use toleo_core::protected::ProtectedMemory;
use toleo_core::sharded::ShardedEngine;
use toleo_crypto::aes::Aes128;
use toleo_crypto::backend::{
    available_backends, default_backend, set_default_backend, BackendKind,
};
use toleo_workloads::campaign::{tamper_schedule, FAULT_RATE_SWEEP};
use toleo_workloads::concurrent::{multi_tenant, partition_by_page};
use toleo_workloads::pattern::{engine_pattern, homogeneous_runs, EnginePattern};
use toleo_workloads::{Op, Trace};

/// Engine blocks/sec measured on the seed (pre-T-table, pre-arena)
/// implementation at 200k ops, recorded when this harness was introduced.
/// Keys are `EnginePattern::name()` order: sequential, random, hot-reset.
pub const SEED_ENGINE_BLOCKS_PER_SEC: [f64; 3] = [606_917.0, 734_070.0, 355_539.0];
/// AES-128 per-block encrypt cost of the seed byte-oriented
/// implementation, measured by this harness's own 8-lane timing loop.
pub const SEED_AES_ENCRYPT_NS: f64 = 167.0;
/// AES-128 per-block decrypt cost of the seed implementation.
pub const SEED_AES_DECRYPT_NS: f64 = 318.9;

/// Default memory operations replayed per workload.
pub const DEFAULT_OPS: u64 = 200_000;
/// Footprint each pattern is confined to (1024 pages).
pub const FOOTPRINT_BYTES: u64 = 4 << 20;
/// Shard count for the sharded-engine sweep.
pub const SHARDS: usize = 8;
/// Worker-thread sweep for the scaling curve.
pub const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Tenants in the multi-tenant workload (each runs its pattern in its own
/// footprint window).
pub const TENANTS: usize = 8;
/// Max ops handed to one engine-batch call during batched replay.
pub const BATCH_OPS: usize = 256;
/// Timed iterations per AES measurement window at full scale.
pub const AES_ITERS: u32 = 50_000;

/// Every scheme in the head-to-head arena, in reporting order. Names are
/// the [`ProtectedMemory::scheme`] identifiers.
pub const SCHEMES: [&str; 5] = ["toleo", "toleo-sharded", "sgx-tree", "vault", "morph"];

/// One engine workload's measured throughput, three ways.
pub struct WorkloadResult {
    /// `EnginePattern::name()` of the replayed pattern.
    pub name: &'static str,
    /// Blocks (reads + writes) replayed.
    pub blocks: u64,
    /// Single-op replay wall time.
    pub seconds: f64,
    /// Single-op replay throughput on the selected backend.
    pub blocks_per_sec: f64,
    /// `blocks_per_sec` over the seed implementation's number.
    pub speedup_vs_seed: f64,
    /// Same trace replayed through `read_batch`/`write_batch` in
    /// homogeneous runs of up to [`BATCH_OPS`] ops (selected backend).
    pub batch_blocks_per_sec: f64,
    /// Same trace, single ops, engine forced onto the software AES
    /// fallback — the portable floor every host is guaranteed.
    pub software_blocks_per_sec: f64,
}

/// Per-backend AES-128 microbenchmark numbers.
pub struct BackendAes {
    /// Which backend was measured.
    pub kind: BackendKind,
    /// Single-block encrypt, ns/block.
    pub encrypt_ns: f64,
    /// Single-block decrypt, ns/block.
    pub decrypt_ns: f64,
    /// ns/block through the 8-wide pipelined `encrypt_blocks8` API.
    pub encrypt8_ns: f64,
    /// ns/block through the 8-wide pipelined `decrypt_blocks8` API.
    pub decrypt8_ns: f64,
}

/// Runs `f` with the process-default AES backend pinned to `kind`,
/// restoring the prior default afterwards (the harness is single-threaded,
/// so this cannot race engine constructions).
pub fn with_default_backend<T>(kind: BackendKind, f: impl FnOnce() -> T) -> T {
    let prior = default_backend();
    set_default_backend(Some(kind));
    let out = f();
    set_default_backend(Some(prior));
    out
}

/// One thread count of a scaling curve.
pub struct ScalePoint {
    /// Worker-thread count.
    pub threads: usize,
    /// Blocks replayed across all workers.
    pub blocks: u64,
    /// Longest worker-group replay — the modeled wall-clock on >= threads
    /// cores.
    pub critical_path_seconds: f64,
    /// `blocks / critical_path_seconds`.
    pub blocks_per_sec: f64,
    /// Real `std::thread::scope` execution on this host.
    pub wall_seconds: f64,
    /// `blocks / wall_seconds`.
    pub wall_blocks_per_sec: f64,
}

/// One workload's thread-scaling curve over [`THREAD_SWEEP`].
pub struct ScalingCurve {
    /// Workload name.
    pub workload: String,
    /// One point per sweep thread count.
    pub points: Vec<ScalePoint>,
    /// Critical-path speedup of the 4-thread point over 1 thread.
    pub speedup_4t_vs_1t: f64,
}

/// One scheme × workload cell of the head-to-head table.
pub struct SchemeWorkload {
    /// Workload name.
    pub workload: &'static str,
    /// Blocks replayed.
    pub blocks: u64,
    /// Single-op replay through the `ProtectedMemory` trait.
    pub blocks_per_sec: f64,
    /// Same trace through the trait's batch entry points in homogeneous
    /// runs of up to [`BATCH_OPS`] ops.
    pub batch_blocks_per_sec: f64,
    /// Version-store traffic reported by the scheme for the single-op
    /// replay (device READ/UPDATEs for Toleo; uncached tree-node fetches
    /// for the Merkle schemes).
    pub version_fetches: u64,
    /// Bulk re-encryption events (stealth resets / overflow resets /
    /// leaf re-bases) during the single-op replay.
    pub reencryption_events: u64,
}

/// One scheme's full row of the head-to-head table.
pub struct SchemeResult {
    /// `ProtectedMemory::scheme` identifier.
    pub scheme: &'static str,
    /// One cell per workload, in [`availability_workloads`] order.
    pub workloads: Vec<SchemeWorkload>,
}

/// Constructs a fresh engine for `scheme`. Toleo engines take the
/// workload-tuned config; the baseline engines protect the same
/// footprint the traces are confined to.
pub fn build_scheme(scheme: &'static str, cfg: &ToleoConfig) -> Box<dyn ProtectedMemory> {
    match scheme {
        "toleo" => {
            Box::new(ProtectionEngine::try_new(cfg.clone(), [0x42u8; 48]).expect("valid config"))
        }
        "toleo-sharded" => {
            Box::new(ShardedEngine::new(cfg.clone(), SHARDS, [0x42u8; 48]).expect("valid config"))
        }
        "sgx-tree" => Box::new(SgxEngine::new(FOOTPRINT_BYTES)),
        "vault" => Box::new(VaultEngine::new(FOOTPRINT_BYTES)),
        "morph" => Box::new(MorphEngine::new(FOOTPRINT_BYTES)),
        other => unreachable!("unknown scheme {other}"),
    }
}

/// Replays `trace` op-at-a-time through any scheme; returns
/// (blocks, seconds).
pub fn replay_single_dyn(trace: &Trace, mem: &mut dyn ProtectedMemory) -> (u64, f64) {
    let start = Instant::now();
    let mut blocks = 0u64;
    let mut checksum = 0u64;
    for op in &trace.ops {
        match op {
            Op::Write(addr) => {
                let fill = (addr >> 6) as u8 ^ blocks as u8;
                mem.write(*addr, &[fill; 64]).expect("protected write");
                blocks += 1;
            }
            Op::Read(addr) => {
                let block = mem.read(*addr).expect("protected read");
                checksum = checksum.wrapping_add(block[0] as u64);
                blocks += 1;
            }
            Op::Compute(_) => {}
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    std::hint::black_box(checksum);
    (blocks, seconds)
}

/// Replays `trace` through any scheme's batch entry points in homogeneous
/// runs of up to [`BATCH_OPS`] ops; returns (blocks, seconds).
pub fn replay_batched_dyn(trace: &Trace, mem: &mut dyn ProtectedMemory) -> (u64, f64) {
    let runs = homogeneous_runs(trace, BATCH_OPS);
    let mut write_buf: Vec<(u64, [u8; 64])> = Vec::with_capacity(BATCH_OPS);
    let start = Instant::now();
    let mut blocks = 0u64;
    let mut checksum = 0u64;
    for (is_write, addrs) in &runs {
        if *is_write {
            write_buf.clear();
            write_buf.extend(addrs.iter().map(|addr| {
                let fill = (addr >> 6) as u8 ^ blocks as u8;
                blocks += 1;
                (*addr, [fill; 64])
            }));
            mem.write_batch(&write_buf).expect("protected write batch");
        } else {
            let out = mem.read_batch(addrs).expect("protected read batch");
            for block in &out {
                checksum = checksum.wrapping_add(block[0] as u64);
            }
            blocks += addrs.len() as u64;
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    std::hint::black_box(checksum);
    (blocks, seconds)
}

/// The head-to-head sweep: every scheme replays the same four traces
/// (same seeds, same footprint) through the shared trait, single-op and
/// batched.
pub fn run_scheme_sweep(ops: u64) -> Vec<SchemeResult> {
    // (name, trace, toleo config) — baselines ignore the config.
    let workloads = availability_workloads(ops);

    SCHEMES
        .iter()
        .map(|&scheme| {
            let rows = workloads
                .iter()
                .map(|(name, trace, cfg)| {
                    let mut single = build_scheme(scheme, cfg);
                    let (blocks, seconds) = replay_single_dyn(trace, single.as_mut());
                    let stats = single.stats();
                    let mut batched = build_scheme(scheme, cfg);
                    let (batch_blocks, batch_seconds) = replay_batched_dyn(trace, batched.as_mut());
                    assert_eq!(
                        batch_blocks, blocks,
                        "{scheme}/{name}: batched replay lost ops"
                    );
                    SchemeWorkload {
                        workload: name,
                        blocks,
                        blocks_per_sec: blocks as f64 / seconds,
                        batch_blocks_per_sec: batch_blocks as f64 / batch_seconds,
                        version_fetches: stats.version_fetches,
                        reencryption_events: stats.reencryption_events,
                    }
                })
                .collect();
            SchemeResult {
                scheme,
                workloads: rows,
            }
        })
        .collect()
}

/// One fault rate of a workload's availability curve.
pub struct AvailabilityPoint {
    /// Injected transient-fault rate.
    pub fault_rate: f64,
    /// Blocks replayed.
    pub blocks: u64,
    /// Throughput at this fault rate.
    pub blocks_per_sec: f64,
    /// Throughput relative to the fault-free (rate 0) run of the same
    /// workload — the goodput-vs-injected-fault-rate curve.
    pub goodput_vs_fault_free: f64,
    /// Faults the plan injected.
    pub faults_injected: u64,
    /// Faults absorbed by retry.
    pub faults_absorbed: u64,
    /// Channel retries issued.
    pub retries: u64,
    /// Cumulative modeled backoff.
    pub backoff_nanos: u64,
    /// Whether the run's observation checksum is bit-identical to the
    /// fault-free run's (retries must be invisible to the application).
    pub observations_match: bool,
    /// Shard quarantines + world-kills during the run; any non-zero value
    /// is a false kill, since injected transients are never integrity
    /// failures.
    pub false_kills: u64,
}

/// One workload's availability curve over [`FAULT_RATE_SWEEP`].
pub struct AvailabilityWorkload {
    /// Workload name.
    pub workload: &'static str,
    /// One point per fault rate.
    pub points: Vec<AvailabilityPoint>,
}

/// The one-shard-tampered-under-traffic experiment.
pub struct QuarantineExperiment {
    /// Workload name.
    pub workload: &'static str,
    /// Trace op index at which the tamper was mounted.
    pub tamper_at_op: u64,
    /// Shard owning the tampered address.
    pub tampered_shard: usize,
    /// Shards quarantined by the end of the run (must be 1).
    pub quarantined_shards: u64,
    /// Whether the engine world-killed (must be false).
    pub world_killed: bool,
    /// Ops served by healthy shards after the quarantine engaged.
    pub healthy_blocks: u64,
    /// Healthy-shard throughput after quarantine.
    pub healthy_blocks_per_sec: f64,
    /// Trace ops refused with `ShardQuarantined` after detection.
    pub refused_blocks: u64,
    /// Total ops the engine served.
    pub ops_served_total: u64,
    /// Ops served when the quarantine engaged.
    pub ops_at_quarantine: u64,
}

/// One faulted replay's raw outcome.
pub struct FaultedRun {
    /// Blocks replayed.
    pub blocks: u64,
    /// Wall time.
    pub seconds: f64,
    /// FNV fold of every read byte: two runs match iff the application
    /// observed bit-identical data.
    pub checksum: u64,
    /// Engine robustness counters after the run.
    pub stats: toleo_core::sharded::RobustnessStats,
}

/// Replays `trace` single-op through a sharded engine under `plan`. The
/// channel's fault plan is salted per shard from the engine seed, so one
/// campaign config fans out to [`SHARDS`] independent fault streams.
pub fn replay_sharded_faulted(
    trace: &Trace,
    cfg: &ToleoConfig,
    plan: Option<FaultPlanConfig>,
) -> FaultedRun {
    let engine = ShardedEngine::new_with_robustness(
        cfg.clone(),
        SHARDS,
        [0x42u8; 48],
        plan,
        RetryPolicy::default(),
    )
    .expect("sharded engine");
    let start = Instant::now();
    let mut blocks = 0u64;
    let mut checksum = 0xcbf2_9ce4_8422_2325u64;
    for op in &trace.ops {
        match op {
            Op::Write(addr) => {
                let fill = (addr >> 6) as u8 ^ blocks as u8;
                engine.write(*addr, &[fill; 64]).expect("protected write");
                blocks += 1;
            }
            Op::Read(addr) => {
                let block = engine.read(*addr).expect("protected read");
                for b in block {
                    checksum = (checksum ^ b as u64).wrapping_mul(0x100_0000_01b3);
                }
                blocks += 1;
            }
            Op::Compute(_) => {}
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    std::hint::black_box(checksum);
    FaultedRun {
        blocks,
        seconds,
        checksum,
        stats: engine.robustness_stats(),
    }
}

/// The four workload traces the availability sweep (and the scheme sweep)
/// replays, with their tuned configs.
pub fn availability_workloads(ops: u64) -> Vec<(&'static str, Trace, ToleoConfig)> {
    let mut workloads: Vec<(&'static str, Trace, ToleoConfig)> = EnginePattern::all()
        .iter()
        .enumerate()
        .map(|(i, p)| {
            (
                p.name(),
                engine_pattern(*p, ops, FOOTPRINT_BYTES, 0xBE2C + i as u64),
                engine_cfg(Some(*p)),
            )
        })
        .collect();
    workloads.push((
        "multi-tenant",
        multi_tenant(
            TENANTS,
            ops / TENANTS as u64,
            FOOTPRINT_BYTES / TENANTS as u64,
            0xBE2F,
        ),
        engine_cfg(None),
    ));
    workloads
}

/// The availability sweep: each workload replayed under every fault rate
/// of [`FAULT_RATE_SWEEP`] through the fault-injected device channel,
/// reporting goodput vs the fault-free run and proving the injected
/// transients were fully absorbed (identical observations, zero kills).
pub fn run_availability(ops: u64) -> Vec<AvailabilityWorkload> {
    availability_workloads(ops)
        .into_iter()
        .map(|(name, trace, cfg)| {
            let mut points: Vec<AvailabilityPoint> = Vec::with_capacity(FAULT_RATE_SWEEP.len());
            let mut reference: Option<(u64, f64, u64)> = None;
            for (i, &rate) in FAULT_RATE_SWEEP.iter().enumerate() {
                let plan = if rate > 0.0 {
                    // Per-point seeds so the curve's rates don't share one
                    // fault stream.
                    Some(FaultPlanConfig::uniform(0xFA01 + i as u64, rate))
                } else {
                    None
                };
                let run = replay_sharded_faulted(&trace, &cfg, plan);
                let blocks_per_sec = run.blocks as f64 / run.seconds;
                let (ref_blocks, ref_rate, ref_checksum) =
                    *reference.get_or_insert((run.blocks, blocks_per_sec, run.checksum));
                assert_eq!(run.blocks, ref_blocks, "{name}: faulted run lost ops");
                let false_kills = run.stats.quarantined_shards
                    + u64::from(run.stats.world_killed)
                    + run.stats.channel.retry_exhaustions;
                assert_eq!(false_kills, 0, "{name}: transients at rate {rate} killed");
                points.push(AvailabilityPoint {
                    fault_rate: rate,
                    blocks: run.blocks,
                    blocks_per_sec,
                    goodput_vs_fault_free: blocks_per_sec / ref_rate,
                    faults_injected: run.stats.channel.faults_injected,
                    faults_absorbed: run.stats.channel.faults_absorbed,
                    retries: run.stats.channel.retries,
                    backoff_nanos: run.stats.channel.backoff_nanos,
                    observations_match: run.checksum == ref_checksum,
                    false_kills,
                });
            }
            AvailabilityWorkload {
                workload: name,
                points,
            }
        })
        .collect()
}

/// Tamper one shard mid-traffic (at a `tamper_schedule` point) and measure
/// what the remaining shards still deliver: the quarantine containment
/// number the availability story rests on.
pub fn run_quarantine_experiment(ops: u64) -> QuarantineExperiment {
    let trace = engine_pattern(EnginePattern::Random, ops, FOOTPRINT_BYTES, 0xBE2D);
    let cfg = engine_cfg(Some(EnginePattern::Random));
    let engine = ShardedEngine::new(cfg, SHARDS, [0x42u8; 48]).expect("sharded engine");
    let event = tamper_schedule(&trace, 1, 0xFA17)
        .first()
        .copied()
        .expect("random trace has writes to tamper");
    let tampered_shard = engine.shard_of_addr(event.addr);

    let mut blocks = 0u64;
    let mut healthy_blocks = 0u64;
    let mut refused_blocks = 0u64;
    let mut tampered = false;
    let mut after_start = Instant::now();
    let mut checksum = 0u64;
    for op in &trace.ops {
        let addr = match op {
            Op::Write(addr) | Op::Read(addr) => *addr,
            Op::Compute(_) => continue,
        };
        if !tampered && blocks == event.at_op {
            // Mount the corruption, then act as the victim's next access
            // to the block: detection quarantines the owning shard.
            engine.with_adversary(event.addr, |dram| dram.corrupt_data(event.addr, 11, 0x5a));
            match engine.read(event.addr) {
                Err(ToleoError::IntegrityViolation { .. }) => {}
                other => panic!("tamper must be detected, got {other:?}"),
            }
            assert!(engine.is_shard_quarantined(tampered_shard));
            tampered = true;
            after_start = Instant::now();
        }
        let result = match op {
            Op::Write(_) => engine.write(addr, &[(addr >> 6) as u8 ^ blocks as u8; 64]),
            Op::Read(addr) => engine.read(*addr).map(|block| {
                checksum = checksum.wrapping_add(block[0] as u64);
            }),
            Op::Compute(_) => unreachable!(),
        };
        blocks += 1;
        match result {
            Ok(()) => {
                if tampered {
                    healthy_blocks += 1;
                }
            }
            Err(ToleoError::ShardQuarantined { shard, .. }) => {
                assert_eq!(shard, tampered_shard, "only the tampered shard refuses");
                assert!(tampered);
                refused_blocks += 1;
            }
            Err(e) => panic!("unexpected error under quarantine: {e}"),
        }
    }
    let after_seconds = after_start.elapsed().as_secs_f64();
    std::hint::black_box(checksum);
    assert!(!engine.is_killed(), "a tamper must never world-kill");
    assert_eq!(engine.quarantined_shard_count(), 1);
    let rs = engine.robustness_stats();
    QuarantineExperiment {
        workload: "random",
        tamper_at_op: event.at_op,
        tampered_shard,
        quarantined_shards: rs.quarantined_shards,
        world_killed: rs.world_killed,
        healthy_blocks,
        healthy_blocks_per_sec: healthy_blocks as f64 / after_seconds,
        refused_blocks,
        ops_served_total: rs.ops_served,
        ops_at_quarantine: rs.ops_at_last_quarantine,
    }
}

/// The Toleo config each engine pattern runs under (hot-reset gets a
/// fast-firing probabilistic reset so the re-encryption path dominates).
pub fn engine_cfg(pattern: Option<EnginePattern>) -> ToleoConfig {
    let mut cfg = ToleoConfig::small();
    if pattern == Some(EnginePattern::HotReset) {
        // Make the probabilistic stealth reset fire roughly every 256 hot
        // writes so the page re-encryption slab walk dominates.
        cfg.reset_log2 = 8;
    }
    cfg
}

/// Replays `trace` op-at-a-time through a fresh engine; returns
/// (blocks, seconds).
pub fn replay_single(trace: &Trace, cfg: &ToleoConfig) -> (u64, f64) {
    let mut engine = ProtectionEngine::try_new(cfg.clone(), [0x42u8; 48]).unwrap();
    replay_single_dyn(trace, &mut engine)
}

/// Replays `trace` through the engine's batched entry points in
/// homogeneous runs of up to [`BATCH_OPS`] ops; returns (blocks, seconds).
pub fn replay_batched(trace: &Trace, cfg: &ToleoConfig) -> (u64, f64) {
    let mut engine = ProtectionEngine::try_new(cfg.clone(), [0x42u8; 48]).unwrap();
    replay_batched_dyn(trace, &mut engine)
}

/// Measures one engine pattern three ways (single-op, batched, software
/// fallback).
pub fn run_workload(pattern: EnginePattern, idx: usize, ops: u64) -> WorkloadResult {
    let trace = engine_pattern(pattern, ops, FOOTPRINT_BYTES, 0xBE2C + idx as u64);
    let cfg = engine_cfg(Some(pattern));
    let (blocks, seconds) = replay_single(&trace, &cfg);
    let blocks_per_sec = blocks as f64 / seconds;
    let (batch_blocks, batch_seconds) = replay_batched(&trace, &cfg);
    assert_eq!(batch_blocks, blocks, "batched replay lost ops");
    let (soft_blocks, soft_seconds) =
        with_default_backend(BackendKind::Software, || replay_single(&trace, &cfg));
    assert_eq!(soft_blocks, blocks, "software replay lost ops");
    WorkloadResult {
        name: pattern.name(),
        blocks,
        seconds,
        blocks_per_sec,
        speedup_vs_seed: blocks_per_sec / SEED_ENGINE_BLOCKS_PER_SEC[idx],
        batch_blocks_per_sec: batch_blocks as f64 / batch_seconds,
        software_blocks_per_sec: soft_blocks as f64 / soft_seconds,
    }
}

/// Measures every engine pattern.
pub fn run_engine_workloads(ops: u64) -> Vec<WorkloadResult> {
    EnginePattern::all()
        .iter()
        .enumerate()
        .map(|(i, p)| run_workload(*p, i, ops))
        .collect()
}

/// Replays a set of per-shard sub-traces through the sharded handle,
/// returning the block count.
fn replay_parts(engine: &ShardedEngine, parts: &[&Trace]) -> u64 {
    let mut blocks = 0u64;
    let mut checksum = 0u64;
    for part in parts {
        for op in &part.ops {
            match op {
                Op::Write(addr) => {
                    let fill = (addr >> 6) as u8;
                    engine.write(*addr, &[fill; 64]).expect("protected write");
                    blocks += 1;
                }
                Op::Read(addr) => {
                    let block = engine.read(*addr).expect("protected read");
                    checksum = checksum.wrapping_add(block[0] as u64);
                    blocks += 1;
                }
                Op::Compute(_) => {}
            }
        }
    }
    std::hint::black_box(checksum);
    blocks
}

/// Shards assigned to worker group `g` of `threads` (round-robin).
fn group(parts: &[Trace], g: usize, threads: usize) -> Vec<&Trace> {
    parts
        .iter()
        .enumerate()
        .filter(|(s, _)| s % threads == g)
        .map(|(_, t)| t)
        .collect()
}

/// Measures one thread count of the scaling curve for a pre-partitioned
/// trace: the per-group critical path (each group replayed in isolation on
/// a fresh engine) plus the real scoped-thread execution.
fn sweep_point(cfg: &ToleoConfig, parts: &[Trace], threads: usize) -> ScalePoint {
    // Critical path: time each worker group's stream by itself. Groups
    // touch disjoint shards, so their times compose as max() under true
    // parallelism.
    let engine = ShardedEngine::new(cfg.clone(), SHARDS, [0x42u8; 48]).expect("sharded engine");
    let mut blocks = 0u64;
    let mut critical = 0f64;
    for g in 0..threads {
        let members = group(parts, g, threads);
        let start = Instant::now();
        blocks += replay_parts(&engine, &members);
        critical = critical.max(start.elapsed().as_secs_f64());
    }

    // Validation run: the same decomposition on real scoped threads (on a
    // host with >= `threads` cores this is the headline number; on fewer
    // cores the workers time-slice).
    let engine = ShardedEngine::new(cfg.clone(), SHARDS, [0x42u8; 48]).expect("sharded engine");
    let start = Instant::now();
    let wall_blocks: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|g| {
                let engine = &engine;
                let members = group(parts, g, threads);
                s.spawn(move || replay_parts(engine, &members))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).sum()
    });
    let wall_seconds = start.elapsed().as_secs_f64();
    assert_eq!(wall_blocks, blocks, "threaded replay lost ops");

    ScalePoint {
        threads,
        blocks,
        critical_path_seconds: critical,
        blocks_per_sec: blocks as f64 / critical,
        wall_seconds,
        wall_blocks_per_sec: blocks as f64 / wall_seconds,
    }
}

/// Measures one workload's full thread-scaling curve.
pub fn sweep_curve(name: &str, cfg: &ToleoConfig, trace: &Trace) -> ScalingCurve {
    let parts = partition_by_page(trace, SHARDS);
    let points: Vec<ScalePoint> = THREAD_SWEEP
        .iter()
        .map(|&t| sweep_point(cfg, &parts, t))
        .collect();
    let at = |points: &[ScalePoint], threads: usize| {
        points
            .iter()
            .find(|p| p.threads == threads)
            .expect("sweep point")
            .blocks_per_sec
    };
    let one_thread = at(&points, 1);
    ScalingCurve {
        workload: name.to_string(),
        speedup_4t_vs_1t: at(&points, 4) / one_thread,
        points,
    }
}

/// Measures the thread-scaling curves for every workload (sequential,
/// random, hot-reset, multi-tenant).
pub fn run_scaling_curves(ops: u64) -> Vec<ScalingCurve> {
    let mut curves = Vec::new();
    for pattern in [EnginePattern::Sequential, EnginePattern::Random] {
        let trace = engine_pattern(pattern, ops, FOOTPRINT_BYTES, 0xBE2C);
        curves.push(sweep_curve(
            pattern.name(),
            &engine_cfg(Some(pattern)),
            &trace,
        ));
    }
    {
        let trace = engine_pattern(EnginePattern::HotReset, ops, FOOTPRINT_BYTES, 0xBE2E);
        curves.push(sweep_curve(
            EnginePattern::HotReset.name(),
            &engine_cfg(Some(EnginePattern::HotReset)),
            &trace,
        ));
    }
    {
        let trace = multi_tenant(
            TENANTS,
            ops / TENANTS as u64,
            FOOTPRINT_BYTES / TENANTS as u64,
            0xBE2F,
        );
        curves.push(sweep_curve("multi-tenant", &engine_cfg(None), &trace));
    }
    curves
}

/// Micro-measures one AES block operation in ns (median of 5 windows of
/// `iters` iterations). Eight independent lanes are processed per
/// iteration, mirroring how the engine's XTS mode feeds the cipher
/// independent sectors, so the number reflects achievable throughput
/// rather than serial-chain latency.
pub fn measure_aes_ns(aes: &Aes128, iters: u32, f: impl Fn(&Aes128, &[u8; 16]) -> [u8; 16]) -> f64 {
    const LANES: usize = 8;
    let mut lanes = [[0x5au8; 16]; LANES];
    for (i, lane) in lanes.iter_mut().enumerate() {
        lane[0] = i as u8;
    }
    let mut windows: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                for lane in lanes.iter_mut() {
                    *lane = f(aes, std::hint::black_box(lane));
                }
            }
            start.elapsed().as_secs_f64() * 1e9 / (iters as f64 * LANES as f64)
        })
        .collect();
    std::hint::black_box(lanes);
    windows.sort_by(|a, b| a.total_cmp(b));
    windows[windows.len() / 2]
}

/// Micro-measures the pipelined 8-wide multi-block API in ns/block
/// (median of 5 windows of `iters` iterations): one `*_blocks8` call per
/// iteration over eight independent lanes — the shape the XTS line path
/// and the batched tweak precompute actually issue.
pub fn measure_aes8_ns(aes: &Aes128, iters: u32, f: impl Fn(&Aes128, &mut [[u8; 16]; 8])) -> f64 {
    let mut lanes = [[0x5au8; 16]; 8];
    for (i, lane) in lanes.iter_mut().enumerate() {
        lane[0] = i as u8;
    }
    let mut windows: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f(aes, std::hint::black_box(&mut lanes));
            }
            start.elapsed().as_secs_f64() * 1e9 / (iters as f64 * 8.0)
        })
        .collect();
    std::hint::black_box(lanes);
    windows.sort_by(|a, b| a.total_cmp(b));
    windows[windows.len() / 2]
}

/// Measures every backend this host can construct, `iters` iterations per
/// timing window ([`AES_ITERS`] at full scale; smoke runs pass less).
pub fn measure_backends(iters: u32) -> Vec<BackendAes> {
    available_backends()
        .into_iter()
        .map(|kind| {
            let aes = Aes128::with_backend(b"throughput-key!!", kind);
            BackendAes {
                kind,
                encrypt_ns: measure_aes_ns(&aes, iters, |a, b| a.encrypt_block(b)),
                decrypt_ns: measure_aes_ns(&aes, iters, |a, b| a.decrypt_block(b)),
                encrypt8_ns: measure_aes8_ns(&aes, iters, |a, b| a.encrypt_blocks8(b)),
                decrypt8_ns: measure_aes8_ns(&aes, iters, |a, b| a.decrypt_blocks8(b)),
            }
        })
        .collect()
}

/// Serializes the full measurement set as the committed `BENCH_*.json`
/// schema (`toleo-bench-throughput/v5`).
// One parameter per emitted JSON section; bundling them into a struct
// would just move the same list behind a constructor.
#[allow(clippy::too_many_arguments)]
pub fn emit_json(
    ops: u64,
    results: &[WorkloadResult],
    curves: &[ScalingCurve],
    backends: &[BackendAes],
    selected: BackendKind,
    schemes: &[SchemeResult],
    availability: &[AvailabilityWorkload],
    quarantine: &QuarantineExperiment,
) -> String {
    let sel = backends
        .iter()
        .find(|b| b.kind == selected)
        .expect("selected backend was measured");
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"toleo-bench-throughput/v5\",\n");
    out.push_str("  \"pr\": 7,\n");
    out.push_str(&format!("  \"ops_per_workload\": {ops},\n"));
    out.push_str(&format!(
        "  \"host_cores\": {},\n",
        std::thread::available_parallelism().map_or(1, usize::from)
    ));
    out.push_str(&format!(
        "  \"selected_backend\": \"{}\",\n",
        selected.name()
    ));
    out.push_str("  \"aes_backends\": [\n");
    for (i, b) in backends.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"selected\": {}, \"encrypt_ns_per_block\": {:.1}, \
             \"decrypt_ns_per_block\": {:.1}, \"encrypt8_ns_per_block\": {:.1}, \
             \"decrypt8_ns_per_block\": {:.1}}}{}\n",
            b.kind.name(),
            b.kind == selected,
            b.encrypt_ns,
            b.decrypt_ns,
            b.encrypt8_ns,
            b.decrypt8_ns,
            if i + 1 == backends.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    // v2-compatible block: the selected backend's single-block numbers.
    let (enc_ns, dec_ns) = (sel.encrypt_ns, sel.decrypt_ns);
    out.push_str("  \"aes128\": {\n");
    out.push_str(&format!("    \"backend\": \"{}\",\n", selected.name()));
    out.push_str(&format!("    \"encrypt_ns_per_block\": {enc_ns:.1},\n"));
    out.push_str(&format!("    \"decrypt_ns_per_block\": {dec_ns:.1},\n"));
    out.push_str(&format!(
        "    \"seed_encrypt_ns_per_block\": {SEED_AES_ENCRYPT_NS:.1},\n"
    ));
    out.push_str(&format!(
        "    \"seed_decrypt_ns_per_block\": {SEED_AES_DECRYPT_NS:.1},\n"
    ));
    out.push_str(&format!(
        "    \"encrypt_speedup_vs_seed\": {:.2},\n",
        SEED_AES_ENCRYPT_NS / enc_ns
    ));
    out.push_str(&format!(
        "    \"decrypt_speedup_vs_seed\": {:.2}\n",
        SEED_AES_DECRYPT_NS / dec_ns
    ));
    out.push_str("  },\n");
    out.push_str("  \"engine\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"workload\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"blocks\": {},\n", r.blocks));
        out.push_str(&format!("      \"seconds\": {:.4},\n", r.seconds));
        out.push_str(&format!(
            "      \"blocks_per_sec\": {:.0},\n",
            r.blocks_per_sec
        ));
        out.push_str(&format!(
            "      \"batch_blocks_per_sec\": {:.0},\n",
            r.batch_blocks_per_sec
        ));
        out.push_str(&format!(
            "      \"software_blocks_per_sec\": {:.0},\n",
            r.software_blocks_per_sec
        ));
        out.push_str(&format!(
            "      \"seed_blocks_per_sec\": {:.0},\n",
            SEED_ENGINE_BLOCKS_PER_SEC[i]
        ));
        out.push_str(&format!(
            "      \"speedup_vs_seed\": {:.2}\n",
            r.speedup_vs_seed
        ));
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"sharded\": {\n");
    out.push_str(&format!("    \"shards\": {SHARDS},\n"));
    out.push_str(&format!(
        "    \"thread_sweep\": [{}],\n",
        THREAD_SWEEP.map(|t| t.to_string()).join(", ")
    ));
    out.push_str(
        "    \"scaling_model\": \"critical-path: each worker group's disjoint shard stream \
         timed in isolation; blocks_per_sec = blocks / max(group seconds). Equals wall-clock \
         on a host with >= threads idle cores; wall_* fields are the real scoped-thread run \
         on this host.\",\n",
    );
    out.push_str("    \"curves\": [\n");
    for (ci, curve) in curves.iter().enumerate() {
        out.push_str("      {\n");
        out.push_str(&format!("        \"workload\": \"{}\",\n", curve.workload));
        out.push_str(&format!(
            "        \"speedup_4t_vs_1t\": {:.2},\n",
            curve.speedup_4t_vs_1t
        ));
        out.push_str("        \"points\": [\n");
        for (pi, p) in curve.points.iter().enumerate() {
            out.push_str(&format!(
                "          {{\"threads\": {}, \"blocks\": {}, \"critical_path_seconds\": {:.4}, \
                 \"blocks_per_sec\": {:.0}, \"wall_seconds\": {:.4}, \"wall_blocks_per_sec\": {:.0}}}{}\n",
                p.threads,
                p.blocks,
                p.critical_path_seconds,
                p.blocks_per_sec,
                p.wall_seconds,
                p.wall_blocks_per_sec,
                if pi + 1 == curve.points.len() { "" } else { "," }
            ));
        }
        out.push_str("        ]\n");
        out.push_str(if ci + 1 == curves.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    out.push_str("    ]\n");
    out.push_str("  },\n");
    // v4: the head-to-head scheme arena — every ProtectedMemory scheme
    // over every workload pattern, single-op and batched.
    out.push_str("  \"schemes\": [\n");
    for (si, s) in schemes.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"scheme\": \"{}\",\n", s.scheme));
        out.push_str("      \"workloads\": [\n");
        for (wi, w) in s.workloads.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"workload\": \"{}\", \"blocks\": {}, \"blocks_per_sec\": {:.0}, \
                 \"batch_blocks_per_sec\": {:.0}, \"version_fetches\": {}, \
                 \"reencryption_events\": {}}}{}\n",
                w.workload,
                w.blocks,
                w.blocks_per_sec,
                w.batch_blocks_per_sec,
                w.version_fetches,
                w.reencryption_events,
                if wi + 1 == s.workloads.len() { "" } else { "," }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(if si + 1 == schemes.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    // v5: the availability section — goodput vs injected transient-fault
    // rate for every workload through the fault-injected device channel,
    // plus the one-shard-tampered quarantine containment experiment.
    let policy = RetryPolicy::default();
    out.push_str("  \"availability\": {\n");
    out.push_str(&format!(
        "    \"fault_rates\": [{}],\n",
        FAULT_RATE_SWEEP.map(|r| format!("{r}")).join(", ")
    ));
    out.push_str(&format!(
        "    \"retry_policy\": {{\"max_attempts\": {}, \"base_backoff_nanos\": {}, \
         \"max_backoff_nanos\": {}}},\n",
        policy.max_attempts, policy.base_backoff_nanos, policy.max_backoff_nanos
    ));
    out.push_str("    \"workloads\": [\n");
    for (ai, a) in availability.iter().enumerate() {
        out.push_str("      {\n");
        out.push_str(&format!("        \"workload\": \"{}\",\n", a.workload));
        out.push_str("        \"points\": [\n");
        for (pi, p) in a.points.iter().enumerate() {
            out.push_str(&format!(
                "          {{\"fault_rate\": {}, \"blocks\": {}, \"blocks_per_sec\": {:.0}, \
                 \"goodput_vs_fault_free\": {:.3}, \"faults_injected\": {}, \
                 \"faults_absorbed\": {}, \"retries\": {}, \"backoff_nanos\": {}, \
                 \"observations_match\": {}, \"false_kills\": {}}}{}\n",
                p.fault_rate,
                p.blocks,
                p.blocks_per_sec,
                p.goodput_vs_fault_free,
                p.faults_injected,
                p.faults_absorbed,
                p.retries,
                p.backoff_nanos,
                p.observations_match,
                p.false_kills,
                if pi + 1 == a.points.len() { "" } else { "," }
            ));
        }
        out.push_str("        ]\n");
        out.push_str(if ai + 1 == availability.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    out.push_str("    ],\n");
    out.push_str("    \"quarantine\": {\n");
    out.push_str(&format!(
        "      \"workload\": \"{}\",\n",
        quarantine.workload
    ));
    out.push_str(&format!(
        "      \"tamper_at_op\": {},\n",
        quarantine.tamper_at_op
    ));
    out.push_str(&format!(
        "      \"tampered_shard\": {},\n",
        quarantine.tampered_shard
    ));
    out.push_str(&format!(
        "      \"quarantined_shards\": {},\n",
        quarantine.quarantined_shards
    ));
    out.push_str(&format!(
        "      \"world_killed\": {},\n",
        quarantine.world_killed
    ));
    out.push_str(&format!(
        "      \"healthy_blocks\": {},\n",
        quarantine.healthy_blocks
    ));
    out.push_str(&format!(
        "      \"healthy_blocks_per_sec\": {:.0},\n",
        quarantine.healthy_blocks_per_sec
    ));
    out.push_str(&format!(
        "      \"refused_blocks\": {},\n",
        quarantine.refused_blocks
    ));
    out.push_str(&format!(
        "      \"ops_served_total\": {},\n",
        quarantine.ops_served_total
    ));
    out.push_str(&format!(
        "      \"ops_at_quarantine\": {}\n",
        quarantine.ops_at_quarantine
    ));
    out.push_str("    }\n");
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// Well-formedness check: the emitted file must parse as JSON (with the
/// same reader the perf gate uses) and carry every section and key the
/// perf-trajectory tooling reads, including one scheme × workload row
/// per arena cell.
///
/// # Errors
///
/// What is missing or malformed in the file at `path`.
pub fn check_emitted(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let root = crate::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    for key in [
        "schema",
        "selected_backend",
        "aes_backends",
        "aes128",
        "engine",
        "sharded",
        "schemes",
        "availability",
    ] {
        if root.get(key).is_none() {
            return Err(format!("{path}: missing key {key:?}"));
        }
    }
    for key in [
        "\"encrypt8_ns_per_block\"",
        "\"encrypt_speedup_vs_seed\"",
        "\"batch_blocks_per_sec\"",
        "\"software_blocks_per_sec\"",
        "\"blocks_per_sec\"",
        "\"speedup_vs_seed\"",
        "\"thread_sweep\"",
        "\"critical_path_seconds\"",
        "\"speedup_4t_vs_1t\"",
        "\"version_fetches\"",
        "\"reencryption_events\"",
        "\"fault_rates\"",
        "\"retry_policy\"",
        "\"goodput_vs_fault_free\"",
        "\"faults_injected\"",
        "\"observations_match\"",
        "\"false_kills\"",
        "\"quarantine\"",
        "\"ops_at_quarantine\"",
    ] {
        if !text.contains(key) {
            return Err(format!("{path}: missing key {key}"));
        }
    }
    let schemes = root
        .get("schemes")
        .and_then(crate::json::Value::as_array)
        .ok_or_else(|| format!("{path}: schemes is not an array"))?;
    for scheme in SCHEMES {
        let entry = schemes
            .iter()
            .find(|s| s.get("scheme").and_then(crate::json::Value::as_str) == Some(scheme))
            .ok_or_else(|| format!("{path}: schemes missing {scheme:?}"))?;
        let rows = entry
            .get("workloads")
            .and_then(crate::json::Value::as_array)
            .ok_or_else(|| format!("{path}: {scheme} has no workloads array"))?;
        for workload in ["sequential", "random", "hot-reset", "multi-tenant"] {
            if !rows
                .iter()
                .any(|r| r.get("workload").and_then(crate::json::Value::as_str) == Some(workload))
            {
                return Err(format!("{path}: {scheme} missing workload {workload:?}"));
            }
        }
    }
    let avail_rows = root
        .get("availability")
        .and_then(|a| a.get("workloads"))
        .and_then(crate::json::Value::as_array)
        .ok_or_else(|| format!("{path}: availability.workloads is not an array"))?;
    for workload in ["sequential", "random", "hot-reset", "multi-tenant"] {
        let row = avail_rows
            .iter()
            .find(|r| r.get("workload").and_then(crate::json::Value::as_str) == Some(workload))
            .ok_or_else(|| format!("{path}: availability missing workload {workload:?}"))?;
        let points = row
            .get("points")
            .and_then(crate::json::Value::as_array)
            .ok_or_else(|| format!("{path}: availability/{workload} has no points array"))?;
        if points.len() != FAULT_RATE_SWEEP.len() {
            return Err(format!(
                "{path}: availability/{workload} has {} points, expected {}",
                points.len(),
                FAULT_RATE_SWEEP.len()
            ));
        }
    }
    Ok(())
}

/// The CI perf gate: every single-thread workload must hold at least
/// `tolerance` × the committed baseline's blocks/s. The baseline is
/// parsed structurally and paired by workload *name*
/// ([`crate::gate::compare`]), so baseline row order and adjacent
/// `batch_`/`wall_blocks_per_sec` keys cannot mis-pair a floor.
///
/// # Errors
///
/// An unreadable baseline or a workload below its floor.
pub fn compare_against_baseline(
    baseline_path: &str,
    tolerance: f64,
    results: &[WorkloadResult],
) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("read baseline {baseline_path}: {e}"))?;
    let measured: Vec<(&str, f64)> = results.iter().map(|r| (r.name, r.blocks_per_sec)).collect();
    let rows = crate::gate::compare(&text, tolerance, &measured)
        .map_err(|e| format!("baseline {baseline_path}: {e}"))?;
    let mut failures = Vec::new();
    for row in &rows {
        println!(
            "gate engine/{:<10} {:>10.0} blocks/s vs baseline {:>10.0} ({:>5.2}x, floor {:.2})",
            row.workload, row.measured, row.baseline, row.ratio, tolerance
        );
        if !row.pass {
            failures.push(format!(
                "{}: {:.0} blocks/s < {tolerance} x baseline {:.0}",
                row.workload, row.measured, row.baseline
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!("perf regression: {}", failures.join("; ")))
    }
}
